//! Vendored stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! This workspace builds in offline environments with no crates.io access,
//! so the external `rand` dependency is replaced by this path crate. It
//! implements exactly the API subset the workspace uses — [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and [`Rng::random_range`] — with the
//! same contract the real crate documents: a deterministic, seedable,
//! high-quality (non-cryptographic) generator. The underlying algorithm is
//! xoshiro256++ seeded through SplitMix64, so the *streams differ* from the
//! real `rand::rngs::StdRng` (ChaCha12); nothing in this workspace depends
//! on the exact stream, only on determinism per seed.

/// Seedable generators, mirroring `rand::rngs`.
pub mod rngs {
    /// Deterministic xoshiro256++ generator, stand-in for `rand`'s `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

/// Construction of seedable RNGs, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator whose entire state derives from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, the canonical way to seed xoshiro.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }
}

impl StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ step.
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// A type usable as the argument of [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from `self` using `rng`.
    fn sample(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end - self.start) as u64;
                // Debiased multiply-shift (Lemire); span is tiny relative to
                // 2^64 everywhere in this workspace, so the retry loop in the
                // real crate is unnecessary: modulo bias is < 2^-32 here and
                // no caller is statistics-sensitive at that scale.
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let span = (end - start) as u64 + 1;
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(u32, u64, usize, i32, i64);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        // 53 high bits → uniform in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Sampling methods on a generator, mirroring `rand::Rng`.
pub trait Rng {
    /// A uniform sample from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
}

impl Rng for StdRng {
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = rng.random_range(0..5);
            assert!(y < 5);
            let z = rng.random_range(2usize..=8);
            assert!((2..=8).contains(&z));
            let f = rng.random_range(5.0f64..100.0);
            assert!((5.0..100.0).contains(&f));
        }
    }

    #[test]
    fn f64_samples_cover_the_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let samples: Vec<f64> = (0..2000).map(|_| rng.random_range(0.0f64..1.0)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
        assert!(samples.iter().any(|&x| x < 0.1));
        assert!(samples.iter().any(|&x| x > 0.9));
    }
}
