//! Vendored stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! This workspace builds in offline environments with no crates.io access,
//! so the external `criterion` dev-dependency is replaced by this path
//! crate. It implements the API subset the workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], the
//! [`criterion_group!`]/[`criterion_main!`] macros, and `Bencher::iter` —
//! with a calibrated wall-clock measurement loop instead of criterion's
//! statistical machinery:
//!
//! 1. warm up for ≥ `WARMUP` (default 200 ms),
//! 2. size a batch so one batch runs ≥ `BATCH_TARGET` (default 10 ms),
//! 3. time `SAMPLES` (default 15) batches,
//! 4. report **min / median / mean** time per iteration.
//!
//! Min and median are the robust statistics (immune to scheduler noise in
//! one direction); mean matches what simple timing scripts report.
//! Environment knobs: `BENCH_SAMPLES`, `BENCH_BATCH_MS`, `BENCH_WARMUP_MS`
//! (useful to shorten CI runs).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

fn env_ms(key: &str, default_ms: u64) -> Duration {
    Duration::from_millis(
        std::env::var(key)
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(default_ms),
    )
}

fn env_n(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// Times a closure over calibrated batches; see the crate docs.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Measures `routine`, retaining per-batch timings for the report.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let warmup = env_ms("BENCH_WARMUP_MS", 200);
        let batch_target = env_ms("BENCH_BATCH_MS", 10);
        let n_samples = env_n("BENCH_SAMPLES", 15);

        // Warm up and estimate the per-iteration cost.
        let mut iters = 0u64;
        let start = Instant::now();
        while start.elapsed() < warmup || iters < 3 {
            black_box(routine());
            iters += 1;
        }
        let per_iter = start.elapsed().div_f64(iters as f64);

        let batch: u64 = (batch_target.as_secs_f64() / per_iter.as_secs_f64().max(1e-12))
            .ceil()
            .max(1.0) as u64;
        self.iters_per_sample = batch;
        self.samples.clear();
        for _ in 0..n_samples {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(t.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<44} (no samples)");
            return;
        }
        let mut per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_secs_f64() / self.iters_per_sample as f64)
            .collect();
        per_iter.sort_by(f64::total_cmp);
        let min = per_iter[0];
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        println!(
            "{name:<44} min {:>12} med {:>12} mean {:>12} ({} samples x {} iters)",
            fmt_time(min),
            fmt_time(median),
            fmt_time(mean),
            per_iter.len(),
            self.iters_per_sample,
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Identifies one benchmark within a group, mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id carrying just a parameter value (e.g. a player count).
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }

    /// An id with a function name and a parameter value.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The benchmark manager, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a free-standing benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("## {name}");
        BenchmarkGroup {
            name: name.to_string(),
            _parent: self,
        }
    }
}

/// A group of related benchmarks, mirroring `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark inside the group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Runs a benchmark parameterized by a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {
        println!();
    }
}

fn run_one(name: &str, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    bencher.report(name);
}

/// Declares a benchmark group function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            // cargo-bench passes harness flags like `--bench`; this simple
            // harness runs everything unconditionally, so just ignore them.
            $( $group(); )+
        }
    };
}
