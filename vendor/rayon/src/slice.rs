//! Parallel operations on mutable slices: the
//! `par_chunks_mut(..).enumerate().for_each_init(..)` shape used by the
//! equilibrium engine to fan independent bid rows out across threads,
//! mirroring `rayon::slice`.

/// `par_chunks_mut()` on mutable slices, mirroring
/// `rayon::slice::ParallelSliceMut`.
pub trait ParallelSliceMut<T: Send> {
    /// Splits `self` into non-overlapping mutable chunks of `chunk_size`
    /// (the last chunk may be shorter), processable in parallel.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ChunksMut {
            slice: self,
            size: chunk_size,
        }
    }
}

/// Parallel iterator over mutable chunks.
#[derive(Debug)]
pub struct ChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ChunksMut<'a, T> {
    /// Pairs every chunk with its index.
    pub fn enumerate(self) -> EnumerateChunksMut<'a, T> {
        EnumerateChunksMut {
            slice: self.slice,
            size: self.size,
        }
    }
}

/// Enumerated parallel iterator over mutable chunks.
#[derive(Debug)]
pub struct EnumerateChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<T: Send> EnumerateChunksMut<'_, T> {
    /// Applies `op` to every `(index, chunk)` pair in parallel.
    pub fn for_each<F>(self, op: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        self.for_each_init(|| (), |(), pair| op(pair));
    }

    /// Applies `op` to every `(index, chunk)` pair in parallel, threading a
    /// per-worker state created by `init` — e.g. a scratch buffer reused
    /// across every chunk a worker processes. Mirrors rayon's
    /// `for_each_init` (there `init` runs per split; here, per worker
    /// band — both mean "amortized across many elements").
    pub fn for_each_init<S, I, F>(self, init: I, op: F)
    where
        I: Fn() -> S + Sync,
        F: Fn(&mut S, (usize, &mut [T])) + Sync,
    {
        let size = self.size;
        let n_chunks = self.slice.len().div_ceil(size);
        let threads = crate::current_num_threads();
        if threads <= 1 || n_chunks <= 1 {
            let mut state = init();
            for (i, chunk) in self.slice.chunks_mut(size).enumerate() {
                op(&mut state, (i, chunk));
            }
            return;
        }
        let bands = crate::bands(n_chunks, threads);
        std::thread::scope(|scope| {
            let mut rest = self.slice;
            for band in bands {
                let elems = ((band.end - band.start) * size).min(rest.len());
                let (mine, tail) = rest.split_at_mut(elems);
                rest = tail;
                let op = &op;
                let init = &init;
                scope.spawn(move || {
                    let mut state = init();
                    for (k, chunk) in mine.chunks_mut(size).enumerate() {
                        op(&mut state, (band.start + k, chunk));
                    }
                });
            }
        });
    }
}
