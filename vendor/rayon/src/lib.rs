//! Vendored stand-in for the [`rayon`](https://crates.io/crates/rayon) crate.
//!
//! This workspace builds in offline environments with no crates.io access,
//! so the external `rayon` dependency is replaced by this path crate. It
//! implements the data-parallel API subset the workspace uses —
//! `par_iter().map(..).collect()`, `into_par_iter()` over ranges,
//! `par_chunks_mut(..).enumerate().for_each_init(..)`, thread pools with
//! [`ThreadPool::install`], and [`current_num_threads`] — with real
//! multi-threaded execution on `std::thread::scope`.
//!
//! # Execution model (and how it differs from real rayon)
//!
//! Work is split into **contiguous index bands**, one per worker thread,
//! instead of rayon's work-stealing splits. Two consequences:
//!
//! * **Determinism**: every element is evaluated by the same pure closure
//!   regardless of thread count, and results are reassembled in index
//!   order, so output is bit-identical across 1, 2, or `k` threads.
//! * **No stealing**: a badly skewed workload will not rebalance. The
//!   allocation workloads here fan out near-uniform best responses, where
//!   contiguous banding is within noise of work stealing.
//!
//! Threads are spawned per parallel call rather than pooled. On Linux a
//! spawn is ~20–50 µs; every hot call site in this workspace amortizes
//! that over milliseconds of per-band work (and serial fallbacks below the
//! [`ParallelPolicy`](https://docs.rs/rayon) thresholds never spawn at all).
//!
//! Thread-count resolution, in priority order: an enclosing
//! [`ThreadPool::install`] scope, the `RAYON_NUM_THREADS` environment
//! variable, then [`std::thread::available_parallelism`].

use std::cell::Cell;
use std::ops::Range;

pub mod iter;
pub mod slice;

/// The customary glob import, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator};
    pub use crate::slice::ParallelSliceMut;
}

thread_local! {
    static POOL_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads parallel calls on this thread will use.
///
/// Mirrors `rayon::current_num_threads`: the enclosing
/// [`ThreadPool::install`] scope wins, then `RAYON_NUM_THREADS`, then the
/// machine's available parallelism.
pub fn current_num_threads() -> usize {
    if let Some(n) = POOL_OVERRIDE.with(Cell::get) {
        return n.max(1);
    }
    if let Some(n) = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Error building a [`ThreadPool`]; kept for API parity (building the
/// band-execution "pool" cannot actually fail).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`], mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default (auto) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pins the worker-thread count.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Builds the pool.
    ///
    /// # Errors
    ///
    /// Never fails; the `Result` mirrors the real crate's signature.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = match self.num_threads {
            Some(n) if n > 0 => n,
            _ => current_num_threads(),
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A logical thread pool: parallel calls made inside [`ThreadPool::install`]
/// use this pool's thread count.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count governing every parallel
    /// call it makes (on this thread).
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = POOL_OVERRIDE.with(|c| c.replace(Some(self.num_threads)));
        let result = f();
        POOL_OVERRIDE.with(|c| c.set(prev));
        result
    }

    /// This pool's worker-thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Splits `0..len` into at most `threads` contiguous, near-equal bands.
pub(crate) fn bands(len: usize, threads: usize) -> Vec<Range<usize>> {
    let threads = threads.clamp(1, len.max(1));
    let base = len / threads;
    let extra = len % threads;
    let mut out = Vec::with_capacity(threads);
    let mut start = 0;
    for t in 0..threads {
        let size = base + usize::from(t < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Evaluates `f` on every index in `0..len` across the current thread
/// count, returning results in index order. The workhorse behind every
/// combinator in [`iter`] and [`slice`].
pub(crate) fn run_indexed<R: Send>(len: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    let threads = current_num_threads();
    if threads <= 1 || len <= 1 {
        return (0..len).map(f).collect();
    }
    let bands = bands(len, threads);
    let mut out: Vec<R> = Vec::with_capacity(len);
    std::thread::scope(|scope| {
        let handles: Vec<_> = bands
            .into_iter()
            .map(|band| scope.spawn(|| band.map(&f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            out.extend(h.join().expect("worker thread panicked"));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn range_into_par_iter() {
        let squares: Vec<usize> = (0usize..37).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares.len(), 37);
        assert_eq!(squares[6], 36);
    }

    #[test]
    fn chunks_mut_for_each_init_touches_every_chunk_once() {
        let mut data = vec![0i64; 12 * 3];
        data.par_chunks_mut(3).enumerate().for_each_init(
            || 100i64,
            |init, (i, chunk)| {
                for (k, slot) in chunk.iter_mut().enumerate() {
                    *slot = *init + (i * 3 + k) as i64;
                }
            },
        );
        let expect: Vec<i64> = (0..36).map(|k| 100 + k).collect();
        assert_eq!(data, expect);
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        assert_eq!(pool.install(crate::current_num_threads), 3);
        let nested = crate::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        pool.install(|| {
            assert_eq!(nested.install(crate::current_num_threads), 1);
            assert_eq!(crate::current_num_threads(), 3);
        });
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let xs: Vec<f64> = (0..257).map(|i| i as f64 * 0.37).collect();
        let eval = || -> Vec<f64> { xs.par_iter().map(|&x| (x.sin() * 1e6).sqrt()).collect() };
        let serial = crate::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let four = crate::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let a = serial.install(eval);
        let b = four.install(eval);
        let c = eval();
        assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()));
        assert!(a.iter().zip(&c).all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn bands_cover_exactly() {
        for (len, threads) in [(10, 3), (3, 10), (0, 4), (16, 4), (1, 1)] {
            let bands = crate::bands(len, threads);
            let mut covered = 0;
            for (k, b) in bands.iter().enumerate() {
                assert_eq!(b.start, covered, "band {k} not contiguous");
                covered = b.end;
            }
            assert_eq!(covered, len);
        }
    }
}
