//! Parallel iterator combinators: the `par_iter().map(..).collect()` and
//! `(a..b).into_par_iter()` shapes, mirroring `rayon::iter`.
//!
//! Combinators are lazy structs over a borrowed source plus a closure;
//! evaluation happens in [`Map::collect`] (or the other terminals) via
//! [`crate::run_indexed`], which bands the index space across threads and
//! reassembles results in index order.

use std::ops::Range;

/// Conversion into a parallel iterator, mirroring
/// `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Element type.
    type Item;
    /// The parallel iterator produced.
    type Iter;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

/// `par_iter()` on shared slices, mirroring
/// `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed element type.
    type Item: 'a;
    /// The parallel iterator produced.
    type Iter;
    /// Borrows `self` as a parallel iterator.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;
    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;
    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { items: self }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = RangeIter;
    fn into_par_iter(self) -> RangeIter {
        RangeIter { range: self }
    }
}

/// Parallel iterator over `&[T]`.
#[derive(Debug)]
pub struct SliceIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> SliceIter<'a, T> {
    /// Maps each element through `f`.
    pub fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        Map { source: self, f }
    }

    /// Accepted for API parity with real rayon; banding already bounds
    /// split granularity, so this is a no-op.
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }
}

/// Parallel iterator over an index range.
#[derive(Debug)]
pub struct RangeIter {
    range: Range<usize>,
}

impl RangeIter {
    /// Maps each index through `f`.
    pub fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(usize) -> R + Sync,
        R: Send,
    {
        Map { source: self, f }
    }
}

/// A lazily mapped parallel iterator.
#[derive(Debug)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync> Map<SliceIter<'a, T>, F> {
    /// Evaluates the map in parallel, preserving element order.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        let items = self.source.items;
        let f = &self.f;
        C::from(crate::run_indexed(items.len(), |i| f(&items[i])))
    }
}

impl<R: Send, F: Fn(usize) -> R + Sync> Map<RangeIter, F> {
    /// Evaluates the map in parallel, preserving index order.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        let Range { start, end } = self.source.range;
        let f = &self.f;
        C::from(crate::run_indexed(end.saturating_sub(start), |i| {
            f(start + i)
        }))
    }
}
