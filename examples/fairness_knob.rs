//! The administrator's knob: set a lowest acceptable envy-freeness, let
//! ReBudget derive the budget-range constraint from Theorem 2, and watch
//! the efficiency/fairness trade-off move (§4.2 of the paper).
//!
//! Run with: `cargo run -p rebudget-examples --bin fairness_knob`

use std::error::Error;

use rebudget_core::mechanisms::{MaxEfficiency, Mechanism, ReBudget};
use rebudget_core::theory::{min_mbr_for_ef, MAX_GUARANTEED_EF};
use rebudget_sim::analytic::build_market;
use rebudget_sim::{DramConfig, SystemConfig};
use rebudget_workloads::paper_bbpc_8core;

fn main() -> Result<(), Box<dyn Error>> {
    let sys = SystemConfig::paper_8core();
    let dram = DramConfig::ddr3_1600();
    let bundle = paper_bbpc_8core();
    println!(
        "Bundle: {:?} (the paper's Figure-3 case study)",
        bundle.app_names()
    );

    let market = build_market(&bundle, &sys, &dram, 100.0)?;
    let oracle = MaxEfficiency::default().allocate(&market)?;

    println!();
    println!(
        "{:>9} {:>8} {:>8} {:>10} {:>12} {:>12}",
        "EF-floor", "min-MBR", "step", "eff/OPT", "measured-EF", "floor-held?"
    );
    for floor in [0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1] {
        let mech = ReBudget::with_fairness_floor(100.0, floor)?;
        let out = mech.allocate(&market)?;
        let mbr = min_mbr_for_ef(floor).expect("floor within range");
        println!(
            "{floor:>9.2} {mbr:>8.3} {:>8.2} {:>10.3} {:>12.3} {:>12}",
            mech.initial_step,
            out.efficiency / oracle.efficiency,
            out.envy_freeness,
            if out.envy_freeness >= floor - 1e-9 {
                "yes"
            } else {
                "NO"
            },
        );
    }

    println!();
    println!("No budget assignment can guarantee more than {MAX_GUARANTEED_EF:.3}-approximate");
    println!("envy-freeness (Theorem 2 at MBR = 1); asking for more is an error:");
    println!(
        "  ReBudget::with_fairness_floor(100.0, 0.9) -> {:?}",
        ReBudget::with_fairness_floor(100.0, 0.9)
            .err()
            .map(|e| e.to_string())
    );
    Ok(())
}
