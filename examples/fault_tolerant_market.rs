//! A market surviving hostile telemetry: Gaussian monitor noise, NaN
//! readings, dropped bids, and two adversarial "liar" bidders that
//! overstate their utility 3×. The solver's guardrails (adaptive damping,
//! restart-from-stable, non-finite sanitization) keep the allocation
//! valid, and the `SolveReport` / `MechanismOutcome` surface every
//! recovery action taken along the way.
//!
//! Run with: `cargo run -p rebudget-examples --bin fault_tolerant_market`

use std::error::Error;

use rebudget_core::mechanisms::{EqualBudget, Mechanism};
use rebudget_market::equilibrium::EquilibriumOptions;
use rebudget_market::{metrics, FaultPlan, RecoveryAction};
use rebudget_sim::analytic::build_market;
use rebudget_sim::{DramConfig, SystemConfig};
use rebudget_workloads::paper_bbpc_8core;

fn main() -> Result<(), Box<dyn Error>> {
    let sys = SystemConfig::paper_8core();
    let dram = DramConfig::ddr3_1600();
    let bundle = paper_bbpc_8core();
    let market = build_market(&bundle, &sys, &dram, 100.0)?;

    // The hostile interval: ±20% noise on every utility evaluation, 2% NaN
    // readings, a 10% chance each bid never arrives, and two liars.
    let plan = FaultPlan::parse("noise=0.2,nan=0.02,drop=0.1,liars=2,liar-factor=3,seed=7")?;
    let faulted = plan.apply(&market, 0)?;
    println!("bundle          {}", bundle.label());
    println!(
        "faults          noise=20% nan=2% drop=10% liars={:?} (3x)",
        faulted.liars
    );
    println!("dropped bids    {:?}", faulted.dropped);
    println!();

    // Solve the faulted market directly to see the raw SolveReport…
    let eq = faulted.market.equilibrium(&EquilibriumOptions::default())?;
    println!(
        "equilibrium     converged={} after {} iterations (residual {:.2e})",
        eq.converged(),
        eq.report.iterations,
        eq.report.residual
    );
    if eq.report.recovery.is_empty() {
        println!("recovery        (none needed)");
    } else {
        for action in &eq.report.recovery {
            let line = match action {
                RecoveryAction::OscillationDamped { iteration, damping } => {
                    format!("iteration {iteration}: oscillation damped to {damping:.3}")
                }
                RecoveryAction::RestartedFromStable { iteration } => {
                    format!("iteration {iteration}: diverged, restarted from stable iterate")
                }
                RecoveryAction::NonFiniteSanitized { iteration, what } => {
                    format!("iteration {iteration}: non-finite {what} sanitized")
                }
                other => format!("{other:?}"),
            };
            println!("recovery        {line}");
        }
    }
    println!();

    // …then run a full mechanism and score the allocation with the CLEAN
    // utilities: what did the faults actually cost?
    let clean = EqualBudget::new(100.0).allocate(&market)?;
    let out = EqualBudget::new(100.0).allocate(&faulted.market)?;
    let full = faulted.expand_allocation(&out.allocation, market.len())?;
    let eff = metrics::efficiency(&market, &full);
    let ef = metrics::envy_freeness(&market, &full);
    println!(
        "clean run       efficiency {:.4}  envy-freeness {:.4}",
        clean.efficiency, clean.envy_freeness
    );
    println!(
        "faulted run     efficiency {eff:.4}  envy-freeness {ef:.4}  \
         (retention {:.1}% / {:.1}%)",
        100.0 * eff / clean.efficiency,
        100.0 * ef / clean.envy_freeness
    );
    println!(
        "outcome         degraded={} solver_recoveries={} rolled_back_rounds={}",
        out.degraded, out.solver_recoveries, out.rolled_back_rounds
    );
    assert!(full.is_exhaustive(market.resources().capacities(), 1e-6));
    println!();
    println!("The allocation stayed exhaustive, finite, and non-negative — the");
    println!("guardrails degraded quality, never validity.");
    Ok(())
}
