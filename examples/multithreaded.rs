//! Application-granularity allocation for multithreaded workloads (§5 of
//! the paper: "all the threads of one application may share the same
//! resources"). A 4-thread solver, a 2-thread mcf-like analytics job, and
//! two single-thread apps share an 8-core chip; the market trades at the
//! *application* level with thread-proportional budgets.
//!
//! Run with: `cargo run -p rebudget-examples --bin multithreaded`

use std::error::Error;

use rebudget_core::mechanisms::{EqualShare, MaxEfficiency, Mechanism, ReBudget};
use rebudget_sim::groups::{build_group_market, MultithreadedBundle, ThreadGroup};
use rebudget_sim::{DramConfig, SystemConfig};

fn main() -> Result<(), Box<dyn Error>> {
    let sys = SystemConfig::paper_8core();
    let dram = DramConfig::ddr3_1600();
    let app = |name: &str| {
        rebudget_apps::spec::app_by_name(name).unwrap_or_else(|| panic!("app {name} exists"))
    };
    let bundle = MultithreadedBundle {
        groups: vec![
            ThreadGroup {
                app: app("swim"),
                threads: 4,
            },
            ThreadGroup {
                app: app("mcf"),
                threads: 2,
            },
            ThreadGroup {
                app: app("sixtrack"),
                threads: 1,
            },
            ThreadGroup {
                app: app("gzip"),
                threads: 1,
            },
        ],
    };
    println!(
        "8-core chip, application-granularity market: {} groups covering {} cores",
        bundle.groups.len(),
        bundle.cores()
    );

    let market = build_group_market(&bundle, &sys, &dram, 100.0)?;
    println!(
        "\nGroup budgets (thread-proportional): {:?}",
        market.budgets()
    );

    let mechanisms: Vec<Box<dyn Mechanism>> = vec![
        Box::new(EqualShare),
        Box::new(ReBudget::with_step(100.0, 20.0)),
        Box::new(MaxEfficiency::default()),
    ];
    println!();
    println!(
        "{:<14} {:>12} {:>10}   per-group (cache-regions, watts)",
        "mechanism", "efficiency", "envy-free"
    );
    for mech in mechanisms {
        let out = mech.allocate(&market)?;
        let alloc: Vec<String> = bundle
            .groups
            .iter()
            .enumerate()
            .map(|(k, g)| {
                format!(
                    "{}x{}=({:.1}, {:.1})",
                    g.app.name,
                    g.threads,
                    out.allocation.get(k, 0),
                    out.allocation.get(k, 1)
                )
            })
            .collect();
        println!(
            "{:<14} {:>12.3} {:>10.3}   {}",
            out.mechanism,
            out.efficiency,
            out.envy_freeness,
            alloc.join("  ")
        );
    }
    println!();
    println!("The 4-thread group commands a 4x budget and buys roughly four single-");
    println!("thread shares; efficiency is still per-core weighted speedup (max 8).");
    Ok(())
}
