//! Quickstart: a four-player, two-resource market, allocated by every
//! mechanism the paper compares, with the paper's metrics printed.
//!
//! Run with: `cargo run -p rebudget-examples --bin quickstart`

use std::error::Error;
use std::sync::Arc;

use rebudget_core::mechanisms::{
    Balanced, EqualBudget, EqualShare, MaxEfficiency, Mechanism, ReBudget,
};
use rebudget_core::theory::{ef_lower_bound, poa_lower_bound};
use rebudget_market::utility::SeparableUtility;
use rebudget_market::{Market, Player, ResourceSpace};

fn main() -> Result<(), Box<dyn Error>> {
    // Two divisible resources: 24 cache regions, 56 discretionary Watts.
    let caps = [24.0, 56.0];
    let resources = ResourceSpace::with_names(vec![
        ("cache-regions".to_string(), caps[0]),
        ("watts".to_string(), caps[1]),
    ])?;

    // Four players with different concave tastes (weights sum to 1, so
    // utilities are normalized like the paper's normalized IPC).
    let tastes: [(&str, [f64; 2]); 4] = [
        ("cache-lover", [0.9, 0.1]),
        ("power-lover", [0.1, 0.9]),
        ("balanced", [0.5, 0.5]),
        ("indifferent", [0.05, 0.05]),
    ];
    let players = tastes
        .iter()
        .map(|(name, w)| -> Result<Player, Box<dyn Error>> {
            Ok(Player::new(
                *name,
                100.0,
                Arc::new(SeparableUtility::proportional(w, &caps)?)
                    as Arc<dyn rebudget_market::Utility>,
            ))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let market = Market::new(resources, players)?;

    let mechanisms: Vec<Box<dyn Mechanism>> = vec![
        Box::new(EqualShare),
        Box::new(EqualBudget::new(100.0)),
        Box::new(Balanced::new(100.0)),
        Box::new(ReBudget::with_step(100.0, 20.0)),
        Box::new(ReBudget::with_step(100.0, 40.0)),
        Box::new(MaxEfficiency::default()),
    ];

    println!(
        "{:<14} {:>10} {:>10} {:>8} {:>8} {:>10} {:>10}",
        "mechanism", "efficiency", "envy-free", "MUR", "MBR", "PoA-floor", "EF-floor"
    );
    for mech in mechanisms {
        let out = mech.allocate(&market)?;
        let poa_floor = out.mur.map_or(f64::NAN, poa_lower_bound);
        let ef_floor = out.mbr.map_or(f64::NAN, ef_lower_bound);
        println!(
            "{:<14} {:>10.3} {:>10.3} {:>8.3} {:>8.3} {:>10.3} {:>10.3}",
            out.mechanism,
            out.efficiency,
            out.envy_freeness,
            out.mur.unwrap_or(f64::NAN),
            out.mbr.unwrap_or(f64::NAN),
            poa_floor,
            ef_floor,
        );
    }
    println!();
    println!("Reading the table: ReBudget trades envy-freeness for efficiency as its");
    println!("step grows; MUR/MBR are the paper's two range metrics, and the floors are");
    println!("the worst-case guarantees of Theorems 1 and 2 at those measured ranges.");
    Ok(())
}
