//! Full-pipeline demo: the execution-driven simulator running the paper's
//! 8-core BBPC bundle for 10 ms under each mechanism, with utilities
//! monitored online by UMON shadow tags (phase 2 of §6).
//!
//! Run with: `cargo run --release -p rebudget-examples --bin multicore_simulation`

use std::error::Error;

use rebudget_core::mechanisms::{
    Balanced, EqualBudget, EqualShare, MaxEfficiency, Mechanism, ReBudget,
};
use rebudget_sim::{run_simulation, DramConfig, SimOptions, SystemConfig};
use rebudget_workloads::paper_bbpc_8core;

fn main() -> Result<(), Box<dyn Error>> {
    let sys = SystemConfig::paper_8core();
    let dram = DramConfig::ddr3_1600();
    let bundle = paper_bbpc_8core();
    let opts = SimOptions {
        quanta: 10,
        accesses_per_quantum: 20_000,
        budget: 100.0,
        use_monitors: true,
        seed: 7,
        ..SimOptions::default()
    };

    println!(
        "Simulating {:?}\non the paper's 8-core CMP (80 W TDP, 4 MB shared L2) for {} ms…",
        bundle.app_names(),
        opts.quanta
    );
    println!();

    let mechanisms: Vec<Box<dyn Mechanism>> = vec![
        Box::new(EqualShare),
        Box::new(EqualBudget::new(100.0)),
        Box::new(Balanced::new(100.0)),
        Box::new(ReBudget::with_step(100.0, 20.0)),
        Box::new(ReBudget::with_step(100.0, 40.0)),
        Box::new(MaxEfficiency::default()),
    ];

    println!(
        "{:<14} {:>14} {:>10} {:>10} {:>10}",
        "mechanism", "weighted-speedup", "envy-free", "rounds/ms", "iters/ms"
    );
    let mut per_app_lines: Vec<(String, Vec<f64>)> = Vec::new();
    for mech in mechanisms {
        let r = run_simulation(&sys, &dram, &bundle, mech.as_ref(), &opts)?;
        println!(
            "{:<14} {:>14.3} {:>10.3} {:>10.1} {:>10.1}",
            r.mechanism, r.efficiency, r.envy_freeness, r.avg_equilibrium_rounds, r.avg_iterations
        );
        per_app_lines.push((r.mechanism.clone(), r.utilities.clone()));
    }

    println!();
    println!("Per-application normalized performance (IPS / IPS-alone):");
    print!("{:<14}", "mechanism");
    for name in bundle.app_names() {
        print!(" {name:>9}");
    }
    println!();
    for (mech, utils) in &per_app_lines {
        print!("{mech:<14}");
        for u in utils {
            print!(" {u:>9.3}");
        }
        println!();
    }
    println!();
    println!("Note how MaxEfficiency starves some apps (low EF) while EqualBudget keeps");
    println!("everyone close to their equal-share performance; ReBudget sits in between.");
    Ok(())
}
