//! The market framework is not CMP-specific: this example allocates
//! cluster resources (CPU, memory bandwidth, network) among tenants with
//! Cobb–Douglas utilities — the family Zahedi & Lee's REF mechanism
//! assumes — and uses MUR/MBR to diagnose the equilibrium and ReBudget to
//! tune it.
//!
//! Run with: `cargo run -p rebudget-examples --bin datacenter_market`

use std::error::Error;
use std::sync::Arc;

use rebudget_core::mechanisms::{EqualBudget, MaxEfficiency, Mechanism, ReBudget};
use rebudget_core::theory::{ef_lower_bound, poa_lower_bound};
use rebudget_market::utility::CobbDouglas;
use rebudget_market::{Market, Player, ResourceSpace};

fn main() -> Result<(), Box<dyn Error>> {
    // A rack: 512 vCPUs, 2 TB/s memory bandwidth, 400 Gb/s network.
    let resources = ResourceSpace::with_names(vec![
        ("vcpus".to_string(), 512.0),
        ("mem-gbps".to_string(), 2048.0),
        ("net-gbps".to_string(), 400.0),
    ])?;

    // Six tenants with Cobb–Douglas elasticities (concave: Σe ≤ 1).
    let tenants: [(&str, [f64; 3]); 6] = [
        ("web-frontend", [0.5, 0.2, 0.3]),
        ("batch-analytics", [0.6, 0.35, 0.05]),
        ("ml-training", [0.3, 0.6, 0.1]),
        ("video-cdn", [0.1, 0.2, 0.7]),
        ("database", [0.35, 0.5, 0.15]),
        ("cron-jobs", [0.3, 0.3, 0.3]),
    ];
    let players = tenants
        .iter()
        .map(|(name, e)| -> Result<Player, Box<dyn Error>> {
            Ok(Player::new(
                *name,
                100.0,
                Arc::new(CobbDouglas::new(0.01, e.to_vec())?) as Arc<dyn rebudget_market::Utility>,
            ))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let market = Market::new(resources, players)?;

    let oracle = MaxEfficiency::default().allocate(&market)?;
    println!(
        "Welfare-optimal efficiency (oracle): {:.3}",
        oracle.efficiency
    );
    println!();
    println!(
        "{:<14} {:>10} {:>10} {:>8} {:>8} {:>10} {:>10}",
        "mechanism", "eff/OPT", "envy-free", "MUR", "MBR", "PoA-floor", "EF-floor"
    );
    let mechanisms: Vec<Box<dyn Mechanism>> = vec![
        Box::new(EqualBudget::new(100.0)),
        Box::new(ReBudget::with_step(100.0, 10.0)),
        Box::new(ReBudget::with_step(100.0, 30.0)),
    ];
    for mech in mechanisms {
        let out = mech.allocate(&market)?;
        println!(
            "{:<14} {:>10.3} {:>10.3} {:>8.3} {:>8.3} {:>10.3} {:>10.3}",
            out.mechanism,
            out.efficiency / oracle.efficiency,
            out.envy_freeness,
            out.mur.unwrap_or(f64::NAN),
            out.mbr.unwrap_or(f64::NAN),
            out.mur.map_or(f64::NAN, poa_lower_bound),
            out.mbr.map_or(f64::NAN, ef_lower_bound),
        );
    }

    // Show the final tenant allocations under the tuned market.
    let out = ReBudget::with_step(100.0, 30.0).allocate(&market)?;
    println!();
    println!("ReBudget-30 allocation (budgets after re-assignment):");
    println!(
        "{:<16} {:>8} {:>10} {:>10} {:>10}",
        "tenant", "budget", "vcpus", "mem-gbps", "net-gbps"
    );
    for (i, (name, _)) in tenants.iter().enumerate() {
        println!(
            "{name:<16} {:>8.1} {:>10.1} {:>10.1} {:>10.1}",
            out.budgets[i],
            out.allocation.get(i, 0),
            out.allocation.get(i, 1),
            out.allocation.get(i, 2),
        );
    }
    Ok(())
}
