//! Integration tests for the execution-driven (phase-2) pipeline: online
//! UMON monitoring feeding the market every quantum while the machine
//! executes, as in §6.3 of the paper.

use rebudget_core::mechanisms::{EqualBudget, EqualShare, MaxEfficiency, ReBudget};
use rebudget_sim::{run_simulation, DramConfig, SimOptions, SystemConfig};
use rebudget_workloads::{generate_bundle, paper_bbpc_8core, Category};

fn opts() -> SimOptions {
    SimOptions {
        quanta: 5,
        accesses_per_quantum: 10_000,
        budget: 100.0,
        use_monitors: true,
        seed: 21,
        ..SimOptions::default()
    }
}

#[test]
fn simulated_ranking_matches_paper_on_case_study() {
    let sys = SystemConfig::paper_8core();
    let dram = DramConfig::ddr3_1600();
    let bundle = paper_bbpc_8core();
    let o = opts();
    let share = run_simulation(&sys, &dram, &bundle, &EqualShare, &o).expect("runs");
    let eq = run_simulation(&sys, &dram, &bundle, &EqualBudget::new(100.0), &o).expect("runs");
    let rb40 =
        run_simulation(&sys, &dram, &bundle, &ReBudget::with_step(100.0, 40.0), &o).expect("runs");
    let oracle = run_simulation(&sys, &dram, &bundle, &MaxEfficiency::default(), &o).expect("runs");

    // §6.3 ordering: oracle ≥ ReBudget ≥ EqualBudget in efficiency.
    assert!(oracle.efficiency >= rb40.efficiency - 0.1);
    assert!(rb40.efficiency >= eq.efficiency - 0.1);
    // The market never loses badly to static equal sharing here.
    assert!(eq.efficiency >= share.efficiency - 0.3);
    // EqualBudget keeps fairness highest; the oracle is worst.
    assert!(eq.envy_freeness >= oracle.envy_freeness - 0.05);
}

#[test]
fn online_monitoring_tracks_analytic_utilities() {
    // Phase-2 (monitored) efficiency should land near the phase-1
    // (analytic) efficiency for the same mechanism — the paper uses the
    // simulation phase to "validate our first phase evaluation".
    let sys = SystemConfig::paper_8core();
    let dram = DramConfig::ddr3_1600();
    let bundle = paper_bbpc_8core();
    let monitored =
        run_simulation(&sys, &dram, &bundle, &EqualBudget::new(100.0), &opts()).expect("runs");
    let mut analytic_opts = opts();
    analytic_opts.use_monitors = false;
    analytic_opts.accesses_per_quantum = 0;
    let analytic = run_simulation(
        &sys,
        &dram,
        &bundle,
        &EqualBudget::new(100.0),
        &analytic_opts,
    )
    .expect("runs");
    let gap = (monitored.efficiency - analytic.efficiency).abs() / analytic.efficiency;
    assert!(
        gap < 0.20,
        "monitored {} vs analytic {} ({}% apart)",
        monitored.efficiency,
        analytic.efficiency,
        (gap * 100.0) as i32
    );
}

#[test]
fn every_category_simulates_cleanly_at_8_cores() {
    let sys = SystemConfig::paper_8core();
    let dram = DramConfig::ddr3_1600();
    let mut o = opts();
    o.quanta = 3;
    for category in Category::ALL {
        let bundle = generate_bundle(category, 8, 0, 13).expect("8 cores");
        let r = run_simulation(&sys, &dram, &bundle, &EqualBudget::new(100.0), &o)
            .expect("simulation runs");
        assert!(r.efficiency > 0.0, "{}", bundle.label());
        assert!(
            r.utilities.iter().all(|&u| u.is_finite() && u > 0.0),
            "{}: {:?}",
            bundle.label(),
            r.utilities
        );
    }
}

#[test]
fn convergence_statistics_are_reported() {
    let sys = SystemConfig::paper_8core();
    let dram = DramConfig::ddr3_1600();
    let r = run_simulation(
        &sys,
        &dram,
        &paper_bbpc_8core(),
        &ReBudget::with_step(100.0, 20.0),
        &opts(),
    )
    .expect("runs");
    // ReBudget re-converges once per budget step: several rounds/quantum.
    assert!(r.avg_equilibrium_rounds > 1.0);
    assert!(r.avg_iterations >= r.avg_equilibrium_rounds);
}
