//! Cross-substrate consistency: the cache monitors, trace generators, and
//! partitioning hardware must agree with the analytic application models
//! they stand in for.

use rebudget_apps::spec::{all_apps, app_by_name};
use rebudget_apps::trace::TraceGenerator;
use rebudget_cache::futility::FutilityPartitionedCache;
use rebudget_cache::CacheConfig;
use rebudget_sim::monitor::CoreMonitor;
use rebudget_sim::utility_model::analytic_mpki_curve;
use rebudget_sim::SystemConfig;

#[test]
fn monitored_mpki_tracks_analytic_mpki_for_representative_apps() {
    let sys = SystemConfig::paper_8core();
    for name in ["mcf", "vpr", "swim", "libquantum", "sixtrack"] {
        let app = app_by_name(name).expect("app exists");
        let mut monitor = CoreMonitor::new(app, &sys, 0, 99);
        monitor.warm_up(300_000);
        monitor.observe_quantum(300_000);
        let measured = monitor.mpki_curve().expect("curve available");
        let analytic = analytic_mpki_curve(app, &sys);
        // At small capacities the monitored level must match tightly. At
        // the deepest capacity LRU physics makes the trace pessimistic:
        // a stream with a compulsory-miss component cannot retain a large,
        // rarely-retouched working set the way the analytic curve assumes,
        // so we only require the right order of magnitude there (and never
        // an *under*-estimate of the floor).
        let small = 128.0 * 1024.0;
        let m = measured.at(small);
        let a = analytic.at(small);
        assert!(
            (m - a).abs() / a.max(1.0) < 0.5,
            "{name} at 128 kB: measured {m:.1} vs analytic {a:.1}"
        );
        let deep = 2.0 * 1024.0 * 1024.0;
        let m = measured.at(deep);
        let a = analytic.at(deep);
        assert!(
            m >= 0.5 * a - 0.5 && m <= 2.5 * a + 1.0,
            "{name} at 2 MB: measured {m:.1} vs analytic {a:.1}"
        );
    }
}

#[test]
fn futility_scaling_enforces_market_style_allocations_on_app_traces() {
    // Two apps with very different demands share a cache; Futility Scaling
    // must hold a 3:1 split at line granularity.
    let cfg = CacheConfig {
        size_bytes: 512 << 10,
        ways: 16,
        line_bytes: 32,
    };
    let lines = cfg.lines() as f64;
    let mut cache = FutilityPartitionedCache::new(cfg, 2).expect("valid");
    cache.set_target_lines(0, 0.75 * lines).expect("valid");
    cache.set_target_lines(1, 0.25 * lines).expect("valid");

    let mcf = app_by_name("mcf").expect("exists");
    let swim = app_by_name("swim").expect("exists");
    let mut t0 = TraceGenerator::from_profile(mcf, 1, 0, 32);
    let mut t1 = TraceGenerator::from_profile(swim, 2, 1 << 44, 32);
    for _ in 0..300_000 {
        cache.access(0, t0.next_address());
        cache.access(1, t1.next_address());
    }
    let o0 = cache.occupancy(0) as f64 / lines;
    let o1 = cache.occupancy(1) as f64 / lines;
    assert!(
        (o0 - 0.75).abs() < 0.12,
        "mcf partition at {o0:.2}, want 0.75"
    );
    assert!(
        (o1 - 0.25).abs() < 0.12,
        "swim partition at {o1:.2}, want 0.25"
    );
}

#[test]
fn all_apps_produce_valid_monitored_curves() {
    let sys = SystemConfig::paper_8core();
    for (k, app) in all_apps().iter().enumerate() {
        let mut monitor = CoreMonitor::new(app, &sys, k, 5);
        monitor.observe_quantum(40_000);
        let curve = monitor
            .mpki_curve()
            .unwrap_or_else(|| panic!("{}: no curve", app.name));
        assert_eq!(curve.capacities().len(), 16, "{}", app.name);
        assert!(
            curve.misses().iter().all(|m| m.is_finite() && *m >= 0.0),
            "{}",
            app.name
        );
        // Monotone non-increasing by construction.
        assert!(
            curve.misses().windows(2).all(|w| w[1] <= w[0] + 1e-9),
            "{}",
            app.name
        );
    }
}

#[test]
fn traces_from_different_cores_do_not_alias() {
    let mcf = app_by_name("mcf").expect("exists");
    let mut a = TraceGenerator::from_profile(mcf, 1, 0, 32);
    let mut b = TraceGenerator::from_profile(mcf, 1, 1 << 44, 32);
    let xs = a.take_addresses(10_000);
    let ys = b.take_addresses(10_000);
    let max_a = xs.iter().max().expect("non-empty");
    let min_b = ys.iter().min().expect("non-empty");
    assert!(
        max_a < min_b,
        "address ranges overlap: {max_a:#x} vs {min_b:#x}"
    );
}
