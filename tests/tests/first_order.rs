//! Cross-validation of the first-order equilibrium solvers against each
//! other and against the dense engines.
//!
//! The sparse proportional-response and mirror-descent solvers, and the
//! dense first-order reference behind `SolverKind::ProportionalResponse`
//! on `Market`, all compute the **price-taking** (Fisher) equilibrium —
//! their prices and equilibrium utilities must agree to well within any
//! honest tolerance on random markets. The dense Jacobi engine computes
//! the **price-anticipating** Nash equilibrium, which only converges to
//! the Fisher point as the market grows — checked qualitatively here.
//!
//! Also pins the workspace-wide residual contract: every solver's
//! `SolveReport::residual` is the same function
//! (`residual::relative_price_gap`) of its own last two price iterates.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rebudget_market::equilibrium::EquilibriumOptions;
use rebudget_market::residual::relative_price_gap;
use rebudget_market::utility::LinearUtility;
use rebudget_market::{
    Market, Player, ResourceSpace, SolverKind, SparseBids, SparseMarket, SparseOutcome,
    SparseUtilityKind,
};

/// Markets for the cross-validation sweep (the issue's acceptance bar).
const CASES: u64 = 200;

/// Agreement tolerance between solvers on prices and utilities.
const AGREE: f64 = 1e-6;

/// Options tight enough that the per-iteration residual leaves real
/// margin under [`AGREE`]: the successive-iterate gap underestimates the
/// distance to the limit by the geometric factor `ρ/(1−ρ)`, so solve a
/// few orders deeper than the comparison.
fn tight(solver: SolverKind) -> EquilibriumOptions {
    let mut opts = EquilibriumOptions::large_scale().with_solver(solver);
    opts.max_iterations = 200_000;
    opts.price_tolerance = 1e-10;
    opts
}

/// A random sparse linear market: N ≤ 32 players, M ∈ 2..=6 resources,
/// random interest sets (1..=M goods each), weights in 0.1..1.
fn random_sparse_market(rng: &mut StdRng) -> SparseMarket {
    let n: usize = rng.random_range(2..=32);
    let m: usize = rng.random_range(2..=6);
    let capacities: Vec<f64> = (0..m).map(|_| rng.random_range(0.5..2.0)).collect();
    let budgets: Vec<f64> = (0..n).map(|_| rng.random_range(0.5..1.5)).collect();
    let rows: Vec<Vec<(usize, f64)>> = (0..n)
        .map(|_| {
            let degree = rng.random_range(1..=m);
            let mut goods: Vec<usize> = (0..m).collect();
            for k in 0..degree {
                let pick = rng.random_range(k..m);
                goods.swap(k, pick);
            }
            goods[..degree]
                .iter()
                .map(|&j| (j, rng.random_range(0.1..1.0)))
                .collect()
        })
        .collect();
    let interests = SparseBids::from_rows(m, rows).expect("rows valid");
    SparseMarket::new(capacities, budgets, interests, SparseUtilityKind::Linear)
        .expect("market valid")
}

fn assert_close(label: &str, case: u64, a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len());
    for (j, (x, y)) in a.iter().zip(b).enumerate() {
        let gap = (x - y).abs() / x.abs().max(y.abs()).max(1e-9);
        assert!(
            gap < AGREE,
            "case {case}: {label}[{j}] disagree: {x} vs {y} (rel {gap:e})"
        );
    }
}

/// The issue's acceptance test: 200 seeded random small markets, solved
/// by sparse proportional response, sparse mirror descent, and the dense
/// first-order reference (through `Market::equilibrium`); prices and
/// equilibrium utilities agree within 1e-6. (Raw allocations are compared
/// through utilities: under near-indifference the optimal bundle is not
/// unique, but the equilibrium utilities and prices are.)
#[test]
fn sparse_and_dense_first_order_solvers_agree_on_200_random_markets() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xF15C_A000 + case);
        let market = random_sparse_market(&mut rng);

        let pr = market
            .solve(&tight(SolverKind::ProportionalResponse))
            .expect("pr solves");
        let md = market
            .solve(&tight(SolverKind::MirrorDescent))
            .expect("md solves");
        let dense = market.to_market().expect("linear markets densify");
        let dn = dense
            .equilibrium(&tight(SolverKind::ProportionalResponse))
            .expect("dense solves");

        for (label, out) in [("pr", &pr), ("md", &md)] {
            assert!(
                out.converged(),
                "case {case}: {label} residual {}",
                out.report.residual
            );
        }
        assert!(dn.converged(), "case {case}: dense {}", dn.report.residual);

        assert_close("pr/md price", case, &pr.prices, &md.prices);
        assert_close("pr/dense price", case, &pr.prices, &dn.prices);
        assert_close("pr/md utility", case, &pr.utilities, &md.utilities);
        assert_close("pr/dense utility", case, &pr.utilities, &dn.utilities);
    }
}

/// Residual semantics are identical across every solver: the reported
/// residual is `relative_price_gap` of the solver's own last two price
/// iterates — for dense Jacobi, dense first-order, and sparse
/// first-order alike. A solver that switched to a different error measure
/// (absolute gap, ∞-norm of excess demand, …) would break this.
#[test]
fn all_solvers_report_the_same_residual_semantics() {
    let resources = ResourceSpace::new(vec![1.0, 1.0]).expect("caps");
    let dense = Market::new(
        resources,
        vec![
            Player::new(
                "a",
                1.0,
                Arc::new(LinearUtility::new(vec![3.0, 1.0]).expect("weights")),
            ),
            Player::new(
                "b",
                1.0,
                Arc::new(LinearUtility::new(vec![1.0, 2.0]).expect("weights")),
            ),
        ],
    )
    .expect("market");

    let check = |label: &str, residual: f64, history: &[Vec<f64>], tolerance: f64| {
        assert!(
            residual <= tolerance,
            "{label}: residual {residual} over tolerance"
        );
        assert!(history.len() >= 2, "{label}: history too short");
        let recomputed =
            relative_price_gap(&history[history.len() - 2], &history[history.len() - 1]);
        // Unit prices divide the per-good money by the capacity; the
        // per-coordinate *relative* gap is identical up to rounding.
        let gap = (residual - recomputed).abs() / residual.abs().max(recomputed.abs()).max(1e-300);
        assert!(
            gap < 1e-9,
            "{label}: reported {residual:e} vs recomputed {recomputed:e}"
        );
    };

    for solver in [
        SolverKind::Jacobi,
        SolverKind::ProportionalResponse,
        SolverKind::MirrorDescent,
    ] {
        let mut opts = EquilibriumOptions::default().with_solver(solver);
        if solver != SolverKind::Jacobi {
            opts = tight(solver);
        }
        opts.record_history = true;
        let out = dense.equilibrium(&opts).expect("solves");
        assert!(out.converged(), "{}", solver.label());
        check(
            solver.label(),
            out.report.residual,
            &out.price_history,
            opts.price_tolerance,
        );
    }

    // Sparse solvers report through the same contract.
    let interests =
        SparseBids::from_rows(2, vec![vec![(0, 3.0), (1, 1.0)], vec![(0, 1.0), (1, 2.0)]])
            .expect("rows");
    let sparse = SparseMarket::new(
        vec![1.0, 1.0],
        vec![1.0, 1.0],
        interests,
        SparseUtilityKind::Linear,
    )
    .expect("market");
    for solver in [SolverKind::ProportionalResponse, SolverKind::MirrorDescent] {
        let mut opts = tight(solver);
        opts.record_history = true;
        let out: SparseOutcome = sparse.solve(&opts).expect("solves");
        assert!(out.converged(), "sparse {}", solver.label());
        check(
            solver.label(),
            out.report.residual,
            &out.price_history,
            opts.price_tolerance,
        );
    }
}

/// Price-anticipating (Jacobi) and price-taking (first-order) equilibria
/// coincide only in the large-market limit: replicating every player
/// shrinks each one's price impact, so the gap between the two engines'
/// prices must shrink as the economy is replicated.
#[test]
fn jacobi_approaches_the_fisher_equilibrium_as_the_market_grows() {
    let price_gap_at = |copies: usize| -> f64 {
        let caps = vec![copies as f64, copies as f64];
        let mut players = Vec::new();
        for c in 0..copies {
            players.push(Player::new(
                format!("a{c}"),
                1.0,
                Arc::new(LinearUtility::new(vec![3.0, 1.0]).expect("weights"))
                    as Arc<dyn rebudget_market::Utility>,
            ));
            players.push(Player::new(
                format!("b{c}"),
                1.0,
                Arc::new(LinearUtility::new(vec![1.0, 2.0]).expect("weights")),
            ));
        }
        let market = Market::new(ResourceSpace::new(caps).expect("caps"), players).expect("market");
        let jac = market
            .equilibrium(&EquilibriumOptions::default())
            .expect("jacobi solves");
        let fisher = market
            .equilibrium(&tight(SolverKind::ProportionalResponse))
            .expect("fisher solves");
        relative_price_gap(&jac.prices, &fisher.prices)
    };

    let small = price_gap_at(1);
    let large = price_gap_at(8);
    assert!(
        large < small,
        "gap must shrink with replication: {small} (×1) vs {large} (×8)"
    );
}
