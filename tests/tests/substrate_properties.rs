//! Property-based tests over the hardware substrates: invariants that
//! must hold for arbitrary (valid) inputs.

use proptest::prelude::*;
use rebudget_cache::talus::Talus;
use rebudget_cache::ucp::ucp_lookahead;
use rebudget_cache::MissCurve;
use rebudget_power::CorePowerModel;

/// Strategy: a monotone non-increasing miss curve over increasing
/// capacities.
fn miss_curve_strategy() -> impl Strategy<Value = MissCurve> {
    proptest::collection::vec(0.0f64..100.0, 2..12).prop_map(|drops| {
        let mut misses = 1000.0;
        let points: Vec<(f64, f64)> = drops
            .iter()
            .enumerate()
            .map(|(k, &d)| {
                let p = ((k + 1) as f64 * 128.0 * 1024.0, misses);
                misses = (misses - d).max(0.0);
                p
            })
            .collect();
        MissCurve::new(points).expect("constructed monotone")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn talus_plans_always_sum_to_target(curve in miss_curve_strategy(), frac in 0.0f64..1.2) {
        let talus = Talus::new(curve.clone());
        let lo = curve.capacities()[0];
        let hi = *curve.capacities().last().expect("non-empty");
        let target = lo + frac * (hi - lo);
        let plan = talus.plan(target);
        prop_assert!((plan.total_bytes() - target).abs() < 1e-6);
        prop_assert!((0.0..=1.0).contains(&plan.hi_fraction));
        // Hull dominance: expected misses never exceed the raw curve.
        prop_assert!(plan.expected_misses <= curve.at(target) + 1e-9);
    }

    #[test]
    fn talus_hull_is_monotone_and_convex(curve in miss_curve_strategy()) {
        let talus = Talus::new(curve);
        let hull = talus.hull();
        prop_assert!(hull.is_convex(1e-9));
        prop_assert!(hull.misses().windows(2).all(|w| w[1] <= w[0] + 1e-9));
    }

    #[test]
    fn ucp_allocations_are_exhaustive_and_minimum_respecting(
        seeds in proptest::collection::vec(0.5f64..0.99, 2..5),
        total_ways in 4usize..24,
    ) {
        // Geometric decay curves per app.
        let curves: Vec<Vec<f64>> = seeds
            .iter()
            .map(|&f| (0..=total_ways).map(|w| 1000.0 * f.powi(w as i32)).collect())
            .collect();
        let n = curves.len();
        prop_assume!(n <= total_ways);
        let alloc = ucp_lookahead(&curves, total_ways, 1).expect("valid input");
        prop_assert_eq!(alloc.iter().sum::<usize>(), total_ways);
        prop_assert!(alloc.iter().all(|&w| w >= 1));
    }

    #[test]
    fn power_inversion_round_trips_for_any_activity(
        activity in 0.05f64..1.0,
        f_target in 0.8f64..4.0,
        temp in 310.0f64..360.0,
    ) {
        let m = CorePowerModel::paper(activity);
        let w = m.total_power(f_target, temp);
        let f = m.frequency_for_power(w, temp).expect("above floor");
        prop_assert!((f - f_target).abs() < 1e-5, "{f} vs {f_target}");
    }

    #[test]
    fn power_is_monotone_in_frequency(activity in 0.05f64..1.0, temp in 310.0f64..360.0) {
        let m = CorePowerModel::paper(activity);
        let mut prev = 0.0;
        for k in 0..=32 {
            let f = 0.8 + (4.0 - 0.8) * k as f64 / 32.0;
            let p = m.total_power(f, temp);
            prop_assert!(p >= prev);
            prev = p;
        }
    }
}
