//! Randomized property tests over the hardware substrates: invariants
//! that must hold for arbitrary (valid) inputs.
//!
//! Each test draws a fixed number of cases from a seeded generator (the
//! workspace builds offline, so the vendored `rand` replaces proptest's
//! shrinking machinery; failures print the case seed for replay).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rebudget_cache::talus::Talus;
use rebudget_cache::ucp::ucp_lookahead;
use rebudget_cache::MissCurve;
use rebudget_power::CorePowerModel;

const CASES: u64 = 48;

/// A random monotone non-increasing miss curve over increasing capacities.
fn random_miss_curve(rng: &mut StdRng) -> MissCurve {
    let len: usize = rng.random_range(2..12);
    let mut misses = 1000.0;
    let points: Vec<(f64, f64)> = (0..len)
        .map(|k| {
            let p = ((k + 1) as f64 * 128.0 * 1024.0, misses);
            misses = (misses - rng.random_range(0.0..100.0)).max(0.0);
            p
        })
        .collect();
    MissCurve::new(points).expect("constructed monotone")
}

#[test]
fn talus_plans_always_sum_to_target() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x7A105 + case);
        let curve = random_miss_curve(&mut rng);
        let frac: f64 = rng.random_range(0.0..1.2);
        let talus = Talus::new(curve.clone());
        let lo = curve.capacities()[0];
        let hi = *curve.capacities().last().expect("non-empty");
        let target = lo + frac * (hi - lo);
        let plan = talus.plan(target);
        assert!((plan.total_bytes() - target).abs() < 1e-6, "case {case}");
        assert!((0.0..=1.0).contains(&plan.hi_fraction), "case {case}");
        // Hull dominance: expected misses never exceed the raw curve.
        assert!(
            plan.expected_misses <= curve.at(target) + 1e-9,
            "case {case}"
        );
    }
}

#[test]
fn talus_hull_is_monotone_and_convex() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x4011 + case);
        let talus = Talus::new(random_miss_curve(&mut rng));
        let hull = talus.hull();
        assert!(hull.is_convex(1e-9), "case {case}");
        assert!(
            hull.misses().windows(2).all(|w| w[1] <= w[0] + 1e-9),
            "case {case}"
        );
    }
}

#[test]
fn ucp_allocations_are_exhaustive_and_minimum_respecting() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x0C9 + case);
        let n: usize = rng.random_range(2..5);
        let total_ways: usize = rng.random_range(4..24);
        if n > total_ways {
            continue;
        }
        // Geometric decay curves per app.
        let curves: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                let f: f64 = rng.random_range(0.5..0.99);
                (0..=total_ways)
                    .map(|w| 1000.0 * f.powi(w as i32))
                    .collect()
            })
            .collect();
        let alloc = ucp_lookahead(&curves, total_ways, 1).expect("valid input");
        assert_eq!(alloc.iter().sum::<usize>(), total_ways, "case {case}");
        assert!(alloc.iter().all(|&w| w >= 1), "case {case}");
    }
}

#[test]
fn power_inversion_round_trips_for_any_activity() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x90E7 + case);
        let activity: f64 = rng.random_range(0.05..1.0);
        let f_target: f64 = rng.random_range(0.8..4.0);
        let temp: f64 = rng.random_range(310.0..360.0);
        let m = CorePowerModel::paper(activity);
        let w = m.total_power(f_target, temp);
        let f = m.frequency_for_power(w, temp).expect("above floor");
        assert!(
            (f - f_target).abs() < 1e-5,
            "case {case}: {f} vs {f_target}"
        );
    }
}

#[test]
fn power_is_monotone_in_frequency() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x11070 + case);
        let activity: f64 = rng.random_range(0.05..1.0);
        let temp: f64 = rng.random_range(310.0..360.0);
        let m = CorePowerModel::paper(activity);
        let mut prev = 0.0;
        for k in 0..=32 {
            let f = 0.8 + (4.0 - 0.8) * k as f64 / 32.0;
            let p = m.total_power(f, temp);
            assert!(p >= prev, "case {case}");
            prev = p;
        }
    }
}
