//! Property tests for the fault-injection harness and solver guardrails:
//! under *any* seeded fault plan, the pipeline must keep producing valid
//! allocations — exhaustive, non-negative, finite — and either stay within
//! the paper's theorem bounds or visibly mark the run as degraded
//! (`SolveReport` recovery actions, `MechanismOutcome::degraded`).
//!
//! The sweep covers 120 (seed, intensity) cases; failures print the case
//! so it can be replayed exactly (every fault decision is a pure function
//! of the seed).

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rebudget_core::mechanisms::{EqualBudget, Mechanism, ReBudget};
use rebudget_core::theory::{ef_lower_bound, poa_lower_bound};
use rebudget_market::equilibrium::EquilibriumOptions;
use rebudget_market::optimal::{max_efficiency, OptimalOptions};
use rebudget_market::utility::SeparableUtility;
use rebudget_market::{metrics, FaultPlan, Market, Player, ResourceSpace, Utility};

const SEEDS: u64 = 40;
const INTENSITIES: [f64; 3] = [0.25, 0.75, 1.5];

/// The base fault plan the sweep scales: all fault classes at once.
fn base_plan(seed: u64) -> FaultPlan {
    FaultPlan::parse("noise=0.2,spike=0.05,drop=0.15,nan=0.03,liars=1")
        .expect("valid spec")
        .with_seed(seed)
}

/// A random market of 3–8 players over 2 resources.
fn random_market(rng: &mut StdRng) -> Market {
    let n: usize = rng.random_range(3..=8);
    let caps = [rng.random_range(10.0..60.0), rng.random_range(20.0..120.0)];
    let players = (0..n)
        .map(|i| {
            let w0: f64 = rng.random_range(0.05..0.95);
            let w = [w0, 1.0 - w0];
            Player::new(
                format!("p{i}"),
                100.0,
                Arc::new(SeparableUtility::proportional(&w, &caps).expect("weights valid"))
                    as Arc<dyn Utility>,
            )
        })
        .collect();
    Market::new(
        ResourceSpace::new(caps.to_vec()).expect("caps valid"),
        players,
    )
    .expect("market valid")
}

fn for_each_case(mut body: impl FnMut(u64, f64, Market, FaultPlan)) {
    for seed in 0..SEEDS {
        for &intensity in &INTENSITIES {
            let mut rng = StdRng::seed_from_u64(0xFA17 + seed);
            let market = random_market(&mut rng);
            let plan = base_plan(seed).at_intensity(intensity);
            body(seed, intensity, market, plan);
        }
    }
}

#[test]
fn allocations_stay_valid_under_every_fault_plan() {
    for_each_case(|seed, intensity, market, plan| {
        let case = format!("seed {seed} intensity {intensity}");
        let faulted = plan
            .apply(&market, seed % 5)
            .unwrap_or_else(|e| panic!("{case}: apply failed: {e}"));
        let out = faulted
            .market
            .equilibrium(&EquilibriumOptions::default())
            .unwrap_or_else(|e| panic!("{case}: solve failed: {e}"));
        let caps = market.resources().capacities();
        // The reduced allocation is valid…
        assert!(
            out.allocation.is_exhaustive(caps, 1e-6),
            "{case}: not exhaustive"
        );
        for i in 0..faulted.market.len() {
            for (j, &cap) in caps.iter().enumerate() {
                let r = out.allocation.get(i, j);
                assert!(r.is_finite(), "{case}: allocation[{i}][{j}] not finite");
                assert!(r >= -1e-12, "{case}: allocation[{i}][{j}] negative");
                assert!(r <= cap + 1e-6, "{case}: allocation[{i}][{j}] over cap");
            }
        }
        // …every reported scalar is finite (NaN readings were sanitized)…
        assert!(out.report.residual.is_finite(), "{case}: residual");
        for (i, (&u, &l)) in out.utilities.iter().zip(&out.lambdas).enumerate() {
            assert!(u.is_finite() && u >= 0.0, "{case}: utility[{i}] = {u}");
            assert!(l.is_finite() && l >= 0.0, "{case}: lambda[{i}] = {l}");
        }
        // …and the expansion back to all players preserves exhaustiveness
        // with zero rows for dropped bidders.
        let full = faulted
            .expand_allocation(&out.allocation, market.len())
            .unwrap_or_else(|e| panic!("{case}: expand failed: {e}"));
        assert!(full.is_exhaustive(caps, 1e-6), "{case}: expanded");
        for &i in &faulted.dropped {
            assert!(
                full.row(i).iter().all(|&v| v == 0.0),
                "{case}: dropped player {i} got resources"
            );
        }
    });
}

#[test]
fn outcomes_stay_well_defined_under_hostile_plans() {
    // Under the full hostile plan (spikes, liars, drops) the theorem
    // bounds are *expected* to erode — that erosion is the robustness
    // study's finding, not a bug — but every reported number must stay
    // well-defined and any solver trouble must be visible, never silent.
    for_each_case(|seed, intensity, market, plan| {
        let case = format!("seed {seed} intensity {intensity}");
        let faulted = plan.apply(&market, seed % 5).expect("apply");
        let out = EqualBudget::new(100.0)
            .allocate(&faulted.market)
            .unwrap_or_else(|e| panic!("{case}: mechanism failed: {e}"));
        assert!(out.efficiency.is_finite(), "{case}: efficiency");
        // EF may be +∞ (nothing to envy) but never NaN.
        assert!(!out.envy_freeness.is_nan(), "{case}: envy-freeness NaN");
        assert_eq!(out.degraded, !out.converged, "{case}: degraded flag");
    });
}

#[test]
fn theorem2_holds_or_degradation_is_visible_under_noise() {
    // Equal budgets → MBR = 1 → Theorem 2 floor ≈ 0.828. Zero-mean noise
    // both perturbs the equilibrium and distorts the EF *measurement* by
    // ~(1±σ)/(1∓σ) per pairwise ratio, so the contract is: either the
    // solve stayed clean and EF holds within noise-calibrated slack, or
    // the degradation is visible (recovery actions / degraded flag).
    let mut clean_cases = 0usize;
    for seed in 0..SEEDS {
        for &intensity in &INTENSITIES {
            let case = format!("seed {seed} intensity {intensity}");
            let mut rng = StdRng::seed_from_u64(0xFA17 + seed);
            let market = random_market(&mut rng);
            let sigma = 0.2 * intensity;
            let plan = FaultPlan::parse(&format!("noise={sigma}"))
                .expect("spec")
                .with_seed(seed);
            let faulted = plan.apply(&market, seed % 5).expect("apply");
            let out = EqualBudget::new(100.0)
                .allocate(&faulted.market)
                .unwrap_or_else(|e| panic!("{case}: mechanism failed: {e}"));
            if out.degraded || out.solver_recoveries > 0 {
                continue; // degradation visible; bound not claimed
            }
            clean_cases += 1;
            let mbr = out.mbr.unwrap_or(1.0);
            let slack = 0.05 + 3.0 * sigma;
            assert!(
                out.envy_freeness >= ef_lower_bound(mbr) - slack,
                "{case}: clean solve but EF {:.3} below Theorem-2 floor {:.3} - {slack:.2}",
                out.envy_freeness,
                ef_lower_bound(mbr)
            );
        }
    }
    // The guardrails must not fire on *every* case — mild noise should
    // often pass through cleanly (otherwise the bound above is vacuous).
    assert!(clean_cases > 0, "no clean case in the whole sweep");
}

#[test]
fn theorem1_efficiency_floor_or_visible_degradation() {
    // Smaller sample: each case needs the MaxEfficiency oracle.
    for seed in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(0x0971_0E44 + seed);
        let market = random_market(&mut rng);
        let plan = base_plan(seed).at_intensity(0.5);
        let faulted = plan.apply(&market, 1).expect("apply");
        let eq = faulted
            .market
            .equilibrium(&EquilibriumOptions::precise())
            .expect("solve");
        if !eq.report.is_clean() {
            continue; // degradation visible; bound not claimed
        }
        let opt = max_efficiency(&faulted.market, &OptimalOptions::default()).expect("oracle");
        let mur = metrics::mur(&eq.lambdas);
        let ratio = eq.efficiency() / opt.efficiency.max(1e-12);
        assert!(
            ratio >= poa_lower_bound(mur) - 0.15,
            "seed {seed}: clean solve but eff ratio {ratio:.3} below Theorem-1 floor {:.3}",
            poa_lower_bound(mur)
        );
    }
}

#[test]
fn nan_saturated_markets_are_sanitized_not_propagated() {
    // Half of all utility evaluations return NaN: the solver must still
    // hand back finite, exhaustive state and say what it repaired.
    for seed in 0..20u64 {
        let mut rng = StdRng::seed_from_u64(0x4A4 + seed);
        let market = random_market(&mut rng);
        let plan = FaultPlan::parse("nan=0.5").expect("spec").with_seed(seed);
        let faulted = plan.apply(&market, 0).expect("apply");
        let out = faulted
            .market
            .equilibrium(&EquilibriumOptions::default())
            .expect("solve survives NaN readings");
        assert!(
            out.allocation
                .is_exhaustive(market.resources().capacities(), 1e-6),
            "seed {seed}"
        );
        for (&u, &l) in out.utilities.iter().zip(&out.lambdas) {
            assert!(u.is_finite() && l.is_finite(), "seed {seed}");
        }
    }
}

#[test]
fn rebudget_under_faults_keeps_finite_budgets_and_counts_rollbacks() {
    for seed in 0..20u64 {
        let mut rng = StdRng::seed_from_u64(0x4EB0 + seed);
        let market = random_market(&mut rng);
        let plan = base_plan(seed).at_intensity(1.0);
        let faulted = plan.apply(&market, 2).expect("apply");
        let out = ReBudget::with_step(100.0, 40.0)
            .allocate(&faulted.market)
            .expect("mechanism survives");
        assert!(out.efficiency.is_finite(), "seed {seed}");
        for &b in &out.budgets {
            assert!(b.is_finite() && b > 0.0, "seed {seed}: budget {b}");
        }
        // Rollbacks, if any, are counted — never silent.
        assert!(
            out.rolled_back_rounds <= out.equilibrium_rounds,
            "seed {seed}"
        );
    }
}

#[test]
fn identical_seeds_reproduce_identical_faulted_runs() {
    for seed in [3u64, 17, 99] {
        let mut rng_a = StdRng::seed_from_u64(0xD0_0D + seed);
        let mut rng_b = StdRng::seed_from_u64(0xD0_0D + seed);
        let (ma, mb) = (random_market(&mut rng_a), random_market(&mut rng_b));
        let plan = base_plan(seed).at_intensity(1.0);
        let (fa, fb) = (
            plan.apply(&ma, 7).expect("a"),
            plan.apply(&mb, 7).expect("b"),
        );
        assert_eq!(fa.kept, fb.kept);
        assert_eq!(fa.liars, fb.liars);
        let oa = fa
            .market
            .equilibrium(&EquilibriumOptions::default())
            .expect("a");
        let ob = fb
            .market
            .equilibrium(&EquilibriumOptions::default())
            .expect("b");
        assert_eq!(oa.report, ob.report, "seed {seed}");
        for (a, b) in oa.prices.iter().zip(&ob.prices) {
            assert_eq!(a.to_bits(), b.to_bits(), "seed {seed}");
        }
        for i in 0..fa.market.len() {
            for (a, b) in oa.allocation.row(i).iter().zip(ob.allocation.row(i)) {
                assert_eq!(a.to_bits(), b.to_bits(), "seed {seed} row {i}");
            }
        }
    }
}

#[test]
fn zero_intensity_plan_is_bit_identical_to_clean_run() {
    let mut rng = StdRng::seed_from_u64(0x1DE7);
    let market = random_market(&mut rng);
    let plan = base_plan(5).at_intensity(0.0);
    assert!(!plan.is_active());
    let faulted = plan.apply(&market, 0).expect("apply");
    let clean = market
        .equilibrium(&EquilibriumOptions::default())
        .expect("clean");
    let noop = faulted
        .market
        .equilibrium(&EquilibriumOptions::default())
        .expect("noop");
    assert_eq!(clean.report, noop.report);
    for (a, b) in clean.prices.iter().zip(&noop.prices) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
