//! Property tests for the telemetry substrate.
//!
//! The metrics registry backs both the `--metrics` CLI section and the
//! tracing-overhead bench, so its algebra has to be boringly solid:
//! histogram merge must be a commutative monoid (sweep shards merge in
//! nondeterministic order), counters must be exact under threaded
//! increments (the parallel Jacobi fan-out), and span guards must
//! survive any drop order (guards get moved into structs that outlive
//! their scope). Inputs are driven by the vendored deterministic
//! `rand`, so every failure reproduces.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rebudget_telemetry::metrics::{Histogram, MetricsRegistry};
use rebudget_telemetry::HistogramSnapshot;

fn random_snapshot(rng: &mut StdRng, samples: usize) -> HistogramSnapshot {
    let h = Histogram::default();
    for _ in 0..samples {
        // Spread mass across the full log₂ range, including zero.
        let magnitude = rng.random_range(0..64);
        let v: u64 = rng.random_range(0..u64::MAX) >> magnitude;
        h.record(v);
    }
    h.snapshot()
}

#[test]
fn histogram_merge_is_commutative() {
    let mut rng = StdRng::seed_from_u64(101);
    for _ in 0..50 {
        let a = random_snapshot(&mut rng, 40);
        let b = random_snapshot(&mut rng, 40);
        assert_eq!(
            a.merge(&b),
            b.merge(&a),
            "merge must not care about operand order"
        );
    }
}

#[test]
fn histogram_merge_is_associative() {
    let mut rng = StdRng::seed_from_u64(202);
    for _ in 0..50 {
        let a = random_snapshot(&mut rng, 30);
        let b = random_snapshot(&mut rng, 30);
        let c = random_snapshot(&mut rng, 30);
        let left = a.merge(&b).merge(&c);
        let right = a.merge(&b.merge(&c));
        assert_eq!(left, right, "(a+b)+c must equal a+(b+c)");
    }
}

#[test]
fn histogram_merge_identity_is_the_empty_snapshot() {
    let mut rng = StdRng::seed_from_u64(303);
    let a = random_snapshot(&mut rng, 60);
    assert_eq!(
        a.merge(&HistogramSnapshot::default()),
        a,
        "empty snapshot is the neutral element"
    );
}

#[test]
fn merged_shards_equal_one_big_histogram() {
    // Recording N samples across independent shards and merging must give
    // the same snapshot as recording them all into one histogram — the
    // exact situation of per-thread histograms folded for `--metrics`.
    let mut rng = StdRng::seed_from_u64(404);
    let samples: Vec<u64> = (0..500)
        .map(|_| rng.random_range(0..u64::MAX) >> rng.random_range(0..64))
        .collect();
    let whole = Histogram::default();
    for &v in &samples {
        whole.record(v);
    }
    let mut folded = HistogramSnapshot::default();
    for chunk in samples.chunks(37) {
        let shard = Histogram::default();
        for &v in chunk {
            shard.record(v);
        }
        folded = folded.merge(&shard.snapshot());
    }
    assert_eq!(folded, whole.snapshot());
}

#[test]
#[allow(clippy::expect_used)]
fn counters_are_exact_under_threaded_increments() {
    // N threads × M increments on shared counters must lose nothing —
    // the registry's whole reason to use atomics instead of a mutex.
    let registry = std::sync::Arc::new(MetricsRegistry::new());
    const THREADS: usize = 16;
    const PER_THREAD: u64 = 5_000;
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let registry = std::sync::Arc::clone(&registry);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    registry.counter("shared").incr();
                    registry
                        .counter(if t % 2 == 0 { "even" } else { "odd" })
                        .add(1);
                    registry.histogram("values").record(i);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker thread");
    }
    assert_eq!(
        registry.counter("shared").get(),
        THREADS as u64 * PER_THREAD
    );
    assert_eq!(
        registry.counter("even").get() + registry.counter("odd").get(),
        THREADS as u64 * PER_THREAD
    );
    let snap = registry.histogram("values").snapshot();
    assert_eq!(snap.count, THREADS as u64 * PER_THREAD);
}

#[test]
#[allow(clippy::expect_used)]
fn span_guards_survive_randomized_drop_orders() {
    // Open a random nesting of spans, then drop them in a shuffled order.
    // No permutation may panic, and the thread's span stack must fully
    // drain so the next root span gets a bare path.
    let mut rng = StdRng::seed_from_u64(505);
    rebudget_telemetry::set_enabled(true);
    for round in 0..30 {
        let mut guards = Vec::new();
        for k in 0..rng.random_range(2..8usize) {
            guards.push(rebudget_telemetry::span::span(&format!("s{k}")));
        }
        while !guards.is_empty() {
            let pick = rng.random_range(0..guards.len());
            drop(guards.swap_remove(pick));
        }
        let fresh = rebudget_telemetry::span::span("root");
        assert_eq!(fresh.path(), Some("root"), "round {round}: stack drained");
    }
    rebudget_telemetry::set_enabled(false);
}

#[test]
#[allow(clippy::expect_used)]
fn journal_seq_is_dense_under_concurrent_recording() {
    // Events recorded from many threads still get a gap-free, strictly
    // increasing seq in buffer order — the invariant validate_stream
    // enforces on flushed traces.
    let journal = rebudget_telemetry::Journal::new();
    std::thread::scope(|scope| {
        for t in 0..8 {
            let journal = &journal;
            scope.spawn(move || {
                for i in 0..200 {
                    journal.record(
                        rebudget_telemetry::Event::new("solve_start")
                            .field_u64("players", t)
                            .field_u64("resources", i),
                    );
                }
            });
        }
    });
    let lines = journal.lines();
    assert_eq!(lines.len(), 8 * 200);
    for (i, line) in lines.iter().enumerate() {
        let seq = rebudget_telemetry::schema::validate_line(line).expect("valid event");
        assert_eq!(seq, i as u64, "seq must match buffer position");
    }
}
