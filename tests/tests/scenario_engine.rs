//! Cross-crate integration tests for the declarative scenario engine:
//! the shipped scenario library stays valid, the allocation ledger is
//! byte-deterministic across threading policies and tracing, parser
//! rejections carry line numbers, and the CLI exits with
//! `EXIT_PROPERTY` on a violated property.

use std::path::PathBuf;

use rebudget_core::mechanisms::ReBudget;
use rebudget_market::ParallelPolicy;
use rebudget_scenario::ledger::{verify, Ledger, LedgerMeta, LedgerRecord};
use rebudget_scenario::{run_scenario, Scenario, ScenarioError};
use rebudget_sim::{
    run_simulation_hooked, DramConfig, QuantumControls, QuantumHook, QuantumObservation,
    RecoveryOptions, SimOptions, SystemConfig,
};
use rebudget_workloads::paper_bbpc_8core;

fn scenarios_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../scenarios"))
}

fn shipped_scenarios() -> Vec<PathBuf> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(scenarios_dir())
        .expect("scenarios/ directory exists")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.is_file() && p.extension().is_some_and(|x| x == "toml"))
        .collect();
    paths.sort();
    paths
}

#[test]
fn the_shipped_scenario_library_is_valid_and_big_enough() {
    let paths = shipped_scenarios();
    assert!(
        paths.len() >= 15,
        "the library must ship at least 15 scenarios, found {}",
        paths.len()
    );
    let mut names = std::collections::HashSet::new();
    for path in &paths {
        let s = Scenario::load(path)
            .unwrap_or_else(|e| panic!("{} fails validation: {e}", path.display()));
        assert!(
            names.insert(s.name.clone()),
            "duplicate scenario name '{}'",
            s.name
        );
    }
}

#[test]
fn the_violating_fixture_is_still_violating() {
    let path = scenarios_dir().join("fixtures/violating_floor.toml");
    let s = Scenario::load(&path).expect("fixture parses");
    let outcome = run_scenario(&s).expect("fixture runs");
    assert!(!outcome.passed(), "the fixture must keep failing");
    assert!(outcome
        .violations()
        .iter()
        .any(|r| r.property == "min-efficiency"));
}

/// A minimal hook that appends every quantum to a ledger — used to pin
/// ledger bytes across configurations the scenario engine itself never
/// varies (threading policy, tracing).
struct LedgerHook {
    ledger: Ledger,
    active: Vec<bool>,
}

impl LedgerHook {
    fn new(quanta: usize, cores: usize) -> Self {
        LedgerHook {
            ledger: Ledger::new(&LedgerMeta {
                scenario: "determinism-probe".into(),
                seed: 7,
                mechanism: "rebudget".into(),
                workload: "bbpc".into(),
                cores,
                resources: 2,
                quanta,
                budget: 100.0,
                faults: String::new(),
            }),
            active: vec![true; cores],
        }
    }
}

impl QuantumHook for LedgerHook {
    fn control(&mut self, _quantum: usize, _controls: &mut QuantumControls) {}

    fn observe(&mut self, obs: &QuantumObservation) {
        self.ledger.append(&LedgerRecord {
            quantum: obs.quantum,
            phase: "run",
            events: &[],
            active: &self.active,
            budgets: &obs.budgets,
            allocation: &obs.allocation,
            efficiency: obs.efficiency,
            envy_freeness: obs.envy_freeness,
            degraded: obs.degraded,
            fallback: obs.fallback,
            converged: obs.converged,
        });
    }
}

fn ledger_under_policy(policy: ParallelPolicy) -> String {
    let sys = SystemConfig::paper_8core();
    let dram = DramConfig::ddr3_1600();
    let bundle = paper_bbpc_8core();
    let mut mech = ReBudget::with_step(100.0, 20.0);
    mech.options.parallel = policy;
    let opts = SimOptions {
        quanta: 4,
        seed: 7,
        ..SimOptions::default()
    };
    let mut hook = LedgerHook::new(4, 8);
    run_simulation_hooked(
        &sys,
        &dram,
        &bundle,
        &mech,
        &opts,
        &RecoveryOptions::default(),
        &mut hook,
    )
    .expect("simulation succeeds");
    hook.ledger.seal();
    hook.ledger.text().to_string()
}

#[test]
fn ledger_is_byte_identical_serial_vs_parallel() {
    let serial = ledger_under_policy(ParallelPolicy::Serial);
    let threaded = ledger_under_policy(ParallelPolicy::Threads(4));
    let auto = ledger_under_policy(ParallelPolicy::Auto);
    assert_eq!(serial, threaded, "threading must not change ledger bytes");
    assert_eq!(serial, auto);
    let summary = verify(&serial).expect("ledger verifies");
    assert_eq!(summary.records, 4);
}

#[test]
fn ledger_is_byte_identical_traced_vs_untraced() {
    let scenario = Scenario::load(&scenarios_dir().join("quiet_baseline.toml"))
        .expect("shipped scenario loads");
    let untraced = run_scenario(&scenario).expect("untraced run");
    rebudget_telemetry::reset();
    rebudget_telemetry::set_enabled(true);
    let traced = run_scenario(&scenario);
    rebudget_telemetry::set_enabled(false);
    let traced = traced.expect("traced run");
    assert_eq!(
        untraced.ledger, traced.ledger,
        "tracing must not change ledger bytes"
    );
    assert_eq!(
        untraced.result.efficiency.to_bits(),
        traced.result.efficiency.to_bits()
    );
    assert_eq!(
        untraced.result.envy_freeness.to_bits(),
        traced.result.envy_freeness.to_bits()
    );
}

fn format_line(doc: &str) -> (usize, String) {
    match Scenario::parse(doc).expect_err("document must be rejected") {
        ScenarioError::Format { line, reason } => (line, reason),
        other => panic!("expected a Format error, got {other:?}"),
    }
}

const VALID_HEAD: &str = "[scenario]
name = \"probe\"
cores = 8
workload = \"cpbn\"
mechanism = \"rebudget\"
";

#[test]
fn parser_rejects_unknown_keys_with_line_numbers() {
    let doc = format!("{VALID_HEAD}zeal = 11\n\n[[phases]]\nname = \"p\"\nquanta = 2\n");
    let (line, reason) = format_line(&doc);
    assert_eq!(line, 6);
    assert!(reason.contains("unknown key 'zeal'"), "{reason}");
}

#[test]
fn parser_rejects_malformed_triggers() {
    let doc = format!(
        "{VALID_HEAD}\n[[phases]]\nname = \"p\"\nquanta = 4\n\n\
         [[events]]\nname = \"e\"\ntrigger = {{ wat = 1 }}\neffects = [{{ reset = true }}]\n"
    );
    let (line, reason) = format_line(&doc);
    assert_eq!(line, 13, "{reason}");
    assert!(
        reason.contains("trigger") || reason.contains("unknown key"),
        "{reason}"
    );

    // Contradictory threshold bounds are rejected too.
    let doc = format!(
        "{VALID_HEAD}\n[[phases]]\nname = \"p\"\nquanta = 4\n\n\
         [[events]]\nname = \"e\"\n\
         trigger = {{ metric = \"residual\", at-least = 0.1, at-most = 0.2 }}\n\
         effects = [{{ reset = true }}]\n"
    );
    let (line, _) = format_line(&doc);
    assert_eq!(line, 13);
}

#[test]
fn parser_rejects_cyclic_and_over_long_phase_lists() {
    // A phase name that repeats would make `phase(...)` triggers loop.
    let doc = format!(
        "{VALID_HEAD}\n[[phases]]\nname = \"p\"\nquanta = 2\n\n[[phases]]\nname = \"p\"\nquanta = 2\n"
    );
    let (line, reason) = format_line(&doc);
    assert_eq!(line, 11, "{reason}");
    assert!(reason.contains("cyclic"), "{reason}");

    // More than MAX_PHASES phases is rejected as over-long.
    let mut doc = VALID_HEAD.to_string();
    for i in 0..40 {
        doc.push_str(&format!("\n[[phases]]\nname = \"p{i}\"\nquanta = 1\n"));
    }
    let (_, reason) = format_line(&doc);
    assert!(reason.contains("over-long"), "{reason}");
}

#[test]
fn parser_rejects_non_finite_numeric_literals() {
    let doc = format!("{VALID_HEAD}budget = 1e999\n\n[[phases]]\nname = \"p\"\nquanta = 2\n");
    let (line, reason) = format_line(&doc);
    assert_eq!(line, 6);
    assert!(reason.contains("non-finite"), "{reason}");

    let doc = format!("{VALID_HEAD}budget = inf\n\n[[phases]]\nname = \"p\"\nquanta = 2\n");
    let (line, reason) = format_line(&doc);
    assert_eq!(line, 6);
    assert!(
        reason.contains("non-finite") || reason.contains("unrecognised"),
        "{reason}"
    );
}

#[test]
fn cli_exits_with_the_property_code_on_the_fixture() {
    let fixture = scenarios_dir().join("fixtures/violating_floor.toml");
    let e = rebudget_cli::run(&[
        "scenario".into(),
        "run".into(),
        fixture.display().to_string(),
    ])
    .expect_err("fixture must fail");
    assert_eq!(e.code, rebudget_cli::EXIT_PROPERTY);
    assert!(e.message.contains("min-efficiency"), "{}", e.message);
}
