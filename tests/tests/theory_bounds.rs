//! Empirical validation of the paper's Theorems 1 and 2 across randomized
//! markets: at (approximate) equilibrium, measured efficiency must respect
//! the MUR-derived Price-of-Anarchy floor, and measured envy-freeness the
//! MBR-derived fairness floor.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rebudget_core::theory::{ef_lower_bound, poa_lower_bound};
use rebudget_market::equilibrium::EquilibriumOptions;
use rebudget_market::metrics;
use rebudget_market::optimal::{max_efficiency, OptimalOptions};
use rebudget_market::utility::SeparableUtility;
use rebudget_market::{Market, Player, ResourceSpace};

fn random_market(rng: &mut StdRng) -> (Market, Vec<f64>) {
    let n = rng.random_range(2..=8);
    let m = rng.random_range(2..=3);
    let caps: Vec<f64> = (0..m).map(|_| rng.random_range(5.0..100.0)).collect();
    let mut players = Vec::with_capacity(n);
    let mut budgets = Vec::with_capacity(n);
    for i in 0..n {
        let mut w: Vec<f64> = (0..m).map(|_| rng.random_range(0.05..1.0)).collect();
        let sum: f64 = w.iter().sum();
        w.iter_mut().for_each(|x| *x /= sum);
        let utility = SeparableUtility::proportional(&w, &caps).expect("valid weights");
        players.push(Player::new(
            format!("p{i}"),
            100.0,
            Arc::new(utility) as Arc<dyn rebudget_market::Utility>,
        ));
        budgets.push(rng.random_range(25.0..100.0));
    }
    let market =
        Market::new(ResourceSpace::new(caps).expect("valid caps"), players).expect("valid market");
    (market, budgets)
}

#[test]
fn theorem1_poa_floor_holds_across_random_markets() {
    let mut rng = StdRng::seed_from_u64(2016);
    for trial in 0..40 {
        let (market, budgets) = random_market(&mut rng);
        let eq = market
            .equilibrium_with_budgets(&budgets, &EquilibriumOptions::precise())
            .expect("equilibrium runs");
        let opt = max_efficiency(&market, &OptimalOptions::default()).expect("oracle runs");
        let mur = metrics::mur(&eq.lambdas);
        let floor = poa_lower_bound(mur);
        let ratio = eq.efficiency() / opt.efficiency.max(1e-12);
        // Slack: our equilibrium is approximate (discrete bid steps), so
        // the measured λs — and hence MUR — carry noise.
        assert!(
            ratio >= floor - 0.1,
            "trial {trial}: efficiency ratio {ratio:.3} below Theorem-1 floor {floor:.3} (MUR {mur:.3})"
        );
    }
}

#[test]
fn theorem2_ef_floor_holds_across_random_markets() {
    let mut rng = StdRng::seed_from_u64(424242);
    for trial in 0..40 {
        let (market, budgets) = random_market(&mut rng);
        let eq = market
            .equilibrium_with_budgets(&budgets, &EquilibriumOptions::precise())
            .expect("equilibrium runs");
        let mbr = metrics::mbr(&budgets);
        let floor = ef_lower_bound(mbr);
        let ef = metrics::envy_freeness(&market, &eq.allocation);
        assert!(
            ef >= floor - 0.05,
            "trial {trial}: envy-freeness {ef:.3} below Theorem-2 floor {floor:.3} (MBR {mbr:.3})"
        );
    }
}

#[test]
fn equal_budget_markets_meet_zhangs_bound() {
    // Lemma 3: equal budgets ⇒ ≥0.828-approximate envy-free.
    let mut rng = StdRng::seed_from_u64(828);
    for trial in 0..25 {
        let (market, _) = random_market(&mut rng);
        let budgets = vec![100.0; market.len()];
        let eq = market
            .equilibrium_with_budgets(&budgets, &EquilibriumOptions::precise())
            .expect("equilibrium runs");
        let ef = metrics::envy_freeness(&market, &eq.allocation);
        assert!(
            ef >= 0.828 - 0.05,
            "trial {trial}: equal-budget EF {ef:.3} below Zhang's bound"
        );
    }
}

#[test]
fn lemma2_style_degradation_and_rebudget_rescue() {
    // Lemma 2 (Zhang): equal-budget markets can lose efficiency as N
    // grows. Construct the classic shape — one player with steep utility
    // for the single contended resource, N−1 nearly indifferent players —
    // and watch the equal-budget PoA fall with N; then verify the
    // ReBudget knob recovers most of it by defunding the indifferent
    // players (whose λ is tiny).
    use rebudget_core::mechanisms::{EqualBudget, MaxEfficiency, Mechanism, ReBudget};

    let build = |n: usize| -> Market {
        let caps = [32.0, 32.0];
        let mut players = vec![Player::new(
            "hungry",
            100.0,
            Arc::new(SeparableUtility::proportional(&[0.98, 0.02], &caps).expect("valid"))
                as Arc<dyn rebudget_market::Utility>,
        )];
        for i in 1..n {
            players.push(Player::new(
                format!("flat{i}"),
                100.0,
                Arc::new(SeparableUtility::proportional(&[0.02, 0.02], &caps).expect("valid"))
                    as Arc<dyn rebudget_market::Utility>,
            ));
        }
        Market::new(ResourceSpace::new(caps.to_vec()).expect("valid"), players)
            .expect("valid market")
    };

    let poa_of = |market: &Market| -> (f64, f64) {
        let opt = MaxEfficiency::default().allocate(market).expect("oracle");
        let eq = EqualBudget::new(100.0).allocate(market).expect("market");
        let rb = ReBudget::with_step(100.0, 45.0)
            .allocate(market)
            .expect("rebudget");
        (
            eq.efficiency / opt.efficiency,
            rb.efficiency / opt.efficiency,
        )
    };

    let (eq_small, _) = poa_of(&build(2));
    let (eq_large, rb_large) = poa_of(&build(16));
    assert!(
        eq_large < eq_small - 0.05,
        "equal-budget efficiency should degrade with N: {eq_small:.3} -> {eq_large:.3}"
    );
    assert!(
        rb_large > eq_large + 0.05,
        "ReBudget should recover efficiency: equal {eq_large:.3} vs rebudget {rb_large:.3}"
    );
}

#[test]
fn raising_mur_via_budget_cuts_never_breaks_floors() {
    // Mimic one ReBudget step by hand: cut the lowest-λ player's budget,
    // re-solve, and check both floors again at the new MBR/MUR.
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..15 {
        let (market, _) = random_market(&mut rng);
        let mut budgets = vec![100.0; market.len()];
        let opts = EquilibriumOptions::precise();
        let eq = market
            .equilibrium_with_budgets(&budgets, &opts)
            .expect("equilibrium runs");
        let min_idx = eq
            .lambdas
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("non-empty");
        budgets[min_idx] -= 40.0;
        let eq2 = market
            .equilibrium_with_budgets(&budgets, &opts)
            .expect("equilibrium runs");
        let mbr = metrics::mbr(&budgets);
        let ef = metrics::envy_freeness(&market, &eq2.allocation);
        assert!(
            ef >= ef_lower_bound(mbr) - 0.05,
            "EF {ef:.3} vs floor at MBR {mbr:.3}"
        );
    }
}
