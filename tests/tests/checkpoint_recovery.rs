//! Crash-recovery properties of the durable checkpoint layer: a faulted
//! 24-app simulation that is killed at **any** quantum boundary and
//! resumed from its latest snapshot must produce bit-identical results to
//! an uninterrupted run; corrupt snapshots must be rejected with typed
//! errors (never a panic) and the rotated `.prev` generation must take
//! over; and all of it must hold under both feature configurations (the
//! suite runs with and without the `parallel` feature in CI).

use std::path::PathBuf;

use rebudget_core::mechanisms::ReBudget;
use rebudget_market::FaultPlan;
use rebudget_sim::checkpoint::CheckpointError;
use rebudget_sim::simulation::{
    run_simulation, run_simulation_recoverable, RecoveryOptions, SimError, SimOptions, SimResult,
};
use rebudget_sim::{DramConfig, SystemConfig};
use rebudget_workloads::{generate_bundle, Bundle, Category};

const QUANTA: usize = 5;

fn system() -> (SystemConfig, DramConfig) {
    (SystemConfig::scaled(24), DramConfig::ddr3_1600())
}

fn bundle_24() -> Bundle {
    generate_bundle(Category::Cpbn, 24, 0, 7).expect("24-core bundle")
}

fn opts() -> SimOptions {
    SimOptions {
        quanta: QUANTA,
        accesses_per_quantum: 4_000,
        budget: 100.0,
        use_monitors: true,
        seed: 23,
        faults: Some(
            FaultPlan::parse("noise=0.15,drop=0.1,stale=0.2,liars=2,seed=23").expect("valid spec"),
        ),
        ..SimOptions::default()
    }
}

fn mechanism() -> ReBudget {
    ReBudget::with_step(100.0, 40.0)
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rebudget-recovery-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn assert_bit_identical(a: &SimResult, b: &SimResult, what: &str) {
    assert_eq!(
        a.efficiency.to_bits(),
        b.efficiency.to_bits(),
        "{what}: efficiency"
    );
    assert_eq!(
        a.envy_freeness.to_bits(),
        b.envy_freeness.to_bits(),
        "{what}: envy-freeness"
    );
    assert_eq!(
        a.efficiency_history.len(),
        b.efficiency_history.len(),
        "{what}: history"
    );
    for (q, (x, y)) in a
        .efficiency_history
        .iter()
        .zip(&b.efficiency_history)
        .enumerate()
    {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: history[{q}]");
    }
    for (i, (x, y)) in a.utilities.iter().zip(&b.utilities).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: utility[{i}]");
    }
    assert_eq!(a.fallback_quanta, b.fallback_quanta, "{what}: fallbacks");
    assert_eq!(a.degraded_quanta, b.degraded_quanta, "{what}: degraded");
    assert_eq!(
        a.solver_recoveries, b.solver_recoveries,
        "{what}: recoveries"
    );
    assert_eq!(a.always_converged, b.always_converged, "{what}: converged");
}

/// Kill-at-every-quantum: for each cut point `q`, emulate a crash right
/// after quantum `q`'s snapshot by running a truncated copy of the run
/// with checkpointing on, then resume the full run from that snapshot.
/// Every resumed run must be bit-identical to the uninterrupted
/// reference — this also proves the snapshot format round-trips the
/// fault plan, counters, and allocations exactly.
#[test]
fn kill_at_every_quantum_resume_is_bit_identical() {
    let (sys, dram) = system();
    let bundle = bundle_24();
    let opts = opts();
    let mech = mechanism();
    let dir = tmp_dir("every-quantum");

    let reference = run_simulation(&sys, &dram, &bundle, &mech, &opts).expect("reference run");
    assert!(
        reference.fallback_quanta + reference.degraded_quanta > 0
            || reference.solver_recoveries > 0
            || !reference.always_converged
            || reference.efficiency > 0.0,
        "reference run completed"
    );

    for cut in 1..QUANTA {
        let path = dir.join(format!("cut-{cut}.ckpt"));
        let mut partial = opts.clone();
        partial.quanta = cut;
        run_simulation_recoverable(
            &sys,
            &dram,
            &bundle,
            &mech,
            &partial,
            &RecoveryOptions {
                checkpoint: Some(path.clone()),
                checkpoint_every: 1,
                resume: None,
            },
        )
        .expect("partial run");

        let resumed = run_simulation_recoverable(
            &sys,
            &dram,
            &bundle,
            &mech,
            &opts,
            &RecoveryOptions {
                resume: Some(path),
                ..RecoveryOptions::default()
            },
        )
        .expect("resumed run");
        assert_eq!(resumed.replayed_quanta, cut, "cut at {cut}");
        assert!(
            !resumed.used_prev_generation,
            "cut at {cut}: live snapshot valid"
        );
        assert_bit_identical(&resumed, &reference, &format!("cut at {cut}"));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Checkpointing itself must not perturb the run: a fully checkpointed
/// run reports the same bits as a plain one.
#[test]
fn checkpointing_does_not_perturb_results() {
    let (sys, dram) = system();
    let bundle = bundle_24();
    let opts = opts();
    let mech = mechanism();
    let dir = tmp_dir("no-perturb");
    let path = dir.join("full.ckpt");

    let plain = run_simulation(&sys, &dram, &bundle, &mech, &opts).expect("plain run");
    let checkpointed = run_simulation_recoverable(
        &sys,
        &dram,
        &bundle,
        &mech,
        &opts,
        &RecoveryOptions {
            checkpoint: Some(path.clone()),
            checkpoint_every: 2,
            resume: None,
        },
    )
    .expect("checkpointed run");
    assert_bit_identical(&checkpointed, &plain, "checkpointed vs plain");

    // Resuming from the *final* snapshot replays the whole run without a
    // single market solve and still reports identical bits.
    let replayed = run_simulation_recoverable(
        &sys,
        &dram,
        &bundle,
        &mech,
        &opts,
        &RecoveryOptions {
            resume: Some(path),
            ..RecoveryOptions::default()
        },
    )
    .expect("full replay");
    assert_eq!(replayed.replayed_quanta, QUANTA);
    assert_bit_identical(&replayed, &plain, "full replay vs plain");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A corrupted live snapshot must be rejected with a typed error and the
/// rotated `.prev` generation must seamlessly take over; with both
/// generations corrupt, resume fails with a typed error — never a panic.
#[test]
fn corrupt_snapshot_falls_back_to_prev_generation() {
    let (sys, dram) = system();
    let bundle = bundle_24();
    let opts = opts();
    let mech = mechanism();
    let dir = tmp_dir("corrupt");
    let path = dir.join("sim.ckpt");
    let prev = {
        let mut name = path.as_os_str().to_os_string();
        name.push(".prev");
        PathBuf::from(name)
    };

    let reference = run_simulation(&sys, &dram, &bundle, &mech, &opts).expect("reference run");

    // Checkpoint every quantum for 3 quanta: live snapshot holds 3, the
    // rotated generation holds 2.
    let mut partial = opts.clone();
    partial.quanta = 3;
    run_simulation_recoverable(
        &sys,
        &dram,
        &bundle,
        &mech,
        &partial,
        &RecoveryOptions {
            checkpoint: Some(path.clone()),
            checkpoint_every: 1,
            resume: None,
        },
    )
    .expect("partial run");
    assert!(prev.exists(), "rotation produced a .prev generation");

    // Truncate the live snapshot mid-file (torn write).
    let text = std::fs::read_to_string(&path).expect("read snapshot");
    std::fs::write(&path, &text[..text.len() / 2]).expect("corrupt snapshot");

    let resumed = run_simulation_recoverable(
        &sys,
        &dram,
        &bundle,
        &mech,
        &opts,
        &RecoveryOptions {
            resume: Some(path.clone()),
            ..RecoveryOptions::default()
        },
    )
    .expect("resume from .prev");
    assert!(resumed.used_prev_generation, "fallback generation used");
    assert_eq!(resumed.replayed_quanta, 2, "prev generation holds 2 quanta");
    assert_bit_identical(&resumed, &reference, "resume via .prev");

    // Corrupt the fallback too: typed error, no panic, and the *live*
    // file's failure is what gets reported.
    std::fs::write(&prev, "not a checkpoint at all").expect("corrupt prev");
    let errr = run_simulation_recoverable(
        &sys,
        &dram,
        &bundle,
        &mech,
        &opts,
        &RecoveryOptions {
            resume: Some(path),
            ..RecoveryOptions::default()
        },
    )
    .expect_err("both generations corrupt");
    match errr {
        SimError::Checkpoint(CheckpointError::Format { .. } | CheckpointError::Checksum { .. }) => {
        }
        other => panic!("expected a format/checksum error, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A bit-flip (rather than truncation) anywhere in the body is caught by
/// the FNV-1a trailer.
#[test]
fn bitflip_is_caught_by_the_checksum() {
    let (sys, dram) = system();
    let bundle = bundle_24();
    let mut opts = opts();
    opts.quanta = 2;
    let dir = tmp_dir("bitflip");
    let path = dir.join("sim.ckpt");
    // checkpoint_every = quanta: exactly one snapshot is written, so no
    // .prev generation exists and the checksum error must surface.
    run_simulation_recoverable(
        &sys,
        &dram,
        &bundle,
        &mechanism(),
        &opts,
        &RecoveryOptions {
            checkpoint: Some(path.clone()),
            checkpoint_every: 2,
            resume: None,
        },
    )
    .expect("checkpointed run");

    let mut text = std::fs::read_to_string(&path).expect("read snapshot");
    let at = text.find("eff=").expect("an efficiency record") + "eff=".len();
    let original = text.as_bytes()[at];
    let flipped = if original == b'0' { '1' } else { '0' };
    text.replace_range(at..at + 1, &flipped.to_string());
    std::fs::write(&path, &text).expect("write corrupted");
    // No .prev here (first generation): the typed checksum error surfaces.
    let errr = run_simulation_recoverable(
        &sys,
        &dram,
        &bundle,
        &mechanism(),
        &opts,
        &RecoveryOptions {
            resume: Some(path),
            ..RecoveryOptions::default()
        },
    )
    .expect_err("bit-flipped snapshot");
    assert!(
        matches!(errr, SimError::Checkpoint(CheckpointError::Checksum { .. })),
        "got {errr:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Helper for corruption tests that must keep the checksum valid: strips
/// the `[checksum]` trailer, applies `edit` to the body, and re-seals
/// with a freshly computed FNV-1a — so the *structural* validation layer
/// (not the checksum) is what gets exercised.
fn reseal(text: &str, edit: impl FnOnce(&mut String)) -> String {
    let trailer_at = text.rfind("[checksum]\n").expect("trailer present");
    let mut body = text[..trailer_at].to_string();
    edit(&mut body);
    let sum = rebudget_sim::checkpoint::fnv1a(body.as_bytes());
    body.push_str(&format!("[checksum]\nfnv1a={sum:016x}\n"));
    body
}

fn checkpoint_after(quanta: usize, dir: &std::path::Path) -> PathBuf {
    let (sys, dram) = system();
    let bundle = bundle_24();
    let mut partial = opts();
    partial.quanta = quanta;
    let path = dir.join(format!("seed-{quanta}.ckpt"));
    run_simulation_recoverable(
        &sys,
        &dram,
        &bundle,
        &mechanism(),
        &partial,
        &RecoveryOptions {
            checkpoint: Some(path.clone()),
            checkpoint_every: quanta,
            resume: None,
        },
    )
    .expect("seed run");
    path
}

/// Chopping the file inside the `[checksum]` trailer itself (after the
/// tag but before the digest) must be reported as a *format* error — a
/// torn write at the very last line, the most likely real-world tear.
#[test]
fn truncated_trailer_is_a_typed_format_error() {
    let dir = tmp_dir("trailer");
    let path = checkpoint_after(2, &dir);
    let text = std::fs::read_to_string(&path).expect("read snapshot");

    // Cut right after the "[checksum]\n" tag: tag present, digest gone.
    let cut = text.rfind("[checksum]\n").expect("trailer") + "[checksum]\n".len();
    std::fs::write(&path, &text[..cut]).expect("truncate trailer");
    let err = rebudget_sim::checkpoint::SimCheckpoint::load(&path)
        .expect_err("digestless trailer rejected");
    match &err {
        CheckpointError::Format { reason, .. } => {
            assert!(
                reason.contains("fnv1a"),
                "reason names the digest: {reason}"
            )
        }
        other => panic!("expected Format, got {other:?}"),
    }

    // Cut *before* the tag: no trailer at all.
    std::fs::write(&path, &text[..cut - "[checksum]\n".len()]).expect("drop trailer");
    let err = rebudget_sim::checkpoint::SimCheckpoint::load(&path).expect_err("missing trailer");
    match &err {
        CheckpointError::Format { reason, .. } => {
            assert!(reason.contains("truncated"), "{reason}")
        }
        other => panic!("expected Format, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A duplicated `[quantum N]` section with a *valid* checksum must be
/// caught by the structural pass (sections must be dense and in order),
/// not waved through to corrupt a resume.
#[test]
fn duplicated_quantum_section_is_rejected_despite_valid_checksum() {
    let dir = tmp_dir("dup-quantum");
    let path = checkpoint_after(2, &dir);
    let text = std::fs::read_to_string(&path).expect("read snapshot");

    let start = text.find("[quantum 1]").expect("second quantum section");
    let end = text.rfind("[checksum]\n").expect("trailer");
    let section = text[start..end].to_string();
    let resealed = reseal(&text, |body| body.push_str(&section));
    std::fs::write(&path, resealed).expect("write duplicated");

    let err = rebudget_sim::checkpoint::SimCheckpoint::load(&path)
        .expect_err("duplicate section rejected");
    match &err {
        CheckpointError::Format { reason, .. } => {
            assert!(reason.contains("out of order"), "{reason}")
        }
        other => panic!("expected Format (not checksum!), got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Structurally-corrupt-but-checksum-valid primaries must also trigger
/// the `.prev` fallback, exactly like checksum failures do.
#[test]
fn prev_fallback_covers_structural_corruption_too() {
    let (sys, dram) = system();
    let bundle = bundle_24();
    let opts = opts();
    let dir = tmp_dir("dup-fallback");
    let path = dir.join("sim.ckpt");

    // Snapshot every quantum for 3: live holds 3 quanta, .prev holds 2.
    let mut partial = opts.clone();
    partial.quanta = 3;
    run_simulation_recoverable(
        &sys,
        &dram,
        &bundle,
        &mechanism(),
        &partial,
        &RecoveryOptions {
            checkpoint: Some(path.clone()),
            checkpoint_every: 1,
            resume: None,
        },
    )
    .expect("seed run");

    let text = std::fs::read_to_string(&path).expect("read snapshot");
    let start = text.find("[quantum 1]").expect("quantum section");
    let end = text.rfind("[checksum]\n").expect("trailer");
    let section = text[start..end].to_string();
    std::fs::write(&path, reseal(&text, |body| body.push_str(&section))).expect("write duplicated");

    let reference = run_simulation(&sys, &dram, &bundle, &mechanism(), &opts).expect("reference");
    let resumed = run_simulation_recoverable(
        &sys,
        &dram,
        &bundle,
        &mechanism(),
        &opts,
        &RecoveryOptions {
            resume: Some(path),
            ..RecoveryOptions::default()
        },
    )
    .expect("resume via .prev");
    assert!(resumed.used_prev_generation, "fallback generation used");
    assert_eq!(resumed.replayed_quanta, 2, "prev generation holds 2 quanta");
    assert_bit_identical(&resumed, &reference, "resume after structural corruption");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The iteration/round counters are 64-bit end to end: a snapshot whose
/// counters exceed `u32::MAX` round-trips exactly (pointer width or a
/// careless narrowing cast must never clip long-horizon runs).
#[test]
fn counters_beyond_u32_round_trip_through_the_snapshot() {
    let dir = tmp_dir("u64-counters");
    let path = checkpoint_after(2, &dir);
    let text = std::fs::read_to_string(&path).expect("read snapshot");

    const BIG: u64 = 5_000_000_123; // > u32::MAX
    let resealed = reseal(&text, |body| {
        let at = body.find("total_iterations=").expect("counter record");
        let nl = body[at..].find('\n').expect("line end") + at;
        body.replace_range(at..nl, &format!("total_iterations={BIG}"));
    });
    std::fs::write(&path, resealed).expect("write big counters");

    let cp = rebudget_sim::checkpoint::SimCheckpoint::load(&path).expect("valid snapshot");
    assert_eq!(cp.counters.total_iterations, BIG);
    let _ = std::fs::remove_dir_all(&dir);
}
