//! Randomized property tests over the market substrate: invariants that
//! must hold for *any* valid inputs, not just the paper's scenarios.
//!
//! Each test draws a fixed number of cases from a seeded generator (the
//! workspace builds offline, so the vendored `rand` replaces proptest's
//! shrinking machinery; failures print the case seed for replay).

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rebudget_market::equilibrium::EquilibriumOptions;
use rebudget_market::metrics;
use rebudget_market::utility::{PiecewiseLinear, SeparableUtility};
use rebudget_market::{Market, Player, ResourceSpace};

const CASES: u64 = 24;

/// A random market of 2–6 players over 2 resources, with random normalized
/// weights, plus a random budget vector.
fn random_market(rng: &mut StdRng) -> (Market, Vec<f64>) {
    let n: usize = rng.random_range(2..=6);
    let caps = [rng.random_range(10.0..60.0), rng.random_range(20.0..120.0)];
    let players = (0..n)
        .map(|i| {
            let w0: f64 = rng.random_range(0.05..1.0);
            let w = [w0, 1.0 - w0.min(0.95)];
            Player::new(
                format!("p{i}"),
                100.0,
                Arc::new(SeparableUtility::proportional(&w, &caps).expect("weights valid"))
                    as Arc<dyn rebudget_market::Utility>,
            )
        })
        .collect();
    let market = Market::new(
        ResourceSpace::new(caps.to_vec()).expect("caps valid"),
        players,
    )
    .expect("market valid");
    let budgets = (0..n).map(|_| rng.random_range(1.0..100.0)).collect();
    (market, budgets)
}

#[test]
fn equilibrium_allocations_are_exhaustive_and_nonnegative() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xA110_C000 + case);
        let (market, budgets) = random_market(&mut rng);
        let out = market
            .equilibrium_with_budgets(&budgets, &EquilibriumOptions::default())
            .expect("equilibrium runs");
        let caps = market.resources().capacities();
        assert!(out.allocation.is_exhaustive(caps, 1e-6), "case {case}");
        for i in 0..market.len() {
            for j in 0..caps.len() {
                assert!(out.allocation.get(i, j) >= -1e-12, "case {case}");
            }
        }
    }
}

#[test]
fn bids_never_exceed_budgets() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xB1D5 + case);
        let (market, budgets) = random_market(&mut rng);
        let out = market
            .equilibrium_with_budgets(&budgets, &EquilibriumOptions::default())
            .expect("equilibrium runs");
        for i in 0..market.len() {
            assert!(
                out.bids.total_for_player(i) <= budgets[i] + 1e-9,
                "case {case}: player {i} spent {} of {}",
                out.bids.total_for_player(i),
                budgets[i]
            );
        }
    }
}

#[test]
fn richer_player_never_gets_less_utility() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x61C4 + case);
        let (market, _) = random_market(&mut rng);
        let low: f64 = rng.random_range(10.0..50.0);
        let extra: f64 = rng.random_range(1.0..50.0);
        // Give player 0 two different budgets, everyone else fixed: more
        // money can only help (its best-response set only grows).
        let n = market.len();
        let mut poor = vec![60.0; n];
        poor[0] = low;
        let mut rich = poor.clone();
        rich[0] = low + extra;
        let opts = EquilibriumOptions::precise();
        let a = market.equilibrium_with_budgets(&poor, &opts).expect("runs");
        let b = market.equilibrium_with_budgets(&rich, &opts).expect("runs");
        assert!(
            b.utilities[0] >= a.utilities[0] - 0.03,
            "case {case}: budget {} → {}, utility {} → {}",
            low,
            low + extra,
            a.utilities[0],
            b.utilities[0]
        );
    }
}

#[test]
fn mur_and_mbr_stay_in_unit_interval() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x3A5E + case);
        let (market, budgets) = random_market(&mut rng);
        let out = market
            .equilibrium_with_budgets(&budgets, &EquilibriumOptions::default())
            .expect("equilibrium runs");
        let mur = metrics::mur(&out.lambdas);
        let mbr = metrics::mbr(&budgets);
        assert!((0.0..=1.0).contains(&mur), "case {case}: MUR {mur}");
        assert!((0.0..=1.0).contains(&mbr), "case {case}: MBR {mbr}");
    }
}

#[test]
fn concave_hull_dominates_and_is_concave() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xC0CA + case);
        let len: usize = rng.random_range(3..12);
        // Build a monotone curve from random increments, hull it.
        let mut acc = 0.0;
        let points: Vec<(f64, f64)> = (0..len)
            .map(|i| {
                acc += rng.random_range(0.0..1.0);
                (i as f64 + 1.0, acc)
            })
            .collect();
        let curve = PiecewiseLinear::new(points.clone()).expect("monotone");
        let hull = curve.upper_concave_hull();
        assert!(hull.is_concave(1e-9), "case {case}");
        for &(x, y) in &points {
            assert!(hull.value(x) >= y - 1e-9, "case {case}");
        }
        // Hull endpoints coincide with the curve's.
        assert!(
            (hull.value(1.0) - curve.value(1.0)).abs() < 1e-9,
            "case {case}"
        );
        let last = points.len() as f64;
        assert!(
            (hull.value(last) - curve.value(last)).abs() < 1e-9,
            "case {case}"
        );
    }
}
