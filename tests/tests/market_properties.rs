//! Property-based tests (proptest) over the market substrate: invariants
//! that must hold for *any* valid inputs, not just the paper's scenarios.

use std::sync::Arc;

use proptest::prelude::*;
use rebudget_market::equilibrium::EquilibriumOptions;
use rebudget_market::metrics;
use rebudget_market::utility::{PiecewiseLinear, SeparableUtility};
use rebudget_market::{Market, Player, ResourceSpace};

fn market_strategy() -> impl Strategy<Value = (Market, Vec<f64>)> {
    // 2–6 players, 2 resources, random normalized weights and budgets.
    (2usize..=6).prop_flat_map(|n| {
        (
            proptest::collection::vec(0.05f64..1.0, n),
            proptest::collection::vec(1.0f64..100.0, n),
            10.0f64..60.0,
            20.0f64..120.0,
        )
            .prop_map(move |(w0s, budgets, cap0, cap1)| {
                let caps = [cap0, cap1];
                let players = w0s
                    .iter()
                    .enumerate()
                    .map(|(i, &w0)| {
                        let w = [w0, 1.0 - w0.min(0.95)];
                        Player::new(
                            format!("p{i}"),
                            100.0,
                            Arc::new(
                                SeparableUtility::proportional(&w, &caps)
                                    .expect("weights valid"),
                            ) as Arc<dyn rebudget_market::Utility>,
                        )
                    })
                    .collect();
                let market = Market::new(
                    ResourceSpace::new(caps.to_vec()).expect("caps valid"),
                    players,
                )
                .expect("market valid");
                (market, budgets)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn equilibrium_allocations_are_exhaustive_and_nonnegative(
        (market, budgets) in market_strategy()
    ) {
        let out = market
            .equilibrium_with_budgets(&budgets, &EquilibriumOptions::default())
            .expect("equilibrium runs");
        let caps = market.resources().capacities();
        prop_assert!(out.allocation.is_exhaustive(caps, 1e-6));
        for i in 0..market.len() {
            for j in 0..caps.len() {
                prop_assert!(out.allocation.get(i, j) >= -1e-12);
            }
        }
    }

    #[test]
    fn bids_never_exceed_budgets((market, budgets) in market_strategy()) {
        let out = market
            .equilibrium_with_budgets(&budgets, &EquilibriumOptions::default())
            .expect("equilibrium runs");
        for i in 0..market.len() {
            prop_assert!(
                out.bids.total_for_player(i) <= budgets[i] + 1e-9,
                "player {} spent {} of {}",
                i,
                out.bids.total_for_player(i),
                budgets[i]
            );
        }
    }

    #[test]
    fn richer_player_never_gets_less_utility(
        (market, _) in market_strategy(),
        low in 10.0f64..50.0,
        extra in 1.0f64..50.0,
    ) {
        // Give player 0 two different budgets, everyone else fixed: more
        // money can only help (its best-response set only grows).
        let n = market.len();
        let mut poor = vec![60.0; n];
        poor[0] = low;
        let mut rich = poor.clone();
        rich[0] = low + extra;
        let opts = EquilibriumOptions::precise();
        let a = market.equilibrium_with_budgets(&poor, &opts).expect("runs");
        let b = market.equilibrium_with_budgets(&rich, &opts).expect("runs");
        prop_assert!(
            b.utilities[0] >= a.utilities[0] - 0.03,
            "budget {} → {}, utility {} → {}",
            low, low + extra, a.utilities[0], b.utilities[0]
        );
    }

    #[test]
    fn mur_and_mbr_stay_in_unit_interval((market, budgets) in market_strategy()) {
        let out = market
            .equilibrium_with_budgets(&budgets, &EquilibriumOptions::default())
            .expect("equilibrium runs");
        let mur = metrics::mur(&out.lambdas);
        let mbr = metrics::mbr(&budgets);
        prop_assert!((0.0..=1.0).contains(&mur));
        prop_assert!((0.0..=1.0).contains(&mbr));
    }

    #[test]
    fn concave_hull_dominates_and_is_concave(
        ys in proptest::collection::vec(0.0f64..1.0, 3..12)
    ) {
        // Build a monotone curve from random increments, hull it.
        let mut acc = 0.0;
        let points: Vec<(f64, f64)> = ys
            .iter()
            .enumerate()
            .map(|(i, &dy)| {
                acc += dy;
                (i as f64 + 1.0, acc)
            })
            .collect();
        let curve = PiecewiseLinear::new(points.clone()).expect("monotone");
        let hull = curve.upper_concave_hull();
        prop_assert!(hull.is_concave(1e-9));
        for &(x, y) in &points {
            prop_assert!(hull.value(x) >= y - 1e-9);
        }
        // Hull endpoints coincide with the curve's.
        prop_assert!((hull.value(1.0) - curve.value(1.0)).abs() < 1e-9);
        let last = points.len() as f64;
        prop_assert!((hull.value(last) - curve.value(last)).abs() < 1e-9);
    }
}
