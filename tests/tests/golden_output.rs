//! Golden-output regression tests for the CLI.
//!
//! Each file under `tests/golden/` is the reference stdout of one CLI
//! invocation on a fixed seed. The harness re-runs the command in-process
//! via [`rebudget_cli::run`] and diffs byte-for-byte, so ANY change to
//! the rendered numbers, column layout, or fingerprints fails loudly and
//! has to be re-blessed by regenerating the file.
//!
//! The same files are checked in both feature configurations (default
//! and `--no-default-features`): the parallel fan-out is bit-identical
//! to the serial path by construction, so one set of goldens covers
//! both. The `--mechanism=rebudget` goldens end in a `fingerprint` line
//! — an FNV-1a digest over the run's full bit patterns — which upgrades
//! the textual diff to a bit-exactness proof for the allocations.

use std::path::{Path, PathBuf};

#[allow(clippy::expect_used)]
fn run_cli(args: &[&str]) -> String {
    let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    rebudget_cli::run(&argv).expect("golden command succeeds")
}

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("golden")
}

#[allow(clippy::expect_used)]
fn golden(name: &str) -> String {
    let path = golden_dir().join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()))
}

/// The golden commands: (file, argv). Three fixed seeds for simulate,
/// one all-mechanism table, and two sweep categories.
const GOLDENS: &[(&str, &[&str])] = &[
    (
        "simulate_bbpc_rebudget_seed1.txt",
        &[
            "simulate",
            "bbpc",
            "8",
            "3",
            "--mechanism=rebudget",
            "--seed=1",
        ],
    ),
    (
        "simulate_bbpc_rebudget_seed7.txt",
        &[
            "simulate",
            "bbpc",
            "8",
            "3",
            "--mechanism=rebudget",
            "--seed=7",
        ],
    ),
    (
        "simulate_cpbn_rebudget_seed42.txt",
        &[
            "simulate",
            "cpbn",
            "8",
            "4",
            "--mechanism=rebudget",
            "--seed=42",
        ],
    ),
    ("simulate_bbpc_all.txt", &["simulate", "bbpc", "8", "2"]),
    ("sweep_bbpc.txt", &["sweep", "bbpc", "8"]),
    ("sweep_cpbn.txt", &["sweep", "cpbn", "8"]),
];

#[test]
fn cli_output_matches_goldens_byte_for_byte() {
    for (file, args) in GOLDENS {
        let expected = golden(file);
        let actual = run_cli(args);
        assert_eq!(
            actual, expected,
            "stdout for {args:?} diverged from tests/golden/{file}; \
             if the change is intentional, regenerate the golden file"
        );
    }
}

/// Tracing is pure observation: running every simulate golden with
/// `--trace` must leave stdout — including the bit-exact fingerprint
/// line — byte-identical to the untraced golden, and the journal must
/// validate against the closed event schema.
#[test]
#[allow(clippy::expect_used)]
fn traced_runs_match_goldens_bit_for_bit() {
    let dir = std::env::temp_dir().join(format!("rebudget-golden-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    for (file, args) in GOLDENS {
        if args[0] != "simulate" {
            continue;
        }
        let trace = dir.join(format!("{file}.jsonl"));
        let trace_flag = format!("--trace={}", trace.display());
        let mut traced_args: Vec<&str> = args.to_vec();
        traced_args.push(&trace_flag);
        let out = run_cli(&traced_args);
        assert_eq!(
            out,
            golden(file),
            "tracing changed stdout for {args:?} (fingerprint = allocation bits)"
        );
        let text = std::fs::read_to_string(&trace).expect("trace written");
        let events =
            rebudget_telemetry::schema::validate_stream(&text).expect("schema-valid journal");
        assert!(events > 0, "journal for {args:?} is empty");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The golden table must keep covering every command shape it was born
/// with — deleting a golden file cannot silently shrink coverage.
#[test]
fn golden_directory_and_table_agree() {
    #[allow(clippy::expect_used)]
    let on_disk: Vec<String> = std::fs::read_dir(golden_dir())
        .expect("golden dir exists")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".txt"))
        .collect();
    for (file, _) in GOLDENS {
        assert!(
            on_disk.iter().any(|n| n == file),
            "golden file {file} listed in the table but missing on disk"
        );
    }
    assert_eq!(
        on_disk.len(),
        GOLDENS.len(),
        "tests/golden/ has files the table doesn't check: {on_disk:?}"
    );
}
