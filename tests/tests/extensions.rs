//! Integration tests for the extension modules: EP on multicore markets,
//! application-granularity groups, the distributed agent architecture, and
//! the uncoordinated (UCP) baseline on real bundles.

use rebudget_core::ep::ElasticitiesProportional;
use rebudget_core::mechanisms::{EqualBudget, MaxEfficiency, Mechanism, ReBudget};
use rebudget_core::uncoordinated::Uncoordinated;
use rebudget_market::agents::{agents_from_market, distributed_equilibrium, Auctioneer};
use rebudget_sim::analytic::build_market;
use rebudget_sim::groups::{build_group_market, MultithreadedBundle, ThreadGroup};
use rebudget_sim::{DramConfig, SystemConfig};
use rebudget_workloads::{generate_bundle, paper_bbpc_8core, Category};

fn setup() -> (SystemConfig, DramConfig) {
    (SystemConfig::paper_8core(), DramConfig::ddr3_1600())
}

#[test]
fn ep_trails_the_market_when_cliffy_utilities_defy_the_fit() {
    // §1 of the paper: EP "can perform worse than expected when such
    // curve-fitting is not well suited to the applications". The BBPC
    // bundle contains mcf (a cliff Cobb-Douglas cannot express).
    let (sys, dram) = setup();
    let market = build_market(&paper_bbpc_8core(), &sys, &dram, 100.0).expect("market builds");
    let ep = ElasticitiesProportional::new()
        .allocate(&market)
        .expect("EP runs");
    let rb = ReBudget::with_step(100.0, 40.0)
        .allocate(&market)
        .expect("ReBudget runs");
    assert!(
        rb.efficiency >= ep.efficiency - 1e-6,
        "tuned market {} should match or beat EP {}",
        rb.efficiency,
        ep.efficiency
    );
    // And the fits themselves flag the difficulty: mcf's fit error is the
    // worst in the bundle.
    let fits = ElasticitiesProportional::new()
        .fit_players(&market)
        .expect("fits");
    let names = paper_bbpc_8core();
    let worst = fits
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.log_rmse.partial_cmp(&b.1.log_rmse).expect("finite"))
        .map(|(i, _)| names.apps[i].name)
        .expect("non-empty");
    assert_eq!(worst, "mcf", "the cliff app should fit worst");
}

#[test]
fn uncoordinated_baseline_loses_to_the_market_on_power_skewed_bundles() {
    // UCP allocates cache well but splits power blindly; on a bundle with
    // heterogeneous power demand the coordinated market wins.
    let (sys, dram) = setup();
    let mut market_wins = 0;
    let mut total = 0;
    for category in [Category::Ccpp, Category::Cpbn, Category::Bbpn] {
        for index in 0..2 {
            let bundle = generate_bundle(category, 8, index, 11).expect("8 cores");
            let market = build_market(&bundle, &sys, &dram, 100.0).expect("market builds");
            let unc = Uncoordinated.allocate(&market).expect("runs");
            let rb = ReBudget::with_step(100.0, 40.0)
                .allocate(&market)
                .expect("runs");
            total += 1;
            if rb.efficiency >= unc.efficiency - 1e-9 {
                market_wins += 1;
            }
        }
    }
    assert!(
        market_wins * 2 >= total,
        "coordinated market should win at least half: {market_wins}/{total}"
    );
}

#[test]
fn group_market_runs_every_mechanism() {
    let (sys, dram) = setup();
    let app = |n: &str| rebudget_apps::spec::app_by_name(n).expect("exists");
    let bundle = MultithreadedBundle {
        groups: vec![
            ThreadGroup {
                app: app("swim"),
                threads: 4,
            },
            ThreadGroup {
                app: app("mcf"),
                threads: 2,
            },
            ThreadGroup {
                app: app("hmmer"),
                threads: 1,
            },
            ThreadGroup {
                app: app("gzip"),
                threads: 1,
            },
        ],
    };
    let market = build_group_market(&bundle, &sys, &dram, 100.0).expect("group market");
    let eq = EqualBudget::new(100.0).allocate(&market).expect("runs");
    let opt = MaxEfficiency::default().allocate(&market).expect("runs");
    assert!(eq.efficiency > 0.0 && eq.efficiency <= 8.0 + 1e-6);
    assert!(opt.efficiency >= eq.efficiency - 1e-6);
    // The 4-thread group should command several regions under any
    // market outcome given swim's appetite.
    assert!(eq.allocation.get(0, 0) > 1.0);
}

#[test]
fn distributed_agents_reach_the_same_outcome_on_a_real_bundle() {
    let (sys, dram) = setup();
    let market = build_market(&paper_bbpc_8core(), &sys, &dram, 100.0).expect("market builds");
    let central = EqualBudget::new(100.0).allocate(&market).expect("runs");
    let auctioneer = Auctioneer::new(market.resources().clone());
    let mut agents = agents_from_market(&market);
    let dist = distributed_equilibrium(&auctioneer, &mut agents, 30, 0.01).expect("runs");
    assert!(dist.converged);
    let dist_eff: f64 = market
        .players()
        .iter()
        .enumerate()
        .map(|(i, p)| p.utility_of(dist.allocation.row(i)))
        .sum();
    assert!(
        (dist_eff - central.efficiency).abs() / central.efficiency < 0.05,
        "distributed {} vs centralized {}",
        dist_eff,
        central.efficiency
    );
    // Warm start across quanta: the second solve is near-instant.
    let warm = distributed_equilibrium(&auctioneer, &mut agents, 30, 0.01).expect("runs");
    assert!(warm.iterations <= 2, "warm iterations {}", warm.iterations);
}
