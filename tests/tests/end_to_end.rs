//! End-to-end pipeline tests: application models → workload bundles →
//! profiled utilities → market mechanisms, checking the paper's headline
//! orderings on real (synthetic-app) markets.

use rebudget_core::mechanisms::{
    Balanced, EqualBudget, EqualShare, MaxEfficiency, Mechanism, ReBudget,
};
use rebudget_core::theory::ef_lower_bound;
use rebudget_sim::analytic::build_market;
use rebudget_sim::{DramConfig, SystemConfig};
use rebudget_workloads::{generate_bundle, paper_bbpc_8core, Category};

fn setup() -> (SystemConfig, DramConfig) {
    (SystemConfig::paper_8core(), DramConfig::ddr3_1600())
}

#[test]
fn oracle_dominates_every_mechanism_on_every_category() {
    let (sys, dram) = setup();
    for category in Category::ALL {
        let bundle = generate_bundle(category, 8, 0, 3).expect("8 cores");
        let market = build_market(&bundle, &sys, &dram, 100.0).expect("market builds");
        let opt = MaxEfficiency::default().allocate(&market).expect("oracle");
        for mech in [
            &EqualShare as &dyn Mechanism,
            &EqualBudget::new(100.0),
            &Balanced::new(100.0),
            &ReBudget::with_step(100.0, 20.0),
            &ReBudget::with_step(100.0, 40.0),
        ] {
            let out = mech.allocate(&market).expect("mechanism runs");
            assert!(
                out.efficiency <= opt.efficiency * 1.01,
                "{}: {} beat the oracle {} on {}",
                out.mechanism,
                out.efficiency,
                opt.efficiency,
                bundle.label()
            );
        }
    }
}

#[test]
fn rebudget_trades_fairness_for_efficiency_monotonically() {
    let (sys, dram) = setup();
    let market = build_market(&paper_bbpc_8core(), &sys, &dram, 100.0).expect("market builds");
    let eq = EqualBudget::new(100.0).allocate(&market).expect("runs");
    let rb20 = ReBudget::with_step(100.0, 20.0)
        .allocate(&market)
        .expect("runs");
    let rb40 = ReBudget::with_step(100.0, 40.0)
        .allocate(&market)
        .expect("runs");
    // Efficiency: EqualBudget ≤ ReBudget-20 ≤ ReBudget-40 (small slack for
    // the approximate equilibria).
    assert!(
        rb20.efficiency >= eq.efficiency - 0.02,
        "{} vs {}",
        rb20.efficiency,
        eq.efficiency
    );
    assert!(
        rb40.efficiency >= rb20.efficiency - 0.02,
        "{} vs {}",
        rb40.efficiency,
        rb20.efficiency
    );
    // Fairness: the reverse ordering.
    assert!(eq.envy_freeness >= rb20.envy_freeness - 0.02);
    assert!(rb20.envy_freeness >= rb40.envy_freeness - 0.02);
    // MBR floors from the geometric step series.
    assert!(rb20.mbr.expect("market ran") >= 0.6 - 1e-9);
    assert!(rb40.mbr.expect("market ran") >= 0.2 - 1e-9);
}

#[test]
fn theorem2_floor_holds_on_all_categories_for_both_steps() {
    let (sys, dram) = setup();
    for category in Category::ALL {
        let bundle = generate_bundle(category, 8, 1, 9).expect("8 cores");
        let market = build_market(&bundle, &sys, &dram, 100.0).expect("market builds");
        for step in [20.0, 40.0] {
            let out = ReBudget::with_step(100.0, step)
                .allocate(&market)
                .expect("runs");
            let floor = ef_lower_bound(out.mbr.expect("market ran"));
            assert!(
                out.envy_freeness >= floor - 1e-6,
                "{} step {step}: EF {:.3} below floor {:.3}",
                bundle.label(),
                out.envy_freeness,
                floor
            );
        }
    }
}

#[test]
fn equal_budget_is_nearly_envy_free_on_all_categories() {
    let (sys, dram) = setup();
    for category in Category::ALL {
        let bundle = generate_bundle(category, 8, 2, 5).expect("8 cores");
        let market = build_market(&bundle, &sys, &dram, 100.0).expect("market builds");
        let out = EqualBudget::new(100.0).allocate(&market).expect("runs");
        assert!(
            out.envy_freeness >= 0.8,
            "{}: EqualBudget EF {:.3}",
            bundle.label(),
            out.envy_freeness
        );
    }
}

#[test]
fn markets_converge_within_failsafe() {
    let (sys, dram) = setup();
    for category in Category::ALL {
        for index in 0..3 {
            let bundle = generate_bundle(category, 8, index, 1).expect("8 cores");
            let market = build_market(&bundle, &sys, &dram, 100.0).expect("market builds");
            let out = EqualBudget::new(100.0).allocate(&market).expect("runs");
            assert!(
                out.total_iterations <= 30,
                "{}: {} iterations",
                bundle.label(),
                out.total_iterations
            );
        }
    }
}

#[test]
fn sixty_four_core_market_scales() {
    let (_, dram) = setup();
    let sys = SystemConfig::paper_64core();
    let bundle = generate_bundle(Category::Cpbn, 64, 0, 1).expect("64 cores");
    let market = build_market(&bundle, &sys, &dram, 100.0).expect("market builds");
    assert_eq!(market.len(), 64);
    let out = EqualBudget::new(100.0).allocate(&market).expect("runs");
    assert!(out.efficiency > 0.0 && out.efficiency <= 64.0);
    assert!(out
        .allocation
        .is_exhaustive(market.resources().capacities(), 1e-6));
}
