//! Phase-change adaptation: §4.3 of the paper re-runs the budget
//! re-assignment every 1 ms "to handle the changing resource demands due
//! to context switches and application phase changes". These tests drive
//! a market across a phase change and verify the allocation follows the
//! demand.

use std::sync::Arc;

use rebudget_apps::phase::PhasedApp;
use rebudget_apps::profile::MpkiShape;
use rebudget_apps::spec::app_by_name;
use rebudget_core::mechanisms::{EqualBudget, Mechanism};
use rebudget_market::{Market, Player, Utility};
use rebudget_sim::analytic::resource_space;
use rebudget_sim::utility_model::{app_utility_grid, utility_grid_from_mpki};
use rebudget_sim::{DramConfig, SystemConfig};
use rebudget_workloads::paper_bbpc_8core;

/// Builds the BBPC market but with core 0 running the phased app's
/// profile for quantum `q`.
fn market_at_quantum(phased: &PhasedApp, q: usize) -> Market {
    let sys = SystemConfig::paper_8core();
    let dram = DramConfig::ddr3_1600();
    let bundle = paper_bbpc_8core();
    let resources = resource_space(&bundle, &sys).expect("valid");
    let players: Vec<Player> = bundle
        .apps
        .iter()
        .enumerate()
        .map(|(core, app)| {
            let grid = if core == 0 {
                let p = phased.profile_at(q);
                let caps: Vec<f64> = (1..=16).map(|r| r as f64 * 128.0 * 1024.0).collect();
                utility_grid_from_mpki(
                    &p.miss_curve(&caps),
                    p.base_cpi,
                    p.mlp,
                    p.activity,
                    &sys,
                    &dram,
                )
            } else {
                app_utility_grid(app, &sys, &dram)
            };
            Player::new(
                format!("{}#{core}", app.name),
                100.0,
                Arc::new(grid) as Arc<dyn Utility>,
            )
        })
        .collect();
    Market::new(resources, players).expect("valid market")
}

#[test]
fn allocation_follows_a_cache_to_compute_phase_change() {
    // Core 0 alternates between an mcf-like cache-hungry phase and a
    // compute-bound phase (5 quanta each).
    let phased = PhasedApp::new(
        *app_by_name("mcf").unwrap(),
        MpkiShape::Flat { mpki: 0.4 },
        0.95,
        10,
        0.5,
    );
    let mech = EqualBudget::new(100.0);

    // Quantum 0: cache phase.
    let out_cache = mech.allocate(&market_at_quantum(&phased, 0)).expect("runs");
    // Quantum 7: compute phase.
    let out_compute = mech.allocate(&market_at_quantum(&phased, 7)).expect("runs");

    let cache_alloc_a = out_cache.allocation.get(0, 0);
    let cache_alloc_b = out_compute.allocation.get(0, 0);
    let watts_a = out_cache.allocation.get(0, 1);
    let watts_b = out_compute.allocation.get(0, 1);

    assert!(
        cache_alloc_a > 1.5 * cache_alloc_b,
        "cache phase should hold much more cache: {cache_alloc_a} vs {cache_alloc_b}"
    );
    assert!(
        watts_b > watts_a,
        "compute phase should buy more power: {watts_a} -> {watts_b}"
    );
}

#[test]
fn phase_schedule_is_periodic_across_many_quanta() {
    let phased = PhasedApp::new(
        *app_by_name("mcf").unwrap(),
        MpkiShape::Flat { mpki: 0.4 },
        0.95,
        8,
        0.5,
    );
    for q in 0..32 {
        assert_eq!(phased.in_phase_a(q), phased.in_phase_a(q + 8));
    }
}
