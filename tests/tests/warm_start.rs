//! Warm-start determinism and efficiency across every solver engine.
//!
//! The online server re-solves the market every tick, seeding each solve
//! with the previous quantum's bids ([`rebudget_market::WarmStart`]).
//! That optimization is only sound if warm starting (1) never *costs*
//! iterations relative to the cold equal-split start when re-solving the
//! same market, and (2) stays perfectly deterministic — a warm-started
//! solve repeated with the same seed must be bit-identical, or the
//! daemon's kill-safe replay guarantee collapses. Both properties are
//! pinned here for each [`SolverKind`], including the dense first-order
//! reference (the dense `Market` path with a first-order solver).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rebudget_market::equilibrium::{EquilibriumOptions, WarmStart};
use rebudget_market::{SolverKind, SparseBids, SparseMarket, SparseUtilityKind, SynthSpec};

/// Seeded markets in the property sweep (the issue's acceptance bar).
const CASES: u64 = 50;

fn sparse_opts(solver: SolverKind) -> EquilibriumOptions {
    let mut opts = EquilibriumOptions::large_scale().with_solver(solver);
    opts.price_tolerance = 1e-5;
    opts
}

/// Warm ≤ cold iterations and bit-identical warm repeats, across 50
/// seeded synthetic markets for each sparse first-order solver. The
/// previous outcome's bids contain exact zeros (underflow at
/// convergence); the warm overlay must lift them rather than silently
/// cold-starting those rows, so the warm solve lands in a handful of
/// iterations instead of re-running the whole transient.
#[test]
fn sparse_warm_start_property_sweep() {
    for case in 0..CASES {
        let players = 200 + (case as usize) * 13;
        let market = SynthSpec::new(players, 16, 0xAB0 + case)
            .generate()
            .expect("synth market");
        for solver in [SolverKind::ProportionalResponse, SolverKind::MirrorDescent] {
            let opts = sparse_opts(solver);
            let cold = market.solve(&opts).expect("cold solves");
            assert!(cold.converged(), "case {case}: {} cold", solver.label());

            let warm_opts = opts
                .clone()
                .with_warm_start(WarmStart::from_sparse(&cold).shared());
            let warm = market.solve(&warm_opts).expect("warm solves");
            assert!(warm.converged(), "case {case}: {} warm", solver.label());
            assert!(
                warm.iterations <= cold.iterations,
                "case {case}: {} warm {} > cold {}",
                solver.label(),
                warm.iterations,
                cold.iterations
            );

            let again = market.solve(&warm_opts).expect("warm repeat solves");
            assert_eq!(warm.prices, again.prices, "case {case}: {}", solver.label());
            assert_eq!(warm.bids, again.bids, "case {case}: {}", solver.label());
            assert_eq!(warm.iterations, again.iterations);
        }
    }
}

/// The online scenario: budgets churn between quanta while the interest
/// pattern stays fixed. Warm starting from the pre-churn equilibrium
/// must still converge, still beat the cold start, and stay bitwise
/// repeatable — budget rescaling of the seed is part of the overlay.
#[test]
fn sparse_warm_start_survives_budget_churn() {
    let market = SynthSpec::new(2_000, 32, 7).generate().expect("synth");
    let mut opts = EquilibriumOptions::large_scale();
    opts.price_tolerance = 1e-4;
    let before = market.solve(&opts).expect("pre-churn solves");
    assert!(before.converged());

    // Rescale ~2% of budgets deterministically, keeping the CSR pattern.
    let mut budgets = market.budgets().to_vec();
    for (i, b) in budgets.iter_mut().enumerate() {
        if i % 50 == 3 {
            *b *= 1.4;
        }
    }
    let churned = SparseMarket::new(
        market.capacities().to_vec(),
        budgets,
        market.interests().clone(),
        SparseUtilityKind::Linear,
    )
    .expect("churned market");

    let cold = churned.solve(&opts).expect("cold solves");
    let warm_opts = opts
        .clone()
        .with_warm_start(WarmStart::from_sparse(&before).shared());
    let warm = churned.solve(&warm_opts).expect("warm solves");
    assert!(cold.converged() && warm.converged());
    assert!(
        warm.iterations <= cold.iterations,
        "warm {} > cold {}",
        warm.iterations,
        cold.iterations
    );
    let again = churned.solve(&warm_opts).expect("warm repeat");
    assert_eq!(warm.prices, again.prices);
    assert_eq!(warm.bids, again.bids);
}

/// A random dense-representable sparse market (every player interested
/// in every good, so Jacobi and the dense first-order reference both
/// apply after densification).
fn random_full_market(rng: &mut StdRng) -> SparseMarket {
    let n: usize = rng.random_range(4..=10);
    let m: usize = rng.random_range(2..=4);
    let capacities: Vec<f64> = (0..m).map(|_| rng.random_range(0.5..2.0)).collect();
    let budgets: Vec<f64> = (0..n).map(|_| rng.random_range(0.5..1.5)).collect();
    let rows: Vec<Vec<(usize, f64)>> = (0..n)
        .map(|_| (0..m).map(|j| (j, rng.random_range(0.1..1.0))).collect())
        .collect();
    let interests = SparseBids::from_rows(m, rows).expect("rows valid");
    SparseMarket::new(capacities, budgets, interests, SparseUtilityKind::Linear)
        .expect("market valid")
}

/// Warm ≤ cold iterations and bit-identical warm repeats for the dense
/// engines, seeded through [`WarmStart::from_outcome`].
///
/// The iteration inequality is asserted for Jacobi (the solver the
/// daemon actually warm-starts on dense markets). The dense first-order
/// reference is held to convergence and bitwise determinism only: its
/// outer loop does not carry the adaptive damping state across solves,
/// so on a small oscillatory market a warm restart at full damping can
/// legitimately spend more iterations re-finding the stable step than
/// the cold run did — the sparse sweep above covers the first-order
/// warm ≤ cold property on the markets the server serves.
#[test]
fn dense_warm_start_is_deterministic_and_no_slower() {
    for case in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(0xDE5E + case);
        let dense = random_full_market(&mut rng)
            .to_market()
            .expect("linear markets densify");
        for solver in [
            SolverKind::Jacobi,
            SolverKind::ProportionalResponse,
            SolverKind::MirrorDescent,
        ] {
            let mut opts = EquilibriumOptions::default().with_solver(solver);
            if solver != SolverKind::Jacobi {
                opts.max_iterations = 200_000;
                opts.price_tolerance = 1e-6;
            }
            let cold = dense.equilibrium(&opts).expect("cold solves");
            assert!(cold.converged(), "case {case}: {} cold", solver.label());

            let warm_opts = opts
                .clone()
                .with_warm_start(WarmStart::from_outcome(&cold).shared());
            let warm = dense.equilibrium(&warm_opts).expect("warm solves");
            assert!(warm.converged(), "case {case}: {} warm", solver.label());
            if solver == SolverKind::Jacobi {
                assert!(
                    warm.iterations <= cold.iterations,
                    "case {case}: jacobi warm {} > cold {}",
                    warm.iterations,
                    cold.iterations
                );
            }

            let again = dense.equilibrium(&warm_opts).expect("warm repeat");
            assert_eq!(warm.prices, again.prices, "case {case}: {}", solver.label());
            assert_eq!(
                warm.bids.as_slice(),
                again.bids.as_slice(),
                "case {case}: {}",
                solver.label()
            );
        }
    }
}
