//! Bit-exact determinism of the parallel equilibrium engine.
//!
//! The engine's contract is that [`ParallelPolicy`] is purely an execution
//! knob: every outcome field — bids, prices, allocation, utilities, λs,
//! iteration count — must be *bit-identical* under `Serial`, `Auto`, and
//! any explicit thread count. These tests pin that contract on markets
//! built from the paper's workload generator (Cpbn and mixed-category
//! bundles) as well as the mechanism layer on top.

use rebudget_core::mechanisms::{EqualBudget, Mechanism, ReBudget};
use rebudget_core::sweep::sweep_steps_with;
use rebudget_market::equilibrium::{EquilibriumOptions, EquilibriumOutcome};
use rebudget_market::{Market, ParallelPolicy};
use rebudget_sim::analytic::build_market;
use rebudget_sim::{DramConfig, SystemConfig};
use rebudget_workloads::{generate_bundle, Category};

const POLICIES: [ParallelPolicy; 3] = [
    ParallelPolicy::Serial,
    ParallelPolicy::Auto,
    ParallelPolicy::Threads(4),
];

fn market_for(category: Category, cores: usize) -> Market {
    let sys = SystemConfig::scaled(cores);
    let dram = DramConfig::ddr3_1600();
    let bundle = generate_bundle(category, cores, 0, 1).expect("valid core count");
    build_market(&bundle, &sys, &dram, 100.0).expect("valid market")
}

fn assert_bitwise_equal(a: &EquilibriumOutcome, b: &EquilibriumOutcome, what: &str) {
    assert_eq!(a.iterations, b.iterations, "{what}: iterations");
    assert_eq!(a.converged, b.converged, "{what}: converged");
    let pairs = [
        (a.bids.as_slice(), b.bids.as_slice(), "bids"),
        (&a.prices[..], &b.prices[..], "prices"),
        (&a.utilities[..], &b.utilities[..], "utilities"),
        (&a.lambdas[..], &b.lambdas[..], "lambdas"),
    ];
    for (xs, ys, field) in pairs {
        assert_eq!(xs.len(), ys.len(), "{what}: {field} length");
        for (k, (x, y)) in xs.iter().zip(ys).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{what}: {field}[{k}] differs: {x} vs {y}"
            );
        }
    }
    for i in 0..a.utilities.len() {
        for (x, y) in a.allocation.row(i).iter().zip(b.allocation.row(i)) {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: allocation row {i}");
        }
    }
}

fn solve(market: &Market, policy: ParallelPolicy) -> EquilibriumOutcome {
    market
        .equilibrium(&EquilibriumOptions::default().with_parallel(policy))
        .expect("equilibrium runs")
}

#[test]
fn equilibrium_bit_identical_across_policies_cpbn() {
    // 64 players: wide enough that Auto actually goes parallel.
    let market = market_for(Category::Cpbn, 64);
    let baseline = solve(&market, ParallelPolicy::Serial);
    for policy in POLICIES {
        let out = solve(&market, policy);
        assert_bitwise_equal(&baseline, &out, &format!("Cpbn-64 under {policy:?}"));
    }
}

#[test]
fn equilibrium_bit_identical_across_policies_mixed_bundles() {
    for category in [Category::Cpbb, Category::Bbnn, Category::Bbcn] {
        let market = market_for(category, 8);
        let baseline = solve(&market, ParallelPolicy::Serial);
        for policy in POLICIES {
            let out = solve(&market, policy);
            assert_bitwise_equal(&baseline, &out, &format!("{category:?}-8 under {policy:?}"));
        }
    }
}

#[test]
fn mechanisms_bit_identical_across_policies() {
    let market = market_for(Category::Cpbb, 8);
    for policy in POLICIES {
        let eq_s = EqualBudget::new(100.0).allocate(&market).unwrap();
        let eq_p = EqualBudget::new(100.0)
            .with_parallel(policy)
            .allocate(&market)
            .unwrap();
        assert_eq!(eq_s.efficiency.to_bits(), eq_p.efficiency.to_bits());
        assert_eq!(eq_s.envy_freeness.to_bits(), eq_p.envy_freeness.to_bits());

        let rb_s = ReBudget::with_step(100.0, 40.0).allocate(&market).unwrap();
        let rb_p = ReBudget::with_step(100.0, 40.0)
            .with_parallel(policy)
            .allocate(&market)
            .unwrap();
        assert_eq!(rb_s.efficiency.to_bits(), rb_p.efficiency.to_bits());
        assert_eq!(rb_s.equilibrium_rounds, rb_p.equilibrium_rounds);
        for (a, b) in rb_s.budgets.iter().zip(&rb_p.budgets) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

#[test]
fn sweep_bit_identical_across_policies() {
    let market = market_for(Category::Cpbn, 8);
    let steps = [0.0, 20.0, 40.0];
    let baseline = sweep_steps_with(&market, 100.0, &steps, true, ParallelPolicy::Serial).unwrap();
    for policy in POLICIES {
        let pts = sweep_steps_with(&market, 100.0, &steps, true, policy).unwrap();
        assert_eq!(baseline.len(), pts.len());
        for (a, b) in baseline.iter().zip(&pts) {
            assert_eq!(a.efficiency.to_bits(), b.efficiency.to_bits(), "{policy:?}");
            assert_eq!(a.mur.to_bits(), b.mur.to_bits(), "{policy:?}");
            assert_eq!(a.mbr.to_bits(), b.mbr.to_bits(), "{policy:?}");
            assert_eq!(
                a.normalized_efficiency.unwrap().to_bits(),
                b.normalized_efficiency.unwrap().to_bits(),
                "{policy:?}"
            );
        }
    }
}
