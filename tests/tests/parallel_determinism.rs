//! Bit-exact determinism of the parallel equilibrium engine.
//!
//! The engine's contract is that [`ParallelPolicy`] is purely an execution
//! knob: every outcome field — bids, prices, allocation, utilities, λs,
//! iteration count — must be *bit-identical* under `Serial`, `Auto`, and
//! any explicit thread count. These tests pin that contract on markets
//! built from the paper's workload generator (Cpbn and mixed-category
//! bundles) as well as the mechanism layer on top.

use rebudget_core::mechanisms::{EqualBudget, Mechanism, ReBudget};
use rebudget_core::sweep::sweep_steps_with;
use rebudget_market::equilibrium::{EquilibriumOptions, EquilibriumOutcome};
use rebudget_market::{FaultPlan, Market, ParallelPolicy};
use rebudget_sim::analytic::build_market;
use rebudget_sim::{run_simulation, DramConfig, SimOptions, SystemConfig};
use rebudget_workloads::{generate_bundle, paper_bbpc_8core, Category};

const POLICIES: [ParallelPolicy; 3] = [
    ParallelPolicy::Serial,
    ParallelPolicy::Auto,
    ParallelPolicy::Threads(4),
];

fn market_for(category: Category, cores: usize) -> Market {
    let sys = SystemConfig::scaled(cores);
    let dram = DramConfig::ddr3_1600();
    let bundle = generate_bundle(category, cores, 0, 1).expect("valid core count");
    build_market(&bundle, &sys, &dram, 100.0).expect("valid market")
}

fn assert_bitwise_equal(a: &EquilibriumOutcome, b: &EquilibriumOutcome, what: &str) {
    assert_eq!(a.iterations, b.iterations, "{what}: iterations");
    assert_eq!(a.converged(), b.converged(), "{what}: converged");
    assert_eq!(a.report, b.report, "{what}: solve report (recovery trace)");
    let pairs = [
        (a.bids.as_slice(), b.bids.as_slice(), "bids"),
        (&a.prices[..], &b.prices[..], "prices"),
        (&a.utilities[..], &b.utilities[..], "utilities"),
        (&a.lambdas[..], &b.lambdas[..], "lambdas"),
    ];
    for (xs, ys, field) in pairs {
        assert_eq!(xs.len(), ys.len(), "{what}: {field} length");
        for (k, (x, y)) in xs.iter().zip(ys).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{what}: {field}[{k}] differs: {x} vs {y}"
            );
        }
    }
    for i in 0..a.utilities.len() {
        for (x, y) in a.allocation.row(i).iter().zip(b.allocation.row(i)) {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: allocation row {i}");
        }
    }
}

fn solve(market: &Market, policy: ParallelPolicy) -> EquilibriumOutcome {
    market
        .equilibrium(&EquilibriumOptions::default().with_parallel(policy))
        .expect("equilibrium runs")
}

#[test]
fn equilibrium_bit_identical_across_policies_cpbn() {
    // 64 players: wide enough that Auto actually goes parallel.
    let market = market_for(Category::Cpbn, 64);
    let baseline = solve(&market, ParallelPolicy::Serial);
    for policy in POLICIES {
        let out = solve(&market, policy);
        assert_bitwise_equal(&baseline, &out, &format!("Cpbn-64 under {policy:?}"));
    }
}

#[test]
fn equilibrium_bit_identical_across_policies_mixed_bundles() {
    for category in [Category::Cpbb, Category::Bbnn, Category::Bbcn] {
        let market = market_for(category, 8);
        let baseline = solve(&market, ParallelPolicy::Serial);
        for policy in POLICIES {
            let out = solve(&market, policy);
            assert_bitwise_equal(&baseline, &out, &format!("{category:?}-8 under {policy:?}"));
        }
    }
}

#[test]
fn mechanisms_bit_identical_across_policies() {
    let market = market_for(Category::Cpbb, 8);
    for policy in POLICIES {
        let eq_s = EqualBudget::new(100.0).allocate(&market).unwrap();
        let eq_p = EqualBudget::new(100.0)
            .with_parallel(policy)
            .allocate(&market)
            .unwrap();
        assert_eq!(eq_s.efficiency.to_bits(), eq_p.efficiency.to_bits());
        assert_eq!(eq_s.envy_freeness.to_bits(), eq_p.envy_freeness.to_bits());

        let rb_s = ReBudget::with_step(100.0, 40.0).allocate(&market).unwrap();
        let rb_p = ReBudget::with_step(100.0, 40.0)
            .with_parallel(policy)
            .allocate(&market)
            .unwrap();
        assert_eq!(rb_s.efficiency.to_bits(), rb_p.efficiency.to_bits());
        assert_eq!(rb_s.equilibrium_rounds, rb_p.equilibrium_rounds);
        for (a, b) in rb_s.budgets.iter().zip(&rb_p.budgets) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

#[test]
fn sweep_bit_identical_across_policies() {
    let market = market_for(Category::Cpbn, 8);
    let steps = [0.0, 20.0, 40.0];
    let baseline = sweep_steps_with(&market, 100.0, &steps, true, ParallelPolicy::Serial).unwrap();
    for policy in POLICIES {
        let pts = sweep_steps_with(&market, 100.0, &steps, true, policy).unwrap();
        assert_eq!(baseline.len(), pts.len());
        for (a, b) in baseline.iter().zip(&pts) {
            assert_eq!(a.efficiency.to_bits(), b.efficiency.to_bits(), "{policy:?}");
            assert_eq!(a.mur.to_bits(), b.mur.to_bits(), "{policy:?}");
            assert_eq!(a.mbr.to_bits(), b.mbr.to_bits(), "{policy:?}");
            assert_eq!(
                a.normalized_efficiency.unwrap().to_bits(),
                b.normalized_efficiency.unwrap().to_bits(),
                "{policy:?}"
            );
        }
    }
}

#[test]
fn faulted_equilibrium_bit_identical_across_policies() {
    // The guardrail path (damping, restarts, sanitization) and the fault
    // wrappers must both be pure functions of their inputs: an active
    // FaultPlan cannot break the policy-independence contract.
    let market = market_for(Category::Cpbb, 8);
    let plan = FaultPlan::parse("noise=0.25,spike=0.05,nan=0.03,drop=0.15,liars=2,seed=23")
        .expect("valid spec");
    let faulted = plan.apply(&market, 4).expect("plan applies");
    let baseline = solve(&faulted.market, ParallelPolicy::Serial);
    for policy in POLICIES {
        let out = solve(&faulted.market, policy);
        assert_bitwise_equal(&baseline, &out, &format!("faulted Cpbb-8 under {policy:?}"));
    }
    // Re-applying the plan reproduces the same fault decisions.
    let again = plan.apply(&market, 4).expect("plan applies");
    assert_eq!(faulted.kept, again.kept);
    assert_eq!(faulted.dropped, again.dropped);
    assert_eq!(faulted.liars, again.liars);
}

#[test]
fn traced_equilibrium_bit_identical_to_untraced() {
    // Telemetry is pure observation: flipping the global switch cannot
    // perturb a single bit of the solve, under any execution policy.
    let market = market_for(Category::Cpbn, 64);
    let untraced = solve(&market, ParallelPolicy::Serial);
    rebudget_telemetry::reset();
    rebudget_telemetry::set_enabled(true);
    let traced_serial = solve(&market, ParallelPolicy::Serial);
    let traced_threads = solve(&market, ParallelPolicy::Threads(4));
    rebudget_telemetry::set_enabled(false);
    assert_bitwise_equal(&untraced, &traced_serial, "traced serial vs untraced");
    assert_bitwise_equal(&untraced, &traced_threads, "traced threaded vs untraced");
    // And the observation actually happened: the journal holds the
    // solver's own story of those two runs.
    let journal = &rebudget_telemetry::global().journal;
    assert!(!journal.is_empty(), "traced solves recorded events");
    let text = journal.lines().join("\n");
    assert!(text.contains("\"event\":\"solve_start\""));
    assert!(text.contains("\"event\":\"solver_iteration\""));
    assert!(text.contains("\"event\":\"solve_end\""));
}

#[test]
fn faulted_simulation_bit_identical_serial_vs_threaded() {
    // The whole monitor → faulted market → enforce loop, end to end: same
    // seed, same plan, serial vs threaded mechanisms — identical bits.
    let sys = SystemConfig::paper_8core();
    let dram = DramConfig::ddr3_1600();
    let bundle = paper_bbpc_8core();
    let opts = SimOptions {
        quanta: 4,
        accesses_per_quantum: 8_000,
        seed: 11,
        faults: Some(
            FaultPlan::parse("noise=0.2,drop=0.15,nan=0.02,stale=0.3,liars=1,seed=29")
                .expect("valid spec"),
        ),
        ..SimOptions::default()
    };
    let run = |policy: ParallelPolicy| {
        run_simulation(
            &sys,
            &dram,
            &bundle,
            &EqualBudget::new(100.0).with_parallel(policy),
            &opts,
        )
        .expect("simulation runs")
    };
    let baseline = run(ParallelPolicy::Serial);
    for policy in POLICIES {
        let r = run(policy);
        assert_eq!(
            baseline.efficiency.to_bits(),
            r.efficiency.to_bits(),
            "{policy:?}: efficiency"
        );
        assert_eq!(
            baseline.envy_freeness.to_bits(),
            r.envy_freeness.to_bits(),
            "{policy:?}: envy-freeness"
        );
        for (a, b) in baseline.utilities.iter().zip(&r.utilities) {
            assert_eq!(a.to_bits(), b.to_bits(), "{policy:?}: utilities");
        }
        assert_eq!(baseline.fallback_quanta, r.fallback_quanta);
        assert_eq!(baseline.degraded_quanta, r.degraded_quanta);
        assert_eq!(baseline.solver_recoveries, r.solver_recoveries);
    }
}
