//! Placeholder library target; the substance of this package is its
//! integration tests under `tests/`, which exercise the ReBudget
//! reproduction across crate boundaries (theory ↔ market ↔ simulator).
