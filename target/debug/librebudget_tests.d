/root/repo/target/debug/librebudget_tests.rlib: /root/repo/tests/src/lib.rs
