/root/repo/target/debug/examples/dbg_monitor-e61f758c47e0296c.d: crates/sim/examples/dbg_monitor.rs

/root/repo/target/debug/examples/dbg_monitor-e61f758c47e0296c: crates/sim/examples/dbg_monitor.rs

crates/sim/examples/dbg_monitor.rs:
