/root/repo/target/debug/examples/dbg_monitor-525735600c1f8092.d: crates/sim/examples/dbg_monitor.rs Cargo.toml

/root/repo/target/debug/examples/libdbg_monitor-525735600c1f8092.rmeta: crates/sim/examples/dbg_monitor.rs Cargo.toml

crates/sim/examples/dbg_monitor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
