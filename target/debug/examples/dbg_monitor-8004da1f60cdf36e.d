/root/repo/target/debug/examples/dbg_monitor-8004da1f60cdf36e.d: crates/sim/examples/dbg_monitor.rs

/root/repo/target/debug/examples/libdbg_monitor-8004da1f60cdf36e.rmeta: crates/sim/examples/dbg_monitor.rs

crates/sim/examples/dbg_monitor.rs:
