/root/repo/target/debug/examples/dbg_monitor-29d7dc3a0808bab0.d: crates/sim/examples/dbg_monitor.rs

/root/repo/target/debug/examples/libdbg_monitor-29d7dc3a0808bab0.rmeta: crates/sim/examples/dbg_monitor.rs

crates/sim/examples/dbg_monitor.rs:
