/root/repo/target/debug/examples/dbg_monitor-ad950bf687cfb30b.d: crates/sim/examples/dbg_monitor.rs

/root/repo/target/debug/examples/dbg_monitor-ad950bf687cfb30b: crates/sim/examples/dbg_monitor.rs

crates/sim/examples/dbg_monitor.rs:
