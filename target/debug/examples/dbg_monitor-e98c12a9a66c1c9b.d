/root/repo/target/debug/examples/dbg_monitor-e98c12a9a66c1c9b.d: crates/sim/examples/dbg_monitor.rs

/root/repo/target/debug/examples/dbg_monitor-e98c12a9a66c1c9b: crates/sim/examples/dbg_monitor.rs

crates/sim/examples/dbg_monitor.rs:
