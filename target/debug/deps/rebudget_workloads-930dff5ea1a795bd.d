/root/repo/target/debug/deps/rebudget_workloads-930dff5ea1a795bd.d: crates/workloads/src/lib.rs crates/workloads/src/bundle.rs crates/workloads/src/category.rs crates/workloads/src/suite.rs

/root/repo/target/debug/deps/librebudget_workloads-930dff5ea1a795bd.rmeta: crates/workloads/src/lib.rs crates/workloads/src/bundle.rs crates/workloads/src/category.rs crates/workloads/src/suite.rs

crates/workloads/src/lib.rs:
crates/workloads/src/bundle.rs:
crates/workloads/src/category.rs:
crates/workloads/src/suite.rs:
