/root/repo/target/debug/deps/rebudget_core-a500ee3165aea4ef.d: crates/core/src/lib.rs crates/core/src/ep.rs crates/core/src/linearized.rs crates/core/src/mechanisms.rs crates/core/src/sweep.rs crates/core/src/theory.rs crates/core/src/uncoordinated.rs

/root/repo/target/debug/deps/rebudget_core-a500ee3165aea4ef: crates/core/src/lib.rs crates/core/src/ep.rs crates/core/src/linearized.rs crates/core/src/mechanisms.rs crates/core/src/sweep.rs crates/core/src/theory.rs crates/core/src/uncoordinated.rs

crates/core/src/lib.rs:
crates/core/src/ep.rs:
crates/core/src/linearized.rs:
crates/core/src/mechanisms.rs:
crates/core/src/sweep.rs:
crates/core/src/theory.rs:
crates/core/src/uncoordinated.rs:
