/root/repo/target/debug/deps/baselines-0356065bf7574d31.d: crates/bench/src/bin/baselines.rs Cargo.toml

/root/repo/target/debug/deps/libbaselines-0356065bf7574d31.rmeta: crates/bench/src/bin/baselines.rs Cargo.toml

crates/bench/src/bin/baselines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
