/root/repo/target/debug/deps/datacenter_market-f65b640ff0d9a183.d: examples/datacenter_market.rs Cargo.toml

/root/repo/target/debug/deps/libdatacenter_market-f65b640ff0d9a183.rmeta: examples/datacenter_market.rs Cargo.toml

examples/datacenter_market.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
