/root/repo/target/debug/deps/rebudget_cli-d6453ea46c10fdfa.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/librebudget_cli-d6453ea46c10fdfa.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
