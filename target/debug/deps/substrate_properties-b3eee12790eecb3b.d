/root/repo/target/debug/deps/substrate_properties-b3eee12790eecb3b.d: tests/tests/substrate_properties.rs

/root/repo/target/debug/deps/substrate_properties-b3eee12790eecb3b: tests/tests/substrate_properties.rs

tests/tests/substrate_properties.rs:
