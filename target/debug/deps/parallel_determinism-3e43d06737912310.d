/root/repo/target/debug/deps/parallel_determinism-3e43d06737912310.d: tests/tests/parallel_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libparallel_determinism-3e43d06737912310.rmeta: tests/tests/parallel_determinism.rs Cargo.toml

tests/tests/parallel_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
