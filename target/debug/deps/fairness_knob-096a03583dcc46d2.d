/root/repo/target/debug/deps/fairness_knob-096a03583dcc46d2.d: examples/fairness_knob.rs Cargo.toml

/root/repo/target/debug/deps/libfairness_knob-096a03583dcc46d2.rmeta: examples/fairness_knob.rs Cargo.toml

examples/fairness_knob.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
