/root/repo/target/debug/deps/mechanisms-816a8d56c88dea5d.d: crates/bench/benches/mechanisms.rs Cargo.toml

/root/repo/target/debug/deps/libmechanisms-816a8d56c88dea5d.rmeta: crates/bench/benches/mechanisms.rs Cargo.toml

crates/bench/benches/mechanisms.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
