/root/repo/target/debug/deps/phase_adaptation-a8b67a9785e6781f.d: tests/tests/phase_adaptation.rs

/root/repo/target/debug/deps/phase_adaptation-a8b67a9785e6781f: tests/tests/phase_adaptation.rs

tests/tests/phase_adaptation.rs:
