/root/repo/target/debug/deps/multithreaded-1256d15af4a0db5c.d: examples/multithreaded.rs

/root/repo/target/debug/deps/libmultithreaded-1256d15af4a0db5c.rmeta: examples/multithreaded.rs

examples/multithreaded.rs:
