/root/repo/target/debug/deps/substrate_properties-fb2c3f74b1ee53ea.d: tests/tests/substrate_properties.rs

/root/repo/target/debug/deps/libsubstrate_properties-fb2c3f74b1ee53ea.rmeta: tests/tests/substrate_properties.rs

tests/tests/substrate_properties.rs:
