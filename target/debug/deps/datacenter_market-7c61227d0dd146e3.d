/root/repo/target/debug/deps/datacenter_market-7c61227d0dd146e3.d: examples/datacenter_market.rs

/root/repo/target/debug/deps/libdatacenter_market-7c61227d0dd146e3.rmeta: examples/datacenter_market.rs

examples/datacenter_market.rs:
