/root/repo/target/debug/deps/rebudget_core-9e856ef27c117397.d: crates/core/src/lib.rs crates/core/src/ep.rs crates/core/src/linearized.rs crates/core/src/mechanisms.rs crates/core/src/sweep.rs crates/core/src/theory.rs crates/core/src/uncoordinated.rs

/root/repo/target/debug/deps/librebudget_core-9e856ef27c117397.rmeta: crates/core/src/lib.rs crates/core/src/ep.rs crates/core/src/linearized.rs crates/core/src/mechanisms.rs crates/core/src/sweep.rs crates/core/src/theory.rs crates/core/src/uncoordinated.rs

crates/core/src/lib.rs:
crates/core/src/ep.rs:
crates/core/src/linearized.rs:
crates/core/src/mechanisms.rs:
crates/core/src/sweep.rs:
crates/core/src/theory.rs:
crates/core/src/uncoordinated.rs:
