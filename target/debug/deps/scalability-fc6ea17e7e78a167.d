/root/repo/target/debug/deps/scalability-fc6ea17e7e78a167.d: crates/bench/src/bin/scalability.rs

/root/repo/target/debug/deps/scalability-fc6ea17e7e78a167: crates/bench/src/bin/scalability.rs

crates/bench/src/bin/scalability.rs:
