/root/repo/target/debug/deps/rebudget_workloads-7b07963fc2de2c9c.d: crates/workloads/src/lib.rs crates/workloads/src/bundle.rs crates/workloads/src/category.rs crates/workloads/src/suite.rs Cargo.toml

/root/repo/target/debug/deps/librebudget_workloads-7b07963fc2de2c9c.rmeta: crates/workloads/src/lib.rs crates/workloads/src/bundle.rs crates/workloads/src/category.rs crates/workloads/src/suite.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/bundle.rs:
crates/workloads/src/category.rs:
crates/workloads/src/suite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
