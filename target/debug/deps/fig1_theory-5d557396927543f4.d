/root/repo/target/debug/deps/fig1_theory-5d557396927543f4.d: crates/bench/src/bin/fig1_theory.rs

/root/repo/target/debug/deps/libfig1_theory-5d557396927543f4.rmeta: crates/bench/src/bin/fig1_theory.rs

crates/bench/src/bin/fig1_theory.rs:
