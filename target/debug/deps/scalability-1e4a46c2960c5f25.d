/root/repo/target/debug/deps/scalability-1e4a46c2960c5f25.d: crates/bench/src/bin/scalability.rs Cargo.toml

/root/repo/target/debug/deps/libscalability-1e4a46c2960c5f25.rmeta: crates/bench/src/bin/scalability.rs Cargo.toml

crates/bench/src/bin/scalability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
