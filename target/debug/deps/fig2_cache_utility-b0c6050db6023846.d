/root/repo/target/debug/deps/fig2_cache_utility-b0c6050db6023846.d: crates/bench/src/bin/fig2_cache_utility.rs

/root/repo/target/debug/deps/fig2_cache_utility-b0c6050db6023846: crates/bench/src/bin/fig2_cache_utility.rs

crates/bench/src/bin/fig2_cache_utility.rs:
