/root/repo/target/debug/deps/rebudget_bench-a1ca6bfa84a93139.d: crates/bench/src/lib.rs crates/bench/src/export.rs Cargo.toml

/root/repo/target/debug/deps/librebudget_bench-a1ca6bfa84a93139.rmeta: crates/bench/src/lib.rs crates/bench/src/export.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/export.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
