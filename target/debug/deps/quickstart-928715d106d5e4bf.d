/root/repo/target/debug/deps/quickstart-928715d106d5e4bf.d: examples/quickstart.rs

/root/repo/target/debug/deps/libquickstart-928715d106d5e4bf.rmeta: examples/quickstart.rs

examples/quickstart.rs:
