/root/repo/target/debug/deps/table1_config-a6f272655599a637.d: crates/bench/src/bin/table1_config.rs

/root/repo/target/debug/deps/table1_config-a6f272655599a637: crates/bench/src/bin/table1_config.rs

crates/bench/src/bin/table1_config.rs:
