/root/repo/target/debug/deps/ablation-7c455d52f462c79f.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/libablation-7c455d52f462c79f.rmeta: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
