/root/repo/target/debug/deps/rebudget_tests-9eb47ef3765cd3e4.d: tests/src/lib.rs

/root/repo/target/debug/deps/rebudget_tests-9eb47ef3765cd3e4: tests/src/lib.rs

tests/src/lib.rs:
