/root/repo/target/debug/deps/quickstart-06bdefb2ef419511.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/deps/libquickstart-06bdefb2ef419511.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
