/root/repo/target/debug/deps/fig1_theory-bc167d6bd2a9fb1f.d: crates/bench/src/bin/fig1_theory.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_theory-bc167d6bd2a9fb1f.rmeta: crates/bench/src/bin/fig1_theory.rs Cargo.toml

crates/bench/src/bin/fig1_theory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
