/root/repo/target/debug/deps/multithreaded-0c3dd7734bbb8240.d: examples/multithreaded.rs

/root/repo/target/debug/deps/multithreaded-0c3dd7734bbb8240: examples/multithreaded.rs

examples/multithreaded.rs:
