/root/repo/target/debug/deps/fig1_theory-deef5d92b4aea53d.d: crates/bench/src/bin/fig1_theory.rs

/root/repo/target/debug/deps/libfig1_theory-deef5d92b4aea53d.rmeta: crates/bench/src/bin/fig1_theory.rs

crates/bench/src/bin/fig1_theory.rs:
