/root/repo/target/debug/deps/rebudget_bench-be6807148c643873.d: crates/bench/src/lib.rs crates/bench/src/export.rs

/root/repo/target/debug/deps/rebudget_bench-be6807148c643873: crates/bench/src/lib.rs crates/bench/src/export.rs

crates/bench/src/lib.rs:
crates/bench/src/export.rs:
