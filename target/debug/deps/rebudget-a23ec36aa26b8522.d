/root/repo/target/debug/deps/rebudget-a23ec36aa26b8522.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/rebudget-a23ec36aa26b8522: crates/cli/src/main.rs

crates/cli/src/main.rs:
