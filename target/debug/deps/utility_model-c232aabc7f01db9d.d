/root/repo/target/debug/deps/utility_model-c232aabc7f01db9d.d: crates/bench/benches/utility_model.rs

/root/repo/target/debug/deps/libutility_model-c232aabc7f01db9d.rmeta: crates/bench/benches/utility_model.rs

crates/bench/benches/utility_model.rs:
