/root/repo/target/debug/deps/fig2_cache_utility-9ea35f1cb2f83bca.d: crates/bench/src/bin/fig2_cache_utility.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_cache_utility-9ea35f1cb2f83bca.rmeta: crates/bench/src/bin/fig2_cache_utility.rs Cargo.toml

crates/bench/src/bin/fig2_cache_utility.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
