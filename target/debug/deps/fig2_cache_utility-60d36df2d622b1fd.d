/root/repo/target/debug/deps/fig2_cache_utility-60d36df2d622b1fd.d: crates/bench/src/bin/fig2_cache_utility.rs

/root/repo/target/debug/deps/libfig2_cache_utility-60d36df2d622b1fd.rmeta: crates/bench/src/bin/fig2_cache_utility.rs

crates/bench/src/bin/fig2_cache_utility.rs:
