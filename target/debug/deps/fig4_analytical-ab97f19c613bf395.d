/root/repo/target/debug/deps/fig4_analytical-ab97f19c613bf395.d: crates/bench/src/bin/fig4_analytical.rs

/root/repo/target/debug/deps/libfig4_analytical-ab97f19c613bf395.rmeta: crates/bench/src/bin/fig4_analytical.rs

crates/bench/src/bin/fig4_analytical.rs:
