/root/repo/target/debug/deps/table1_config-5021ffcec75120b8.d: crates/bench/src/bin/table1_config.rs

/root/repo/target/debug/deps/libtable1_config-5021ffcec75120b8.rmeta: crates/bench/src/bin/table1_config.rs

crates/bench/src/bin/table1_config.rs:
