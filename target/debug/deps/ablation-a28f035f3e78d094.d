/root/repo/target/debug/deps/ablation-a28f035f3e78d094.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/libablation-a28f035f3e78d094.rmeta: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
