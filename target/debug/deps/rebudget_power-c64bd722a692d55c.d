/root/repo/target/debug/deps/rebudget_power-c64bd722a692d55c.d: crates/power/src/lib.rs crates/power/src/budget.rs crates/power/src/dvfs.rs crates/power/src/model.rs crates/power/src/thermal.rs crates/power/src/thermal_grid.rs

/root/repo/target/debug/deps/rebudget_power-c64bd722a692d55c: crates/power/src/lib.rs crates/power/src/budget.rs crates/power/src/dvfs.rs crates/power/src/model.rs crates/power/src/thermal.rs crates/power/src/thermal_grid.rs

crates/power/src/lib.rs:
crates/power/src/budget.rs:
crates/power/src/dvfs.rs:
crates/power/src/model.rs:
crates/power/src/thermal.rs:
crates/power/src/thermal_grid.rs:
