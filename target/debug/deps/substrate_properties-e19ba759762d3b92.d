/root/repo/target/debug/deps/substrate_properties-e19ba759762d3b92.d: tests/tests/substrate_properties.rs

/root/repo/target/debug/deps/libsubstrate_properties-e19ba759762d3b92.rmeta: tests/tests/substrate_properties.rs

tests/tests/substrate_properties.rs:
