/root/repo/target/debug/deps/mechanisms-b0ad592a554b91ca.d: crates/bench/benches/mechanisms.rs

/root/repo/target/debug/deps/libmechanisms-b0ad592a554b91ca.rmeta: crates/bench/benches/mechanisms.rs

crates/bench/benches/mechanisms.rs:
