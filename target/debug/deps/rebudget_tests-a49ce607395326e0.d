/root/repo/target/debug/deps/rebudget_tests-a49ce607395326e0.d: tests/src/lib.rs

/root/repo/target/debug/deps/librebudget_tests-a49ce607395326e0.rlib: tests/src/lib.rs

/root/repo/target/debug/deps/librebudget_tests-a49ce607395326e0.rmeta: tests/src/lib.rs

tests/src/lib.rs:
