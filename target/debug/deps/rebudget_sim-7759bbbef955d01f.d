/root/repo/target/debug/deps/rebudget_sim-7759bbbef955d01f.d: crates/sim/src/lib.rs crates/sim/src/analytic.rs crates/sim/src/config.rs crates/sim/src/critical_path.rs crates/sim/src/dram.rs crates/sim/src/dram_sim.rs crates/sim/src/groups.rs crates/sim/src/machine.rs crates/sim/src/monitor.rs crates/sim/src/simulation.rs crates/sim/src/trace_machine.rs crates/sim/src/utility_model.rs

/root/repo/target/debug/deps/librebudget_sim-7759bbbef955d01f.rlib: crates/sim/src/lib.rs crates/sim/src/analytic.rs crates/sim/src/config.rs crates/sim/src/critical_path.rs crates/sim/src/dram.rs crates/sim/src/dram_sim.rs crates/sim/src/groups.rs crates/sim/src/machine.rs crates/sim/src/monitor.rs crates/sim/src/simulation.rs crates/sim/src/trace_machine.rs crates/sim/src/utility_model.rs

/root/repo/target/debug/deps/librebudget_sim-7759bbbef955d01f.rmeta: crates/sim/src/lib.rs crates/sim/src/analytic.rs crates/sim/src/config.rs crates/sim/src/critical_path.rs crates/sim/src/dram.rs crates/sim/src/dram_sim.rs crates/sim/src/groups.rs crates/sim/src/machine.rs crates/sim/src/monitor.rs crates/sim/src/simulation.rs crates/sim/src/trace_machine.rs crates/sim/src/utility_model.rs

crates/sim/src/lib.rs:
crates/sim/src/analytic.rs:
crates/sim/src/config.rs:
crates/sim/src/critical_path.rs:
crates/sim/src/dram.rs:
crates/sim/src/dram_sim.rs:
crates/sim/src/groups.rs:
crates/sim/src/machine.rs:
crates/sim/src/monitor.rs:
crates/sim/src/simulation.rs:
crates/sim/src/trace_machine.rs:
crates/sim/src/utility_model.rs:
