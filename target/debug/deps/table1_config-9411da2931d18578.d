/root/repo/target/debug/deps/table1_config-9411da2931d18578.d: crates/bench/src/bin/table1_config.rs

/root/repo/target/debug/deps/libtable1_config-9411da2931d18578.rmeta: crates/bench/src/bin/table1_config.rs

crates/bench/src/bin/table1_config.rs:
