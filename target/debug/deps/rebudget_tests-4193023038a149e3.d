/root/repo/target/debug/deps/rebudget_tests-4193023038a149e3.d: tests/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librebudget_tests-4193023038a149e3.rmeta: tests/src/lib.rs Cargo.toml

tests/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
