/root/repo/target/debug/deps/rebudget_core-ae277f772ffd0f4c.d: crates/core/src/lib.rs crates/core/src/ep.rs crates/core/src/linearized.rs crates/core/src/mechanisms.rs crates/core/src/sweep.rs crates/core/src/theory.rs crates/core/src/uncoordinated.rs Cargo.toml

/root/repo/target/debug/deps/librebudget_core-ae277f772ffd0f4c.rmeta: crates/core/src/lib.rs crates/core/src/ep.rs crates/core/src/linearized.rs crates/core/src/mechanisms.rs crates/core/src/sweep.rs crates/core/src/theory.rs crates/core/src/uncoordinated.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/ep.rs:
crates/core/src/linearized.rs:
crates/core/src/mechanisms.rs:
crates/core/src/sweep.rs:
crates/core/src/theory.rs:
crates/core/src/uncoordinated.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
