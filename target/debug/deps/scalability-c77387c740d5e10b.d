/root/repo/target/debug/deps/scalability-c77387c740d5e10b.d: crates/bench/src/bin/scalability.rs Cargo.toml

/root/repo/target/debug/deps/libscalability-c77387c740d5e10b.rmeta: crates/bench/src/bin/scalability.rs Cargo.toml

crates/bench/src/bin/scalability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
