/root/repo/target/debug/deps/rebudget_power-abb2f0a98bd51a62.d: crates/power/src/lib.rs crates/power/src/budget.rs crates/power/src/dvfs.rs crates/power/src/model.rs crates/power/src/thermal.rs crates/power/src/thermal_grid.rs Cargo.toml

/root/repo/target/debug/deps/librebudget_power-abb2f0a98bd51a62.rmeta: crates/power/src/lib.rs crates/power/src/budget.rs crates/power/src/dvfs.rs crates/power/src/model.rs crates/power/src/thermal.rs crates/power/src/thermal_grid.rs Cargo.toml

crates/power/src/lib.rs:
crates/power/src/budget.rs:
crates/power/src/dvfs.rs:
crates/power/src/model.rs:
crates/power/src/thermal.rs:
crates/power/src/thermal_grid.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
