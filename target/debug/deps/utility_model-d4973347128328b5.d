/root/repo/target/debug/deps/utility_model-d4973347128328b5.d: crates/bench/benches/utility_model.rs

/root/repo/target/debug/deps/libutility_model-d4973347128328b5.rmeta: crates/bench/benches/utility_model.rs

crates/bench/benches/utility_model.rs:
