/root/repo/target/debug/deps/convergence-ce136642eac5dc28.d: crates/bench/src/bin/convergence.rs

/root/repo/target/debug/deps/libconvergence-ce136642eac5dc28.rmeta: crates/bench/src/bin/convergence.rs

crates/bench/src/bin/convergence.rs:
