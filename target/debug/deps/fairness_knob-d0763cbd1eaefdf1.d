/root/repo/target/debug/deps/fairness_knob-d0763cbd1eaefdf1.d: examples/fairness_knob.rs

/root/repo/target/debug/deps/libfairness_knob-d0763cbd1eaefdf1.rmeta: examples/fairness_knob.rs

examples/fairness_knob.rs:
