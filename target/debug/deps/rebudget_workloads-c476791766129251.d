/root/repo/target/debug/deps/rebudget_workloads-c476791766129251.d: crates/workloads/src/lib.rs crates/workloads/src/bundle.rs crates/workloads/src/category.rs crates/workloads/src/suite.rs

/root/repo/target/debug/deps/librebudget_workloads-c476791766129251.rlib: crates/workloads/src/lib.rs crates/workloads/src/bundle.rs crates/workloads/src/category.rs crates/workloads/src/suite.rs

/root/repo/target/debug/deps/librebudget_workloads-c476791766129251.rmeta: crates/workloads/src/lib.rs crates/workloads/src/bundle.rs crates/workloads/src/category.rs crates/workloads/src/suite.rs

crates/workloads/src/lib.rs:
crates/workloads/src/bundle.rs:
crates/workloads/src/category.rs:
crates/workloads/src/suite.rs:
