/root/repo/target/debug/deps/extensions-c76f9548dd6ea2af.d: tests/tests/extensions.rs

/root/repo/target/debug/deps/libextensions-c76f9548dd6ea2af.rmeta: tests/tests/extensions.rs

tests/tests/extensions.rs:
