/root/repo/target/debug/deps/market_properties-f8f66cba47075833.d: tests/tests/market_properties.rs

/root/repo/target/debug/deps/libmarket_properties-f8f66cba47075833.rmeta: tests/tests/market_properties.rs

tests/tests/market_properties.rs:
