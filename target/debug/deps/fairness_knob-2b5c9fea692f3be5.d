/root/repo/target/debug/deps/fairness_knob-2b5c9fea692f3be5.d: examples/fairness_knob.rs

/root/repo/target/debug/deps/libfairness_knob-2b5c9fea692f3be5.rmeta: examples/fairness_knob.rs

examples/fairness_knob.rs:
