/root/repo/target/debug/deps/multicore_simulation-df81b96f077a67ef.d: examples/multicore_simulation.rs

/root/repo/target/debug/deps/libmulticore_simulation-df81b96f077a67ef.rmeta: examples/multicore_simulation.rs

examples/multicore_simulation.rs:
