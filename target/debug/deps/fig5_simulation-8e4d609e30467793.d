/root/repo/target/debug/deps/fig5_simulation-8e4d609e30467793.d: crates/bench/src/bin/fig5_simulation.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_simulation-8e4d609e30467793.rmeta: crates/bench/src/bin/fig5_simulation.rs Cargo.toml

crates/bench/src/bin/fig5_simulation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
