/root/repo/target/debug/deps/quickstart-ccbb8841fbf24830.d: examples/quickstart.rs

/root/repo/target/debug/deps/libquickstart-ccbb8841fbf24830.rmeta: examples/quickstart.rs

examples/quickstart.rs:
