/root/repo/target/debug/deps/convergence-9eefeb6efee650ad.d: crates/bench/src/bin/convergence.rs

/root/repo/target/debug/deps/libconvergence-9eefeb6efee650ad.rmeta: crates/bench/src/bin/convergence.rs

crates/bench/src/bin/convergence.rs:
