/root/repo/target/debug/deps/rebudget_apps-887fb8f8257e95fa.d: crates/apps/src/lib.rs crates/apps/src/classify.rs crates/apps/src/perf.rs crates/apps/src/phase.rs crates/apps/src/profile.rs crates/apps/src/spec.rs crates/apps/src/trace.rs

/root/repo/target/debug/deps/librebudget_apps-887fb8f8257e95fa.rmeta: crates/apps/src/lib.rs crates/apps/src/classify.rs crates/apps/src/perf.rs crates/apps/src/phase.rs crates/apps/src/profile.rs crates/apps/src/spec.rs crates/apps/src/trace.rs

crates/apps/src/lib.rs:
crates/apps/src/classify.rs:
crates/apps/src/perf.rs:
crates/apps/src/phase.rs:
crates/apps/src/profile.rs:
crates/apps/src/spec.rs:
crates/apps/src/trace.rs:
