/root/repo/target/debug/deps/multithreaded-b5ee0d85673dc1ef.d: examples/multithreaded.rs Cargo.toml

/root/repo/target/debug/deps/libmultithreaded-b5ee0d85673dc1ef.rmeta: examples/multithreaded.rs Cargo.toml

examples/multithreaded.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
