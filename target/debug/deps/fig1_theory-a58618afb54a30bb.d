/root/repo/target/debug/deps/fig1_theory-a58618afb54a30bb.d: crates/bench/src/bin/fig1_theory.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_theory-a58618afb54a30bb.rmeta: crates/bench/src/bin/fig1_theory.rs Cargo.toml

crates/bench/src/bin/fig1_theory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
