/root/repo/target/debug/deps/quickstart-a879cb58c591ab44.d: examples/quickstart.rs

/root/repo/target/debug/deps/quickstart-a879cb58c591ab44: examples/quickstart.rs

examples/quickstart.rs:
