/root/repo/target/debug/deps/rebudget_sim-252b7bd654ec617c.d: crates/sim/src/lib.rs crates/sim/src/analytic.rs crates/sim/src/config.rs crates/sim/src/critical_path.rs crates/sim/src/dram.rs crates/sim/src/dram_sim.rs crates/sim/src/groups.rs crates/sim/src/machine.rs crates/sim/src/monitor.rs crates/sim/src/simulation.rs crates/sim/src/trace_machine.rs crates/sim/src/utility_model.rs Cargo.toml

/root/repo/target/debug/deps/librebudget_sim-252b7bd654ec617c.rmeta: crates/sim/src/lib.rs crates/sim/src/analytic.rs crates/sim/src/config.rs crates/sim/src/critical_path.rs crates/sim/src/dram.rs crates/sim/src/dram_sim.rs crates/sim/src/groups.rs crates/sim/src/machine.rs crates/sim/src/monitor.rs crates/sim/src/simulation.rs crates/sim/src/trace_machine.rs crates/sim/src/utility_model.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/analytic.rs:
crates/sim/src/config.rs:
crates/sim/src/critical_path.rs:
crates/sim/src/dram.rs:
crates/sim/src/dram_sim.rs:
crates/sim/src/groups.rs:
crates/sim/src/machine.rs:
crates/sim/src/monitor.rs:
crates/sim/src/simulation.rs:
crates/sim/src/trace_machine.rs:
crates/sim/src/utility_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
