/root/repo/target/debug/deps/rebudget_cli-089deb0117738589.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/librebudget_cli-089deb0117738589.rlib: crates/cli/src/lib.rs

/root/repo/target/debug/deps/librebudget_cli-089deb0117738589.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
