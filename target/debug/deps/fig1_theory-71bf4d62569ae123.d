/root/repo/target/debug/deps/fig1_theory-71bf4d62569ae123.d: crates/bench/src/bin/fig1_theory.rs

/root/repo/target/debug/deps/libfig1_theory-71bf4d62569ae123.rmeta: crates/bench/src/bin/fig1_theory.rs

crates/bench/src/bin/fig1_theory.rs:
