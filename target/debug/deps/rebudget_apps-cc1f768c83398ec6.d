/root/repo/target/debug/deps/rebudget_apps-cc1f768c83398ec6.d: crates/apps/src/lib.rs crates/apps/src/classify.rs crates/apps/src/perf.rs crates/apps/src/phase.rs crates/apps/src/profile.rs crates/apps/src/spec.rs crates/apps/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/librebudget_apps-cc1f768c83398ec6.rmeta: crates/apps/src/lib.rs crates/apps/src/classify.rs crates/apps/src/perf.rs crates/apps/src/phase.rs crates/apps/src/profile.rs crates/apps/src/spec.rs crates/apps/src/trace.rs Cargo.toml

crates/apps/src/lib.rs:
crates/apps/src/classify.rs:
crates/apps/src/perf.rs:
crates/apps/src/phase.rs:
crates/apps/src/profile.rs:
crates/apps/src/spec.rs:
crates/apps/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
