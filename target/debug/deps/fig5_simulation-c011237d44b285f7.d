/root/repo/target/debug/deps/fig5_simulation-c011237d44b285f7.d: crates/bench/src/bin/fig5_simulation.rs

/root/repo/target/debug/deps/fig5_simulation-c011237d44b285f7: crates/bench/src/bin/fig5_simulation.rs

crates/bench/src/bin/fig5_simulation.rs:
