/root/repo/target/debug/deps/rebudget_bench-7052bf13fd723bb1.d: crates/bench/src/lib.rs crates/bench/src/export.rs

/root/repo/target/debug/deps/rebudget_bench-7052bf13fd723bb1: crates/bench/src/lib.rs crates/bench/src/export.rs

crates/bench/src/lib.rs:
crates/bench/src/export.rs:
