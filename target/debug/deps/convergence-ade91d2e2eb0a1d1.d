/root/repo/target/debug/deps/convergence-ade91d2e2eb0a1d1.d: crates/bench/src/bin/convergence.rs

/root/repo/target/debug/deps/libconvergence-ade91d2e2eb0a1d1.rmeta: crates/bench/src/bin/convergence.rs

crates/bench/src/bin/convergence.rs:
