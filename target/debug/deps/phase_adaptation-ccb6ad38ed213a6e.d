/root/repo/target/debug/deps/phase_adaptation-ccb6ad38ed213a6e.d: tests/tests/phase_adaptation.rs

/root/repo/target/debug/deps/phase_adaptation-ccb6ad38ed213a6e: tests/tests/phase_adaptation.rs

tests/tests/phase_adaptation.rs:
