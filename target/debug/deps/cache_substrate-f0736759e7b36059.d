/root/repo/target/debug/deps/cache_substrate-f0736759e7b36059.d: crates/bench/benches/cache_substrate.rs

/root/repo/target/debug/deps/libcache_substrate-f0736759e7b36059.rmeta: crates/bench/benches/cache_substrate.rs

crates/bench/benches/cache_substrate.rs:
