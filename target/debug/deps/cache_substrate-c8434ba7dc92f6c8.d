/root/repo/target/debug/deps/cache_substrate-c8434ba7dc92f6c8.d: crates/bench/benches/cache_substrate.rs Cargo.toml

/root/repo/target/debug/deps/libcache_substrate-c8434ba7dc92f6c8.rmeta: crates/bench/benches/cache_substrate.rs Cargo.toml

crates/bench/benches/cache_substrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
