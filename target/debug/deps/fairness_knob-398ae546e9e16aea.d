/root/repo/target/debug/deps/fairness_knob-398ae546e9e16aea.d: examples/fairness_knob.rs

/root/repo/target/debug/deps/libfairness_knob-398ae546e9e16aea.rmeta: examples/fairness_knob.rs

examples/fairness_knob.rs:
