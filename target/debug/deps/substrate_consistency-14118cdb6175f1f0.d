/root/repo/target/debug/deps/substrate_consistency-14118cdb6175f1f0.d: tests/tests/substrate_consistency.rs Cargo.toml

/root/repo/target/debug/deps/libsubstrate_consistency-14118cdb6175f1f0.rmeta: tests/tests/substrate_consistency.rs Cargo.toml

tests/tests/substrate_consistency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
