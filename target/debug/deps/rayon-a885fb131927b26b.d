/root/repo/target/debug/deps/rayon-a885fb131927b26b.d: vendor/rayon/src/lib.rs vendor/rayon/src/iter.rs vendor/rayon/src/slice.rs

/root/repo/target/debug/deps/librayon-a885fb131927b26b.rmeta: vendor/rayon/src/lib.rs vendor/rayon/src/iter.rs vendor/rayon/src/slice.rs

vendor/rayon/src/lib.rs:
vendor/rayon/src/iter.rs:
vendor/rayon/src/slice.rs:
