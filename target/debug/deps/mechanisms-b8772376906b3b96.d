/root/repo/target/debug/deps/mechanisms-b8772376906b3b96.d: crates/bench/benches/mechanisms.rs

/root/repo/target/debug/deps/libmechanisms-b8772376906b3b96.rmeta: crates/bench/benches/mechanisms.rs

crates/bench/benches/mechanisms.rs:
