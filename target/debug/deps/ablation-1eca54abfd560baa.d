/root/repo/target/debug/deps/ablation-1eca54abfd560baa.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-1eca54abfd560baa: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
