/root/repo/target/debug/deps/rebudget_cache-429711d4e0964ec3.d: crates/cache/src/lib.rs crates/cache/src/config.rs crates/cache/src/futility.rs crates/cache/src/miss_curve.rs crates/cache/src/set_assoc.rs crates/cache/src/stack.rs crates/cache/src/talus.rs crates/cache/src/ucp.rs crates/cache/src/umon.rs crates/cache/src/way_partition.rs

/root/repo/target/debug/deps/librebudget_cache-429711d4e0964ec3.rmeta: crates/cache/src/lib.rs crates/cache/src/config.rs crates/cache/src/futility.rs crates/cache/src/miss_curve.rs crates/cache/src/set_assoc.rs crates/cache/src/stack.rs crates/cache/src/talus.rs crates/cache/src/ucp.rs crates/cache/src/umon.rs crates/cache/src/way_partition.rs

crates/cache/src/lib.rs:
crates/cache/src/config.rs:
crates/cache/src/futility.rs:
crates/cache/src/miss_curve.rs:
crates/cache/src/set_assoc.rs:
crates/cache/src/stack.rs:
crates/cache/src/talus.rs:
crates/cache/src/ucp.rs:
crates/cache/src/umon.rs:
crates/cache/src/way_partition.rs:
