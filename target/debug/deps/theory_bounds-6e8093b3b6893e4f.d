/root/repo/target/debug/deps/theory_bounds-6e8093b3b6893e4f.d: tests/tests/theory_bounds.rs Cargo.toml

/root/repo/target/debug/deps/libtheory_bounds-6e8093b3b6893e4f.rmeta: tests/tests/theory_bounds.rs Cargo.toml

tests/tests/theory_bounds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
