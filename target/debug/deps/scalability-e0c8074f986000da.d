/root/repo/target/debug/deps/scalability-e0c8074f986000da.d: crates/bench/src/bin/scalability.rs

/root/repo/target/debug/deps/scalability-e0c8074f986000da: crates/bench/src/bin/scalability.rs

crates/bench/src/bin/scalability.rs:
