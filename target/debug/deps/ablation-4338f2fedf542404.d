/root/repo/target/debug/deps/ablation-4338f2fedf542404.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/libablation-4338f2fedf542404.rmeta: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
