/root/repo/target/debug/deps/baselines-208cc3f9ada41816.d: crates/bench/src/bin/baselines.rs

/root/repo/target/debug/deps/libbaselines-208cc3f9ada41816.rmeta: crates/bench/src/bin/baselines.rs

crates/bench/src/bin/baselines.rs:
