/root/repo/target/debug/deps/datacenter_market-23c84796b469c6f5.d: examples/datacenter_market.rs

/root/repo/target/debug/deps/datacenter_market-23c84796b469c6f5: examples/datacenter_market.rs

examples/datacenter_market.rs:
