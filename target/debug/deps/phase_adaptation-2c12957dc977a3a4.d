/root/repo/target/debug/deps/phase_adaptation-2c12957dc977a3a4.d: tests/tests/phase_adaptation.rs Cargo.toml

/root/repo/target/debug/deps/libphase_adaptation-2c12957dc977a3a4.rmeta: tests/tests/phase_adaptation.rs Cargo.toml

tests/tests/phase_adaptation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
