/root/repo/target/debug/deps/ablation-492d4e9ca1f5d8d3.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-492d4e9ca1f5d8d3: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
