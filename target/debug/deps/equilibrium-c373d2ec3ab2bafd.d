/root/repo/target/debug/deps/equilibrium-c373d2ec3ab2bafd.d: crates/bench/benches/equilibrium.rs

/root/repo/target/debug/deps/libequilibrium-c373d2ec3ab2bafd.rmeta: crates/bench/benches/equilibrium.rs

crates/bench/benches/equilibrium.rs:
