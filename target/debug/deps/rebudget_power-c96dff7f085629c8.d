/root/repo/target/debug/deps/rebudget_power-c96dff7f085629c8.d: crates/power/src/lib.rs crates/power/src/budget.rs crates/power/src/dvfs.rs crates/power/src/model.rs crates/power/src/thermal.rs crates/power/src/thermal_grid.rs

/root/repo/target/debug/deps/librebudget_power-c96dff7f085629c8.rmeta: crates/power/src/lib.rs crates/power/src/budget.rs crates/power/src/dvfs.rs crates/power/src/model.rs crates/power/src/thermal.rs crates/power/src/thermal_grid.rs

crates/power/src/lib.rs:
crates/power/src/budget.rs:
crates/power/src/dvfs.rs:
crates/power/src/model.rs:
crates/power/src/thermal.rs:
crates/power/src/thermal_grid.rs:
