/root/repo/target/debug/deps/rebudget_cli-2adb8661972b3d0c.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/rebudget_cli-2adb8661972b3d0c: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
