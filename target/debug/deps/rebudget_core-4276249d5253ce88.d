/root/repo/target/debug/deps/rebudget_core-4276249d5253ce88.d: crates/core/src/lib.rs crates/core/src/ep.rs crates/core/src/linearized.rs crates/core/src/mechanisms.rs crates/core/src/sweep.rs crates/core/src/theory.rs crates/core/src/uncoordinated.rs

/root/repo/target/debug/deps/librebudget_core-4276249d5253ce88.rmeta: crates/core/src/lib.rs crates/core/src/ep.rs crates/core/src/linearized.rs crates/core/src/mechanisms.rs crates/core/src/sweep.rs crates/core/src/theory.rs crates/core/src/uncoordinated.rs

crates/core/src/lib.rs:
crates/core/src/ep.rs:
crates/core/src/linearized.rs:
crates/core/src/mechanisms.rs:
crates/core/src/sweep.rs:
crates/core/src/theory.rs:
crates/core/src/uncoordinated.rs:
