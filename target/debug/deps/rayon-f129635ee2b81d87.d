/root/repo/target/debug/deps/rayon-f129635ee2b81d87.d: vendor/rayon/src/lib.rs vendor/rayon/src/iter.rs vendor/rayon/src/slice.rs Cargo.toml

/root/repo/target/debug/deps/librayon-f129635ee2b81d87.rmeta: vendor/rayon/src/lib.rs vendor/rayon/src/iter.rs vendor/rayon/src/slice.rs Cargo.toml

vendor/rayon/src/lib.rs:
vendor/rayon/src/iter.rs:
vendor/rayon/src/slice.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
