/root/repo/target/debug/deps/simulation_pipeline-86c9ab8b869fab71.d: tests/tests/simulation_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libsimulation_pipeline-86c9ab8b869fab71.rmeta: tests/tests/simulation_pipeline.rs Cargo.toml

tests/tests/simulation_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
