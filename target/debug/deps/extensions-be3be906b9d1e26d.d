/root/repo/target/debug/deps/extensions-be3be906b9d1e26d.d: tests/tests/extensions.rs

/root/repo/target/debug/deps/extensions-be3be906b9d1e26d: tests/tests/extensions.rs

tests/tests/extensions.rs:
