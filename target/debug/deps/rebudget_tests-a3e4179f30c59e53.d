/root/repo/target/debug/deps/rebudget_tests-a3e4179f30c59e53.d: tests/src/lib.rs

/root/repo/target/debug/deps/librebudget_tests-a3e4179f30c59e53.rmeta: tests/src/lib.rs

tests/src/lib.rs:
