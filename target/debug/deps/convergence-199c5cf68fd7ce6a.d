/root/repo/target/debug/deps/convergence-199c5cf68fd7ce6a.d: crates/bench/src/bin/convergence.rs

/root/repo/target/debug/deps/convergence-199c5cf68fd7ce6a: crates/bench/src/bin/convergence.rs

crates/bench/src/bin/convergence.rs:
