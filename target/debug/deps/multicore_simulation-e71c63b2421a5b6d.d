/root/repo/target/debug/deps/multicore_simulation-e71c63b2421a5b6d.d: examples/multicore_simulation.rs

/root/repo/target/debug/deps/multicore_simulation-e71c63b2421a5b6d: examples/multicore_simulation.rs

examples/multicore_simulation.rs:
