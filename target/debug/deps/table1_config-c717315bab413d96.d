/root/repo/target/debug/deps/table1_config-c717315bab413d96.d: crates/bench/src/bin/table1_config.rs

/root/repo/target/debug/deps/table1_config-c717315bab413d96: crates/bench/src/bin/table1_config.rs

crates/bench/src/bin/table1_config.rs:
