/root/repo/target/debug/deps/market_properties-cd355400cc65dfaa.d: tests/tests/market_properties.rs

/root/repo/target/debug/deps/libmarket_properties-cd355400cc65dfaa.rmeta: tests/tests/market_properties.rs

tests/tests/market_properties.rs:
