/root/repo/target/debug/deps/fig5_simulation-a9ce5817fda02b9b.d: crates/bench/src/bin/fig5_simulation.rs

/root/repo/target/debug/deps/fig5_simulation-a9ce5817fda02b9b: crates/bench/src/bin/fig5_simulation.rs

crates/bench/src/bin/fig5_simulation.rs:
