/root/repo/target/debug/deps/baselines-166887edd4be32f1.d: crates/bench/src/bin/baselines.rs

/root/repo/target/debug/deps/baselines-166887edd4be32f1: crates/bench/src/bin/baselines.rs

crates/bench/src/bin/baselines.rs:
