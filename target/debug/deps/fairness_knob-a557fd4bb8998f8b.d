/root/repo/target/debug/deps/fairness_knob-a557fd4bb8998f8b.d: examples/fairness_knob.rs

/root/repo/target/debug/deps/libfairness_knob-a557fd4bb8998f8b.rmeta: examples/fairness_knob.rs

examples/fairness_knob.rs:
