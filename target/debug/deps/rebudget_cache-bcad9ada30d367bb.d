/root/repo/target/debug/deps/rebudget_cache-bcad9ada30d367bb.d: crates/cache/src/lib.rs crates/cache/src/config.rs crates/cache/src/futility.rs crates/cache/src/miss_curve.rs crates/cache/src/set_assoc.rs crates/cache/src/stack.rs crates/cache/src/talus.rs crates/cache/src/ucp.rs crates/cache/src/umon.rs crates/cache/src/way_partition.rs Cargo.toml

/root/repo/target/debug/deps/librebudget_cache-bcad9ada30d367bb.rmeta: crates/cache/src/lib.rs crates/cache/src/config.rs crates/cache/src/futility.rs crates/cache/src/miss_curve.rs crates/cache/src/set_assoc.rs crates/cache/src/stack.rs crates/cache/src/talus.rs crates/cache/src/ucp.rs crates/cache/src/umon.rs crates/cache/src/way_partition.rs Cargo.toml

crates/cache/src/lib.rs:
crates/cache/src/config.rs:
crates/cache/src/futility.rs:
crates/cache/src/miss_curve.rs:
crates/cache/src/set_assoc.rs:
crates/cache/src/stack.rs:
crates/cache/src/talus.rs:
crates/cache/src/ucp.rs:
crates/cache/src/umon.rs:
crates/cache/src/way_partition.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
