/root/repo/target/debug/deps/scalability-b7f71fc6aa1e8717.d: crates/bench/src/bin/scalability.rs

/root/repo/target/debug/deps/libscalability-b7f71fc6aa1e8717.rmeta: crates/bench/src/bin/scalability.rs

crates/bench/src/bin/scalability.rs:
