/root/repo/target/debug/deps/scalability-5c752e0559551a11.d: crates/bench/src/bin/scalability.rs

/root/repo/target/debug/deps/scalability-5c752e0559551a11: crates/bench/src/bin/scalability.rs

crates/bench/src/bin/scalability.rs:
