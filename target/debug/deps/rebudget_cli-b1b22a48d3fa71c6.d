/root/repo/target/debug/deps/rebudget_cli-b1b22a48d3fa71c6.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/librebudget_cli-b1b22a48d3fa71c6.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
