/root/repo/target/debug/deps/quickstart-cb61a7ef7c9a861e.d: examples/quickstart.rs

/root/repo/target/debug/deps/libquickstart-cb61a7ef7c9a861e.rmeta: examples/quickstart.rs

examples/quickstart.rs:
