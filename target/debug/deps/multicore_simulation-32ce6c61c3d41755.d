/root/repo/target/debug/deps/multicore_simulation-32ce6c61c3d41755.d: examples/multicore_simulation.rs

/root/repo/target/debug/deps/multicore_simulation-32ce6c61c3d41755: examples/multicore_simulation.rs

examples/multicore_simulation.rs:
