/root/repo/target/debug/deps/fairness_knob-606916b9d50e3bef.d: examples/fairness_knob.rs Cargo.toml

/root/repo/target/debug/deps/libfairness_knob-606916b9d50e3bef.rmeta: examples/fairness_knob.rs Cargo.toml

examples/fairness_knob.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
