/root/repo/target/debug/deps/rebudget_core-8d7002547d364fdc.d: crates/core/src/lib.rs crates/core/src/ep.rs crates/core/src/linearized.rs crates/core/src/mechanisms.rs crates/core/src/sweep.rs crates/core/src/theory.rs crates/core/src/uncoordinated.rs Cargo.toml

/root/repo/target/debug/deps/librebudget_core-8d7002547d364fdc.rmeta: crates/core/src/lib.rs crates/core/src/ep.rs crates/core/src/linearized.rs crates/core/src/mechanisms.rs crates/core/src/sweep.rs crates/core/src/theory.rs crates/core/src/uncoordinated.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/ep.rs:
crates/core/src/linearized.rs:
crates/core/src/mechanisms.rs:
crates/core/src/sweep.rs:
crates/core/src/theory.rs:
crates/core/src/uncoordinated.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
