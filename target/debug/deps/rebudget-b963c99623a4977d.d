/root/repo/target/debug/deps/rebudget-b963c99623a4977d.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/rebudget-b963c99623a4977d: crates/cli/src/main.rs

crates/cli/src/main.rs:
