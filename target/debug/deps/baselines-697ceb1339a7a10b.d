/root/repo/target/debug/deps/baselines-697ceb1339a7a10b.d: crates/bench/src/bin/baselines.rs

/root/repo/target/debug/deps/baselines-697ceb1339a7a10b: crates/bench/src/bin/baselines.rs

crates/bench/src/bin/baselines.rs:
