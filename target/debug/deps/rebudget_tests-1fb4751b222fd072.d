/root/repo/target/debug/deps/rebudget_tests-1fb4751b222fd072.d: tests/src/lib.rs

/root/repo/target/debug/deps/rebudget_tests-1fb4751b222fd072: tests/src/lib.rs

tests/src/lib.rs:
