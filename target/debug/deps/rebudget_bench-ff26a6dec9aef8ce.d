/root/repo/target/debug/deps/rebudget_bench-ff26a6dec9aef8ce.d: crates/bench/src/lib.rs crates/bench/src/export.rs

/root/repo/target/debug/deps/librebudget_bench-ff26a6dec9aef8ce.rmeta: crates/bench/src/lib.rs crates/bench/src/export.rs

crates/bench/src/lib.rs:
crates/bench/src/export.rs:
