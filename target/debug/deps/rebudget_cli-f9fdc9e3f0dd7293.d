/root/repo/target/debug/deps/rebudget_cli-f9fdc9e3f0dd7293.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/librebudget_cli-f9fdc9e3f0dd7293.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
