/root/repo/target/debug/deps/substrate_consistency-9b6dc4abd67e9036.d: tests/tests/substrate_consistency.rs

/root/repo/target/debug/deps/substrate_consistency-9b6dc4abd67e9036: tests/tests/substrate_consistency.rs

tests/tests/substrate_consistency.rs:
