/root/repo/target/debug/deps/market_properties-ebe7cfe53b15ff8c.d: tests/tests/market_properties.rs Cargo.toml

/root/repo/target/debug/deps/libmarket_properties-ebe7cfe53b15ff8c.rmeta: tests/tests/market_properties.rs Cargo.toml

tests/tests/market_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
