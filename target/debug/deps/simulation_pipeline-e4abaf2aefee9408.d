/root/repo/target/debug/deps/simulation_pipeline-e4abaf2aefee9408.d: tests/tests/simulation_pipeline.rs

/root/repo/target/debug/deps/simulation_pipeline-e4abaf2aefee9408: tests/tests/simulation_pipeline.rs

tests/tests/simulation_pipeline.rs:
