/root/repo/target/debug/deps/baselines-edb8e89fe1f28ac4.d: crates/bench/src/bin/baselines.rs Cargo.toml

/root/repo/target/debug/deps/libbaselines-edb8e89fe1f28ac4.rmeta: crates/bench/src/bin/baselines.rs Cargo.toml

crates/bench/src/bin/baselines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
