/root/repo/target/debug/deps/parallel_determinism-c2861a7e1f424567.d: tests/tests/parallel_determinism.rs

/root/repo/target/debug/deps/parallel_determinism-c2861a7e1f424567: tests/tests/parallel_determinism.rs

tests/tests/parallel_determinism.rs:
