/root/repo/target/debug/deps/fig2_cache_utility-9c0c9b7a4673be76.d: crates/bench/src/bin/fig2_cache_utility.rs

/root/repo/target/debug/deps/fig2_cache_utility-9c0c9b7a4673be76: crates/bench/src/bin/fig2_cache_utility.rs

crates/bench/src/bin/fig2_cache_utility.rs:
