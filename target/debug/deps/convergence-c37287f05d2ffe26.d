/root/repo/target/debug/deps/convergence-c37287f05d2ffe26.d: crates/bench/src/bin/convergence.rs

/root/repo/target/debug/deps/convergence-c37287f05d2ffe26: crates/bench/src/bin/convergence.rs

crates/bench/src/bin/convergence.rs:
