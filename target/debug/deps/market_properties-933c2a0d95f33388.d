/root/repo/target/debug/deps/market_properties-933c2a0d95f33388.d: tests/tests/market_properties.rs

/root/repo/target/debug/deps/market_properties-933c2a0d95f33388: tests/tests/market_properties.rs

tests/tests/market_properties.rs:
