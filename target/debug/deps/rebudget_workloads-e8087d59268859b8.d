/root/repo/target/debug/deps/rebudget_workloads-e8087d59268859b8.d: crates/workloads/src/lib.rs crates/workloads/src/bundle.rs crates/workloads/src/category.rs crates/workloads/src/suite.rs

/root/repo/target/debug/deps/librebudget_workloads-e8087d59268859b8.rmeta: crates/workloads/src/lib.rs crates/workloads/src/bundle.rs crates/workloads/src/category.rs crates/workloads/src/suite.rs

crates/workloads/src/lib.rs:
crates/workloads/src/bundle.rs:
crates/workloads/src/category.rs:
crates/workloads/src/suite.rs:
