/root/repo/target/debug/deps/rebudget_bench-1f2f08e52c9390e2.d: crates/bench/src/lib.rs crates/bench/src/export.rs

/root/repo/target/debug/deps/librebudget_bench-1f2f08e52c9390e2.rlib: crates/bench/src/lib.rs crates/bench/src/export.rs

/root/repo/target/debug/deps/librebudget_bench-1f2f08e52c9390e2.rmeta: crates/bench/src/lib.rs crates/bench/src/export.rs

crates/bench/src/lib.rs:
crates/bench/src/export.rs:
