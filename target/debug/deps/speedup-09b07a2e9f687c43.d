/root/repo/target/debug/deps/speedup-09b07a2e9f687c43.d: crates/bench/benches/speedup.rs

/root/repo/target/debug/deps/libspeedup-09b07a2e9f687c43.rmeta: crates/bench/benches/speedup.rs

crates/bench/benches/speedup.rs:
