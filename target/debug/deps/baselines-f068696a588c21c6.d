/root/repo/target/debug/deps/baselines-f068696a588c21c6.d: crates/bench/src/bin/baselines.rs

/root/repo/target/debug/deps/libbaselines-f068696a588c21c6.rmeta: crates/bench/src/bin/baselines.rs

crates/bench/src/bin/baselines.rs:
