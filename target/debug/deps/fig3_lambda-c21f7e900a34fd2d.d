/root/repo/target/debug/deps/fig3_lambda-c21f7e900a34fd2d.d: crates/bench/src/bin/fig3_lambda.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_lambda-c21f7e900a34fd2d.rmeta: crates/bench/src/bin/fig3_lambda.rs Cargo.toml

crates/bench/src/bin/fig3_lambda.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
