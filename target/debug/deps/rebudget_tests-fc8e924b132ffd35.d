/root/repo/target/debug/deps/rebudget_tests-fc8e924b132ffd35.d: tests/src/lib.rs

/root/repo/target/debug/deps/librebudget_tests-fc8e924b132ffd35.rmeta: tests/src/lib.rs

tests/src/lib.rs:
