/root/repo/target/debug/deps/fig4_analytical-30d383798638db84.d: crates/bench/src/bin/fig4_analytical.rs

/root/repo/target/debug/deps/libfig4_analytical-30d383798638db84.rmeta: crates/bench/src/bin/fig4_analytical.rs

crates/bench/src/bin/fig4_analytical.rs:
