/root/repo/target/debug/deps/datacenter_market-6db193a6260049e2.d: examples/datacenter_market.rs

/root/repo/target/debug/deps/datacenter_market-6db193a6260049e2: examples/datacenter_market.rs

examples/datacenter_market.rs:
