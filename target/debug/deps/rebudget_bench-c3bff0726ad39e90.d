/root/repo/target/debug/deps/rebudget_bench-c3bff0726ad39e90.d: crates/bench/src/lib.rs crates/bench/src/export.rs

/root/repo/target/debug/deps/librebudget_bench-c3bff0726ad39e90.rmeta: crates/bench/src/lib.rs crates/bench/src/export.rs

crates/bench/src/lib.rs:
crates/bench/src/export.rs:
