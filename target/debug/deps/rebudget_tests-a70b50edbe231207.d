/root/repo/target/debug/deps/rebudget_tests-a70b50edbe231207.d: tests/src/lib.rs

/root/repo/target/debug/deps/librebudget_tests-a70b50edbe231207.rmeta: tests/src/lib.rs

tests/src/lib.rs:
