/root/repo/target/debug/deps/datacenter_market-bf35b758b8b9458e.d: examples/datacenter_market.rs Cargo.toml

/root/repo/target/debug/deps/libdatacenter_market-bf35b758b8b9458e.rmeta: examples/datacenter_market.rs Cargo.toml

examples/datacenter_market.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
