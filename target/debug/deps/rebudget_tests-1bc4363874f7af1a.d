/root/repo/target/debug/deps/rebudget_tests-1bc4363874f7af1a.d: tests/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librebudget_tests-1bc4363874f7af1a.rmeta: tests/src/lib.rs Cargo.toml

tests/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
