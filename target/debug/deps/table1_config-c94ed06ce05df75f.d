/root/repo/target/debug/deps/table1_config-c94ed06ce05df75f.d: crates/bench/src/bin/table1_config.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_config-c94ed06ce05df75f.rmeta: crates/bench/src/bin/table1_config.rs Cargo.toml

crates/bench/src/bin/table1_config.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
