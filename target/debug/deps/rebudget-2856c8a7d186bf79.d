/root/repo/target/debug/deps/rebudget-2856c8a7d186bf79.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/librebudget-2856c8a7d186bf79.rmeta: crates/cli/src/main.rs

crates/cli/src/main.rs:
