/root/repo/target/debug/deps/substrate_consistency-c076c7f2b138ee55.d: tests/tests/substrate_consistency.rs

/root/repo/target/debug/deps/libsubstrate_consistency-c076c7f2b138ee55.rmeta: tests/tests/substrate_consistency.rs

tests/tests/substrate_consistency.rs:
