/root/repo/target/debug/deps/table1_config-701423cfd849dc53.d: crates/bench/src/bin/table1_config.rs

/root/repo/target/debug/deps/table1_config-701423cfd849dc53: crates/bench/src/bin/table1_config.rs

crates/bench/src/bin/table1_config.rs:
