/root/repo/target/debug/deps/multithreaded-4ee812309c8a33a3.d: examples/multithreaded.rs

/root/repo/target/debug/deps/multithreaded-4ee812309c8a33a3: examples/multithreaded.rs

examples/multithreaded.rs:
