/root/repo/target/debug/deps/extensions-ead6e3681ce7e2a5.d: tests/tests/extensions.rs

/root/repo/target/debug/deps/extensions-ead6e3681ce7e2a5: tests/tests/extensions.rs

tests/tests/extensions.rs:
