/root/repo/target/debug/deps/end_to_end-be40bfe03d413f88.d: tests/tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-be40bfe03d413f88: tests/tests/end_to_end.rs

tests/tests/end_to_end.rs:
