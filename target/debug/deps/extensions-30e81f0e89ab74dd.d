/root/repo/target/debug/deps/extensions-30e81f0e89ab74dd.d: tests/tests/extensions.rs

/root/repo/target/debug/deps/extensions-30e81f0e89ab74dd: tests/tests/extensions.rs

tests/tests/extensions.rs:
