/root/repo/target/debug/deps/baselines-90c4d1713ddebd1d.d: crates/bench/src/bin/baselines.rs

/root/repo/target/debug/deps/libbaselines-90c4d1713ddebd1d.rmeta: crates/bench/src/bin/baselines.rs

crates/bench/src/bin/baselines.rs:
