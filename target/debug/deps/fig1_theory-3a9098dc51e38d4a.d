/root/repo/target/debug/deps/fig1_theory-3a9098dc51e38d4a.d: crates/bench/src/bin/fig1_theory.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_theory-3a9098dc51e38d4a.rmeta: crates/bench/src/bin/fig1_theory.rs Cargo.toml

crates/bench/src/bin/fig1_theory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
