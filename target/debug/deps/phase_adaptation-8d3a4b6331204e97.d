/root/repo/target/debug/deps/phase_adaptation-8d3a4b6331204e97.d: tests/tests/phase_adaptation.rs

/root/repo/target/debug/deps/phase_adaptation-8d3a4b6331204e97: tests/tests/phase_adaptation.rs

tests/tests/phase_adaptation.rs:
