/root/repo/target/debug/deps/multicore_simulation-bedc326bdb7e015e.d: examples/multicore_simulation.rs

/root/repo/target/debug/deps/libmulticore_simulation-bedc326bdb7e015e.rmeta: examples/multicore_simulation.rs

examples/multicore_simulation.rs:
