/root/repo/target/debug/deps/rebudget-bf63cf9685679dab.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/librebudget-bf63cf9685679dab.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
