/root/repo/target/debug/deps/substrate_consistency-08532b4a529d4601.d: tests/tests/substrate_consistency.rs

/root/repo/target/debug/deps/substrate_consistency-08532b4a529d4601: tests/tests/substrate_consistency.rs

tests/tests/substrate_consistency.rs:
