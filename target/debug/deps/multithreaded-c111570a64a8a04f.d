/root/repo/target/debug/deps/multithreaded-c111570a64a8a04f.d: examples/multithreaded.rs Cargo.toml

/root/repo/target/debug/deps/libmultithreaded-c111570a64a8a04f.rmeta: examples/multithreaded.rs Cargo.toml

examples/multithreaded.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
