/root/repo/target/debug/deps/fig3_lambda-c2e33840ca16c43a.d: crates/bench/src/bin/fig3_lambda.rs

/root/repo/target/debug/deps/libfig3_lambda-c2e33840ca16c43a.rmeta: crates/bench/src/bin/fig3_lambda.rs

crates/bench/src/bin/fig3_lambda.rs:
