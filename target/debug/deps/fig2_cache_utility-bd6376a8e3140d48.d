/root/repo/target/debug/deps/fig2_cache_utility-bd6376a8e3140d48.d: crates/bench/src/bin/fig2_cache_utility.rs

/root/repo/target/debug/deps/libfig2_cache_utility-bd6376a8e3140d48.rmeta: crates/bench/src/bin/fig2_cache_utility.rs

crates/bench/src/bin/fig2_cache_utility.rs:
