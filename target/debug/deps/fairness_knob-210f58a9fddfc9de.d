/root/repo/target/debug/deps/fairness_knob-210f58a9fddfc9de.d: examples/fairness_knob.rs Cargo.toml

/root/repo/target/debug/deps/libfairness_knob-210f58a9fddfc9de.rmeta: examples/fairness_knob.rs Cargo.toml

examples/fairness_knob.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
