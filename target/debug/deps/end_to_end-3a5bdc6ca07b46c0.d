/root/repo/target/debug/deps/end_to_end-3a5bdc6ca07b46c0.d: tests/tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-3a5bdc6ca07b46c0: tests/tests/end_to_end.rs

tests/tests/end_to_end.rs:
