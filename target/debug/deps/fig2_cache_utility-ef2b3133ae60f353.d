/root/repo/target/debug/deps/fig2_cache_utility-ef2b3133ae60f353.d: crates/bench/src/bin/fig2_cache_utility.rs

/root/repo/target/debug/deps/fig2_cache_utility-ef2b3133ae60f353: crates/bench/src/bin/fig2_cache_utility.rs

crates/bench/src/bin/fig2_cache_utility.rs:
