/root/repo/target/debug/deps/scalability-d73253790d4411d5.d: crates/bench/src/bin/scalability.rs

/root/repo/target/debug/deps/libscalability-d73253790d4411d5.rmeta: crates/bench/src/bin/scalability.rs

crates/bench/src/bin/scalability.rs:
