/root/repo/target/debug/deps/theory_bounds-d9cf7991257a9ac9.d: tests/tests/theory_bounds.rs

/root/repo/target/debug/deps/libtheory_bounds-d9cf7991257a9ac9.rmeta: tests/tests/theory_bounds.rs

tests/tests/theory_bounds.rs:
