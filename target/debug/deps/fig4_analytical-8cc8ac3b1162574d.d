/root/repo/target/debug/deps/fig4_analytical-8cc8ac3b1162574d.d: crates/bench/src/bin/fig4_analytical.rs

/root/repo/target/debug/deps/fig4_analytical-8cc8ac3b1162574d: crates/bench/src/bin/fig4_analytical.rs

crates/bench/src/bin/fig4_analytical.rs:
