/root/repo/target/debug/deps/rebudget-3b489d7b3512bad2.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/librebudget-3b489d7b3512bad2.rmeta: crates/cli/src/main.rs

crates/cli/src/main.rs:
