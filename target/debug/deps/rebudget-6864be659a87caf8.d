/root/repo/target/debug/deps/rebudget-6864be659a87caf8.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/librebudget-6864be659a87caf8.rmeta: crates/cli/src/main.rs

crates/cli/src/main.rs:
