/root/repo/target/debug/deps/fig5_simulation-43722cad62110ae8.d: crates/bench/src/bin/fig5_simulation.rs

/root/repo/target/debug/deps/fig5_simulation-43722cad62110ae8: crates/bench/src/bin/fig5_simulation.rs

crates/bench/src/bin/fig5_simulation.rs:
