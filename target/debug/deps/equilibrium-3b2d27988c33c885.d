/root/repo/target/debug/deps/equilibrium-3b2d27988c33c885.d: crates/bench/benches/equilibrium.rs Cargo.toml

/root/repo/target/debug/deps/libequilibrium-3b2d27988c33c885.rmeta: crates/bench/benches/equilibrium.rs Cargo.toml

crates/bench/benches/equilibrium.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
