/root/repo/target/debug/deps/substrate_properties-5595216417dac04c.d: tests/tests/substrate_properties.rs Cargo.toml

/root/repo/target/debug/deps/libsubstrate_properties-5595216417dac04c.rmeta: tests/tests/substrate_properties.rs Cargo.toml

tests/tests/substrate_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
