/root/repo/target/debug/deps/fig3_lambda-c6adb299be07bad6.d: crates/bench/src/bin/fig3_lambda.rs

/root/repo/target/debug/deps/fig3_lambda-c6adb299be07bad6: crates/bench/src/bin/fig3_lambda.rs

crates/bench/src/bin/fig3_lambda.rs:
