/root/repo/target/debug/deps/rebudget_tests-1117897c96c131f2.d: tests/src/lib.rs

/root/repo/target/debug/deps/librebudget_tests-1117897c96c131f2.rlib: tests/src/lib.rs

/root/repo/target/debug/deps/librebudget_tests-1117897c96c131f2.rmeta: tests/src/lib.rs

tests/src/lib.rs:
