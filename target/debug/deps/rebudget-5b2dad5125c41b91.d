/root/repo/target/debug/deps/rebudget-5b2dad5125c41b91.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/rebudget-5b2dad5125c41b91: crates/cli/src/main.rs

crates/cli/src/main.rs:
