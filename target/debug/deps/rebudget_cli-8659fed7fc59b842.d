/root/repo/target/debug/deps/rebudget_cli-8659fed7fc59b842.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/librebudget_cli-8659fed7fc59b842.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
