/root/repo/target/debug/deps/quickstart-64ea14bd4c46e727.d: examples/quickstart.rs

/root/repo/target/debug/deps/quickstart-64ea14bd4c46e727: examples/quickstart.rs

examples/quickstart.rs:
