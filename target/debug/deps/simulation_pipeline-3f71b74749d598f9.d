/root/repo/target/debug/deps/simulation_pipeline-3f71b74749d598f9.d: tests/tests/simulation_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libsimulation_pipeline-3f71b74749d598f9.rmeta: tests/tests/simulation_pipeline.rs Cargo.toml

tests/tests/simulation_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
