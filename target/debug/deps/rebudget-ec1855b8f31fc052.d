/root/repo/target/debug/deps/rebudget-ec1855b8f31fc052.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/librebudget-ec1855b8f31fc052.rmeta: crates/cli/src/main.rs

crates/cli/src/main.rs:
