/root/repo/target/debug/deps/parallel_determinism-afdfcb0f914862c6.d: tests/tests/parallel_determinism.rs

/root/repo/target/debug/deps/parallel_determinism-afdfcb0f914862c6: tests/tests/parallel_determinism.rs

tests/tests/parallel_determinism.rs:
