/root/repo/target/debug/deps/multithreaded-6196e93cb3e2d6ef.d: examples/multithreaded.rs

/root/repo/target/debug/deps/libmultithreaded-6196e93cb3e2d6ef.rmeta: examples/multithreaded.rs

examples/multithreaded.rs:
