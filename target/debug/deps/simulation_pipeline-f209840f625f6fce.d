/root/repo/target/debug/deps/simulation_pipeline-f209840f625f6fce.d: tests/tests/simulation_pipeline.rs

/root/repo/target/debug/deps/libsimulation_pipeline-f209840f625f6fce.rmeta: tests/tests/simulation_pipeline.rs

tests/tests/simulation_pipeline.rs:
