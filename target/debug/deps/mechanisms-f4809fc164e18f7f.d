/root/repo/target/debug/deps/mechanisms-f4809fc164e18f7f.d: crates/bench/benches/mechanisms.rs Cargo.toml

/root/repo/target/debug/deps/libmechanisms-f4809fc164e18f7f.rmeta: crates/bench/benches/mechanisms.rs Cargo.toml

crates/bench/benches/mechanisms.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
