/root/repo/target/debug/deps/fig3_lambda-d58408ff12ef7158.d: crates/bench/src/bin/fig3_lambda.rs

/root/repo/target/debug/deps/fig3_lambda-d58408ff12ef7158: crates/bench/src/bin/fig3_lambda.rs

crates/bench/src/bin/fig3_lambda.rs:
