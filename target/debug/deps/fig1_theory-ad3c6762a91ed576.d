/root/repo/target/debug/deps/fig1_theory-ad3c6762a91ed576.d: crates/bench/src/bin/fig1_theory.rs

/root/repo/target/debug/deps/fig1_theory-ad3c6762a91ed576: crates/bench/src/bin/fig1_theory.rs

crates/bench/src/bin/fig1_theory.rs:
