/root/repo/target/debug/deps/fig4_analytical-aa00dc6ba1db6cb0.d: crates/bench/src/bin/fig4_analytical.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_analytical-aa00dc6ba1db6cb0.rmeta: crates/bench/src/bin/fig4_analytical.rs Cargo.toml

crates/bench/src/bin/fig4_analytical.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
