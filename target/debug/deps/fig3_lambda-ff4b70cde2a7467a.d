/root/repo/target/debug/deps/fig3_lambda-ff4b70cde2a7467a.d: crates/bench/src/bin/fig3_lambda.rs

/root/repo/target/debug/deps/libfig3_lambda-ff4b70cde2a7467a.rmeta: crates/bench/src/bin/fig3_lambda.rs

crates/bench/src/bin/fig3_lambda.rs:
