/root/repo/target/debug/deps/scalability-77851b63625e4648.d: crates/bench/src/bin/scalability.rs

/root/repo/target/debug/deps/libscalability-77851b63625e4648.rmeta: crates/bench/src/bin/scalability.rs

crates/bench/src/bin/scalability.rs:
