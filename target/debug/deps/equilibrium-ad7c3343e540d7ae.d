/root/repo/target/debug/deps/equilibrium-ad7c3343e540d7ae.d: crates/bench/benches/equilibrium.rs Cargo.toml

/root/repo/target/debug/deps/libequilibrium-ad7c3343e540d7ae.rmeta: crates/bench/benches/equilibrium.rs Cargo.toml

crates/bench/benches/equilibrium.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
