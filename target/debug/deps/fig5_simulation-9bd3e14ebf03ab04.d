/root/repo/target/debug/deps/fig5_simulation-9bd3e14ebf03ab04.d: crates/bench/src/bin/fig5_simulation.rs

/root/repo/target/debug/deps/libfig5_simulation-9bd3e14ebf03ab04.rmeta: crates/bench/src/bin/fig5_simulation.rs

crates/bench/src/bin/fig5_simulation.rs:
