/root/repo/target/debug/deps/speedup-2f42b3b722f91a33.d: crates/bench/benches/speedup.rs Cargo.toml

/root/repo/target/debug/deps/libspeedup-2f42b3b722f91a33.rmeta: crates/bench/benches/speedup.rs Cargo.toml

crates/bench/benches/speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
