/root/repo/target/debug/deps/market_properties-a9597cfabb263e93.d: tests/tests/market_properties.rs

/root/repo/target/debug/deps/market_properties-a9597cfabb263e93: tests/tests/market_properties.rs

tests/tests/market_properties.rs:
