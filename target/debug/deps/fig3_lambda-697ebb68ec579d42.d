/root/repo/target/debug/deps/fig3_lambda-697ebb68ec579d42.d: crates/bench/src/bin/fig3_lambda.rs

/root/repo/target/debug/deps/libfig3_lambda-697ebb68ec579d42.rmeta: crates/bench/src/bin/fig3_lambda.rs

crates/bench/src/bin/fig3_lambda.rs:
