/root/repo/target/debug/deps/rebudget_bench-ce6b845c0f1ce03c.d: crates/bench/src/lib.rs crates/bench/src/export.rs Cargo.toml

/root/repo/target/debug/deps/librebudget_bench-ce6b845c0f1ce03c.rmeta: crates/bench/src/lib.rs crates/bench/src/export.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/export.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
