/root/repo/target/debug/deps/substrate_consistency-ff763132c67ae5d8.d: tests/tests/substrate_consistency.rs

/root/repo/target/debug/deps/libsubstrate_consistency-ff763132c67ae5d8.rmeta: tests/tests/substrate_consistency.rs

tests/tests/substrate_consistency.rs:
