/root/repo/target/debug/deps/datacenter_market-8f293e452ed460e2.d: examples/datacenter_market.rs

/root/repo/target/debug/deps/datacenter_market-8f293e452ed460e2: examples/datacenter_market.rs

examples/datacenter_market.rs:
