/root/repo/target/debug/deps/ablation-3730a2c6d6db6bd1.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-3730a2c6d6db6bd1.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
