/root/repo/target/debug/deps/convergence-0be8b7efb7f11ead.d: crates/bench/src/bin/convergence.rs

/root/repo/target/debug/deps/libconvergence-0be8b7efb7f11ead.rmeta: crates/bench/src/bin/convergence.rs

crates/bench/src/bin/convergence.rs:
