/root/repo/target/debug/deps/utility_model-3df3bedfc6ea1984.d: crates/bench/benches/utility_model.rs Cargo.toml

/root/repo/target/debug/deps/libutility_model-3df3bedfc6ea1984.rmeta: crates/bench/benches/utility_model.rs Cargo.toml

crates/bench/benches/utility_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
