/root/repo/target/debug/deps/fig1_theory-82aaa2fcb0587c8f.d: crates/bench/src/bin/fig1_theory.rs

/root/repo/target/debug/deps/libfig1_theory-82aaa2fcb0587c8f.rmeta: crates/bench/src/bin/fig1_theory.rs

crates/bench/src/bin/fig1_theory.rs:
