/root/repo/target/debug/deps/fig1_theory-e04f49504e5e1896.d: crates/bench/src/bin/fig1_theory.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_theory-e04f49504e5e1896.rmeta: crates/bench/src/bin/fig1_theory.rs Cargo.toml

crates/bench/src/bin/fig1_theory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
