/root/repo/target/debug/deps/fig3_lambda-18fb9735da0f3f4b.d: crates/bench/src/bin/fig3_lambda.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_lambda-18fb9735da0f3f4b.rmeta: crates/bench/src/bin/fig3_lambda.rs Cargo.toml

crates/bench/src/bin/fig3_lambda.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
