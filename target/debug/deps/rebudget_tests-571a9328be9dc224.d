/root/repo/target/debug/deps/rebudget_tests-571a9328be9dc224.d: tests/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librebudget_tests-571a9328be9dc224.rmeta: tests/src/lib.rs Cargo.toml

tests/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
