/root/repo/target/debug/deps/fig1_theory-119f993d888653ec.d: crates/bench/src/bin/fig1_theory.rs

/root/repo/target/debug/deps/fig1_theory-119f993d888653ec: crates/bench/src/bin/fig1_theory.rs

crates/bench/src/bin/fig1_theory.rs:
