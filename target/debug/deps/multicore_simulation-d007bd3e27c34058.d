/root/repo/target/debug/deps/multicore_simulation-d007bd3e27c34058.d: examples/multicore_simulation.rs

/root/repo/target/debug/deps/libmulticore_simulation-d007bd3e27c34058.rmeta: examples/multicore_simulation.rs

examples/multicore_simulation.rs:
