/root/repo/target/debug/deps/fig5_simulation-59386b256ed05454.d: crates/bench/src/bin/fig5_simulation.rs

/root/repo/target/debug/deps/libfig5_simulation-59386b256ed05454.rmeta: crates/bench/src/bin/fig5_simulation.rs

crates/bench/src/bin/fig5_simulation.rs:
