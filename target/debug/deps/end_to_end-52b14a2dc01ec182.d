/root/repo/target/debug/deps/end_to_end-52b14a2dc01ec182.d: tests/tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-52b14a2dc01ec182: tests/tests/end_to_end.rs

tests/tests/end_to_end.rs:
