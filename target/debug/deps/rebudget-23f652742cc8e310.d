/root/repo/target/debug/deps/rebudget-23f652742cc8e310.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/librebudget-23f652742cc8e310.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
