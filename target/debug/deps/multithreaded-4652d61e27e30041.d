/root/repo/target/debug/deps/multithreaded-4652d61e27e30041.d: examples/multithreaded.rs

/root/repo/target/debug/deps/libmultithreaded-4652d61e27e30041.rmeta: examples/multithreaded.rs

examples/multithreaded.rs:
