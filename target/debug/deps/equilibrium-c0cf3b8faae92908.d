/root/repo/target/debug/deps/equilibrium-c0cf3b8faae92908.d: crates/bench/benches/equilibrium.rs

/root/repo/target/debug/deps/libequilibrium-c0cf3b8faae92908.rmeta: crates/bench/benches/equilibrium.rs

crates/bench/benches/equilibrium.rs:
