/root/repo/target/debug/deps/convergence-eb7b2bfe0bf09401.d: crates/bench/src/bin/convergence.rs Cargo.toml

/root/repo/target/debug/deps/libconvergence-eb7b2bfe0bf09401.rmeta: crates/bench/src/bin/convergence.rs Cargo.toml

crates/bench/src/bin/convergence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
