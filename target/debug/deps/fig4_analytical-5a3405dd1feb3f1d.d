/root/repo/target/debug/deps/fig4_analytical-5a3405dd1feb3f1d.d: crates/bench/src/bin/fig4_analytical.rs

/root/repo/target/debug/deps/fig4_analytical-5a3405dd1feb3f1d: crates/bench/src/bin/fig4_analytical.rs

crates/bench/src/bin/fig4_analytical.rs:
