/root/repo/target/debug/deps/fig2_cache_utility-144553096ee90910.d: crates/bench/src/bin/fig2_cache_utility.rs

/root/repo/target/debug/deps/libfig2_cache_utility-144553096ee90910.rmeta: crates/bench/src/bin/fig2_cache_utility.rs

crates/bench/src/bin/fig2_cache_utility.rs:
