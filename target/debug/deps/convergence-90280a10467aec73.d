/root/repo/target/debug/deps/convergence-90280a10467aec73.d: crates/bench/src/bin/convergence.rs Cargo.toml

/root/repo/target/debug/deps/libconvergence-90280a10467aec73.rmeta: crates/bench/src/bin/convergence.rs Cargo.toml

crates/bench/src/bin/convergence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
