/root/repo/target/debug/deps/ablation-4a11a0c8e74366ec.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-4a11a0c8e74366ec: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
