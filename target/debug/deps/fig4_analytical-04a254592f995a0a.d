/root/repo/target/debug/deps/fig4_analytical-04a254592f995a0a.d: crates/bench/src/bin/fig4_analytical.rs

/root/repo/target/debug/deps/libfig4_analytical-04a254592f995a0a.rmeta: crates/bench/src/bin/fig4_analytical.rs

crates/bench/src/bin/fig4_analytical.rs:
