/root/repo/target/debug/deps/quickstart-43b2e12b1d247356.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/deps/libquickstart-43b2e12b1d247356.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
