/root/repo/target/debug/deps/multicore_simulation-3dbcb6a5b33fc585.d: examples/multicore_simulation.rs

/root/repo/target/debug/deps/multicore_simulation-3dbcb6a5b33fc585: examples/multicore_simulation.rs

examples/multicore_simulation.rs:
