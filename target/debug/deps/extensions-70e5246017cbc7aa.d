/root/repo/target/debug/deps/extensions-70e5246017cbc7aa.d: tests/tests/extensions.rs

/root/repo/target/debug/deps/libextensions-70e5246017cbc7aa.rmeta: tests/tests/extensions.rs

tests/tests/extensions.rs:
