/root/repo/target/debug/deps/datacenter_market-66eb29a881807464.d: examples/datacenter_market.rs

/root/repo/target/debug/deps/libdatacenter_market-66eb29a881807464.rmeta: examples/datacenter_market.rs

examples/datacenter_market.rs:
