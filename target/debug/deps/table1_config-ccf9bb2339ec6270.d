/root/repo/target/debug/deps/table1_config-ccf9bb2339ec6270.d: crates/bench/src/bin/table1_config.rs

/root/repo/target/debug/deps/libtable1_config-ccf9bb2339ec6270.rmeta: crates/bench/src/bin/table1_config.rs

crates/bench/src/bin/table1_config.rs:
