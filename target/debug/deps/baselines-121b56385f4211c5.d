/root/repo/target/debug/deps/baselines-121b56385f4211c5.d: crates/bench/src/bin/baselines.rs

/root/repo/target/debug/deps/libbaselines-121b56385f4211c5.rmeta: crates/bench/src/bin/baselines.rs

crates/bench/src/bin/baselines.rs:
