/root/repo/target/debug/deps/convergence-742dbf4ee66aca9e.d: crates/bench/src/bin/convergence.rs

/root/repo/target/debug/deps/convergence-742dbf4ee66aca9e: crates/bench/src/bin/convergence.rs

crates/bench/src/bin/convergence.rs:
