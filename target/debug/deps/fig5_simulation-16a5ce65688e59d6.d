/root/repo/target/debug/deps/fig5_simulation-16a5ce65688e59d6.d: crates/bench/src/bin/fig5_simulation.rs

/root/repo/target/debug/deps/libfig5_simulation-16a5ce65688e59d6.rmeta: crates/bench/src/bin/fig5_simulation.rs

crates/bench/src/bin/fig5_simulation.rs:
