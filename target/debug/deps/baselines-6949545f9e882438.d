/root/repo/target/debug/deps/baselines-6949545f9e882438.d: crates/bench/src/bin/baselines.rs

/root/repo/target/debug/deps/baselines-6949545f9e882438: crates/bench/src/bin/baselines.rs

crates/bench/src/bin/baselines.rs:
