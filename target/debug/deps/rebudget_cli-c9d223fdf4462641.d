/root/repo/target/debug/deps/rebudget_cli-c9d223fdf4462641.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/librebudget_cli-c9d223fdf4462641.rlib: crates/cli/src/lib.rs

/root/repo/target/debug/deps/librebudget_cli-c9d223fdf4462641.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
