/root/repo/target/debug/deps/phase_adaptation-13446cb7f74cf204.d: tests/tests/phase_adaptation.rs

/root/repo/target/debug/deps/libphase_adaptation-13446cb7f74cf204.rmeta: tests/tests/phase_adaptation.rs

tests/tests/phase_adaptation.rs:
