/root/repo/target/debug/deps/multithreaded-0b69e249f744deb7.d: examples/multithreaded.rs Cargo.toml

/root/repo/target/debug/deps/libmultithreaded-0b69e249f744deb7.rmeta: examples/multithreaded.rs Cargo.toml

examples/multithreaded.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
