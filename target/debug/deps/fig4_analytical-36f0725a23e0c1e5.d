/root/repo/target/debug/deps/fig4_analytical-36f0725a23e0c1e5.d: crates/bench/src/bin/fig4_analytical.rs

/root/repo/target/debug/deps/libfig4_analytical-36f0725a23e0c1e5.rmeta: crates/bench/src/bin/fig4_analytical.rs

crates/bench/src/bin/fig4_analytical.rs:
