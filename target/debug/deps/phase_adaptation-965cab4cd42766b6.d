/root/repo/target/debug/deps/phase_adaptation-965cab4cd42766b6.d: tests/tests/phase_adaptation.rs

/root/repo/target/debug/deps/libphase_adaptation-965cab4cd42766b6.rmeta: tests/tests/phase_adaptation.rs

tests/tests/phase_adaptation.rs:
