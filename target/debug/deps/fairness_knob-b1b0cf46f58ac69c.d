/root/repo/target/debug/deps/fairness_knob-b1b0cf46f58ac69c.d: examples/fairness_knob.rs Cargo.toml

/root/repo/target/debug/deps/libfairness_knob-b1b0cf46f58ac69c.rmeta: examples/fairness_knob.rs Cargo.toml

examples/fairness_knob.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
