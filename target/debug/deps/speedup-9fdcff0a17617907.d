/root/repo/target/debug/deps/speedup-9fdcff0a17617907.d: crates/bench/benches/speedup.rs Cargo.toml

/root/repo/target/debug/deps/libspeedup-9fdcff0a17617907.rmeta: crates/bench/benches/speedup.rs Cargo.toml

crates/bench/benches/speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
