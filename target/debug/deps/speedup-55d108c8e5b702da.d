/root/repo/target/debug/deps/speedup-55d108c8e5b702da.d: crates/bench/benches/speedup.rs

/root/repo/target/debug/deps/libspeedup-55d108c8e5b702da.rmeta: crates/bench/benches/speedup.rs

crates/bench/benches/speedup.rs:
