/root/repo/target/debug/deps/fig4_analytical-e99241db743b6854.d: crates/bench/src/bin/fig4_analytical.rs

/root/repo/target/debug/deps/fig4_analytical-e99241db743b6854: crates/bench/src/bin/fig4_analytical.rs

crates/bench/src/bin/fig4_analytical.rs:
