/root/repo/target/debug/deps/rebudget_tests-f22fba50f34fd0ea.d: tests/src/lib.rs

/root/repo/target/debug/deps/librebudget_tests-f22fba50f34fd0ea.rlib: tests/src/lib.rs

/root/repo/target/debug/deps/librebudget_tests-f22fba50f34fd0ea.rmeta: tests/src/lib.rs

tests/src/lib.rs:
