/root/repo/target/debug/deps/substrate_properties-812a7f5f1c7e88e8.d: tests/tests/substrate_properties.rs Cargo.toml

/root/repo/target/debug/deps/libsubstrate_properties-812a7f5f1c7e88e8.rmeta: tests/tests/substrate_properties.rs Cargo.toml

tests/tests/substrate_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
