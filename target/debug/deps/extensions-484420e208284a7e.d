/root/repo/target/debug/deps/extensions-484420e208284a7e.d: tests/tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-484420e208284a7e.rmeta: tests/tests/extensions.rs Cargo.toml

tests/tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
