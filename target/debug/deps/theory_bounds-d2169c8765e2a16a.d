/root/repo/target/debug/deps/theory_bounds-d2169c8765e2a16a.d: tests/tests/theory_bounds.rs

/root/repo/target/debug/deps/theory_bounds-d2169c8765e2a16a: tests/tests/theory_bounds.rs

tests/tests/theory_bounds.rs:
