/root/repo/target/debug/deps/end_to_end-68c3acf00a8197db.d: tests/tests/end_to_end.rs

/root/repo/target/debug/deps/libend_to_end-68c3acf00a8197db.rmeta: tests/tests/end_to_end.rs

tests/tests/end_to_end.rs:
