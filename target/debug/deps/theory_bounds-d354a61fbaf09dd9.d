/root/repo/target/debug/deps/theory_bounds-d354a61fbaf09dd9.d: tests/tests/theory_bounds.rs

/root/repo/target/debug/deps/libtheory_bounds-d354a61fbaf09dd9.rmeta: tests/tests/theory_bounds.rs

tests/tests/theory_bounds.rs:
