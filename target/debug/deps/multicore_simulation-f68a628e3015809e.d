/root/repo/target/debug/deps/multicore_simulation-f68a628e3015809e.d: examples/multicore_simulation.rs Cargo.toml

/root/repo/target/debug/deps/libmulticore_simulation-f68a628e3015809e.rmeta: examples/multicore_simulation.rs Cargo.toml

examples/multicore_simulation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
