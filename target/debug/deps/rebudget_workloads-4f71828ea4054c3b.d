/root/repo/target/debug/deps/rebudget_workloads-4f71828ea4054c3b.d: crates/workloads/src/lib.rs crates/workloads/src/bundle.rs crates/workloads/src/category.rs crates/workloads/src/suite.rs

/root/repo/target/debug/deps/rebudget_workloads-4f71828ea4054c3b: crates/workloads/src/lib.rs crates/workloads/src/bundle.rs crates/workloads/src/category.rs crates/workloads/src/suite.rs

crates/workloads/src/lib.rs:
crates/workloads/src/bundle.rs:
crates/workloads/src/category.rs:
crates/workloads/src/suite.rs:
