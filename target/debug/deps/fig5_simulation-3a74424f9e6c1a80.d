/root/repo/target/debug/deps/fig5_simulation-3a74424f9e6c1a80.d: crates/bench/src/bin/fig5_simulation.rs

/root/repo/target/debug/deps/libfig5_simulation-3a74424f9e6c1a80.rmeta: crates/bench/src/bin/fig5_simulation.rs

crates/bench/src/bin/fig5_simulation.rs:
