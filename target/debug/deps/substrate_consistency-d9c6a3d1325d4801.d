/root/repo/target/debug/deps/substrate_consistency-d9c6a3d1325d4801.d: tests/tests/substrate_consistency.rs

/root/repo/target/debug/deps/substrate_consistency-d9c6a3d1325d4801: tests/tests/substrate_consistency.rs

tests/tests/substrate_consistency.rs:
