/root/repo/target/debug/deps/rebudget_core-b069bb56d808e5c0.d: crates/core/src/lib.rs crates/core/src/ep.rs crates/core/src/linearized.rs crates/core/src/mechanisms.rs crates/core/src/sweep.rs crates/core/src/theory.rs crates/core/src/uncoordinated.rs

/root/repo/target/debug/deps/librebudget_core-b069bb56d808e5c0.rlib: crates/core/src/lib.rs crates/core/src/ep.rs crates/core/src/linearized.rs crates/core/src/mechanisms.rs crates/core/src/sweep.rs crates/core/src/theory.rs crates/core/src/uncoordinated.rs

/root/repo/target/debug/deps/librebudget_core-b069bb56d808e5c0.rmeta: crates/core/src/lib.rs crates/core/src/ep.rs crates/core/src/linearized.rs crates/core/src/mechanisms.rs crates/core/src/sweep.rs crates/core/src/theory.rs crates/core/src/uncoordinated.rs

crates/core/src/lib.rs:
crates/core/src/ep.rs:
crates/core/src/linearized.rs:
crates/core/src/mechanisms.rs:
crates/core/src/sweep.rs:
crates/core/src/theory.rs:
crates/core/src/uncoordinated.rs:
