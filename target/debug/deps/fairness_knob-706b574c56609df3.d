/root/repo/target/debug/deps/fairness_knob-706b574c56609df3.d: examples/fairness_knob.rs

/root/repo/target/debug/deps/fairness_knob-706b574c56609df3: examples/fairness_knob.rs

examples/fairness_knob.rs:
