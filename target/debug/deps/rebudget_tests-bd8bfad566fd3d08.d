/root/repo/target/debug/deps/rebudget_tests-bd8bfad566fd3d08.d: tests/src/lib.rs

/root/repo/target/debug/deps/librebudget_tests-bd8bfad566fd3d08.rlib: tests/src/lib.rs

/root/repo/target/debug/deps/librebudget_tests-bd8bfad566fd3d08.rmeta: tests/src/lib.rs

tests/src/lib.rs:
