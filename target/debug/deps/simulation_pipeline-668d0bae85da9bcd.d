/root/repo/target/debug/deps/simulation_pipeline-668d0bae85da9bcd.d: tests/tests/simulation_pipeline.rs

/root/repo/target/debug/deps/libsimulation_pipeline-668d0bae85da9bcd.rmeta: tests/tests/simulation_pipeline.rs

tests/tests/simulation_pipeline.rs:
