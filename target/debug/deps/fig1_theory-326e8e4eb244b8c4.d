/root/repo/target/debug/deps/fig1_theory-326e8e4eb244b8c4.d: crates/bench/src/bin/fig1_theory.rs

/root/repo/target/debug/deps/fig1_theory-326e8e4eb244b8c4: crates/bench/src/bin/fig1_theory.rs

crates/bench/src/bin/fig1_theory.rs:
