/root/repo/target/debug/deps/scalability-5490d058b06dd751.d: crates/bench/src/bin/scalability.rs

/root/repo/target/debug/deps/libscalability-5490d058b06dd751.rmeta: crates/bench/src/bin/scalability.rs

crates/bench/src/bin/scalability.rs:
