/root/repo/target/debug/deps/end_to_end-980742d21e37d04e.d: tests/tests/end_to_end.rs

/root/repo/target/debug/deps/libend_to_end-980742d21e37d04e.rmeta: tests/tests/end_to_end.rs

tests/tests/end_to_end.rs:
