/root/repo/target/debug/deps/simulation_pipeline-c65f8a4712fd4b9c.d: tests/tests/simulation_pipeline.rs

/root/repo/target/debug/deps/simulation_pipeline-c65f8a4712fd4b9c: tests/tests/simulation_pipeline.rs

tests/tests/simulation_pipeline.rs:
