/root/repo/target/debug/deps/rebudget_bench-6ce83c5112fe0704.d: crates/bench/src/lib.rs crates/bench/src/export.rs

/root/repo/target/debug/deps/librebudget_bench-6ce83c5112fe0704.rlib: crates/bench/src/lib.rs crates/bench/src/export.rs

/root/repo/target/debug/deps/librebudget_bench-6ce83c5112fe0704.rmeta: crates/bench/src/lib.rs crates/bench/src/export.rs

crates/bench/src/lib.rs:
crates/bench/src/export.rs:
