/root/repo/target/debug/deps/fairness_knob-1c93dc1daa13e5e4.d: examples/fairness_knob.rs

/root/repo/target/debug/deps/fairness_knob-1c93dc1daa13e5e4: examples/fairness_knob.rs

examples/fairness_knob.rs:
