/root/repo/target/debug/deps/convergence-1d7abc3ed5ad4a2f.d: crates/bench/src/bin/convergence.rs Cargo.toml

/root/repo/target/debug/deps/libconvergence-1d7abc3ed5ad4a2f.rmeta: crates/bench/src/bin/convergence.rs Cargo.toml

crates/bench/src/bin/convergence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
