/root/repo/target/debug/deps/table1_config-8ee770527f9999e3.d: crates/bench/src/bin/table1_config.rs

/root/repo/target/debug/deps/libtable1_config-8ee770527f9999e3.rmeta: crates/bench/src/bin/table1_config.rs

crates/bench/src/bin/table1_config.rs:
