/root/repo/target/debug/deps/fig5_simulation-5ba6b1c2efb45ee7.d: crates/bench/src/bin/fig5_simulation.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_simulation-5ba6b1c2efb45ee7.rmeta: crates/bench/src/bin/fig5_simulation.rs Cargo.toml

crates/bench/src/bin/fig5_simulation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
