/root/repo/target/debug/deps/fig3_lambda-2d33134641ecb636.d: crates/bench/src/bin/fig3_lambda.rs

/root/repo/target/debug/deps/libfig3_lambda-2d33134641ecb636.rmeta: crates/bench/src/bin/fig3_lambda.rs

crates/bench/src/bin/fig3_lambda.rs:
