/root/repo/target/debug/deps/substrate_properties-a09e89b33ff999f6.d: tests/tests/substrate_properties.rs

/root/repo/target/debug/deps/substrate_properties-a09e89b33ff999f6: tests/tests/substrate_properties.rs

tests/tests/substrate_properties.rs:
