/root/repo/target/debug/deps/rebudget_market-78986b15e6e33f89.d: crates/market/src/lib.rs crates/market/src/agents.rs crates/market/src/allocation.rs crates/market/src/bidding.rs crates/market/src/bids.rs crates/market/src/equilibrium.rs crates/market/src/error.rs crates/market/src/exact.rs crates/market/src/fit.rs crates/market/src/metrics.rs crates/market/src/optimal.rs crates/market/src/par.rs crates/market/src/player.rs crates/market/src/pricing.rs crates/market/src/resource.rs crates/market/src/utility.rs Cargo.toml

/root/repo/target/debug/deps/librebudget_market-78986b15e6e33f89.rmeta: crates/market/src/lib.rs crates/market/src/agents.rs crates/market/src/allocation.rs crates/market/src/bidding.rs crates/market/src/bids.rs crates/market/src/equilibrium.rs crates/market/src/error.rs crates/market/src/exact.rs crates/market/src/fit.rs crates/market/src/metrics.rs crates/market/src/optimal.rs crates/market/src/par.rs crates/market/src/player.rs crates/market/src/pricing.rs crates/market/src/resource.rs crates/market/src/utility.rs Cargo.toml

crates/market/src/lib.rs:
crates/market/src/agents.rs:
crates/market/src/allocation.rs:
crates/market/src/bidding.rs:
crates/market/src/bids.rs:
crates/market/src/equilibrium.rs:
crates/market/src/error.rs:
crates/market/src/exact.rs:
crates/market/src/fit.rs:
crates/market/src/metrics.rs:
crates/market/src/optimal.rs:
crates/market/src/par.rs:
crates/market/src/player.rs:
crates/market/src/pricing.rs:
crates/market/src/resource.rs:
crates/market/src/utility.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
