/root/repo/target/debug/deps/phase_adaptation-1d15433a9c127109.d: tests/tests/phase_adaptation.rs Cargo.toml

/root/repo/target/debug/deps/libphase_adaptation-1d15433a9c127109.rmeta: tests/tests/phase_adaptation.rs Cargo.toml

tests/tests/phase_adaptation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
