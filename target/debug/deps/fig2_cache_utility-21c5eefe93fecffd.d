/root/repo/target/debug/deps/fig2_cache_utility-21c5eefe93fecffd.d: crates/bench/src/bin/fig2_cache_utility.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_cache_utility-21c5eefe93fecffd.rmeta: crates/bench/src/bin/fig2_cache_utility.rs Cargo.toml

crates/bench/src/bin/fig2_cache_utility.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
