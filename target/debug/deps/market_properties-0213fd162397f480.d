/root/repo/target/debug/deps/market_properties-0213fd162397f480.d: tests/tests/market_properties.rs

/root/repo/target/debug/deps/market_properties-0213fd162397f480: tests/tests/market_properties.rs

tests/tests/market_properties.rs:
