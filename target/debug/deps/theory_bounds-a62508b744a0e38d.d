/root/repo/target/debug/deps/theory_bounds-a62508b744a0e38d.d: tests/tests/theory_bounds.rs

/root/repo/target/debug/deps/theory_bounds-a62508b744a0e38d: tests/tests/theory_bounds.rs

tests/tests/theory_bounds.rs:
