/root/repo/target/debug/deps/rebudget_tests-b2ffb609371c5405.d: tests/src/lib.rs

/root/repo/target/debug/deps/librebudget_tests-b2ffb609371c5405.rmeta: tests/src/lib.rs

tests/src/lib.rs:
