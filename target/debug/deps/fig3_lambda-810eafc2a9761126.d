/root/repo/target/debug/deps/fig3_lambda-810eafc2a9761126.d: crates/bench/src/bin/fig3_lambda.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_lambda-810eafc2a9761126.rmeta: crates/bench/src/bin/fig3_lambda.rs Cargo.toml

crates/bench/src/bin/fig3_lambda.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
