/root/repo/target/debug/deps/multithreaded-68e1d1460ca05819.d: examples/multithreaded.rs

/root/repo/target/debug/deps/libmultithreaded-68e1d1460ca05819.rmeta: examples/multithreaded.rs

examples/multithreaded.rs:
