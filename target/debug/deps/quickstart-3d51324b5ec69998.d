/root/repo/target/debug/deps/quickstart-3d51324b5ec69998.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/deps/libquickstart-3d51324b5ec69998.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
