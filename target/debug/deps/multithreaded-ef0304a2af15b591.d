/root/repo/target/debug/deps/multithreaded-ef0304a2af15b591.d: examples/multithreaded.rs

/root/repo/target/debug/deps/multithreaded-ef0304a2af15b591: examples/multithreaded.rs

examples/multithreaded.rs:
