/root/repo/target/debug/deps/rayon-ed22c89215fba785.d: vendor/rayon/src/lib.rs vendor/rayon/src/iter.rs vendor/rayon/src/slice.rs

/root/repo/target/debug/deps/librayon-ed22c89215fba785.rmeta: vendor/rayon/src/lib.rs vendor/rayon/src/iter.rs vendor/rayon/src/slice.rs

vendor/rayon/src/lib.rs:
vendor/rayon/src/iter.rs:
vendor/rayon/src/slice.rs:
