/root/repo/target/debug/deps/rebudget_bench-894537c387a5d259.d: crates/bench/src/lib.rs crates/bench/src/export.rs

/root/repo/target/debug/deps/librebudget_bench-894537c387a5d259.rmeta: crates/bench/src/lib.rs crates/bench/src/export.rs

crates/bench/src/lib.rs:
crates/bench/src/export.rs:
