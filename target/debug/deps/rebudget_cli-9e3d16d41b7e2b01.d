/root/repo/target/debug/deps/rebudget_cli-9e3d16d41b7e2b01.d: crates/cli/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librebudget_cli-9e3d16d41b7e2b01.rmeta: crates/cli/src/lib.rs Cargo.toml

crates/cli/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
