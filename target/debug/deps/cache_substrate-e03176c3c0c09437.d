/root/repo/target/debug/deps/cache_substrate-e03176c3c0c09437.d: crates/bench/benches/cache_substrate.rs

/root/repo/target/debug/deps/libcache_substrate-e03176c3c0c09437.rmeta: crates/bench/benches/cache_substrate.rs

crates/bench/benches/cache_substrate.rs:
