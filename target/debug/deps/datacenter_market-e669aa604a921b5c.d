/root/repo/target/debug/deps/datacenter_market-e669aa604a921b5c.d: examples/datacenter_market.rs

/root/repo/target/debug/deps/libdatacenter_market-e669aa604a921b5c.rmeta: examples/datacenter_market.rs

examples/datacenter_market.rs:
