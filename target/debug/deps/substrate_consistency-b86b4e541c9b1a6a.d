/root/repo/target/debug/deps/substrate_consistency-b86b4e541c9b1a6a.d: tests/tests/substrate_consistency.rs Cargo.toml

/root/repo/target/debug/deps/libsubstrate_consistency-b86b4e541c9b1a6a.rmeta: tests/tests/substrate_consistency.rs Cargo.toml

tests/tests/substrate_consistency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
