/root/repo/target/debug/deps/rebudget_cli-58181a69b79baea2.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/rebudget_cli-58181a69b79baea2: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
