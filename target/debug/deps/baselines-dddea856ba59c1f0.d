/root/repo/target/debug/deps/baselines-dddea856ba59c1f0.d: crates/bench/src/bin/baselines.rs Cargo.toml

/root/repo/target/debug/deps/libbaselines-dddea856ba59c1f0.rmeta: crates/bench/src/bin/baselines.rs Cargo.toml

crates/bench/src/bin/baselines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
