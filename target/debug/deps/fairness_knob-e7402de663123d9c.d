/root/repo/target/debug/deps/fairness_knob-e7402de663123d9c.d: examples/fairness_knob.rs

/root/repo/target/debug/deps/fairness_knob-e7402de663123d9c: examples/fairness_knob.rs

examples/fairness_knob.rs:
