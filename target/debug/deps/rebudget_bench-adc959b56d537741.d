/root/repo/target/debug/deps/rebudget_bench-adc959b56d537741.d: crates/bench/src/lib.rs crates/bench/src/export.rs

/root/repo/target/debug/deps/librebudget_bench-adc959b56d537741.rmeta: crates/bench/src/lib.rs crates/bench/src/export.rs

crates/bench/src/lib.rs:
crates/bench/src/export.rs:
