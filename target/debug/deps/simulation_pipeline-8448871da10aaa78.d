/root/repo/target/debug/deps/simulation_pipeline-8448871da10aaa78.d: tests/tests/simulation_pipeline.rs

/root/repo/target/debug/deps/simulation_pipeline-8448871da10aaa78: tests/tests/simulation_pipeline.rs

tests/tests/simulation_pipeline.rs:
