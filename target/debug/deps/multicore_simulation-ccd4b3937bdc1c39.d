/root/repo/target/debug/deps/multicore_simulation-ccd4b3937bdc1c39.d: examples/multicore_simulation.rs

/root/repo/target/debug/deps/libmulticore_simulation-ccd4b3937bdc1c39.rmeta: examples/multicore_simulation.rs

examples/multicore_simulation.rs:
