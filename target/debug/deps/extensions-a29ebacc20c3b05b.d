/root/repo/target/debug/deps/extensions-a29ebacc20c3b05b.d: tests/tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-a29ebacc20c3b05b.rmeta: tests/tests/extensions.rs Cargo.toml

tests/tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
