/root/repo/target/debug/deps/quickstart-6e037bd8dab2f2d8.d: examples/quickstart.rs

/root/repo/target/debug/deps/libquickstart-6e037bd8dab2f2d8.rmeta: examples/quickstart.rs

examples/quickstart.rs:
