/root/repo/target/debug/deps/fig2_cache_utility-c72b76d1f4e6d56c.d: crates/bench/src/bin/fig2_cache_utility.rs

/root/repo/target/debug/deps/libfig2_cache_utility-c72b76d1f4e6d56c.rmeta: crates/bench/src/bin/fig2_cache_utility.rs

crates/bench/src/bin/fig2_cache_utility.rs:
