/root/repo/target/debug/deps/ablation-9c1047aed2f69a13.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/libablation-9c1047aed2f69a13.rmeta: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
