/root/repo/target/debug/deps/datacenter_market-3aeb0a1c1cfde0aa.d: examples/datacenter_market.rs

/root/repo/target/debug/deps/libdatacenter_market-3aeb0a1c1cfde0aa.rmeta: examples/datacenter_market.rs

examples/datacenter_market.rs:
