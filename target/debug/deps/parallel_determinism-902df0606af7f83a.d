/root/repo/target/debug/deps/parallel_determinism-902df0606af7f83a.d: tests/tests/parallel_determinism.rs

/root/repo/target/debug/deps/parallel_determinism-902df0606af7f83a: tests/tests/parallel_determinism.rs

tests/tests/parallel_determinism.rs:
