/root/repo/target/debug/deps/rebudget-2e72cf9f5c45d604.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/librebudget-2e72cf9f5c45d604.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
