/root/repo/target/debug/deps/market_properties-79ba21d6d81741f5.d: tests/tests/market_properties.rs Cargo.toml

/root/repo/target/debug/deps/libmarket_properties-79ba21d6d81741f5.rmeta: tests/tests/market_properties.rs Cargo.toml

tests/tests/market_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
