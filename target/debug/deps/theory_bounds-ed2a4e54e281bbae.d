/root/repo/target/debug/deps/theory_bounds-ed2a4e54e281bbae.d: tests/tests/theory_bounds.rs

/root/repo/target/debug/deps/theory_bounds-ed2a4e54e281bbae: tests/tests/theory_bounds.rs

tests/tests/theory_bounds.rs:
