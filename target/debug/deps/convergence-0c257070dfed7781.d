/root/repo/target/debug/deps/convergence-0c257070dfed7781.d: crates/bench/src/bin/convergence.rs Cargo.toml

/root/repo/target/debug/deps/libconvergence-0c257070dfed7781.rmeta: crates/bench/src/bin/convergence.rs Cargo.toml

crates/bench/src/bin/convergence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
