/root/repo/target/debug/deps/quickstart-fa0dc5d10a5c34fd.d: examples/quickstart.rs

/root/repo/target/debug/deps/quickstart-fa0dc5d10a5c34fd: examples/quickstart.rs

examples/quickstart.rs:
