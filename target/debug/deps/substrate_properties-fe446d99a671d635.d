/root/repo/target/debug/deps/substrate_properties-fe446d99a671d635.d: tests/tests/substrate_properties.rs

/root/repo/target/debug/deps/substrate_properties-fe446d99a671d635: tests/tests/substrate_properties.rs

tests/tests/substrate_properties.rs:
