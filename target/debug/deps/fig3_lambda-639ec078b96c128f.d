/root/repo/target/debug/deps/fig3_lambda-639ec078b96c128f.d: crates/bench/src/bin/fig3_lambda.rs

/root/repo/target/debug/deps/fig3_lambda-639ec078b96c128f: crates/bench/src/bin/fig3_lambda.rs

crates/bench/src/bin/fig3_lambda.rs:
