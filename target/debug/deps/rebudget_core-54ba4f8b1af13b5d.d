/root/repo/target/debug/deps/rebudget_core-54ba4f8b1af13b5d.d: crates/core/src/lib.rs crates/core/src/ep.rs crates/core/src/linearized.rs crates/core/src/mechanisms.rs crates/core/src/sweep.rs crates/core/src/theory.rs crates/core/src/uncoordinated.rs

/root/repo/target/debug/deps/rebudget_core-54ba4f8b1af13b5d: crates/core/src/lib.rs crates/core/src/ep.rs crates/core/src/linearized.rs crates/core/src/mechanisms.rs crates/core/src/sweep.rs crates/core/src/theory.rs crates/core/src/uncoordinated.rs

crates/core/src/lib.rs:
crates/core/src/ep.rs:
crates/core/src/linearized.rs:
crates/core/src/mechanisms.rs:
crates/core/src/sweep.rs:
crates/core/src/theory.rs:
crates/core/src/uncoordinated.rs:
