/root/repo/target/debug/deps/cache_substrate-61119a464392e54b.d: crates/bench/benches/cache_substrate.rs Cargo.toml

/root/repo/target/debug/deps/libcache_substrate-61119a464392e54b.rmeta: crates/bench/benches/cache_substrate.rs Cargo.toml

crates/bench/benches/cache_substrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
