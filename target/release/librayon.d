/root/repo/target/release/librayon.rlib: /root/repo/vendor/rayon/src/iter.rs /root/repo/vendor/rayon/src/lib.rs /root/repo/vendor/rayon/src/slice.rs
