/root/repo/target/release/deps/ablation-db4f751460ca1eda.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-db4f751460ca1eda: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
