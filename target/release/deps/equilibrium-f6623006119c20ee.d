/root/repo/target/release/deps/equilibrium-f6623006119c20ee.d: crates/bench/benches/equilibrium.rs

/root/repo/target/release/deps/equilibrium-f6623006119c20ee: crates/bench/benches/equilibrium.rs

crates/bench/benches/equilibrium.rs:
