/root/repo/target/release/deps/rebudget_cli-648d5d5d44775622.d: crates/cli/src/lib.rs

/root/repo/target/release/deps/librebudget_cli-648d5d5d44775622.rlib: crates/cli/src/lib.rs

/root/repo/target/release/deps/librebudget_cli-648d5d5d44775622.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
