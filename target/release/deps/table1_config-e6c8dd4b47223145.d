/root/repo/target/release/deps/table1_config-e6c8dd4b47223145.d: crates/bench/src/bin/table1_config.rs

/root/repo/target/release/deps/table1_config-e6c8dd4b47223145: crates/bench/src/bin/table1_config.rs

crates/bench/src/bin/table1_config.rs:
