/root/repo/target/release/deps/convergence-e35f7fd0a0acc5b9.d: crates/bench/src/bin/convergence.rs

/root/repo/target/release/deps/convergence-e35f7fd0a0acc5b9: crates/bench/src/bin/convergence.rs

crates/bench/src/bin/convergence.rs:
