/root/repo/target/release/deps/baselines-9bdf6641a776d00a.d: crates/bench/src/bin/baselines.rs

/root/repo/target/release/deps/baselines-9bdf6641a776d00a: crates/bench/src/bin/baselines.rs

crates/bench/src/bin/baselines.rs:
