/root/repo/target/release/deps/rebudget_bench-a8927e7df5e6b6fc.d: crates/bench/src/lib.rs crates/bench/src/export.rs

/root/repo/target/release/deps/librebudget_bench-a8927e7df5e6b6fc.rlib: crates/bench/src/lib.rs crates/bench/src/export.rs

/root/repo/target/release/deps/librebudget_bench-a8927e7df5e6b6fc.rmeta: crates/bench/src/lib.rs crates/bench/src/export.rs

crates/bench/src/lib.rs:
crates/bench/src/export.rs:
