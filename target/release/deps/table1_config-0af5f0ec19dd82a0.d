/root/repo/target/release/deps/table1_config-0af5f0ec19dd82a0.d: crates/bench/src/bin/table1_config.rs

/root/repo/target/release/deps/table1_config-0af5f0ec19dd82a0: crates/bench/src/bin/table1_config.rs

crates/bench/src/bin/table1_config.rs:
