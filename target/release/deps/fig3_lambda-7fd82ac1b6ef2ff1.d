/root/repo/target/release/deps/fig3_lambda-7fd82ac1b6ef2ff1.d: crates/bench/src/bin/fig3_lambda.rs

/root/repo/target/release/deps/fig3_lambda-7fd82ac1b6ef2ff1: crates/bench/src/bin/fig3_lambda.rs

crates/bench/src/bin/fig3_lambda.rs:
