/root/repo/target/release/deps/fig1_theory-5477b99f861ab66c.d: crates/bench/src/bin/fig1_theory.rs

/root/repo/target/release/deps/fig1_theory-5477b99f861ab66c: crates/bench/src/bin/fig1_theory.rs

crates/bench/src/bin/fig1_theory.rs:
