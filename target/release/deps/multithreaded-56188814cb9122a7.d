/root/repo/target/release/deps/multithreaded-56188814cb9122a7.d: examples/multithreaded.rs

/root/repo/target/release/deps/multithreaded-56188814cb9122a7: examples/multithreaded.rs

examples/multithreaded.rs:
