/root/repo/target/release/deps/fig5_simulation-f8a9feb7245c9e56.d: crates/bench/src/bin/fig5_simulation.rs

/root/repo/target/release/deps/fig5_simulation-f8a9feb7245c9e56: crates/bench/src/bin/fig5_simulation.rs

crates/bench/src/bin/fig5_simulation.rs:
