/root/repo/target/release/deps/fairness_knob-712c27c9a6214a73.d: examples/fairness_knob.rs

/root/repo/target/release/deps/fairness_knob-712c27c9a6214a73: examples/fairness_knob.rs

examples/fairness_knob.rs:
