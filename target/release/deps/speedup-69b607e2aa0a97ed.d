/root/repo/target/release/deps/speedup-69b607e2aa0a97ed.d: crates/bench/benches/speedup.rs

/root/repo/target/release/deps/speedup-69b607e2aa0a97ed: crates/bench/benches/speedup.rs

crates/bench/benches/speedup.rs:
