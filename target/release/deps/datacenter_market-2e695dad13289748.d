/root/repo/target/release/deps/datacenter_market-2e695dad13289748.d: examples/datacenter_market.rs

/root/repo/target/release/deps/datacenter_market-2e695dad13289748: examples/datacenter_market.rs

examples/datacenter_market.rs:
