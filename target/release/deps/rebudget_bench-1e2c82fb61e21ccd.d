/root/repo/target/release/deps/rebudget_bench-1e2c82fb61e21ccd.d: crates/bench/src/lib.rs crates/bench/src/export.rs

/root/repo/target/release/deps/librebudget_bench-1e2c82fb61e21ccd.rlib: crates/bench/src/lib.rs crates/bench/src/export.rs

/root/repo/target/release/deps/librebudget_bench-1e2c82fb61e21ccd.rmeta: crates/bench/src/lib.rs crates/bench/src/export.rs

crates/bench/src/lib.rs:
crates/bench/src/export.rs:
