/root/repo/target/release/deps/quickstart-b01d044c76385555.d: examples/quickstart.rs

/root/repo/target/release/deps/quickstart-b01d044c76385555: examples/quickstart.rs

examples/quickstart.rs:
