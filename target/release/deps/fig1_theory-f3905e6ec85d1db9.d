/root/repo/target/release/deps/fig1_theory-f3905e6ec85d1db9.d: crates/bench/src/bin/fig1_theory.rs

/root/repo/target/release/deps/fig1_theory-f3905e6ec85d1db9: crates/bench/src/bin/fig1_theory.rs

crates/bench/src/bin/fig1_theory.rs:
