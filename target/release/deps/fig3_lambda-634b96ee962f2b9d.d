/root/repo/target/release/deps/fig3_lambda-634b96ee962f2b9d.d: crates/bench/src/bin/fig3_lambda.rs

/root/repo/target/release/deps/fig3_lambda-634b96ee962f2b9d: crates/bench/src/bin/fig3_lambda.rs

crates/bench/src/bin/fig3_lambda.rs:
