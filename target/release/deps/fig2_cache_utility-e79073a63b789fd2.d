/root/repo/target/release/deps/fig2_cache_utility-e79073a63b789fd2.d: crates/bench/src/bin/fig2_cache_utility.rs

/root/repo/target/release/deps/fig2_cache_utility-e79073a63b789fd2: crates/bench/src/bin/fig2_cache_utility.rs

crates/bench/src/bin/fig2_cache_utility.rs:
