/root/repo/target/release/deps/rebudget_market-7c71937fa8e5ce48.d: crates/market/src/lib.rs crates/market/src/agents.rs crates/market/src/allocation.rs crates/market/src/bidding.rs crates/market/src/bids.rs crates/market/src/equilibrium.rs crates/market/src/error.rs crates/market/src/exact.rs crates/market/src/fit.rs crates/market/src/metrics.rs crates/market/src/optimal.rs crates/market/src/par.rs crates/market/src/player.rs crates/market/src/pricing.rs crates/market/src/resource.rs crates/market/src/utility.rs

/root/repo/target/release/deps/librebudget_market-7c71937fa8e5ce48.rlib: crates/market/src/lib.rs crates/market/src/agents.rs crates/market/src/allocation.rs crates/market/src/bidding.rs crates/market/src/bids.rs crates/market/src/equilibrium.rs crates/market/src/error.rs crates/market/src/exact.rs crates/market/src/fit.rs crates/market/src/metrics.rs crates/market/src/optimal.rs crates/market/src/par.rs crates/market/src/player.rs crates/market/src/pricing.rs crates/market/src/resource.rs crates/market/src/utility.rs

/root/repo/target/release/deps/librebudget_market-7c71937fa8e5ce48.rmeta: crates/market/src/lib.rs crates/market/src/agents.rs crates/market/src/allocation.rs crates/market/src/bidding.rs crates/market/src/bids.rs crates/market/src/equilibrium.rs crates/market/src/error.rs crates/market/src/exact.rs crates/market/src/fit.rs crates/market/src/metrics.rs crates/market/src/optimal.rs crates/market/src/par.rs crates/market/src/player.rs crates/market/src/pricing.rs crates/market/src/resource.rs crates/market/src/utility.rs

crates/market/src/lib.rs:
crates/market/src/agents.rs:
crates/market/src/allocation.rs:
crates/market/src/bidding.rs:
crates/market/src/bids.rs:
crates/market/src/equilibrium.rs:
crates/market/src/error.rs:
crates/market/src/exact.rs:
crates/market/src/fit.rs:
crates/market/src/metrics.rs:
crates/market/src/optimal.rs:
crates/market/src/par.rs:
crates/market/src/player.rs:
crates/market/src/pricing.rs:
crates/market/src/resource.rs:
crates/market/src/utility.rs:
