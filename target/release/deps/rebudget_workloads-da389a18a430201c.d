/root/repo/target/release/deps/rebudget_workloads-da389a18a430201c.d: crates/workloads/src/lib.rs crates/workloads/src/bundle.rs crates/workloads/src/category.rs crates/workloads/src/suite.rs

/root/repo/target/release/deps/librebudget_workloads-da389a18a430201c.rlib: crates/workloads/src/lib.rs crates/workloads/src/bundle.rs crates/workloads/src/category.rs crates/workloads/src/suite.rs

/root/repo/target/release/deps/librebudget_workloads-da389a18a430201c.rmeta: crates/workloads/src/lib.rs crates/workloads/src/bundle.rs crates/workloads/src/category.rs crates/workloads/src/suite.rs

crates/workloads/src/lib.rs:
crates/workloads/src/bundle.rs:
crates/workloads/src/category.rs:
crates/workloads/src/suite.rs:
