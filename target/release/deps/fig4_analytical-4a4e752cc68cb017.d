/root/repo/target/release/deps/fig4_analytical-4a4e752cc68cb017.d: crates/bench/src/bin/fig4_analytical.rs

/root/repo/target/release/deps/fig4_analytical-4a4e752cc68cb017: crates/bench/src/bin/fig4_analytical.rs

crates/bench/src/bin/fig4_analytical.rs:
