/root/repo/target/release/deps/ablation-a7b0f085f9db01e0.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-a7b0f085f9db01e0: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
