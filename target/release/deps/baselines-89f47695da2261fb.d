/root/repo/target/release/deps/baselines-89f47695da2261fb.d: crates/bench/src/bin/baselines.rs

/root/repo/target/release/deps/baselines-89f47695da2261fb: crates/bench/src/bin/baselines.rs

crates/bench/src/bin/baselines.rs:
