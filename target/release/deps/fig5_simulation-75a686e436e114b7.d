/root/repo/target/release/deps/fig5_simulation-75a686e436e114b7.d: crates/bench/src/bin/fig5_simulation.rs

/root/repo/target/release/deps/fig5_simulation-75a686e436e114b7: crates/bench/src/bin/fig5_simulation.rs

crates/bench/src/bin/fig5_simulation.rs:
