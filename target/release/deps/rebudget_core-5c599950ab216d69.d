/root/repo/target/release/deps/rebudget_core-5c599950ab216d69.d: crates/core/src/lib.rs crates/core/src/ep.rs crates/core/src/linearized.rs crates/core/src/mechanisms.rs crates/core/src/sweep.rs crates/core/src/theory.rs crates/core/src/uncoordinated.rs

/root/repo/target/release/deps/librebudget_core-5c599950ab216d69.rlib: crates/core/src/lib.rs crates/core/src/ep.rs crates/core/src/linearized.rs crates/core/src/mechanisms.rs crates/core/src/sweep.rs crates/core/src/theory.rs crates/core/src/uncoordinated.rs

/root/repo/target/release/deps/librebudget_core-5c599950ab216d69.rmeta: crates/core/src/lib.rs crates/core/src/ep.rs crates/core/src/linearized.rs crates/core/src/mechanisms.rs crates/core/src/sweep.rs crates/core/src/theory.rs crates/core/src/uncoordinated.rs

crates/core/src/lib.rs:
crates/core/src/ep.rs:
crates/core/src/linearized.rs:
crates/core/src/mechanisms.rs:
crates/core/src/sweep.rs:
crates/core/src/theory.rs:
crates/core/src/uncoordinated.rs:
