/root/repo/target/release/deps/rebudget_tests-18537350beeac371.d: tests/src/lib.rs

/root/repo/target/release/deps/librebudget_tests-18537350beeac371.rlib: tests/src/lib.rs

/root/repo/target/release/deps/librebudget_tests-18537350beeac371.rmeta: tests/src/lib.rs

tests/src/lib.rs:
