/root/repo/target/release/deps/scalability-68d1fdb99d1e9094.d: crates/bench/src/bin/scalability.rs

/root/repo/target/release/deps/scalability-68d1fdb99d1e9094: crates/bench/src/bin/scalability.rs

crates/bench/src/bin/scalability.rs:
