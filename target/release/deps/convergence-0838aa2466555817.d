/root/repo/target/release/deps/convergence-0838aa2466555817.d: crates/bench/src/bin/convergence.rs

/root/repo/target/release/deps/convergence-0838aa2466555817: crates/bench/src/bin/convergence.rs

crates/bench/src/bin/convergence.rs:
