/root/repo/target/release/deps/rayon-dda8dca3429de5d1.d: vendor/rayon/src/lib.rs vendor/rayon/src/iter.rs vendor/rayon/src/slice.rs

/root/repo/target/release/deps/librayon-dda8dca3429de5d1.rlib: vendor/rayon/src/lib.rs vendor/rayon/src/iter.rs vendor/rayon/src/slice.rs

/root/repo/target/release/deps/librayon-dda8dca3429de5d1.rmeta: vendor/rayon/src/lib.rs vendor/rayon/src/iter.rs vendor/rayon/src/slice.rs

vendor/rayon/src/lib.rs:
vendor/rayon/src/iter.rs:
vendor/rayon/src/slice.rs:
