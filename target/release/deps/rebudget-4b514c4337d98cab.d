/root/repo/target/release/deps/rebudget-4b514c4337d98cab.d: crates/cli/src/main.rs

/root/repo/target/release/deps/rebudget-4b514c4337d98cab: crates/cli/src/main.rs

crates/cli/src/main.rs:
