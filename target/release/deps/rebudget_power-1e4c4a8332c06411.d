/root/repo/target/release/deps/rebudget_power-1e4c4a8332c06411.d: crates/power/src/lib.rs crates/power/src/budget.rs crates/power/src/dvfs.rs crates/power/src/model.rs crates/power/src/thermal.rs crates/power/src/thermal_grid.rs

/root/repo/target/release/deps/librebudget_power-1e4c4a8332c06411.rlib: crates/power/src/lib.rs crates/power/src/budget.rs crates/power/src/dvfs.rs crates/power/src/model.rs crates/power/src/thermal.rs crates/power/src/thermal_grid.rs

/root/repo/target/release/deps/librebudget_power-1e4c4a8332c06411.rmeta: crates/power/src/lib.rs crates/power/src/budget.rs crates/power/src/dvfs.rs crates/power/src/model.rs crates/power/src/thermal.rs crates/power/src/thermal_grid.rs

crates/power/src/lib.rs:
crates/power/src/budget.rs:
crates/power/src/dvfs.rs:
crates/power/src/model.rs:
crates/power/src/thermal.rs:
crates/power/src/thermal_grid.rs:
