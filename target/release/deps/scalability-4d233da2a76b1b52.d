/root/repo/target/release/deps/scalability-4d233da2a76b1b52.d: crates/bench/src/bin/scalability.rs

/root/repo/target/release/deps/scalability-4d233da2a76b1b52: crates/bench/src/bin/scalability.rs

crates/bench/src/bin/scalability.rs:
