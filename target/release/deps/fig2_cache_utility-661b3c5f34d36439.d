/root/repo/target/release/deps/fig2_cache_utility-661b3c5f34d36439.d: crates/bench/src/bin/fig2_cache_utility.rs

/root/repo/target/release/deps/fig2_cache_utility-661b3c5f34d36439: crates/bench/src/bin/fig2_cache_utility.rs

crates/bench/src/bin/fig2_cache_utility.rs:
