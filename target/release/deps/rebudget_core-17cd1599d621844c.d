/root/repo/target/release/deps/rebudget_core-17cd1599d621844c.d: crates/core/src/lib.rs crates/core/src/ep.rs crates/core/src/linearized.rs crates/core/src/mechanisms.rs crates/core/src/sweep.rs crates/core/src/theory.rs crates/core/src/uncoordinated.rs

/root/repo/target/release/deps/librebudget_core-17cd1599d621844c.rlib: crates/core/src/lib.rs crates/core/src/ep.rs crates/core/src/linearized.rs crates/core/src/mechanisms.rs crates/core/src/sweep.rs crates/core/src/theory.rs crates/core/src/uncoordinated.rs

/root/repo/target/release/deps/librebudget_core-17cd1599d621844c.rmeta: crates/core/src/lib.rs crates/core/src/ep.rs crates/core/src/linearized.rs crates/core/src/mechanisms.rs crates/core/src/sweep.rs crates/core/src/theory.rs crates/core/src/uncoordinated.rs

crates/core/src/lib.rs:
crates/core/src/ep.rs:
crates/core/src/linearized.rs:
crates/core/src/mechanisms.rs:
crates/core/src/sweep.rs:
crates/core/src/theory.rs:
crates/core/src/uncoordinated.rs:
