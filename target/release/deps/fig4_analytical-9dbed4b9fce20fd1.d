/root/repo/target/release/deps/fig4_analytical-9dbed4b9fce20fd1.d: crates/bench/src/bin/fig4_analytical.rs

/root/repo/target/release/deps/fig4_analytical-9dbed4b9fce20fd1: crates/bench/src/bin/fig4_analytical.rs

crates/bench/src/bin/fig4_analytical.rs:
