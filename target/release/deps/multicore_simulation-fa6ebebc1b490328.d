/root/repo/target/release/deps/multicore_simulation-fa6ebebc1b490328.d: examples/multicore_simulation.rs

/root/repo/target/release/deps/multicore_simulation-fa6ebebc1b490328: examples/multicore_simulation.rs

examples/multicore_simulation.rs:
