/root/repo/target/release/deps/rebudget_apps-178679aee3e1bf04.d: crates/apps/src/lib.rs crates/apps/src/classify.rs crates/apps/src/perf.rs crates/apps/src/phase.rs crates/apps/src/profile.rs crates/apps/src/spec.rs crates/apps/src/trace.rs

/root/repo/target/release/deps/librebudget_apps-178679aee3e1bf04.rlib: crates/apps/src/lib.rs crates/apps/src/classify.rs crates/apps/src/perf.rs crates/apps/src/phase.rs crates/apps/src/profile.rs crates/apps/src/spec.rs crates/apps/src/trace.rs

/root/repo/target/release/deps/librebudget_apps-178679aee3e1bf04.rmeta: crates/apps/src/lib.rs crates/apps/src/classify.rs crates/apps/src/perf.rs crates/apps/src/phase.rs crates/apps/src/profile.rs crates/apps/src/spec.rs crates/apps/src/trace.rs

crates/apps/src/lib.rs:
crates/apps/src/classify.rs:
crates/apps/src/perf.rs:
crates/apps/src/phase.rs:
crates/apps/src/profile.rs:
crates/apps/src/spec.rs:
crates/apps/src/trace.rs:
