//! A set-associative LRU cache model.

use crate::config::CacheConfig;
use crate::Result;

/// Outcome of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Whether the access hit.
    pub hit: bool,
    /// The line address evicted to make room, if any.
    pub evicted: Option<u64>,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    owner: u16,
    last_use: u64,
    valid: bool,
}

impl Line {
    const EMPTY: Line = Line {
        tag: 0,
        owner: 0,
        last_use: 0,
        valid: false,
    };
}

/// Per-owner access statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OwnerStats {
    /// Total accesses issued by the owner.
    pub accesses: u64,
    /// Misses suffered by the owner.
    pub misses: u64,
}

impl OwnerStats {
    /// Miss ratio, or 0 when no accesses occurred.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A shared set-associative cache with strict LRU replacement and an owner
/// tag per line (so occupancy per core can be observed).
///
/// # Examples
///
/// ```
/// use rebudget_cache::{CacheConfig, SetAssocCache};
/// # fn main() -> Result<(), rebudget_cache::CacheError> {
/// let mut cache = SetAssocCache::new(CacheConfig {
///     size_bytes: 64 << 10,
///     ways: 4,
///     line_bytes: 32,
/// })?;
/// let miss = cache.access(0, 0x1000);
/// assert!(!miss.hit);
/// let hit = cache.access(0, 0x1000);
/// assert!(hit.hit);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    cfg: CacheConfig,
    sets: Vec<Vec<Line>>,
    clock: u64,
    stats: Vec<OwnerStats>,
}

impl SetAssocCache {
    /// Creates an empty cache.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CacheError::InvalidConfig`] for invalid geometry.
    pub fn new(cfg: CacheConfig) -> Result<Self> {
        cfg.validate()?;
        Ok(Self {
            cfg,
            sets: vec![vec![Line::EMPTY; cfg.ways]; cfg.sets()],
            clock: 0,
            stats: Vec::new(),
        })
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Performs one access by `owner` to byte address `addr`.
    pub fn access(&mut self, owner: u16, addr: u64) -> Access {
        self.clock += 1;
        let (idx, tag) = self.cfg.index_and_tag(addr);
        let stats = self.stats_mut(owner);
        stats.accesses += 1;

        let set = &mut self.sets[idx];
        // Hit?
        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.last_use = self.clock;
            line.owner = owner;
            return Access {
                hit: true,
                evicted: None,
            };
        }
        self.stats_mut(owner).misses += 1;
        // Fill an invalid way if possible.
        let set = &mut self.sets[idx];
        if let Some(line) = set.iter_mut().find(|l| !l.valid) {
            *line = Line {
                tag,
                owner,
                last_use: self.clock,
                valid: true,
            };
            return Access {
                hit: false,
                evicted: None,
            };
        }
        // Evict LRU.
        let victim = set.iter_mut().min_by_key(|l| l.last_use).expect("ways > 0");
        let evicted_tag = victim.tag;
        *victim = Line {
            tag,
            owner,
            last_use: self.clock,
            valid: true,
        };
        let sets = self.cfg.sets() as u64;
        Access {
            hit: false,
            evicted: Some((evicted_tag * sets + idx as u64) * self.cfg.line_bytes),
        }
    }

    fn stats_mut(&mut self, owner: u16) -> &mut OwnerStats {
        let idx = owner as usize;
        if idx >= self.stats.len() {
            self.stats.resize(idx + 1, OwnerStats::default());
        }
        &mut self.stats[idx]
    }

    /// Statistics for `owner` (zeros if it never accessed the cache).
    pub fn stats(&self, owner: u16) -> OwnerStats {
        self.stats.get(owner as usize).copied().unwrap_or_default()
    }

    /// Number of valid lines currently owned by `owner`.
    pub fn occupancy(&self, owner: u16) -> usize {
        self.sets
            .iter()
            .flatten()
            .filter(|l| l.valid && l.owner == owner)
            .count()
    }

    /// Resets statistics, keeping cache contents.
    pub fn reset_stats(&mut self) {
        self.stats.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache {
        SetAssocCache::new(CacheConfig {
            size_bytes: 4096,
            ways: 4,
            line_bytes: 32,
        })
        .unwrap()
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert!(!c.access(0, 64).hit);
        assert!(c.access(0, 64).hit);
        assert!(c.access(0, 65).hit, "same line, different byte");
        assert_eq!(c.stats(0).accesses, 3);
        assert_eq!(c.stats(0).misses, 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small();
        let sets = c.config().sets() as u64;
        let stride = sets * 32; // same set, different tag
                                // Fill the 4 ways of set 0.
        for k in 0..4 {
            assert!(!c.access(0, k * stride).hit);
        }
        // Touch line 0 so line 1 becomes LRU.
        assert!(c.access(0, 0).hit);
        // A 5th tag evicts the LRU line (tag 1).
        let a = c.access(0, 4 * stride);
        assert!(!a.hit);
        assert_eq!(a.evicted, Some(stride));
        // Line 0 still resident, line 1 gone.
        assert!(c.access(0, 0).hit);
        assert!(!c.access(0, stride).hit);
    }

    #[test]
    fn working_set_within_capacity_never_misses_after_warmup() {
        let mut c = small();
        let lines = c.config().lines() as u64;
        for pass in 0..3 {
            for l in 0..lines {
                let hit = c.access(0, l * 32).hit;
                if pass > 0 {
                    assert!(hit, "pass {pass} line {l} should hit");
                }
            }
        }
        assert_eq!(c.stats(0).misses, lines);
    }

    #[test]
    fn working_set_beyond_capacity_thrashes_under_lru() {
        let mut c = small();
        let lines = c.config().lines() as u64;
        // Sequential sweep of 2× capacity: classic LRU worst case, every
        // access misses.
        for _ in 0..3 {
            for l in 0..(2 * lines) {
                c.access(0, l * 32);
            }
        }
        let s = c.stats(0);
        assert_eq!(s.misses, s.accesses);
    }

    #[test]
    fn occupancy_tracks_owners() {
        let mut c = small();
        for l in 0..32u64 {
            c.access(1, l * 32);
        }
        for l in 32..48u64 {
            c.access(2, l * 32);
        }
        assert_eq!(c.occupancy(1), 32);
        assert_eq!(c.occupancy(2), 16);
        assert_eq!(c.occupancy(3), 0);
    }

    #[test]
    fn miss_rate_and_reset() {
        let mut c = small();
        c.access(0, 0);
        c.access(0, 0);
        assert!((c.stats(0).miss_rate() - 0.5).abs() < 1e-12);
        c.reset_stats();
        assert_eq!(c.stats(0).accesses, 0);
        assert_eq!(OwnerStats::default().miss_rate(), 0.0);
    }
}
