//! Futility Scaling cache partitioning (Wang & Chen, MICRO 2014).
//!
//! Way partitioning is too coarse for a market that trades 128 kB regions
//! (the paper's *cache region* granularity, §4.1.1). Futility Scaling
//! instead partitions at replacement time: every line has a *futility*
//! (how useless it is to keep — here, its age), each partition has a
//! *scaling factor*, and the victim on a fill is the line with the highest
//! **scaled** futility. A feedback controller grows the scale of
//! partitions above their target occupancy (making their lines look more
//! futile, shrinking them) and shrinks the scale of under-target
//! partitions. Occupancy thus converges to arbitrary line-granularity
//! targets while keeping high effective associativity.

use crate::config::{CacheConfig, CacheError};
use crate::set_assoc::OwnerStats;
use crate::Result;

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    partition: u16,
    last_use: u64,
    valid: bool,
}

impl Line {
    const EMPTY: Line = Line {
        tag: 0,
        partition: 0,
        last_use: 0,
        valid: false,
    };
}

/// Per-partition control state.
#[derive(Debug, Clone, Copy)]
struct PartitionState {
    target_lines: f64,
    occupancy: u64,
    scale: f64,
}

/// A shared cache partitioned by Futility Scaling.
///
/// # Examples
///
/// ```
/// use rebudget_cache::CacheConfig;
/// use rebudget_cache::futility::FutilityPartitionedCache;
/// # fn main() -> Result<(), rebudget_cache::CacheError> {
/// let cfg = CacheConfig { size_bytes: 256 << 10, ways: 8, line_bytes: 32 };
/// let mut cache = FutilityPartitionedCache::new(cfg, 2)?;
/// cache.set_target_bytes(0, 192.0 * 1024.0)?; // 75%
/// cache.set_target_bytes(1, 64.0 * 1024.0)?;  // 25%
/// cache.access(0, 0x1000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FutilityPartitionedCache {
    cfg: CacheConfig,
    sets: Vec<Vec<Line>>,
    clock: u64,
    partitions: Vec<PartitionState>,
    stats: Vec<OwnerStats>,
    rebalance_interval: u64,
    since_rebalance: u64,
}

impl FutilityPartitionedCache {
    /// Creates a cache with `partitions` partitions, each initially
    /// targeting an equal share.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::InvalidConfig`] for invalid geometry or zero
    /// partitions.
    pub fn new(cfg: CacheConfig, partitions: usize) -> Result<Self> {
        cfg.validate()?;
        if partitions == 0 {
            return Err(CacheError::InvalidConfig {
                reason: "need at least one partition".into(),
            });
        }
        let share = cfg.lines() as f64 / partitions as f64;
        Ok(Self {
            cfg,
            sets: vec![vec![Line::EMPTY; cfg.ways]; cfg.sets()],
            clock: 0,
            partitions: vec![
                PartitionState {
                    target_lines: share,
                    occupancy: 0,
                    scale: 1.0,
                };
                partitions
            ],
            stats: vec![OwnerStats::default(); partitions],
            rebalance_interval: 256,
            since_rebalance: 0,
        })
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Sets partition `p`'s target occupancy in lines (fractional targets
    /// are allowed — that is the point of Futility Scaling).
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::InvalidConfig`] if `p` is out of range or the
    /// target is negative/non-finite.
    pub fn set_target_lines(&mut self, p: usize, lines: f64) -> Result<()> {
        if p >= self.partitions.len() {
            return Err(CacheError::InvalidConfig {
                reason: format!("partition {p} out of range"),
            });
        }
        if !lines.is_finite() || lines < 0.0 {
            return Err(CacheError::InvalidConfig {
                reason: format!("invalid target {lines}"),
            });
        }
        self.partitions[p].target_lines = lines;
        Ok(())
    }

    /// Sets partition `p`'s target occupancy in bytes.
    ///
    /// # Errors
    ///
    /// Same as [`FutilityPartitionedCache::set_target_lines`].
    pub fn set_target_bytes(&mut self, p: usize, bytes: f64) -> Result<()> {
        self.set_target_lines(p, bytes / self.cfg.line_bytes as f64)
    }

    /// Current occupancy of partition `p` in lines.
    pub fn occupancy(&self, p: usize) -> u64 {
        self.partitions[p].occupancy
    }

    /// Current target of partition `p` in lines.
    pub fn target_lines(&self, p: usize) -> f64 {
        self.partitions[p].target_lines
    }

    /// Current futility scaling factor of partition `p`.
    pub fn scale(&self, p: usize) -> f64 {
        self.partitions[p].scale
    }

    /// Access statistics for partition `p`.
    pub fn stats(&self, p: usize) -> OwnerStats {
        self.stats[p]
    }

    /// Performs one access by partition `p` to byte address `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn access(&mut self, p: usize, addr: u64) -> bool {
        assert!(p < self.partitions.len(), "partition out of range");
        self.clock += 1;
        self.since_rebalance += 1;
        if self.since_rebalance >= self.rebalance_interval {
            self.rebalance();
        }
        let (idx, tag) = self.cfg.index_and_tag(addr);
        self.stats[p].accesses += 1;

        let clock = self.clock;
        let set = &mut self.sets[idx];
        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.last_use = clock;
            return true;
        }
        self.stats[p].misses += 1;

        // Fill an invalid way if available.
        if let Some(slot) = set.iter().position(|l| !l.valid) {
            set[slot] = Line {
                tag,
                partition: p as u16,
                last_use: clock,
                valid: true,
            };
            self.partitions[p].occupancy += 1;
            return false;
        }

        // Victim: highest scaled futility (age × partition scale).
        let scales: Vec<f64> = self.partitions.iter().map(|s| s.scale).collect();
        let victim = set
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                let fa = (clock - a.last_use) as f64 * scales[a.partition as usize];
                let fb = (clock - b.last_use) as f64 * scales[b.partition as usize];
                fa.partial_cmp(&fb).expect("finite futility")
            })
            .map(|(k, _)| k)
            .expect("ways > 0");
        let old = set[victim].partition as usize;
        set[victim] = Line {
            tag,
            partition: p as u16,
            last_use: clock,
            valid: true,
        };
        self.partitions[old].occupancy -= 1;
        self.partitions[p].occupancy += 1;
        false
    }

    /// One feedback step: scale each partition by its occupancy/target
    /// ratio (clamped), so over-occupied partitions donate lines.
    fn rebalance(&mut self) {
        self.since_rebalance = 0;
        for s in &mut self.partitions {
            let target = s.target_lines.max(0.5);
            let ratio = (s.occupancy as f64 / target).clamp(0.25, 4.0);
            s.scale = (s.scale * ratio).clamp(1e-3, 1e3);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CacheConfig {
        CacheConfig {
            size_bytes: 128 << 10, // 4096 lines
            ways: 8,
            line_bytes: 32,
        }
    }

    /// Two partitions streaming far more data than fits; occupancies must
    /// converge near the configured line-granularity targets.
    fn run_to_targets(t0: f64, t1: f64) -> (f64, f64, FutilityPartitionedCache) {
        let mut cache = FutilityPartitionedCache::new(cfg(), 2).unwrap();
        let lines = cache.config().lines() as f64;
        cache.set_target_lines(0, t0 * lines).unwrap();
        cache.set_target_lines(1, t1 * lines).unwrap();
        let mut x = 55u64;
        for k in 0..400_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let p = (k % 2) as usize;
            // Each partition cycles over 4× the whole cache worth of lines,
            // in a disjoint address range.
            let addr = ((x >> 33) % (4 * 4096)) * 32;
            cache.access(p, addr + (p as u64) * (1 << 40));
        }
        let o0 = cache.occupancy(0) as f64 / lines;
        let o1 = cache.occupancy(1) as f64 / lines;
        (o0, o1, cache)
    }

    #[test]
    fn converges_to_asymmetric_targets() {
        let (o0, o1, _) = run_to_targets(0.75, 0.25);
        assert!((o0 - 0.75).abs() < 0.08, "partition 0 at {o0}, want 0.75");
        assert!((o1 - 0.25).abs() < 0.08, "partition 1 at {o1}, want 0.25");
    }

    #[test]
    fn line_granularity_targets() {
        // Targets that no way-based scheme could express for 8 ways.
        let (o0, o1, _) = run_to_targets(0.55, 0.45);
        assert!((o0 - 0.55).abs() < 0.08, "partition 0 at {o0}");
        assert!((o1 - 0.45).abs() < 0.08, "partition 1 at {o1}");
    }

    #[test]
    fn retargeting_reconverges() {
        let (_, _, mut cache) = run_to_targets(0.75, 0.25);
        let lines = cache.config().lines() as f64;
        cache.set_target_lines(0, 0.30 * lines).unwrap();
        cache.set_target_lines(1, 0.70 * lines).unwrap();
        let mut x = 99u64;
        for k in 0..400_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let p = (k % 2) as usize;
            let addr = ((x >> 33) % (4 * 4096)) * 32;
            cache.access(p, addr + (p as u64) * (1 << 40));
        }
        let o0 = cache.occupancy(0) as f64 / lines;
        assert!(
            (o0 - 0.30).abs() < 0.08,
            "partition 0 at {o0} after retarget"
        );
    }

    #[test]
    fn occupancy_accounting_is_consistent() {
        let (_, _, cache) = run_to_targets(0.5, 0.5);
        let counted: u64 = (0..2).map(|p| cache.occupancy(p)).sum();
        assert!(counted <= cache.config().lines() as u64);
        // Cache is fully warm after 400k accesses over 4096 lines.
        assert_eq!(counted, cache.config().lines() as u64);
    }

    #[test]
    fn stats_and_validation() {
        let mut cache = FutilityPartitionedCache::new(cfg(), 2).unwrap();
        assert!(cache.set_target_lines(5, 1.0).is_err());
        assert!(cache.set_target_lines(0, -1.0).is_err());
        assert!(cache.set_target_bytes(0, 64.0 * 1024.0).is_ok());
        assert_eq!(cache.target_lines(0), 2048.0);
        cache.access(0, 0);
        cache.access(0, 0);
        assert_eq!(cache.stats(0).accesses, 2);
        assert_eq!(cache.stats(0).misses, 1);
        assert!(FutilityPartitionedCache::new(cfg(), 0).is_err());
    }

    #[test]
    fn scale_rises_for_over_occupied_partition() {
        let mut cache = FutilityPartitionedCache::new(cfg(), 2).unwrap();
        let lines = cache.config().lines() as f64;
        cache.set_target_lines(0, 0.9 * lines).unwrap();
        cache.set_target_lines(1, 0.1 * lines).unwrap();
        // Only partition 1 streams → it over-occupies → its scale must rise
        // above partition 0's.
        for k in 0..100_000u64 {
            cache.access(1, (k % 8192) * 32);
        }
        assert!(cache.scale(1) > cache.scale(0));
    }
}
