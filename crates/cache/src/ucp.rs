//! Utility-based Cache Partitioning (UCP) — Qureshi & Patt, MICRO 2006.
//!
//! UCP is the canonical *single-resource* allocator the paper's
//! introduction contrasts with coordinated multi-resource allocation:
//! given each application's miss curve (from the same UMON monitors this
//! crate provides), the **lookahead algorithm** hands out ways greedily,
//! but looks past plateaus by considering, for every application, the best
//! miss reduction *per way* over any number of additional ways — so a
//! cliff 4 ways ahead still attracts allocation.
//!
//! The `rebudget-core` crate wraps this into an "uncoordinated" baseline
//! mechanism (UCP for cache + equal power split) to reproduce the paper's
//! motivating claim that single-resource allocation is suboptimal.

use crate::config::CacheError;
use crate::Result;

/// Partitions `total_ways` among applications using the UCP lookahead
/// algorithm.
///
/// # Examples
///
/// ```
/// use rebudget_cache::ucp::ucp_lookahead;
///
/// # fn main() -> Result<(), rebudget_cache::CacheError> {
/// // App 0 needs 6 ways before any benefit; app 1 gains smoothly.
/// let cliff: Vec<f64> = (0..=8).map(|w| if w >= 6 { 10.0 } else { 1000.0 }).collect();
/// let smooth: Vec<f64> = (0..=8).map(|w| 100.0 * 0.9f64.powi(w)).collect();
/// let alloc = ucp_lookahead(&[cliff, smooth], 8, 1)?;
/// assert!(alloc[0] >= 6, "lookahead jumps the plateau");
/// assert_eq!(alloc.iter().sum::<usize>(), 8);
/// # Ok(())
/// # }
/// ```
///
/// `miss_curves[i][w]` is application `i`'s miss count when granted `w`
/// ways (`w = 0..=total_ways`; index 0 is the zero-allocation miss count).
/// Every application is first granted `min_ways`; the remainder is
/// assigned by lookahead. Returns the per-application way counts (summing
/// to `total_ways`).
///
/// # Errors
///
/// Returns [`CacheError::InvalidConfig`] if there are no applications, a
/// curve is shorter than `total_ways + 1`, a curve increases with extra
/// ways beyond floating-point slack, or the minimum grants alone exceed
/// `total_ways`.
pub fn ucp_lookahead(
    miss_curves: &[Vec<f64>],
    total_ways: usize,
    min_ways: usize,
) -> Result<Vec<usize>> {
    let n = miss_curves.len();
    if n == 0 {
        return Err(CacheError::InvalidConfig {
            reason: "no applications to partition among".into(),
        });
    }
    for (i, curve) in miss_curves.iter().enumerate() {
        if curve.len() < total_ways + 1 {
            return Err(CacheError::InvalidConfig {
                reason: format!(
                    "application {i}: curve has {} points, need {}",
                    curve.len(),
                    total_ways + 1
                ),
            });
        }
        if curve.windows(2).any(|w| w[1] > w[0] + 1e-6) {
            return Err(CacheError::InvalidConfig {
                reason: format!("application {i}: miss curve increases with ways"),
            });
        }
    }
    if n * min_ways > total_ways {
        return Err(CacheError::InvalidConfig {
            reason: format!("minimum grant {min_ways}×{n} exceeds {total_ways} ways"),
        });
    }

    let mut alloc = vec![min_ways; n];
    let mut remaining = total_ways - n * min_ways;
    while remaining > 0 {
        // For each app, the maximum marginal utility per way over any
        // feasible lookahead span.
        let mut best_app = usize::MAX;
        let mut best_rate = -1.0;
        let mut best_span = 0usize;
        for (i, curve) in miss_curves.iter().enumerate() {
            let cur = alloc[i];
            let max_span = remaining.min(total_ways - cur);
            for span in 1..=max_span {
                let rate = (curve[cur] - curve[cur + span]) / span as f64;
                if rate > best_rate {
                    best_rate = rate;
                    best_app = i;
                    best_span = span;
                }
            }
        }
        if best_app == usize::MAX || best_rate <= 0.0 {
            // No one benefits: split the remainder round-robin.
            let mut i = 0;
            while remaining > 0 {
                if alloc[i] < total_ways {
                    alloc[i] += 1;
                    remaining -= 1;
                }
                i = (i + 1) % n;
            }
            break;
        }
        alloc[best_app] += best_span;
        remaining -= best_span;
    }
    Ok(alloc)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Flat-then-cliff curve: `high` misses until `cliff_at` ways, then
    /// `low`.
    fn cliff_curve(ways: usize, high: f64, low: f64, cliff_at: usize) -> Vec<f64> {
        (0..=ways)
            .map(|w| if w >= cliff_at { low } else { high })
            .collect()
    }

    /// Geometric decay curve.
    fn smooth_curve(ways: usize, base: f64, factor: f64) -> Vec<f64> {
        (0..=ways).map(|w| base * factor.powi(w as i32)).collect()
    }

    #[test]
    fn lookahead_sees_past_plateaus() {
        // App 0 needs exactly 6 ways before any benefit (a cliff); app 1
        // gains slightly per way. Naive greedy would starve app 0; UCP
        // lookahead must jump the plateau.
        let curves = vec![cliff_curve(8, 1000.0, 10.0, 6), smooth_curve(8, 100.0, 0.9)];
        let alloc = ucp_lookahead(&curves, 8, 1).unwrap();
        assert!(alloc[0] >= 6, "cliff app got only {} ways", alloc[0]);
        assert_eq!(alloc.iter().sum::<usize>(), 8);
    }

    #[test]
    fn smooth_apps_split_by_marginal_utility() {
        // Identical smooth apps split evenly.
        let curves = vec![smooth_curve(8, 100.0, 0.8), smooth_curve(8, 100.0, 0.8)];
        let alloc = ucp_lookahead(&curves, 8, 0).unwrap();
        assert_eq!(alloc[0], 4);
        assert_eq!(alloc[1], 4);
    }

    #[test]
    fn hungrier_app_gets_more() {
        let curves = vec![smooth_curve(8, 1000.0, 0.7), smooth_curve(8, 100.0, 0.95)];
        let alloc = ucp_lookahead(&curves, 8, 1).unwrap();
        assert!(alloc[0] > alloc[1]);
        assert_eq!(alloc.iter().sum::<usize>(), 8);
    }

    #[test]
    fn insensitive_apps_round_robin_leftovers() {
        let curves = vec![vec![50.0; 9], vec![50.0; 9]];
        let alloc = ucp_lookahead(&curves, 8, 1).unwrap();
        assert_eq!(alloc.iter().sum::<usize>(), 8);
        assert!(alloc.iter().all(|&w| w >= 1));
    }

    #[test]
    fn validation_errors() {
        assert!(ucp_lookahead(&[], 8, 0).is_err());
        assert!(ucp_lookahead(&[vec![1.0; 4]], 8, 0).is_err(), "short curve");
        assert!(
            ucp_lookahead(&[vec![1.0, 2.0, 3.0]], 2, 0).is_err(),
            "increasing curve"
        );
        assert!(
            ucp_lookahead(&[vec![1.0; 9], vec![1.0; 9]], 8, 5).is_err(),
            "minimums exceed capacity"
        );
    }

    #[test]
    fn respects_minimum_grants() {
        let curves = vec![
            smooth_curve(8, 1000.0, 0.5),
            cliff_curve(8, 10.0, 10.0, 9), // useless cache
        ];
        let alloc = ucp_lookahead(&curves, 8, 1).unwrap();
        assert!(alloc[1] >= 1);
        assert!(alloc[0] >= 6, "hungry app should take the rest");
    }
}
