//! UMON-style utility monitors (Qureshi & Patt, MICRO 2006).
//!
//! UMON attaches *shadow tags* — an auxiliary LRU tag directory with no
//! data — to a sampled subset of cache sets. Hits at each LRU stack
//! position are counted, which (by the Mattson property, see
//! [`crate::stack`]) yields the miss count the application would suffer at
//! every cache size up to the shadow associativity.
//!
//! The paper's configuration (§5): stack distance limited to 16 (so sizes
//! from one 128 kB region up to 2 MB can be estimated), dynamic set
//! sampling with rate 32, costing 3.6 kB per core — under 1% of the L2.

use crate::config::CacheError;
use crate::miss_curve::MissCurve;
use crate::stack::StackProfiler;
use crate::Result;

/// Set-sampled shadow-tag monitor producing per-application miss curves.
#[derive(Debug, Clone)]
pub struct UmonShadowTags {
    sets: usize,
    sampling: usize,
    line_bytes: u64,
    /// Bytes represented by one tracked way across *all* sets (sampled
    /// counts are scaled back up by the sampling rate).
    way_bytes: f64,
    profiler: StackProfiler,
    total_accesses: u64,
}

impl UmonShadowTags {
    /// Creates a monitor for a cache with `sets` sets of `line_bytes`
    /// lines, sampling one in `sampling` sets and tracking `max_ways` stack
    /// positions.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::InvalidConfig`] if any parameter is zero, the
    /// line size is not a power of two, or fewer than one set would be
    /// sampled.
    pub fn new(sets: usize, line_bytes: u64, sampling: usize, max_ways: usize) -> Result<Self> {
        if sets == 0 || sampling == 0 || max_ways == 0 {
            return Err(CacheError::InvalidConfig {
                reason: "sets, sampling, and max_ways must be non-zero".into(),
            });
        }
        if !line_bytes.is_power_of_two() {
            return Err(CacheError::InvalidConfig {
                reason: "line size must be a power of two".into(),
            });
        }
        let sampled_sets = sets / sampling;
        if sampled_sets == 0 {
            return Err(CacheError::InvalidConfig {
                reason: format!("sampling rate {sampling} leaves no sets out of {sets}"),
            });
        }
        Ok(Self {
            sets,
            sampling,
            line_bytes,
            way_bytes: (sets as u64 * line_bytes) as f64,
            profiler: StackProfiler::new(sampled_sets, line_bytes, max_ways),
            total_accesses: 0,
        })
    }

    /// Paper configuration for a given cache geometry: sampling rate 32,
    /// stack distance 16.
    ///
    /// # Errors
    ///
    /// Same as [`UmonShadowTags::new`].
    pub fn paper_config(sets: usize, line_bytes: u64) -> Result<Self> {
        Self::new(sets, line_bytes, 32, 16)
    }

    /// Observes one access to byte address `addr`. Only accesses mapping
    /// to sampled sets update the shadow tags; all are counted for scaling.
    pub fn observe(&mut self, addr: u64) {
        self.total_accesses += 1;
        let line = addr / self.line_bytes;
        let set = (line % self.sets as u64) as usize;
        if !set.is_multiple_of(self.sampling) {
            return;
        }
        // Re-index into the sampled directory: tag bits must include the
        // original set bits we dropped, so fold the set index into the tag
        // by passing the line address of the *sampled* space.
        let sampled_set = set / self.sampling;
        let tag = line / self.sets as u64;
        let pseudo_line = tag * (self.sets / self.sampling) as u64 + sampled_set as u64;
        self.profiler.record(pseudo_line * self.line_bytes);
    }

    /// Total accesses observed (sampled or not).
    pub fn accesses(&self) -> u64 {
        self.total_accesses
    }

    /// Starts a fresh measurement epoch: counters reset, shadow tags kept
    /// warm (so compulsory warm-up misses from before the reset do not
    /// bias the new epoch's curve).
    pub fn reset_counters(&mut self) {
        self.profiler.reset_counters();
        self.total_accesses = 0;
    }

    /// Estimated misses if the application ran alone in a cache of `ways`
    /// ways, scaled from the sampled sets to the full cache.
    pub fn estimated_misses_at(&self, ways: usize) -> f64 {
        let sampled = self.profiler.misses_at(ways) as f64;
        let sampled_accesses = self.profiler.accesses() as f64;
        if sampled_accesses == 0.0 {
            return 0.0;
        }
        // Scale by the true access count rather than the nominal sampling
        // rate: dynamic set sampling is unbiased in expectation but the
        // realized sample fraction varies by address distribution.
        sampled * self.total_accesses as f64 / sampled_accesses
    }

    /// The estimated miss curve over capacities `1..=max_ways` ways,
    /// expressed in bytes of the full cache.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::InvalidConfig`] only if monotonicity repair
    /// fails, which cannot happen for profiler output.
    pub fn miss_curve(&self) -> Result<MissCurve> {
        let max_ways = self.profiler.miss_profile().len();
        let mut points = Vec::with_capacity(max_ways);
        let mut floor = f64::INFINITY;
        for w in 1..=max_ways {
            let mut m = self.estimated_misses_at(w);
            // Guard tiny float noise from scaling.
            if m > floor {
                m = floor;
            }
            floor = m;
            points.push((w as f64 * self.way_bytes, m));
        }
        MissCurve::new(points)
    }

    /// Approximate storage overhead of the shadow tags in bytes, assuming
    /// compact ~2-byte tags per tracked way. With the paper's geometry —
    /// a per-core monitor covering 2 MB / 16 ways (4096 sets) at sampling
    /// rate 32 — this is ≈4 kB per core, matching the paper's reported
    /// 3.6 kB (<1% of the per-core L2 share).
    pub fn storage_overhead_bytes(&self) -> usize {
        let sampled_sets = self.sets / self.sampling;
        let ways = self.profiler.miss_profile().len();
        sampled_sets * ways * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg_stream(n: usize, distinct: u64, line: u64) -> Vec<u64> {
        let mut x = 987654321u64;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((x >> 32) % distinct) * line
            })
            .collect()
    }

    #[test]
    fn rejects_degenerate_configs() {
        assert!(UmonShadowTags::new(0, 32, 32, 16).is_err());
        assert!(UmonShadowTags::new(64, 32, 0, 16).is_err());
        assert!(UmonShadowTags::new(64, 48, 2, 16).is_err());
        assert!(
            UmonShadowTags::new(16, 32, 32, 16).is_err(),
            "no sampled sets"
        );
    }

    #[test]
    fn sampled_estimate_tracks_exact_profile() {
        let sets = 1024usize;
        let line = 32u64;
        let stream = lcg_stream(200_000, 40_000, line);
        let mut exact = StackProfiler::new(sets, line, 16);
        let mut umon = UmonShadowTags::new(sets, line, 32, 16).unwrap();
        for &a in &stream {
            exact.record(a);
            umon.observe(a);
        }
        for ways in [1usize, 4, 8, 16] {
            let truth = exact.misses_at(ways) as f64;
            let est = umon.estimated_misses_at(ways);
            let err = (est - truth).abs() / truth.max(1.0);
            assert!(
                err < 0.15,
                "ways {ways}: estimate {est} vs exact {truth} ({:.1}% off)",
                err * 100.0
            );
        }
    }

    #[test]
    fn miss_curve_is_monotone_and_in_bytes() {
        let sets = 256usize;
        let line = 32u64;
        let mut umon = UmonShadowTags::new(sets, line, 8, 16).unwrap();
        for &a in &lcg_stream(50_000, 5_000, line) {
            umon.observe(a);
        }
        let curve = umon.miss_curve().unwrap();
        assert_eq!(curve.capacities().len(), 16);
        assert_eq!(curve.capacities()[0], (sets as u64 * line) as f64);
        assert!(curve.misses().windows(2).all(|w| w[1] <= w[0] + 1e-9));
    }

    #[test]
    fn empty_monitor_reports_zero() {
        let umon = UmonShadowTags::paper_config(4096, 32).unwrap();
        assert_eq!(umon.estimated_misses_at(4), 0.0);
        assert_eq!(umon.accesses(), 0);
    }

    #[test]
    fn paper_overhead_under_one_percent_of_core_share() {
        // The per-core monitor covers the 2 MB maximum monitored region:
        // 2 MB / (16 ways × 32 B) = 4096 sets, sampling rate 32.
        let umon = UmonShadowTags::paper_config(4096, 32).unwrap();
        let overhead = umon.storage_overhead_bytes() as f64;
        // Paper: 3.6 kB per core, <1% of the 512 kB per-core L2 share.
        assert!(overhead <= 4.5 * 1024.0, "overhead {} bytes", overhead);
        assert!(overhead / (512.0 * 1024.0) < 0.01);
    }
}
