//! Strict way partitioning — the coarse-grained scheme Futility Scaling
//! replaces.
//!
//! Classic way partitioning assigns each owner a set of ways in every set;
//! replacements only evict within the owner's own ways. It is simple and
//! fully isolating, but its granularity is one way across all sets
//! (e.g. 256 kB for the paper's 8-core L2) — far coarser than the 128 kB
//! *cache region* the market trades, and unable to express targets like a
//! 55%/45% split of an 8-way cache. The paper adopts Futility Scaling
//! (§4.1.1) precisely to escape this; this module exists as the
//! comparison point (see the granularity tests here and in the
//! integration suite).

use crate::config::{CacheConfig, CacheError};
use crate::set_assoc::OwnerStats;
use crate::Result;

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    last_use: u64,
    valid: bool,
}

impl Line {
    const EMPTY: Line = Line {
        tag: 0,
        last_use: 0,
        valid: false,
    };
}

/// A cache statically partitioned by ways.
#[derive(Debug, Clone)]
pub struct WayPartitionedCache {
    cfg: CacheConfig,
    /// `way_owner[w]` = partition owning way `w` (same in every set).
    way_owner: Vec<u16>,
    sets: Vec<Vec<Line>>,
    clock: u64,
    stats: Vec<OwnerStats>,
}

impl WayPartitionedCache {
    /// Creates a cache with the given per-partition way counts (must sum
    /// to the associativity; every partition needs at least one way — the
    /// scheme cannot express less).
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::InvalidConfig`] for invalid geometry, a way
    /// count mismatch, or a zero-way partition.
    pub fn new(cfg: CacheConfig, ways_per_partition: &[usize]) -> Result<Self> {
        cfg.validate()?;
        let total: usize = ways_per_partition.iter().sum();
        if total != cfg.ways {
            return Err(CacheError::InvalidConfig {
                reason: format!("way counts sum to {total}, cache has {}", cfg.ways),
            });
        }
        if ways_per_partition.contains(&0) {
            return Err(CacheError::InvalidConfig {
                reason: "way partitioning cannot express a zero-way partition".into(),
            });
        }
        let mut way_owner = Vec::with_capacity(cfg.ways);
        for (p, &w) in ways_per_partition.iter().enumerate() {
            way_owner.extend(std::iter::repeat_n(p as u16, w));
        }
        Ok(Self {
            cfg,
            way_owner,
            sets: vec![vec![Line::EMPTY; cfg.ways]; cfg.sets()],
            clock: 0,
            stats: vec![OwnerStats::default(); ways_per_partition.len()],
        })
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Bytes held by partition `p` (exact, by construction).
    pub fn partition_bytes(&self, p: usize) -> u64 {
        let ways = self.way_owner.iter().filter(|&&o| o as usize == p).count();
        ways as u64 * self.cfg.way_bytes()
    }

    /// Access statistics for partition `p`.
    pub fn stats(&self, p: usize) -> OwnerStats {
        self.stats[p]
    }

    /// Performs one access by partition `p` to byte address `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn access(&mut self, p: usize, addr: u64) -> bool {
        assert!(p < self.stats.len(), "partition out of range");
        self.clock += 1;
        let (idx, tag) = self.cfg.index_and_tag(addr);
        self.stats[p].accesses += 1;
        let clock = self.clock;
        let owner = p as u16;
        let way_owner = &self.way_owner;
        let set = &mut self.sets[idx];

        // Hit within own ways only (strict isolation).
        if let Some(w) =
            (0..set.len()).find(|&w| way_owner[w] == owner && set[w].valid && set[w].tag == tag)
        {
            set[w].last_use = clock;
            return true;
        }
        self.stats[p].misses += 1;
        // Fill an invalid own way, else evict own LRU.
        let victim = (0..set.len())
            .filter(|&w| way_owner[w] == owner)
            .min_by_key(|&w| if set[w].valid { set[w].last_use } else { 0 })
            .expect("every partition has at least one way");
        set[victim] = Line {
            tag,
            last_use: clock,
            valid: true,
        };
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CacheConfig {
        CacheConfig {
            size_bytes: 64 << 10,
            ways: 8,
            line_bytes: 32,
        }
    }

    #[test]
    fn granularity_is_way_sized() {
        let c = WayPartitionedCache::new(cfg(), &[6, 2]).unwrap();
        assert_eq!(c.partition_bytes(0), 6 * (64 << 10) / 8);
        assert_eq!(c.partition_bytes(1), 2 * (64 << 10) / 8);
        // A 55/45 split of 8 ways is inexpressible: 4.4 ways is not an
        // integer — the best way partitioning can do is 4/4 or 5/3.
        assert!(WayPartitionedCache::new(cfg(), &[4, 4]).is_ok());
        let err = |w: &[usize]| WayPartitionedCache::new(cfg(), w).is_err();
        assert!(err(&[5, 4]), "over-committed");
        assert!(err(&[8, 0]), "zero-way partition");
    }

    #[test]
    fn partitions_are_fully_isolated() {
        let mut c = WayPartitionedCache::new(cfg(), &[4, 4]).unwrap();
        // Partition 1 floods the cache; partition 0's lines survive.
        for l in 0..16u64 {
            c.access(0, l * 32);
        }
        for l in 0..100_000u64 {
            c.access(1, (1 << 30) + l * 32);
        }
        c.stats[0] = OwnerStats::default();
        for l in 0..16u64 {
            assert!(c.access(0, l * 32), "line {l} was evicted by partition 1");
        }
    }

    #[test]
    fn own_partition_too_small_thrashes() {
        // Partition 1 has 2 ways; a 4-way-per-set working set thrashes in
        // it even though the cache as a whole could hold it.
        let mut c = WayPartitionedCache::new(cfg(), &[6, 2]).unwrap();
        let sets = c.config().sets() as u64;
        let stride = sets * 32;
        for _ in 0..10 {
            for k in 0..4u64 {
                c.access(1, k * stride);
            }
        }
        let s = c.stats(1);
        assert_eq!(s.misses, s.accesses, "cyclic 4-tag set in 2 ways thrashes");
    }

    #[test]
    fn stats_track_hits() {
        let mut c = WayPartitionedCache::new(cfg(), &[4, 4]).unwrap();
        c.access(0, 0);
        c.access(0, 0);
        assert_eq!(c.stats(0).accesses, 2);
        assert_eq!(c.stats(0).misses, 1);
    }
}
