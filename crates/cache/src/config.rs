//! Cache geometry and configuration errors.

use std::fmt;

/// Errors from cache construction or monitoring configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CacheError {
    /// A geometric parameter was invalid.
    InvalidConfig {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::InvalidConfig { reason } => write!(f, "invalid cache config: {reason}"),
        }
    }
}

impl std::error::Error for CacheError {}

/// Geometry of a set-associative cache.
///
/// The paper's 64-core L2 is 32 MB, 32-way, with 32 B lines (Table 1); the
/// 8-core configuration is 4 MB / 16-way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (lines per set).
    pub ways: usize,
    /// Line size in bytes (must be a power of two).
    pub line_bytes: u64,
}

impl CacheConfig {
    /// The paper's 8-core shared L2: 4 MB, 16-way, 32 B lines.
    pub fn l2_8core() -> Self {
        Self {
            size_bytes: 4 << 20,
            ways: 16,
            line_bytes: 32,
        }
    }

    /// The paper's 64-core shared L2: 32 MB, 32-way, 32 B lines.
    pub fn l2_64core() -> Self {
        Self {
            size_bytes: 32 << 20,
            ways: 32,
            line_bytes: 32,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        (self.size_bytes / (self.ways as u64 * self.line_bytes)) as usize
    }

    /// Total number of lines.
    pub fn lines(&self) -> usize {
        (self.size_bytes / self.line_bytes) as usize
    }

    /// Bytes per way (one way across all sets).
    pub fn way_bytes(&self) -> u64 {
        self.size_bytes / self.ways as u64
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::InvalidConfig`] if any parameter is zero, the
    /// line size is not a power of two, or the capacity is not divisible
    /// into an integral power-of-two number of sets.
    pub fn validate(&self) -> crate::Result<()> {
        if self.size_bytes == 0 || self.ways == 0 || self.line_bytes == 0 {
            return Err(CacheError::InvalidConfig {
                reason: "size, ways, and line size must be non-zero".into(),
            });
        }
        if !self.line_bytes.is_power_of_two() {
            return Err(CacheError::InvalidConfig {
                reason: format!("line size {} is not a power of two", self.line_bytes),
            });
        }
        let denom = self.ways as u64 * self.line_bytes;
        if !self.size_bytes.is_multiple_of(denom) {
            return Err(CacheError::InvalidConfig {
                reason: format!(
                    "capacity {} not divisible by ways×line ({denom})",
                    self.size_bytes
                ),
            });
        }
        let sets = self.size_bytes / denom;
        if !sets.is_power_of_two() {
            return Err(CacheError::InvalidConfig {
                reason: format!("set count {sets} is not a power of two"),
            });
        }
        Ok(())
    }

    /// Set index and tag for a byte address.
    pub fn index_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.line_bytes;
        let sets = self.sets() as u64;
        ((line % sets) as usize, line / sets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_are_valid() {
        for cfg in [CacheConfig::l2_8core(), CacheConfig::l2_64core()] {
            cfg.validate().unwrap();
        }
        let c8 = CacheConfig::l2_8core();
        assert_eq!(c8.sets(), (4 << 20) / (16 * 32));
        assert_eq!(c8.way_bytes(), (4 << 20) / 16);
        assert_eq!(c8.lines(), (4 << 20) / 32);
    }

    #[test]
    fn rejects_bad_geometry() {
        let bad = CacheConfig {
            size_bytes: 0,
            ways: 4,
            line_bytes: 32,
        };
        assert!(bad.validate().is_err());
        let bad = CacheConfig {
            size_bytes: 1 << 20,
            ways: 4,
            line_bytes: 48,
        };
        assert!(bad.validate().is_err());
        let bad = CacheConfig {
            size_bytes: 3 << 20,
            ways: 4,
            line_bytes: 32,
        };
        assert!(bad.validate().is_err(), "non-power-of-two set count");
    }

    #[test]
    fn index_and_tag_round_trip() {
        let cfg = CacheConfig::l2_8core();
        let sets = cfg.sets() as u64;
        let (idx, tag) = cfg.index_and_tag(0);
        assert_eq!((idx, tag), (0, 0));
        // Two addresses one "cache page" apart share a set but not a tag.
        let stride = sets * cfg.line_bytes;
        let (i1, t1) = cfg.index_and_tag(1234 * cfg.line_bytes);
        let (i2, t2) = cfg.index_and_tag(1234 * cfg.line_bytes + stride);
        assert_eq!(i1, i2);
        assert_eq!(t2, t1 + 1);
    }
}
