#![warn(missing_docs)]

//! Cache substrate for the ReBudget reproduction.
//!
//! The paper's multicore market sells shared last-level cache capacity. To
//! model an application's *utility* for cache, and to actually *enforce* an
//! allocation, the paper relies on three published hardware techniques, all
//! reimplemented here:
//!
//! * **UMON shadow tags** (Qureshi & Patt, MICRO 2006) — set-sampled
//!   Mattson stack-distance monitors that estimate, at run time, how many
//!   misses an application *would* take at every possible cache size
//!   ([`umon`], built on the exact [`stack`] profiler).
//! * **Futility Scaling** (Wang & Chen, MICRO 2014) — a replacement-time
//!   feedback controller that holds per-core partitions at arbitrary
//!   line-granularity targets without way alignment ([`futility`]).
//! * **Talus** (Beckmann & Sanchez, HPCA 2015) — convexification of a
//!   non-concave miss curve by splitting a partition into two shadow
//!   partitions sized at neighbouring points of interest on the curve's
//!   convex hull ([`talus`]).
//!
//! A plain set-associative LRU cache model lives in [`set_assoc`]; miss
//! curves — the common currency between these pieces — in [`miss_curve`].

pub mod config;
pub mod futility;
pub mod miss_curve;
pub mod set_assoc;
pub mod stack;
pub mod talus;
pub mod ucp;
pub mod umon;
pub mod way_partition;

pub use config::{CacheConfig, CacheError};
pub use miss_curve::MissCurve;
pub use set_assoc::SetAssocCache;
pub use umon::UmonShadowTags;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CacheError>;
