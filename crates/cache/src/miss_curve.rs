//! Miss curves: misses as a function of allocated cache capacity.
//!
//! Miss curves are the common currency of the cache substrate: UMON
//! produces them, Talus convexifies them, and the simulator's utility
//! models consume them. Capacity is measured in bytes; values are misses
//! per profiled window (convert to rates or MPKI as needed).

use crate::config::CacheError;
use crate::Result;

/// A non-increasing miss curve sampled at increasing capacities, with
/// linear interpolation between samples and flat extension beyond them.
#[derive(Debug, Clone, PartialEq)]
pub struct MissCurve {
    capacities: Vec<f64>,
    misses: Vec<f64>,
}

impl MissCurve {
    /// Creates a miss curve from `(capacity_bytes, misses)` points.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::InvalidConfig`] unless there is at least one
    /// point, capacities are strictly increasing and positive, and miss
    /// counts are non-negative and non-increasing (within a 1e-9 slack).
    pub fn new(points: Vec<(f64, f64)>) -> Result<Self> {
        if points.is_empty() {
            return Err(CacheError::InvalidConfig {
                reason: "miss curve needs at least one point".into(),
            });
        }
        for w in points.windows(2) {
            if w[1].0 <= w[0].0 {
                return Err(CacheError::InvalidConfig {
                    reason: "capacities must be strictly increasing".into(),
                });
            }
            if w[1].1 > w[0].1 + 1e-9 {
                return Err(CacheError::InvalidConfig {
                    reason: "misses must be non-increasing in capacity".into(),
                });
            }
        }
        for &(c, m) in &points {
            if !(c.is_finite() && m.is_finite()) || c <= 0.0 || m < 0.0 {
                return Err(CacheError::InvalidConfig {
                    reason: format!("invalid miss-curve point ({c}, {m})"),
                });
            }
        }
        let (capacities, misses) = points.into_iter().unzip();
        Ok(Self { capacities, misses })
    }

    /// Sample capacities (bytes).
    pub fn capacities(&self) -> &[f64] {
        &self.capacities
    }

    /// Sample miss counts.
    pub fn misses(&self) -> &[f64] {
        &self.misses
    }

    /// Interpolated misses at `capacity` bytes (clamped flat outside the
    /// sampled range).
    pub fn at(&self, capacity: f64) -> f64 {
        let n = self.capacities.len();
        if capacity <= self.capacities[0] {
            return self.misses[0];
        }
        if capacity >= self.capacities[n - 1] {
            return self.misses[n - 1];
        }
        let k = self.capacities.partition_point(|&c| c <= capacity);
        let (c0, c1) = (self.capacities[k - 1], self.capacities[k]);
        let (m0, m1) = (self.misses[k - 1], self.misses[k]);
        m0 + (m1 - m0) * (capacity - c0) / (c1 - c0)
    }

    /// Returns `true` if the curve is convex (non-increasing marginal miss
    /// reduction) within `tol`.
    pub fn is_convex(&self, tol: f64) -> bool {
        let mut prev = f64::NEG_INFINITY;
        for w in self.capacities.windows(2).zip(self.misses.windows(2)) {
            let slope = (w.1[1] - w.1[0]) / (w.0[1] - w.0[0]);
            if slope < prev - tol {
                return false;
            }
            prev = slope;
        }
        true
    }

    /// The lower convex hull of the curve — the convexification Talus
    /// performs. The retained points are the *points of interest* (PoIs).
    ///
    /// Because misses decrease with capacity, the hull is the set of points
    /// no chord passes under; every capacity's hull value is ≤ the raw
    /// curve's.
    pub fn convex_hull(&self) -> MissCurve {
        let n = self.capacities.len();
        let mut hull: Vec<usize> = Vec::with_capacity(n);
        for i in 0..n {
            while hull.len() >= 2 {
                let a = hull[hull.len() - 2];
                let b = hull[hull.len() - 1];
                let cross = (self.capacities[b] - self.capacities[a])
                    * (self.misses[i] - self.misses[a])
                    - (self.misses[b] - self.misses[a]) * (self.capacities[i] - self.capacities[a]);
                // Keep b only if it lies strictly below chord a→i.
                if cross <= 1e-12 {
                    hull.pop();
                } else {
                    break;
                }
            }
            hull.push(i);
        }
        let points: Vec<(f64, f64)> = hull
            .into_iter()
            .map(|i| (self.capacities[i], self.misses[i]))
            .collect();
        MissCurve::new(points).expect("hull of a valid curve is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cliff() -> MissCurve {
        // mcf-like: flat high misses until a working-set cliff.
        MissCurve::new(vec![
            (128.0, 1000.0),
            (256.0, 990.0),
            (512.0, 980.0),
            (1024.0, 970.0),
            (1536.0, 50.0),
            (2048.0, 40.0),
        ])
        .unwrap()
    }

    #[test]
    fn interpolation_and_clamping() {
        let c = cliff();
        assert_eq!(c.at(64.0), 1000.0);
        assert_eq!(c.at(4096.0), 40.0);
        assert!((c.at(192.0) - 995.0).abs() < 1e-9);
    }

    #[test]
    fn validation_rejects_bad_curves() {
        assert!(MissCurve::new(vec![]).is_err());
        assert!(MissCurve::new(vec![(1.0, 10.0), (1.0, 5.0)]).is_err());
        assert!(MissCurve::new(vec![(1.0, 10.0), (2.0, 15.0)]).is_err());
        assert!(MissCurve::new(vec![(-1.0, 10.0)]).is_err());
        assert!(MissCurve::new(vec![(1.0, -10.0)]).is_err());
    }

    #[test]
    fn hull_is_convex_and_dominated() {
        let c = cliff();
        assert!(!c.is_convex(1e-9));
        let hull = c.convex_hull();
        assert!(hull.is_convex(1e-9));
        for k in 0..40 {
            let cap = 128.0 + k as f64 * 48.0;
            assert!(
                hull.at(cap) <= c.at(cap) + 1e-9,
                "hull above raw at {cap}: {} vs {}",
                hull.at(cap),
                c.at(cap)
            );
        }
        // End points preserved.
        assert_eq!(hull.at(128.0), 1000.0);
        assert_eq!(hull.at(2048.0), 40.0);
        // The plateau points were dropped from the PoI set.
        assert!(hull.capacities().len() < c.capacities().len());
    }

    #[test]
    fn hull_of_convex_curve_is_identity() {
        let c = MissCurve::new(vec![(1.0, 100.0), (2.0, 60.0), (4.0, 30.0), (8.0, 20.0)]).unwrap();
        assert!(c.is_convex(1e-9));
        assert_eq!(c.convex_hull(), c);
    }

    #[test]
    fn single_point_curve() {
        let c = MissCurve::new(vec![(1024.0, 7.0)]).unwrap();
        assert_eq!(c.at(10.0), 7.0);
        assert_eq!(c.at(10_000.0), 7.0);
        assert!(c.is_convex(0.0));
        assert_eq!(c.convex_hull(), c);
    }
}
