//! Talus: convexifying cache behaviour with shadow partitions
//! (Beckmann & Sanchez, HPCA 2015; used by the paper in §4.1.1).
//!
//! Cache miss curves can have plateaus and cliffs (e.g. *mcf*'s working
//! set: useless below 1.5 MB, perfect above). Talus removes these cliffs:
//!
//! 1. compute the **convex hull** of the application's miss curve; its
//!    vertices are the *points of interest* (PoIs);
//! 2. for a target size `s` between neighbouring PoIs `s_lo < s ≤ s_hi`,
//!    split the partition into two *shadow partitions* sized `(1−ρ)·s_lo`
//!    and `ρ·s_hi`, where `ρ = (s − s_lo)/(s_hi − s_lo)`, and steer a
//!    fraction `ρ` of the (set-hashed) access stream to the second;
//! 3. by the miss-curve scaling property, total misses interpolate
//!    linearly between the PoIs: `m(s) = (1−ρ)·m(s_lo) + ρ·m(s_hi)`.
//!
//! The result is a continuous, convex effective miss curve — exactly the
//! concave, continuous utility the market theory needs.

use crate::miss_curve::MissCurve;

/// How to realize a cache allocation of a given size with two shadow
/// partitions.
#[derive(Debug, Clone, PartialEq)]
pub struct ShadowPlan {
    /// Size of the first shadow partition in bytes (`(1−ρ)·s_lo`).
    pub lo_bytes: f64,
    /// Size of the second shadow partition in bytes (`ρ·s_hi`).
    pub hi_bytes: f64,
    /// Fraction `ρ` of the access stream steered to the second partition.
    pub hi_fraction: f64,
    /// Expected misses at this plan (the hull value).
    pub expected_misses: f64,
}

impl ShadowPlan {
    /// Total bytes consumed by the plan (equals the requested target).
    pub fn total_bytes(&self) -> f64 {
        self.lo_bytes + self.hi_bytes
    }
}

/// A Talus controller built from a raw (possibly non-convex) miss curve.
///
/// # Examples
///
/// ```
/// use rebudget_cache::{talus::Talus, MissCurve};
///
/// # fn main() -> Result<(), rebudget_cache::CacheError> {
/// // A plateau-then-cliff curve (mcf-like).
/// let raw = MissCurve::new(vec![
///     (128e3, 1000.0), (512e3, 990.0), (1536e3, 20.0), (2048e3, 10.0),
/// ])?;
/// let talus = Talus::new(raw);
/// // Mid-plateau allocations now buy proportional benefit...
/// assert!(talus.expected_misses(900e3) < 600.0);
/// // ...realized by two shadow partitions that sum to the target.
/// let plan = talus.plan(900e3);
/// assert!((plan.total_bytes() - 900e3).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Talus {
    raw: MissCurve,
    hull: MissCurve,
}

impl Talus {
    /// Builds the controller, deriving the convex hull (PoIs) of `raw`.
    pub fn new(raw: MissCurve) -> Self {
        let hull = raw.convex_hull();
        Self { raw, hull }
    }

    /// The original miss curve.
    pub fn raw(&self) -> &MissCurve {
        &self.raw
    }

    /// The convexified (hull) miss curve.
    pub fn hull(&self) -> &MissCurve {
        &self.hull
    }

    /// The points of interest: hull vertex capacities in bytes.
    pub fn points_of_interest(&self) -> &[f64] {
        self.hull.capacities()
    }

    /// Expected misses at `target` bytes under Talus (the hull value) —
    /// always ≤ the raw curve's value.
    pub fn expected_misses(&self, target: f64) -> f64 {
        self.hull.at(target)
    }

    /// Computes the shadow-partition plan realizing `target` bytes.
    ///
    /// Targets at or below the first PoI, or at or above the last, use a
    /// single partition (`hi_fraction` 0 or 1).
    pub fn plan(&self, target: f64) -> ShadowPlan {
        let pois = self.hull.capacities();
        let first = pois[0];
        let last = pois[pois.len() - 1];
        if target <= first {
            return ShadowPlan {
                lo_bytes: target.max(0.0),
                hi_bytes: 0.0,
                hi_fraction: 0.0,
                expected_misses: self.hull.at(target),
            };
        }
        if target >= last {
            return ShadowPlan {
                lo_bytes: 0.0,
                hi_bytes: target,
                hi_fraction: 1.0,
                expected_misses: self.hull.at(target),
            };
        }
        let k = pois.partition_point(|&c| c <= target);
        let (s_lo, s_hi) = (pois[k - 1], pois[k]);
        let rho = (target - s_lo) / (s_hi - s_lo);
        ShadowPlan {
            lo_bytes: (1.0 - rho) * s_lo,
            hi_bytes: rho * s_hi,
            hi_fraction: rho,
            expected_misses: self.hull.at(target),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// mcf-like cliff: ~flat until 1.5 MB, then nearly perfect (Figure 2).
    fn mcf_like() -> MissCurve {
        let kb = 1024.0;
        MissCurve::new(vec![
            (128.0 * kb, 1000.0),
            (256.0 * kb, 995.0),
            (512.0 * kb, 990.0),
            (768.0 * kb, 985.0),
            (1024.0 * kb, 980.0),
            (1280.0 * kb, 975.0),
            (1536.0 * kb, 20.0),
            (1792.0 * kb, 15.0),
            (2048.0 * kb, 10.0),
        ])
        .unwrap()
    }

    #[test]
    fn hull_removes_the_cliff() {
        let talus = Talus::new(mcf_like());
        assert!(talus.hull().is_convex(1e-9));
        // Mid-plateau allocations now buy proportional benefit.
        let kb = 1024.0;
        let mid = talus.expected_misses(832.0 * kb);
        assert!(
            mid < 700.0,
            "Talus at 832 kB should be far below the raw plateau, got {mid}"
        );
        assert!(mid > 20.0);
        // And never worse than raw anywhere.
        for k in 4..64 {
            let cap = k as f64 * 32.0 * kb;
            assert!(talus.expected_misses(cap) <= talus.raw().at(cap) + 1e-9);
        }
    }

    #[test]
    fn plan_sizes_sum_to_target_and_bracket_pois() {
        let talus = Talus::new(mcf_like());
        let kb = 1024.0;
        let target = 1000.0 * kb;
        let plan = talus.plan(target);
        assert!((plan.total_bytes() - target).abs() < 1e-6);
        assert!(plan.hi_fraction > 0.0 && plan.hi_fraction < 1.0);
        // Expected misses interpolate between the bracketing PoIs.
        let pois = talus.points_of_interest();
        let k = pois.partition_point(|&c| c <= target);
        let (s_lo, s_hi) = (pois[k - 1], pois[k]);
        let (m_lo, m_hi) = (talus.hull().at(s_lo), talus.hull().at(s_hi));
        let rho = (target - s_lo) / (s_hi - s_lo);
        let expect = (1.0 - rho) * m_lo + rho * m_hi;
        assert!((plan.expected_misses - expect).abs() < 1e-6);
    }

    #[test]
    fn plan_degenerates_at_extremes() {
        let talus = Talus::new(mcf_like());
        let kb = 1024.0;
        let small = talus.plan(64.0 * kb);
        assert_eq!(small.hi_fraction, 0.0);
        assert_eq!(small.hi_bytes, 0.0);
        let big = talus.plan(4096.0 * kb);
        assert_eq!(big.hi_fraction, 1.0);
        assert_eq!(big.lo_bytes, 0.0);
    }

    #[test]
    fn concave_curve_passes_through_unchanged() {
        let vpr_like = MissCurve::new(vec![
            (128.0, 800.0),
            (256.0, 500.0),
            (512.0, 320.0),
            (1024.0, 200.0),
            (2048.0, 150.0),
        ])
        .unwrap();
        let talus = Talus::new(vpr_like.clone());
        assert_eq!(talus.hull(), &vpr_like);
        // Any exact PoI target is a single partition boundary case.
        let plan = talus.plan(512.0);
        assert!((plan.total_bytes() - 512.0).abs() < 1e-9);
        assert!((plan.expected_misses - 320.0).abs() < 1e-9);
    }

    #[test]
    fn effective_curve_is_continuous() {
        // Sample densely across the cliff; consecutive expected-miss values
        // must change smoothly (no jump bigger than the local hull slope
        // allows).
        let talus = Talus::new(mcf_like());
        let kb = 1024.0;
        let mut prev = talus.expected_misses(128.0 * kb);
        for k in 1..=192 {
            let cap = 128.0 * kb + k as f64 * 10.0 * kb;
            let cur = talus.expected_misses(cap);
            assert!(cur <= prev + 1e-9, "must be non-increasing");
            assert!(
                prev - cur < 15.0 * 10.0,
                "jump too large near {cap}: {prev} → {cur}"
            );
            prev = cur;
        }
    }
}
