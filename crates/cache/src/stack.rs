//! Exact Mattson LRU stack-distance profiling.
//!
//! For an LRU cache, a reference hits in a `w`-way set iff its *stack
//! distance* — the number of distinct lines referenced in its set since the
//! previous reference to the same line — is less than `w` (Mattson et al.,
//! 1970). Recording a histogram of stack distances therefore yields the
//! miss count at **every** associativity in one pass; this is the principle
//! behind UMON's utility monitors (§4.1.1 of the paper).

/// An exact per-set LRU stack profiler.
///
/// `max_distance` caps the tracked stack depth (references deeper than the
/// cap count as misses at every size, like UMON's limited shadow-tag
/// associativity — the paper limits it to 16).
///
/// # Examples
///
/// ```
/// use rebudget_cache::stack::StackProfiler;
///
/// let mut p = StackProfiler::new(1, 32, 8);
/// // a b a b …: with 2 ways everything but the cold misses hits.
/// for k in 0..10u64 {
///     p.record((k % 2) * 32);
/// }
/// assert_eq!(p.misses_at(1), 10); // direct-mapped thrashes
/// assert_eq!(p.misses_at(2), 2);  // two ways: only cold misses
/// ```
#[derive(Debug, Clone)]
pub struct StackProfiler {
    sets: usize,
    line_bytes: u64,
    max_distance: usize,
    /// Per-set LRU stack of tags, most recent first.
    stacks: Vec<Vec<u64>>,
    /// `histogram[d]` = number of references with stack distance `d`.
    histogram: Vec<u64>,
    /// References that missed every tracked position (cold or deeper than
    /// `max_distance`).
    deep_misses: u64,
    accesses: u64,
}

impl StackProfiler {
    /// Creates a profiler for a cache with `sets` sets and the given line
    /// size, tracking distances up to `max_distance` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `max_distance` is zero, or `line_bytes` is not a
    /// power of two.
    pub fn new(sets: usize, line_bytes: u64, max_distance: usize) -> Self {
        assert!(sets > 0, "sets must be non-zero");
        assert!(max_distance > 0, "max_distance must be non-zero");
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        Self {
            sets,
            line_bytes,
            max_distance,
            stacks: vec![Vec::new(); sets],
            histogram: vec![0; max_distance],
            deep_misses: 0,
            accesses: 0,
        }
    }

    /// Records one reference to byte address `addr`.
    pub fn record(&mut self, addr: u64) {
        self.accesses += 1;
        let line = addr / self.line_bytes;
        let set = (line % self.sets as u64) as usize;
        let tag = line / self.sets as u64;
        let stack = &mut self.stacks[set];
        match stack.iter().position(|&t| t == tag) {
            Some(d) => {
                self.histogram[d] += 1;
                let t = stack.remove(d);
                stack.insert(0, t);
            }
            None => {
                self.deep_misses += 1;
                stack.insert(0, tag);
                stack.truncate(self.max_distance);
            }
        }
    }

    /// Total references recorded.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// The raw stack-distance histogram (index = distance in ways).
    pub fn histogram(&self) -> &[u64] {
        &self.histogram
    }

    /// Predicted number of misses if the profiled stream ran on an LRU
    /// cache with `ways` ways (of the same set count): references at stack
    /// distance ≥ `ways`, plus cold/deep references.
    ///
    /// `ways` beyond `max_distance` saturate at the deepest tracked value.
    pub fn misses_at(&self, ways: usize) -> u64 {
        let w = ways.min(self.max_distance);
        let hits_within: u64 = self.histogram[..w].iter().sum();
        self.accesses - hits_within
    }

    /// Miss counts for every associativity from 1 to `max_distance`.
    pub fn miss_profile(&self) -> Vec<u64> {
        (1..=self.max_distance).map(|w| self.misses_at(w)).collect()
    }

    /// Zeroes the histogram and access counters while keeping the LRU
    /// stacks warm — the epoch reset real UMON monitors perform so that
    /// cold-start misses do not pollute steady-state estimates.
    pub fn reset_counters(&mut self) {
        self.histogram.iter_mut().for_each(|h| *h = 0);
        self.deep_misses = 0;
        self.accesses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;
    use crate::set_assoc::SetAssocCache;

    #[test]
    fn repeated_line_has_distance_zero() {
        let mut p = StackProfiler::new(4, 32, 8);
        p.record(0);
        p.record(0);
        p.record(0);
        assert_eq!(p.histogram()[0], 2);
        assert_eq!(p.misses_at(1), 1);
        assert_eq!(p.accesses(), 3);
    }

    #[test]
    fn alternating_lines_have_distance_one() {
        let mut p = StackProfiler::new(1, 32, 8);
        // a b a b a b → after cold misses, distance 1 each.
        for k in 0..6u64 {
            p.record((k % 2) * 32);
        }
        assert_eq!(p.misses_at(1), 6); // direct-mapped: all miss
        assert_eq!(p.misses_at(2), 2); // 2-way: only the 2 cold misses
    }

    #[test]
    fn matches_real_cache_at_every_associativity() {
        // The Mattson property: one profiling pass predicts the miss count
        // of an actual LRU cache of any associativity.
        let line = 32u64;
        let sets = 16usize;
        let mut profiler = StackProfiler::new(sets, line, 8);
        // A synthetic quasi-random stream with reuse.
        let mut x = 123456789u64;
        let addrs: Vec<u64> = (0..20_000)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((x >> 33) % 600) * line
            })
            .collect();
        for &a in &addrs {
            profiler.record(a);
        }
        for ways in [1usize, 2, 4, 8] {
            let mut cache = SetAssocCache::new(CacheConfig {
                size_bytes: (sets * ways) as u64 * line,
                ways,
                line_bytes: line,
            })
            .unwrap();
            for &a in &addrs {
                cache.access(0, a);
            }
            assert_eq!(
                profiler.misses_at(ways),
                cache.stats(0).misses,
                "mismatch at {ways} ways"
            );
        }
    }

    #[test]
    fn misses_monotone_in_ways() {
        let mut p = StackProfiler::new(8, 32, 16);
        let mut x = 42u64;
        for _ in 0..5000 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            p.record(((x >> 30) % 300) * 32);
        }
        let profile = p.miss_profile();
        assert!(profile.windows(2).all(|w| w[1] <= w[0]));
        assert_eq!(profile.len(), 16);
    }

    #[test]
    fn deep_references_saturate() {
        let mut p = StackProfiler::new(1, 32, 4);
        // Cyclic sweep of 6 lines > max_distance 4: LRU keeps missing.
        for k in 0..60u64 {
            p.record((k % 6) * 32);
        }
        assert_eq!(p.misses_at(4), 60);
        assert_eq!(p.misses_at(100), 60, "saturates beyond max_distance");
    }

    #[test]
    #[should_panic(expected = "sets must be non-zero")]
    fn zero_sets_panics() {
        let _ = StackProfiler::new(0, 32, 4);
    }
}
