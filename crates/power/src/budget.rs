//! The chip-level power budget (RAPL-style enforcement, §5).
//!
//! The paper gives each `p`-core chip a TDP of `p × 10 W`. Every core gets
//! the power to run at 800 MHz for free; the rest is *discretionary* and is
//! what the market actually sells. This module converts between the two
//! views and applies a Watt allocation to a set of cores.

use crate::model::CorePowerModel;
use crate::Result;

/// The chip power budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerBudget {
    /// Total chip budget in Watts.
    pub total_watts: f64,
}

impl PowerBudget {
    /// The paper's TDP: 10 W per core (Table 1 footnote).
    pub fn paper(cores: usize) -> Self {
        Self {
            total_watts: cores as f64 * 10.0,
        }
    }

    /// The discretionary budget after reserving each core's 800 MHz floor
    /// at the given per-core temperatures: `total − Σ_i floor_i`.
    ///
    /// Clamped at zero if the floors alone exceed the budget.
    pub fn discretionary_watts(&self, models: &[CorePowerModel], temps_k: &[f64]) -> f64 {
        let floors: f64 = models
            .iter()
            .zip(temps_k)
            .map(|(m, &t)| m.floor_power(t))
            .sum();
        (self.total_watts - floors).max(0.0)
    }

    /// Applies a discretionary Watt allocation: core `i` receives its floor
    /// plus `extra_watts[i]`, and runs at the highest frequency that fits.
    /// Returns the per-core frequencies in GHz.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::PowerError`] from the inversion (cannot occur
    /// when allocations are non-negative, since each core's floor is
    /// included).
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths disagree.
    pub fn apply(
        &self,
        models: &[CorePowerModel],
        temps_k: &[f64],
        extra_watts: &[f64],
    ) -> Result<Vec<f64>> {
        assert_eq!(models.len(), temps_k.len(), "temps length mismatch");
        assert_eq!(
            models.len(),
            extra_watts.len(),
            "allocation length mismatch"
        );
        models
            .iter()
            .zip(temps_k)
            .zip(extra_watts)
            .map(|((m, &t), &extra)| {
                let budget = m.floor_power(t) + extra.max(0.0);
                m.frequency_for_power(budget, t)
            })
            .collect()
    }

    /// Total power actually drawn when the cores run at `freqs_ghz`.
    pub fn drawn_watts(
        &self,
        models: &[CorePowerModel],
        temps_k: &[f64],
        freqs_ghz: &[f64],
    ) -> f64 {
        models
            .iter()
            .zip(temps_k)
            .zip(freqs_ghz)
            .map(|((m, &t), &f)| m.total_power(f, t))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_tdp_scales_with_cores() {
        assert_eq!(PowerBudget::paper(8).total_watts, 80.0);
        assert_eq!(PowerBudget::paper(64).total_watts, 640.0);
    }

    #[test]
    fn discretionary_excludes_floors() {
        let models = vec![CorePowerModel::paper(1.0); 8];
        let temps = vec![330.0; 8];
        let b = PowerBudget::paper(8);
        let disc = b.discretionary_watts(&models, &temps);
        let floor_sum: f64 = models.iter().map(|m| m.floor_power(330.0)).sum();
        assert!((disc - (80.0 - floor_sum)).abs() < 1e-9);
        assert!(disc > 0.0 && disc < 80.0);
    }

    #[test]
    fn apply_respects_budget_and_monotonicity() {
        let models = vec![CorePowerModel::paper(1.0); 4];
        let temps = vec![330.0; 4];
        let b = PowerBudget::paper(4);
        // Unequal discretionary allocation: the bigger share must yield the
        // higher frequency.
        let freqs = b.apply(&models, &temps, &[0.0, 2.0, 4.0, 8.0]).unwrap();
        assert!((freqs[0] - 0.8).abs() < 1e-6, "no extra power → f_min");
        assert!(freqs[1] < freqs[2] && freqs[2] < freqs[3]);
        // Total drawn never exceeds floor + extras.
        let drawn = b.drawn_watts(&models, &temps, &freqs);
        let granted: f64 = models.iter().map(|m| m.floor_power(330.0)).sum::<f64>() + 14.0;
        assert!(drawn <= granted + 1e-6);
    }

    #[test]
    fn exhausting_discretionary_stays_within_tdp() {
        let models = vec![CorePowerModel::paper(1.0); 8];
        let temps = vec![335.0; 8];
        let b = PowerBudget::paper(8);
        let disc = b.discretionary_watts(&models, &temps);
        let share = vec![disc / 8.0; 8];
        let freqs = b.apply(&models, &temps, &share).unwrap();
        let drawn = b.drawn_watts(&models, &temps, &freqs);
        assert!(
            drawn <= b.total_watts + 1e-6,
            "drawn {drawn} exceeds TDP {}",
            b.total_watts
        );
    }
}
