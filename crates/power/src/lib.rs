#![warn(missing_docs)]

//! Power substrate for the ReBudget reproduction.
//!
//! The paper's second market resource is the chip power budget, regulated
//! through per-core DVFS "similar to Intel's RAPL technique" (§5). This
//! crate models the pieces the paper cites:
//!
//! * [`dvfs`] — the 0.8–4.0 GHz / 0.8–1.2 V operating range of Table 1,
//!   with fine-grained (RAPL-style, 0.125 W) continuous control;
//! * [`model`] — Wattch-style dynamic power (`C_eff · V² · f · activity`)
//!   plus Sandy-Bridge-style static power that grows exponentially with
//!   temperature;
//! * [`thermal`] — a lumped-RC HotSpot-lite per-core thermal node;
//! * [`budget`] — the chip-level power budget (10 W per core in the
//!   paper) and the power→frequency inversion each core performs when the
//!   market hands it a Watt allocation.

pub mod budget;
pub mod dvfs;
pub mod model;
pub mod thermal;
pub mod thermal_grid;

pub use budget::PowerBudget;
pub use dvfs::DvfsRange;
pub use model::{CorePowerModel, PowerError};
pub use thermal::ThermalNode;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, PowerError>;
