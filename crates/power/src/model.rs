//! Core power models: Wattch-style dynamic power and temperature-dependent
//! static power.
//!
//! * Dynamic: `P_dyn = C_eff · V² · f · activity` (Wattch; Brooks et al.,
//!   ISCA 2000). With the linear V(f) of [`crate::dvfs`], `P_dyn` grows
//!   roughly cubically in `f`, so the inverse `f(P)` is concave — the
//!   property the market theory requires of the power resource (§4.1.1:
//!   "power is known to be concave").
//! * Static: the paper approximates leakage "as a fraction of the dynamic
//!   power that is exponentially dependent on the system temperature"
//!   (Intel Sandy Bridge power management; Chaparro et al.). We model
//!   `P_static = base · exp(k · (T − T_ref))`.

use std::fmt;

use crate::dvfs::DvfsRange;

/// Errors from power-model configuration or inversion.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PowerError {
    /// A model parameter was out of range.
    InvalidParameter {
        /// Description of the parameter.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The requested power is below the minimum achievable at `f_min`.
    BudgetBelowFloor {
        /// Requested Watts.
        requested: f64,
        /// Minimum Watts at the lowest operating point.
        floor: f64,
    },
}

impl fmt::Display for PowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerError::InvalidParameter { what, value } => {
                write!(f, "invalid {what}: {value}")
            }
            PowerError::BudgetBelowFloor { requested, floor } => {
                write!(f, "power budget {requested} W below floor {floor} W")
            }
        }
    }
}

impl std::error::Error for PowerError {}

/// Per-core power model.
///
/// # Examples
///
/// ```
/// use rebudget_power::CorePowerModel;
///
/// # fn main() -> Result<(), rebudget_power::PowerError> {
/// let core = CorePowerModel::paper(0.8);
/// let watts = core.total_power(2.4, 330.0);
/// // Inverting the model recovers the frequency (RAPL-style enforcement).
/// let f = core.frequency_for_power(watts, 330.0)?;
/// assert!((f - 2.4).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorePowerModel {
    /// DVFS range.
    pub dvfs: DvfsRange,
    /// Effective switched capacitance (W / (V²·GHz)); calibrated so a
    /// fully-active core at 4 GHz/1.2 V draws ≈8 W dynamic.
    pub c_eff: f64,
    /// Activity factor in `[0, 1]` — application-dependent.
    pub activity: f64,
    /// Static power at the reference temperature, in Watts.
    pub static_base: f64,
    /// Exponential temperature coefficient of leakage (1/K).
    pub static_temp_coeff: f64,
    /// Reference temperature for `static_base`, in Kelvin.
    pub ref_temp: f64,
}

impl CorePowerModel {
    /// A calibrated 65 nm-flavoured core. At 4 GHz a fully active core
    /// draws ≈21 W — far beyond its 10 W TDP share (65 nm parts at these
    /// frequencies were exactly this hungry) — while a half-active core
    /// draws ≈11 W. The sum of what the cores could usefully burn
    /// therefore always exceeds the chip budget, making power genuinely
    /// scarce and worth trading (the whole point of the market). The
    /// 800 MHz floor costs ≈2–3 W.
    pub fn paper(activity: f64) -> Self {
        Self {
            dvfs: DvfsRange::paper(),
            c_eff: 3.5,
            activity: activity.clamp(0.0, 1.0),
            static_base: 1.25,
            static_temp_coeff: 0.017,
            ref_temp: 330.0,
        }
    }

    /// Dynamic power at frequency `f_ghz` (clamped into the DVFS range).
    pub fn dynamic_power(&self, f_ghz: f64) -> f64 {
        let f = self.dvfs.clamp(f_ghz);
        let v = self.dvfs.voltage(f);
        self.c_eff * v * v * f * self.activity.max(0.05)
    }

    /// Static (leakage) power at absolute temperature `temp_k`.
    pub fn static_power(&self, temp_k: f64) -> f64 {
        self.static_base * (self.static_temp_coeff * (temp_k - self.ref_temp)).exp()
    }

    /// Total core power at frequency `f_ghz` and temperature `temp_k`.
    pub fn total_power(&self, f_ghz: f64, temp_k: f64) -> f64 {
        self.dynamic_power(f_ghz) + self.static_power(temp_k)
    }

    /// Minimum total power (at `f_min`) for the given temperature — the
    /// "free" floor every core receives in the paper (§4.1: enough power
    /// to run at 800 MHz).
    pub fn floor_power(&self, temp_k: f64) -> f64 {
        self.total_power(self.dvfs.f_min, temp_k)
    }

    /// Maximum total power (at `f_max`).
    pub fn peak_power(&self, temp_k: f64) -> f64 {
        self.total_power(self.dvfs.f_max, temp_k)
    }

    /// Inverts the power model: the highest frequency whose total power
    /// fits within `watts` at temperature `temp_k`. Monotone bisection;
    /// result is clamped into the DVFS range.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::BudgetBelowFloor`] if even `f_min` exceeds the
    /// budget.
    pub fn frequency_for_power(&self, watts: f64, temp_k: f64) -> crate::Result<f64> {
        let floor = self.floor_power(temp_k);
        if watts + 1e-9 < floor {
            return Err(PowerError::BudgetBelowFloor {
                requested: watts,
                floor,
            });
        }
        if watts >= self.peak_power(temp_k) {
            return Ok(self.dvfs.f_max);
        }
        let (mut lo, mut hi) = (self.dvfs.f_min, self.dvfs.f_max);
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if self.total_power(mid, temp_k) <= watts {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_makes_tdp_scarce() {
        // A fully active core at 4 GHz must exceed its 10 W TDP share
        // (otherwise the power market has nothing to arbitrate), while a
        // typical-activity core sits near it.
        let hot = CorePowerModel::paper(1.0);
        let peak = hot.total_power(4.0, 330.0);
        assert!(
            (18.0..=24.0).contains(&peak),
            "full-activity peak {peak} should far exceed the 10 W TDP share"
        );
        let typical = CorePowerModel::paper(0.5).total_power(4.0, 330.0);
        assert!(
            (9.0..=13.0).contains(&typical),
            "half-activity peak {typical} should be near the TDP share"
        );
        let floor = hot.floor_power(330.0);
        assert!(floor < 3.5, "floor {floor} should be small");
        assert!(floor > 0.5);
    }

    #[test]
    fn dynamic_power_superlinear_in_frequency() {
        let m = CorePowerModel::paper(1.0);
        // P(2f) > 2·P(f): convex growth makes f(P) concave.
        assert!(m.dynamic_power(3.2) > 2.0 * m.dynamic_power(1.6));
        let mut prev = 0.0;
        for k in 0..=16 {
            let f = 0.8 + k as f64 * 0.2;
            let p = m.dynamic_power(f);
            assert!(p > prev);
            prev = p;
        }
    }

    #[test]
    fn frequency_inverse_of_power_is_concave() {
        let m = CorePowerModel::paper(0.8);
        let t = 330.0;
        let f = |w: f64| m.frequency_for_power(w, t).unwrap();
        // Concavity: midpoint frequency above the chord.
        let (w0, w1) = (3.0, 12.0);
        let mid = f(0.5 * (w0 + w1));
        let chord = 0.5 * (f(w0) + f(w1));
        assert!(
            mid >= chord - 1e-6,
            "f(P) not concave: mid {mid} vs chord {chord}"
        );
    }

    #[test]
    fn frequency_for_power_round_trips() {
        let m = CorePowerModel::paper(0.6);
        let t = 335.0;
        for f_target in [0.9, 1.6, 2.4, 3.3, 4.0] {
            let w = m.total_power(f_target, t);
            let f = m.frequency_for_power(w, t).unwrap();
            assert!(
                (f - f_target).abs() < 1e-6,
                "round trip {f_target} → {w} W → {f}"
            );
        }
    }

    #[test]
    fn budget_below_floor_errors() {
        let m = CorePowerModel::paper(1.0);
        let err = m.frequency_for_power(0.1, 330.0).unwrap_err();
        assert!(matches!(err, PowerError::BudgetBelowFloor { .. }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn generous_budget_saturates_at_fmax() {
        let m = CorePowerModel::paper(1.0);
        assert_eq!(m.frequency_for_power(50.0, 330.0).unwrap(), 4.0);
    }

    #[test]
    fn static_power_grows_exponentially_with_temperature() {
        let m = CorePowerModel::paper(1.0);
        let p0 = m.static_power(330.0);
        let p10 = m.static_power(340.0);
        let p20 = m.static_power(350.0);
        assert!(
            (p10 / p0 - p20 / p10).abs() < 1e-9,
            "constant ratio per 10 K"
        );
        assert!(p10 > p0);
    }

    #[test]
    fn activity_scales_dynamic_power_only() {
        let hot = CorePowerModel::paper(1.0);
        let cool = CorePowerModel::paper(0.5);
        assert!((hot.dynamic_power(2.0) / cool.dynamic_power(2.0) - 2.0).abs() < 1e-9);
        assert_eq!(hot.static_power(330.0), cool.static_power(330.0));
    }
}
