//! The DVFS operating range of Table 1: 0.8–4.0 GHz at 0.8–1.2 V.

/// A continuous DVFS range with voltage scaling linearly in frequency.
///
/// The paper's cores run anywhere in 0.8–4.0 GHz; RAPL-style control is
/// fine-grained enough (0.125 W steps) that both frequency and power are
/// treated as continuous (§4.1.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DvfsRange {
    /// Minimum frequency in GHz.
    pub f_min: f64,
    /// Maximum frequency in GHz.
    pub f_max: f64,
    /// Voltage at `f_min`, in Volts.
    pub v_min: f64,
    /// Voltage at `f_max`, in Volts.
    pub v_max: f64,
}

impl DvfsRange {
    /// The paper's range: 0.8–4.0 GHz, 0.8–1.2 V (Table 1).
    pub fn paper() -> Self {
        Self {
            f_min: 0.8,
            f_max: 4.0,
            v_min: 0.8,
            v_max: 1.2,
        }
    }

    /// Clamps a frequency into the range.
    pub fn clamp(&self, f_ghz: f64) -> f64 {
        f_ghz.clamp(self.f_min, self.f_max)
    }

    /// Supply voltage at frequency `f_ghz` (clamped), interpolated linearly
    /// between the endpoints.
    pub fn voltage(&self, f_ghz: f64) -> f64 {
        let f = self.clamp(f_ghz);
        let t = (f - self.f_min) / (self.f_max - self.f_min);
        self.v_min + t * (self.v_max - self.v_min)
    }

    /// The discrete profiling grid of §6: `{0.8, 1.2, 1.6, …, 4.0}` GHz
    /// (9 points for the paper range).
    pub fn profiling_grid(&self, step_ghz: f64) -> Vec<f64> {
        let mut grid = Vec::new();
        let mut f = self.f_min;
        while f <= self.f_max + 1e-9 {
            grid.push(f.min(self.f_max));
            f += step_ghz;
        }
        grid
    }
}

impl Default for DvfsRange {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_range_endpoints() {
        let d = DvfsRange::paper();
        assert_eq!(d.voltage(0.8), 0.8);
        assert_eq!(d.voltage(4.0), 1.2);
        assert!((d.voltage(2.4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clamping() {
        let d = DvfsRange::paper();
        assert_eq!(d.clamp(0.1), 0.8);
        assert_eq!(d.clamp(9.0), 4.0);
        assert_eq!(d.voltage(9.0), 1.2);
    }

    #[test]
    fn profiling_grid_matches_paper() {
        let grid = DvfsRange::paper().profiling_grid(0.4);
        assert_eq!(grid.len(), 9, "paper samples 9 frequency points");
        assert_eq!(grid[0], 0.8);
        assert!((grid[8] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn voltage_monotone_in_frequency() {
        let d = DvfsRange::paper();
        let g = d.profiling_grid(0.1);
        assert!(g.windows(2).all(|w| d.voltage(w[1]) >= d.voltage(w[0])));
    }
}
