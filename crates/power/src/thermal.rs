//! A lumped-RC thermal node (HotSpot-lite).
//!
//! The paper estimates run-time chip temperature with HotSpot integrated
//! into SESC (§5); the static-power model consumes that temperature. A
//! first-order RC node per core captures the feedback loop that matters to
//! the market — hotter cores leak more, which eats into their frequency at
//! a given Watt allocation:
//!
//! `dT/dt = (P · R_th − (T − T_amb)) / τ`

/// First-order thermal model of one core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalNode {
    /// Ambient temperature in Kelvin.
    pub ambient_k: f64,
    /// Junction-to-ambient thermal resistance in K/W.
    pub r_th: f64,
    /// Thermal time constant in seconds.
    pub tau_s: f64,
    temp_k: f64,
}

impl ThermalNode {
    /// A node representative of a 65 nm core: ambient 318 K (45 °C chassis),
    /// 3 K/W to ambient, 50 ms time constant.
    pub fn paper() -> Self {
        Self {
            ambient_k: 318.0,
            r_th: 3.0,
            tau_s: 0.05,
            temp_k: 318.0,
        }
    }

    /// Current junction temperature in Kelvin.
    pub fn temperature(&self) -> f64 {
        self.temp_k
    }

    /// Steady-state temperature under constant power `watts`.
    pub fn steady_state(&self, watts: f64) -> f64 {
        self.ambient_k + watts * self.r_th
    }

    /// Advances the node by `dt_s` seconds under dissipation `watts`,
    /// returning the new temperature. Uses the exact exponential solution
    /// of the first-order ODE, so arbitrarily large steps are stable.
    pub fn step(&mut self, watts: f64, dt_s: f64) -> f64 {
        let target = self.steady_state(watts);
        let alpha = (-dt_s / self.tau_s).exp();
        self.temp_k = target + (self.temp_k - target) * alpha;
        self.temp_k
    }

    /// Resets the node to ambient.
    pub fn reset(&mut self) {
        self.temp_k = self.ambient_k;
    }

    /// Sets the junction temperature directly (initialization, or thermal
    /// coupling models that exchange heat between nodes).
    pub fn set_temperature(&mut self, temp_k: f64) {
        self.temp_k = temp_k;
    }
}

impl Default for ThermalNode {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_to_steady_state() {
        let mut n = ThermalNode::paper();
        for _ in 0..100 {
            n.step(10.0, 0.01);
        }
        let ss = n.steady_state(10.0);
        assert!(
            (n.temperature() - ss).abs() < 0.1,
            "{} vs {}",
            n.temperature(),
            ss
        );
        assert_eq!(ss, 318.0 + 30.0);
    }

    #[test]
    fn heats_monotonically_from_ambient() {
        let mut n = ThermalNode::paper();
        let mut prev = n.temperature();
        for _ in 0..20 {
            let t = n.step(8.0, 0.005);
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    fn cools_when_power_drops() {
        let mut n = ThermalNode::paper();
        for _ in 0..100 {
            n.step(10.0, 0.01);
        }
        let hot = n.temperature();
        n.step(1.0, 0.05);
        assert!(n.temperature() < hot);
    }

    #[test]
    fn large_steps_are_stable() {
        let mut n = ThermalNode::paper();
        let t = n.step(10.0, 1e9);
        assert!((t - n.steady_state(10.0)).abs() < 1e-6);
        n.reset();
        assert_eq!(n.temperature(), 318.0);
    }
}
