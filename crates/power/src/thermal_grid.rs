//! A 2-D mesh of thermally coupled cores (HotSpot-lite, lateral spread).
//!
//! [`crate::thermal::ThermalNode`] treats every core as thermally
//! isolated. Real dies conduct laterally: a core surrounded by hot
//! neighbours runs hotter — and leaks more — than an identical core at the
//! die edge. This module arranges per-core RC nodes in a rectangular mesh
//! with nearest-neighbour conductances:
//!
//! `τ·dT_i/dt = P_i·R_th − (T_i − T_amb) − κ·Σ_{j∈N(i)} (T_i − T_j)`

use crate::thermal::ThermalNode;

/// A rectangular mesh of coupled thermal nodes.
#[derive(Debug, Clone)]
pub struct ThermalGrid {
    nodes: Vec<ThermalNode>,
    width: usize,
    height: usize,
    /// Dimensionless lateral coupling strength `κ` (0 = isolated nodes).
    coupling: f64,
}

impl ThermalGrid {
    /// Creates a `width × height` mesh of [`ThermalNode::paper`] nodes.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or `coupling` is negative.
    pub fn new(width: usize, height: usize, coupling: f64) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be non-zero");
        assert!(coupling >= 0.0, "coupling must be non-negative");
        Self {
            nodes: vec![ThermalNode::paper(); width * height],
            width,
            height,
            coupling,
        }
    }

    /// A mesh sized for `cores` cores (near-square layout), with the
    /// default lateral coupling 0.5.
    pub fn for_cores(cores: usize) -> Self {
        let width = (cores as f64).sqrt().ceil() as usize;
        let height = cores.div_ceil(width);
        Self::new(width, height, 0.5)
    }

    /// Number of nodes in the mesh.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the mesh is empty (never true; for API completeness).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Temperature of node `i` in Kelvin.
    pub fn temperature(&self, i: usize) -> f64 {
        self.nodes[i].temperature()
    }

    fn neighbours(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        let (x, y) = (i % self.width, i / self.width);
        let (w, h) = (self.width, self.height);
        [
            (x > 0).then(|| i - 1),
            (x + 1 < w).then(|| i + 1),
            (y > 0).then(|| i - w),
            (y + 1 < h && i + w < self.nodes.len()).then(|| i + w),
        ]
        .into_iter()
        .flatten()
        .filter(move |&j| j < self.nodes.len())
    }

    /// Advances the mesh by `dt_s` seconds under per-node dissipation
    /// `watts` (only the first `min(len, watts.len())` nodes are driven).
    /// Uses sub-stepped explicit Euler for the coupling term on top of
    /// each node's exact RC response.
    pub fn step(&mut self, watts: &[f64], dt_s: f64) {
        // Individual RC responses.
        for (i, node) in self.nodes.iter_mut().enumerate() {
            let p = watts.get(i).copied().unwrap_or(0.0);
            node.step(p, dt_s);
        }
        if self.coupling == 0.0 {
            return;
        }
        // Lateral exchange: relax each pair toward the mean by a factor
        // proportional to κ·dt/τ (clamped for stability).
        let temps: Vec<f64> = self.nodes.iter().map(|n| n.temperature()).collect();
        let tau = self.nodes[0].tau_s;
        let alpha = (self.coupling * dt_s / tau).min(0.2);
        for i in 0..self.nodes.len() {
            let mut delta = 0.0;
            for j in self.neighbours(i) {
                delta += temps[j] - temps[i];
            }
            self.nodes[i].set_temperature(temps[i] + alpha * delta);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_geometry() {
        let g = ThermalGrid::for_cores(8);
        assert!(g.len() >= 8);
        assert!(!g.is_empty());
        let g64 = ThermalGrid::for_cores(64);
        assert_eq!(g64.len(), 64);
    }

    #[test]
    fn uniform_power_stays_uniform() {
        let mut g = ThermalGrid::new(4, 4, 0.5);
        for _ in 0..200 {
            g.step(&[8.0; 16], 0.005);
        }
        let t0 = g.temperature(0);
        for i in 0..16 {
            assert!((g.temperature(i) - t0).abs() < 0.5, "node {i}");
        }
        assert!(t0 > 330.0, "should heat well above ambient: {t0}");
    }

    #[test]
    fn hot_cluster_heats_its_neighbourhood() {
        // Drive only the 2×2 top-left corner; the adjacent node must run
        // hotter than the far corner.
        let mut g = ThermalGrid::new(4, 4, 0.5);
        let mut watts = [0.0; 16];
        for &i in &[0usize, 1, 4, 5] {
            watts[i] = 15.0;
        }
        for _ in 0..200 {
            g.step(&watts, 0.005);
        }
        let near = g.temperature(2); // adjacent to the hot cluster
        let far = g.temperature(15); // opposite corner
        assert!(
            near > far + 0.5,
            "lateral conduction missing: near {near} vs far {far}"
        );
    }

    #[test]
    fn zero_coupling_isolates_nodes() {
        let mut g = ThermalGrid::new(2, 2, 0.0);
        let watts = [20.0, 0.0, 0.0, 0.0];
        for _ in 0..100 {
            g.step(&watts, 0.01);
        }
        assert!(g.temperature(0) > g.temperature(1) + 10.0);
        let idle = ThermalNode::paper();
        assert!((g.temperature(1) - idle.ambient_k).abs() < 0.5);
    }
}
