//! Numerical machinery from the paper's Appendix A (proof of Theorem 1).
//!
//! The proof linearizes each player's utility at the equilibrium
//! allocation — `W_i(r) = Σ_j α_ij·r_ij` with `α_ij = ∂U_i/∂r_ij(rⁿ)` —
//! and shows:
//!
//! 1. the equilibrium of `U` is also an equilibrium of `W`;
//! 2. `Nash(U)/OPT(U) ≥ Nash(W)/OPT(W)` (concavity);
//! 3. `OPT(W) = Σ_j C_j · max_i α_ij` (give each resource wholly to its
//!    top valuer);
//! 4. `Nash(W)/OPT(W) ≥ 1 − 1/(4·MUR)` for `MUR ≥ ½`, else `≥ MUR`.
//!
//! This module computes every quantity in that chain for an *observed*
//! equilibrium, so the inequality can be checked numerically on real
//! markets — a mechanically verified re-derivation of the proof, and a
//! useful diagnostic for how tight the bound is in practice.

use rebudget_market::equilibrium::EquilibriumOutcome;
use rebudget_market::{metrics, Market};

use crate::theory::poa_lower_bound;

/// The linearized-welfare quantities of Appendix A at one equilibrium.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearizedCheck {
    /// `Nash(W) = Σ_ij α_ij · rⁿ_ij` — linearized welfare at equilibrium.
    pub nash_w: f64,
    /// `OPT(W) = Σ_j C_j · max_i α_ij` — linearized optimal welfare.
    pub opt_w: f64,
    /// `Nash(W) / OPT(W)`.
    pub ratio: f64,
    /// Market Utility Range measured at the equilibrium.
    pub mur: f64,
    /// The Theorem-1 floor `poa_lower_bound(mur)`.
    pub floor: f64,
    /// Whether `ratio ≥ floor` (up to `tolerance`).
    pub holds: bool,
}

/// Evaluates the Appendix-A chain at an observed equilibrium.
///
/// `tolerance` absorbs the approximation error of the iterative
/// equilibrium (the proof assumes exact best responses).
pub fn linearized_check(
    market: &Market,
    outcome: &EquilibriumOutcome,
    tolerance: f64,
) -> LinearizedCheck {
    let n = market.len();
    let m = market.resources().len();
    let capacities = market.resources().capacities();

    // α_ij = ∂U_i/∂r_ij at the equilibrium allocation.
    let mut alphas = vec![vec![0.0; m]; n];
    for (i, p) in market.players().iter().enumerate() {
        let r = outcome.allocation.row(i);
        for j in 0..m {
            alphas[i][j] = p.utility().marginal(r, j).max(0.0);
        }
    }

    let mut nash_w = 0.0;
    for i in 0..n {
        for j in 0..m {
            nash_w += alphas[i][j] * outcome.allocation.get(i, j);
        }
    }
    let opt_w: f64 = (0..m)
        .map(|j| {
            let top = (0..n).map(|i| alphas[i][j]).fold(0.0_f64, f64::max);
            capacities[j] * top
        })
        .sum();

    let mur = metrics::mur(&outcome.lambdas);
    let floor = poa_lower_bound(mur);
    let ratio = if opt_w > 0.0 { nash_w / opt_w } else { 1.0 };
    LinearizedCheck {
        nash_w,
        opt_w,
        ratio,
        mur,
        floor,
        holds: ratio >= floor - tolerance,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use rebudget_market::equilibrium::EquilibriumOptions;
    use rebudget_market::utility::SeparableUtility;
    use rebudget_market::{Player, ResourceSpace};
    use std::sync::Arc;

    fn market(weights: &[[f64; 2]], caps: [f64; 2]) -> Market {
        let players = weights
            .iter()
            .enumerate()
            .map(|(i, w)| {
                Player::new(
                    format!("p{i}"),
                    100.0,
                    Arc::new(SeparableUtility::proportional(w, &caps).unwrap())
                        as Arc<dyn rebudget_market::Utility>,
                )
            })
            .collect();
        Market::new(ResourceSpace::new(caps.to_vec()).unwrap(), players).unwrap()
    }

    #[test]
    fn appendix_a_chain_holds_at_equilibrium() {
        let m = market(
            &[[0.9, 0.1], [0.5, 0.5], [0.1, 0.9], [0.05, 0.95]],
            [16.0, 80.0],
        );
        let eq = m.equilibrium(&EquilibriumOptions::precise()).unwrap();
        let check = linearized_check(&m, &eq, 0.1);
        assert!(check.opt_w > 0.0);
        assert!(check.nash_w > 0.0);
        assert!(
            check.nash_w <= check.opt_w + 1e-9,
            "Nash(W) cannot exceed OPT(W)"
        );
        assert!(
            check.holds,
            "Appendix-A inequality violated: ratio {:.3} < floor {:.3} (MUR {:.3})",
            check.ratio, check.floor, check.mur
        );
    }

    #[test]
    fn unequal_budgets_lower_mur_but_chain_still_holds() {
        let m = market(&[[0.8, 0.2], [0.3, 0.7], [0.5, 0.5]], [20.0, 60.0]);
        let eq = m
            .equilibrium_with_budgets(&[100.0, 40.0, 70.0], &EquilibriumOptions::precise())
            .unwrap();
        let check = linearized_check(&m, &eq, 0.1);
        assert!(check.holds, "{check:?}");
        assert!(check.mur <= 1.0);
    }

    #[test]
    fn degenerate_zero_marginals_ratio_one() {
        // Saturated players (flat utilities) produce zero αs; the check
        // degrades gracefully.
        use rebudget_market::utility::LinearUtility;
        let players = vec![
            Player::new(
                "a",
                10.0,
                Arc::new(LinearUtility::new(vec![0.0, 0.0]).unwrap())
                    as Arc<dyn rebudget_market::Utility>,
            ),
            Player::new(
                "b",
                10.0,
                Arc::new(LinearUtility::new(vec![0.0, 0.0]).unwrap())
                    as Arc<dyn rebudget_market::Utility>,
            ),
        ];
        let m = Market::new(ResourceSpace::new(vec![4.0, 4.0]).unwrap(), players).unwrap();
        let eq = m.equilibrium(&EquilibriumOptions::default()).unwrap();
        let check = linearized_check(&m, &eq, 0.0);
        assert_eq!(check.ratio, 1.0);
        assert!(check.holds);
    }
}
