//! The allocation mechanisms compared in the paper's evaluation (§6):
//!
//! * [`EqualShare`] — resources split equally among cores, no market.
//! * [`EqualBudget`] — the XChange market with identical budgets.
//! * [`Balanced`] — XChange's wealth-redistribution heuristic: budgets
//!   proportional to each player's utility "potential".
//! * [`ReBudget`] — the paper's iterative budget re-assignment with
//!   exponential back-off (§4.2).
//! * [`MaxEfficiency`] — the infeasible welfare-maximizing oracle used to
//!   normalize results.
//!
//! All implement [`Mechanism`] and return a [`MechanismOutcome`] carrying
//! the allocation plus every metric the paper reports (efficiency,
//! envy-freeness, MUR, MBR, iteration counts).

use rebudget_telemetry as telemetry;

use rebudget_market::equilibrium::{EquilibriumOptions, EquilibriumOutcome};
use rebudget_market::metrics;
use rebudget_market::optimal::{max_efficiency, OptimalOptions};
use rebudget_market::{
    solve_with_retry, AllocationMatrix, Market, MarketError, ParallelPolicy, Result, RetryPolicy,
    SolverKind,
};

use crate::theory::min_mbr_for_ef;

/// The result of running an allocation mechanism on a market.
#[derive(Debug, Clone)]
pub struct MechanismOutcome {
    /// Mechanism display name (e.g. `"ReBudget-20"`).
    pub mechanism: String,
    /// The final allocation (exhaustive over capacities).
    pub allocation: AllocationMatrix,
    /// Final per-player budgets; empty for non-market mechanisms
    /// (EqualShare, MaxEfficiency).
    pub budgets: Vec<f64>,
    /// Per-player utilities at the final allocation.
    pub utilities: Vec<f64>,
    /// Per-player marginal utility of money `λ_i` at the final equilibrium;
    /// empty for non-market mechanisms.
    pub lambdas: Vec<f64>,
    /// System efficiency `Σ_i U_i(r_i)` (weighted speedup).
    pub efficiency: f64,
    /// Envy-freeness of the allocation (Definition 3).
    pub envy_freeness: f64,
    /// Market Utility Range at the final equilibrium, if a market ran.
    pub mur: Option<f64>,
    /// Market Budget Range of the final budgets, if a market ran.
    pub mbr: Option<f64>,
    /// Number of market-equilibrium solves (ReBudget re-converges once per
    /// budget adjustment; single-shot markets report 1, oracles 0).
    pub equilibrium_rounds: u64,
    /// Total bidding–pricing iterations summed over all solves.
    pub total_iterations: u64,
    /// Whether every equilibrium solve met the price-convergence test
    /// before the fail-safe. `true` for non-market mechanisms.
    pub converged: bool,
    /// Total solver guardrail interventions
    /// ([`rebudget_market::RecoveryAction`]) summed over all equilibrium
    /// solves — 0 for a fully clean run.
    pub solver_recoveries: u64,
    /// Number of ReBudget reassignment rounds that were rolled back
    /// because the realized efficiency fell below the Theorem-1 floor
    /// (always 0 for other mechanisms).
    pub rolled_back_rounds: u64,
    /// `true` when this outcome is best-effort rather than a certified
    /// equilibrium: some solve hit the iteration fail-safe without
    /// converging. Metrics are still valid measurements of the returned
    /// allocation, but the theorem bounds tied to equilibrium need not
    /// hold.
    pub degraded: bool,
    /// Solves that stopped because their
    /// [`rebudget_market::DeadlineBudget`] ran out (0 with the default
    /// unbounded deadline).
    pub timed_out_solves: u64,
    /// Extra solve attempts taken by the [`RetryPolicy`] ladder beyond
    /// the first, summed over all equilibrium rounds (0 without a retry
    /// policy).
    pub retry_attempts: u64,
    /// Worst (largest) final solve residual across all equilibrium
    /// rounds, in the workspace-wide relative-excess-demand semantics of
    /// [`rebudget_market::SolveReport::residual`] — identical for every
    /// [`rebudget_market::SolverKind`]. `0.0` for non-market mechanisms.
    pub worst_residual: f64,
}

/// An allocation mechanism: anything that maps a market to an allocation.
pub trait Mechanism {
    /// Display name used in reports and figures.
    fn name(&self) -> String;

    /// Runs the mechanism.
    ///
    /// # Errors
    ///
    /// Propagates [`MarketError`]s from degenerate inputs; a market that
    /// merely fails to converge is *not* an error (see
    /// [`MechanismOutcome::converged`]).
    fn allocate(&self, market: &Market) -> Result<MechanismOutcome>;
}

fn outcome_from_allocation(
    name: String,
    market: &Market,
    allocation: AllocationMatrix,
) -> MechanismOutcome {
    let utilities: Vec<f64> = market
        .players()
        .iter()
        .enumerate()
        .map(|(i, p)| p.utility_of(allocation.row(i)))
        .collect();
    let efficiency = utilities.iter().sum();
    let envy_freeness = metrics::envy_freeness(market, &allocation);
    MechanismOutcome {
        mechanism: name,
        allocation,
        budgets: Vec::new(),
        utilities,
        lambdas: Vec::new(),
        efficiency,
        envy_freeness,
        mur: None,
        mbr: None,
        equilibrium_rounds: 0,
        total_iterations: 0,
        converged: true,
        solver_recoveries: 0,
        rolled_back_rounds: 0,
        degraded: false,
        timed_out_solves: 0,
        retry_attempts: 0,
        worst_residual: 0.0,
    }
}

/// Runs one equilibrium solve, through the retry ladder when one is
/// configured. Returns the outcome plus `(extra_attempts, timed_out)`
/// accounting for [`MechanismOutcome`].
fn solve_once(
    market: &Market,
    budgets: &[f64],
    options: &EquilibriumOptions,
    retry: Option<&RetryPolicy>,
) -> Result<(EquilibriumOutcome, u64, u64)> {
    match retry {
        Some(policy) => {
            let (eq, report) = solve_with_retry(market, budgets, options, policy)?;
            Ok((eq, report.retries(), report.timed_out_attempts))
        }
        None => {
            let eq = market.equilibrium_with_budgets(budgets, options)?;
            let timed_out = u64::from(eq.report.timed_out);
            Ok((eq, 0, timed_out))
        }
    }
}

/// Resources equally partitioned among all players — no market (§6).
#[derive(Debug, Clone, Default)]
pub struct EqualShare;

impl Mechanism for EqualShare {
    fn name(&self) -> String {
        "EqualShare".to_string()
    }

    fn allocate(&self, market: &Market) -> Result<MechanismOutcome> {
        let allocation =
            AllocationMatrix::equal_share(market.len(), market.resources().capacities())?;
        Ok(outcome_from_allocation(self.name(), market, allocation))
    }
}

/// The XChange market with the same budget for every player (§6).
#[derive(Debug, Clone)]
pub struct EqualBudget {
    /// The budget each player receives (paper: 100).
    pub budget: f64,
    /// Equilibrium-search options.
    pub options: EquilibriumOptions,
    /// Optional bounded retry ladder for non-converged / timed-out
    /// solves. `None` (the default) solves exactly once.
    pub retry: Option<RetryPolicy>,
}

impl EqualBudget {
    /// Creates the mechanism with the given per-player budget and default
    /// equilibrium options.
    pub fn new(budget: f64) -> Self {
        Self {
            budget,
            options: EquilibriumOptions::default(),
            retry: None,
        }
    }

    /// Sets the parallel policy for the inner equilibrium solves.
    #[must_use]
    pub fn with_parallel(mut self, policy: ParallelPolicy) -> Self {
        self.options.parallel = policy;
        self
    }

    /// Selects the equilibrium engine for the inner solves.
    #[must_use]
    pub fn with_solver(mut self, solver: SolverKind) -> Self {
        self.options.solver = solver;
        self
    }

    /// Installs a bounded retry ladder for failed solves.
    #[must_use]
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }
}

impl Default for EqualBudget {
    fn default() -> Self {
        Self::new(100.0)
    }
}

impl Mechanism for EqualBudget {
    fn name(&self) -> String {
        "EqualBudget".to_string()
    }

    fn allocate(&self, market: &Market) -> Result<MechanismOutcome> {
        let budgets = vec![self.budget; market.len()];
        run_market(
            self.name(),
            market,
            budgets,
            &self.options,
            self.retry.as_ref(),
        )
    }
}

/// XChange's *Balanced* wealth redistribution (§6): each player's budget is
/// proportional to `(U_max − U_min) / U_max`, where `U_max` is its utility
/// owning all discretionary resources and `U_min` its utility owning none.
/// Budgets are scaled so their mean equals `base_budget`.
#[derive(Debug, Clone)]
pub struct Balanced {
    /// Mean budget after scaling (paper: 100).
    pub base_budget: f64,
    /// Equilibrium-search options.
    pub options: EquilibriumOptions,
    /// Optional bounded retry ladder for non-converged / timed-out
    /// solves. `None` (the default) solves exactly once.
    pub retry: Option<RetryPolicy>,
}

impl Balanced {
    /// Creates the mechanism with the given mean budget and default
    /// equilibrium options.
    pub fn new(base_budget: f64) -> Self {
        Self {
            base_budget,
            options: EquilibriumOptions::default(),
            retry: None,
        }
    }

    /// Sets the parallel policy for the inner equilibrium solves.
    #[must_use]
    pub fn with_parallel(mut self, policy: ParallelPolicy) -> Self {
        self.options.parallel = policy;
        self
    }

    /// Selects the equilibrium engine for the inner solves.
    #[must_use]
    pub fn with_solver(mut self, solver: SolverKind) -> Self {
        self.options.solver = solver;
        self
    }

    /// Installs a bounded retry ladder for failed solves.
    #[must_use]
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// The budget vector this mechanism would assign on `market`.
    pub fn budgets(&self, market: &Market) -> Vec<f64> {
        let caps = market.resources().capacities();
        let zeros = vec![0.0; caps.len()];
        let potentials: Vec<f64> = market
            .players()
            .iter()
            .map(|p| {
                let umax = p.utility_of(caps);
                let umin = p.utility_of(&zeros);
                if umax > 0.0 {
                    ((umax - umin) / umax).max(0.0)
                } else {
                    0.0
                }
            })
            .collect();
        let mean = potentials.iter().sum::<f64>() / potentials.len() as f64;
        if mean <= 0.0 {
            return vec![self.base_budget; market.len()];
        }
        potentials
            .iter()
            .map(|&p| self.base_budget * p / mean)
            .collect()
    }
}

impl Default for Balanced {
    fn default() -> Self {
        Self::new(100.0)
    }
}

impl Mechanism for Balanced {
    fn name(&self) -> String {
        "Balanced".to_string()
    }

    fn allocate(&self, market: &Market) -> Result<MechanismOutcome> {
        let budgets = self.budgets(market);
        run_market(
            self.name(),
            market,
            budgets,
            &self.options,
            self.retry.as_ref(),
        )
    }
}

/// **ReBudget** (§4.2): iterative budget re-assignment with exponential
/// back-off.
///
/// Starting from equal budgets `B`, the mechanism repeatedly (1) finds a
/// market equilibrium, (2) collects each player's marginal utility of money
/// `λ_i`, (3) cuts the budget of every player whose `λ_i` is below
/// `lambda_threshold × max_i λ_i` by `step`, and (4) halves `step`. It
/// stops when `step` falls below 1% of `B` or no budget was cut, and the
/// last equilibrium is the outcome.
///
/// Because the cuts form a geometric series, a player's budget never drops
/// below `B − 2·step₀`; choosing `step₀ = (1 − MBR)·B/2` therefore
/// guarantees the configured Market Budget Range, and with it the Theorem-2
/// fairness floor.
#[derive(Debug, Clone)]
pub struct ReBudget {
    /// Initial (equal) budget `B` (paper: 100).
    pub base_budget: f64,
    /// First-round budget cut `step₀` (paper evaluates 20 and 40).
    pub initial_step: f64,
    /// A player is "low λ" when `λ_i < lambda_threshold · max λ`
    /// (paper: 0.5, tied to the knee of Theorem 1).
    pub lambda_threshold: f64,
    /// Stop when `step` falls below this fraction of `base_budget`
    /// (paper: 1%).
    pub min_step_fraction: f64,
    /// Hard floor on any budget, as a fraction of `base_budget`
    /// (`Some(MBR)` when constructed from a fairness target).
    pub budget_floor: Option<f64>,
    /// Equilibrium-search options.
    pub options: EquilibriumOptions,
    /// Optional bounded retry ladder for non-converged / timed-out
    /// solves, applied to every reassignment round. `None` (the default)
    /// solves each round exactly once.
    pub retry: Option<RetryPolicy>,
}

impl ReBudget {
    /// `ReBudget-step`: explicit first-round cut, as in the paper's
    /// evaluation (`ReBudget-20`, `ReBudget-40`).
    ///
    /// ```
    /// use rebudget_core::mechanisms::ReBudget;
    /// let mech = ReBudget::with_step(100.0, 20.0);
    /// assert_eq!(mech.name(), "ReBudget-20");
    /// // Cuts form a geometric series: budgets never fall below B − 2·step.
    /// assert!((mech.guaranteed_mbr() - 0.6).abs() < 1e-12);
    /// # use rebudget_core::mechanisms::Mechanism;
    /// ```
    pub fn with_step(base_budget: f64, initial_step: f64) -> Self {
        Self {
            base_budget,
            initial_step,
            lambda_threshold: 0.5,
            min_step_fraction: 0.01,
            budget_floor: None,
            options: EquilibriumOptions::default(),
            retry: None,
        }
    }

    /// Derives the step from an administrator-set envy-freeness floor:
    /// Theorem 2 yields the minimum MBR, and
    /// `step₀ = (1 − MBR)·B/2` guarantees budgets stay within it.
    ///
    /// # Errors
    ///
    /// Returns [`MarketError::InvalidValue`] if `min_ef` is outside
    /// `[0, 2√2 − 2]` — no budget assignment can guarantee more.
    pub fn with_fairness_floor(base_budget: f64, min_ef: f64) -> Result<Self> {
        let mbr = min_mbr_for_ef(min_ef).ok_or(MarketError::InvalidValue {
            what: "envy-freeness floor",
            value: min_ef,
        })?;
        let mut this = Self::with_step(base_budget, (1.0 - mbr) * base_budget / 2.0);
        this.budget_floor = Some(mbr);
        Ok(this)
    }

    /// Sets the parallel policy for the inner equilibrium solves.
    #[must_use]
    pub fn with_parallel(mut self, policy: ParallelPolicy) -> Self {
        self.options.parallel = policy;
        self
    }

    /// Selects the equilibrium engine for the inner solves.
    #[must_use]
    pub fn with_solver(mut self, solver: SolverKind) -> Self {
        self.options.solver = solver;
        self
    }

    /// Installs a bounded retry ladder for failed solves.
    #[must_use]
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// The guaranteed Market Budget Range of this configuration:
    /// `1 − 2·step₀/B` (or the explicit floor if set).
    pub fn guaranteed_mbr(&self) -> f64 {
        let geometric = 1.0 - 2.0 * self.initial_step / self.base_budget;
        self.budget_floor.unwrap_or(geometric).clamp(0.0, 1.0)
    }
}

impl Mechanism for ReBudget {
    fn name(&self) -> String {
        format!("ReBudget-{:.0}", self.initial_step)
    }

    fn allocate(&self, market: &Market) -> Result<MechanismOutcome> {
        let n = market.len();
        let mut budgets = vec![self.base_budget; n];
        let floor = self.budget_floor.map(|f| f * self.base_budget);
        let mut step = self.initial_step;
        let min_step = self.min_step_fraction * self.base_budget;

        let _rebudget_span = telemetry::span!("rebudget");
        let mut rounds = 0u64;
        let mut total_iterations = 0u64;
        let mut all_converged = true;
        let mut recoveries = 0u64;
        let mut rollbacks = 0u64;
        let mut retries = 0u64;
        let mut timeouts = 0u64;
        let mut worst_residual = 0.0_f64;

        let (mut eq, r, t) = solve_once(market, &budgets, &self.options, self.retry.as_ref())?;
        rounds += 1;
        total_iterations += eq.iterations;
        all_converged &= eq.converged();
        recoveries += eq.report.recovery.len() as u64;
        retries += r;
        timeouts += t;
        worst_residual = worst_residual.max(eq.report.residual);
        if telemetry::enabled() {
            telemetry::record(
                telemetry::Event::new("rebudget_round")
                    .field_u64("round", rounds)
                    .field_f64("efficiency", eq.efficiency())
                    .field_f64s("budgets", &budgets),
            );
        }

        loop {
            if step < min_step {
                break;
            }

            let max_lambda = eq.lambdas.iter().cloned().fold(0.0_f64, f64::max);
            let mut cut_any = false;
            let checkpoint = budgets.clone();
            if max_lambda > 0.0 {
                for (i, &l) in eq.lambdas.iter().enumerate() {
                    if l < self.lambda_threshold * max_lambda {
                        let mut next = budgets[i] - step;
                        if let Some(fl) = floor {
                            next = next.max(fl);
                        }
                        next = next.max(0.0);
                        if next < budgets[i] {
                            budgets[i] = next;
                            cut_any = true;
                        }
                    }
                }
            }
            if !cut_any {
                break;
            }
            step *= 0.5;

            let (next_eq, r, t) = solve_once(market, &budgets, &self.options, self.retry.as_ref())?;
            rounds += 1;
            total_iterations += next_eq.iterations;
            all_converged &= next_eq.converged();
            recoveries += next_eq.report.recovery.len() as u64;
            retries += r;
            timeouts += t;
            worst_residual = worst_residual.max(next_eq.report.residual);
            if telemetry::enabled() {
                telemetry::record(
                    telemetry::Event::new("rebudget_round")
                        .field_u64("round", rounds)
                        .field_f64("efficiency", next_eq.efficiency())
                        .field_f64s("budgets", &budgets),
                );
            }

            // Graceful degradation: a reassignment step must not push the
            // realized efficiency below the Theorem-1 floor for the *new*
            // MUR, taking the pre-step efficiency as a (conservative)
            // stand-in for OPT. Under clean inputs ReBudget steps improve
            // efficiency and this never fires; under noisy/adversarial
            // inputs it rolls the budgets back to the last-good checkpoint
            // and retries with the already-halved step.
            let eff_prev = eq.efficiency();
            let eff_new = next_eq.efficiency();
            let theorem_floor = crate::theory::poa_lower_bound(metrics::mur(&next_eq.lambdas));
            let below_floor = eff_new < theorem_floor * eff_prev - 1e-12;
            if telemetry::enabled() {
                telemetry::record(
                    telemetry::Event::new("floor_check")
                        .field_u64("round", rounds)
                        .field_f64("floor", theorem_floor)
                        .field_f64("efficiency", eff_new)
                        .field_f64("previous", eff_prev)
                        .field_bool("ok", !below_floor),
                );
            }
            if below_floor {
                budgets = checkpoint;
                rollbacks += 1;
                if telemetry::enabled() {
                    telemetry::record(
                        telemetry::Event::new("rollback")
                            .field_u64("round", rounds)
                            .field_str("cause", "theorem1_floor")
                            .field_f64("efficiency", eff_new)
                            .field_f64("floor", theorem_floor * eff_prev),
                    );
                    telemetry::global()
                        .registry
                        .counter("rebudget.rollbacks")
                        .incr();
                }
                // Keep the checkpoint equilibrium as the current state.
            } else {
                eq = next_eq;
            }
        }

        if telemetry::enabled() {
            let registry = &telemetry::global().registry;
            registry.counter("rebudget.rounds").add(rounds);
            registry
                .histogram("rebudget.rounds_per_allocate")
                .record(rounds);
        }
        let mut out = finish(
            self.name(),
            market,
            budgets,
            eq,
            rounds,
            total_iterations,
            all_converged,
        );
        out.solver_recoveries = recoveries;
        out.rolled_back_rounds = rollbacks;
        out.retry_attempts = retries;
        out.timed_out_solves = timeouts;
        // A rolled-back round's solve still counts toward the worst
        // residual: the number describes every solve taken, not just the
        // surviving equilibrium.
        out.worst_residual = worst_residual;
        Ok(out)
    }
}

fn finish(
    name: String,
    market: &Market,
    budgets: Vec<f64>,
    eq: rebudget_market::equilibrium::EquilibriumOutcome,
    rounds: u64,
    total_iterations: u64,
    converged: bool,
) -> MechanismOutcome {
    let efficiency = eq.efficiency();
    let envy_freeness = metrics::envy_freeness(market, &eq.allocation);
    let mur = metrics::mur(&eq.lambdas);
    let mbr = metrics::mbr(&budgets);
    let eq_residual = eq.report.residual;
    MechanismOutcome {
        mechanism: name,
        allocation: eq.allocation,
        budgets,
        utilities: eq.utilities,
        lambdas: eq.lambdas,
        efficiency,
        envy_freeness,
        mur: Some(mur),
        mbr: Some(mbr),
        equilibrium_rounds: rounds,
        total_iterations,
        converged,
        solver_recoveries: 0,
        rolled_back_rounds: 0,
        degraded: !converged,
        timed_out_solves: 0,
        retry_attempts: 0,
        worst_residual: eq_residual,
    }
}

fn run_market(
    name: String,
    market: &Market,
    budgets: Vec<f64>,
    options: &EquilibriumOptions,
    retry: Option<&RetryPolicy>,
) -> Result<MechanismOutcome> {
    let (eq, retries, timeouts) = solve_once(market, &budgets, options, retry)?;
    let iterations = eq.iterations;
    let converged = eq.converged();
    let recoveries = eq.report.recovery.len() as u64;
    let mut out = finish(name, market, budgets, eq, 1, iterations, converged);
    out.solver_recoveries = recoveries;
    out.retry_attempts = retries;
    out.timed_out_solves = timeouts;
    Ok(out)
}

/// The welfare-maximizing oracle used as the normalizer in the paper's
/// figures (§6).
#[derive(Debug, Clone, Default)]
pub struct MaxEfficiency {
    /// Hill-climb granularity options.
    pub options: OptimalOptions,
}

impl MaxEfficiency {
    /// Sets the parallel policy for the marginal-table construction.
    #[must_use]
    pub fn with_parallel(mut self, policy: ParallelPolicy) -> Self {
        self.options.parallel = policy;
        self
    }
}

impl Mechanism for MaxEfficiency {
    fn name(&self) -> String {
        "MaxEfficiency".to_string()
    }

    fn allocate(&self, market: &Market) -> Result<MechanismOutcome> {
        let out = max_efficiency(market, &self.options)?;
        let timed_out = u64::from(out.timed_out);
        let mut outcome = outcome_from_allocation(self.name(), market, out.allocation);
        outcome.timed_out_solves = timed_out;
        outcome.degraded |= timed_out > 0;
        Ok(outcome)
    }
}

/// Runs several mechanisms on the same market and collects their outcomes.
///
/// # Errors
///
/// Propagates the first mechanism error encountered.
pub fn compare(market: &Market, mechanisms: &[&dyn Mechanism]) -> Result<Vec<MechanismOutcome>> {
    mechanisms.iter().map(|m| m.allocate(market)).collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use rebudget_market::utility::SeparableUtility;
    use rebudget_market::{Player, ResourceSpace};
    use std::sync::Arc;

    const CAPS: [f64; 2] = [16.0, 80.0];

    fn player(name: &str, w: [f64; 2]) -> Player {
        Player::new(
            name,
            100.0,
            Arc::new(SeparableUtility::proportional(&w, &CAPS).unwrap()),
        )
    }

    /// A small BBPC-flavoured market: a "both" player, an insensitive
    /// "none" player (whose λ will be low — the over-budgeted *swim* of the
    /// paper's Figure 3), a cache-lover, and a power-lover.
    fn bbpc_market() -> Market {
        Market::new(
            ResourceSpace::new(CAPS.to_vec()).unwrap(),
            vec![
                player("both", [0.5, 0.5]),
                player("none", [0.04, 0.06]),
                player("cache", [0.95, 0.05]),
                player("power", [0.05, 0.95]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn equal_share_is_fair_and_exhaustive() {
        let market = bbpc_market();
        let out = EqualShare.allocate(&market).unwrap();
        assert!(out.allocation.is_exhaustive(&CAPS, 1e-12));
        assert!(out.envy_freeness >= 1.0 - 1e-9, "equal share is envy-free");
        assert!(out.mur.is_none());
        assert_eq!(out.equilibrium_rounds, 0);
    }

    #[test]
    fn equal_budget_reports_full_metrics() {
        let market = bbpc_market();
        let out = EqualBudget::new(100.0).allocate(&market).unwrap();
        assert_eq!(out.budgets, vec![100.0; 4]);
        assert_eq!(out.mbr, Some(1.0));
        assert!(out.mur.unwrap() > 0.0 && out.mur.unwrap() <= 1.0);
        assert_eq!(out.equilibrium_rounds, 1);
        assert!(out.converged);
        assert!(out.allocation.is_exhaustive(&CAPS, 1e-9));
    }

    #[test]
    fn solver_selection_flows_through_mechanisms() {
        // The same mechanism solved with the first-order engine reaches a
        // price-taking equilibrium with full metrics, and the outcome
        // carries the worst solve residual in the unified semantics.
        let market = bbpc_market();
        let jac = EqualBudget::new(100.0).allocate(&market).unwrap();
        let pr = EqualBudget::new(100.0)
            .with_solver(SolverKind::ProportionalResponse)
            .allocate(&market)
            .unwrap();
        assert!(pr.converged);
        assert!(pr.allocation.is_exhaustive(&CAPS, 1e-6));
        assert!(pr.worst_residual.is_finite() && pr.worst_residual >= 0.0);
        assert!(jac.worst_residual.is_finite());
        // Multi-round ReBudget tracks the max over every round's solve.
        let rb = ReBudget::with_step(100.0, 40.0)
            .with_solver(SolverKind::MirrorDescent)
            .allocate(&market)
            .unwrap();
        assert!(rb.equilibrium_rounds >= 1);
        assert!(rb.worst_residual.is_finite() && rb.worst_residual >= 0.0);
    }

    #[test]
    fn equal_budget_nearly_envy_free() {
        // Lemma 3: equal budgets ⇒ ≥0.828-approximate envy-free; in
        // practice the paper observes ≥0.93.
        let market = bbpc_market();
        let out = EqualBudget::new(100.0).allocate(&market).unwrap();
        assert!(
            out.envy_freeness >= 0.828,
            "EF {} below Zhang's bound",
            out.envy_freeness
        );
    }

    #[test]
    fn balanced_budgets_track_potential() {
        let market = Market::new(
            ResourceSpace::new(CAPS.to_vec()).unwrap(),
            vec![
                player("hungry", [0.6, 0.4]),
                // "N"-type: barely sensitive to anything — simulate by tiny
                // weights (low max utility but also low potential since
                // utility range is compressed).
                Player::new(
                    "insensitive",
                    100.0,
                    Arc::new(
                        SeparableUtility::new(vec![
                            rebudget_market::utility::Concave1d::Linear { slope: 1e-3 },
                            rebudget_market::utility::Concave1d::Linear { slope: 1e-3 },
                        ])
                        .unwrap(),
                    ),
                ),
            ],
        )
        .unwrap();
        let b = Balanced::new(100.0);
        let budgets = b.budgets(&market);
        // Both players have potential 1 here ((U_max-0)/U_max); with the
        // sqrt utility everyone's potential is 1, so budgets equalize.
        assert!((budgets[0] - budgets[1]).abs() < 1e-9);
        let out = b.allocate(&market).unwrap();
        assert_eq!(out.equilibrium_rounds, 1);
    }

    #[test]
    fn rebudget_respects_guaranteed_mbr() {
        let market = bbpc_market();
        let mech = ReBudget::with_step(100.0, 20.0);
        let out = mech.allocate(&market).unwrap();
        let min_b = out.budgets.iter().cloned().fold(f64::INFINITY, f64::min);
        let max_b = out.budgets.iter().cloned().fold(0.0_f64, f64::max);
        assert!(max_b <= 100.0 + 1e-9);
        // Geometric series: cuts sum to < 2·step₀ = 40.
        assert!(min_b >= 100.0 - 40.0 - 1e-9, "min budget {min_b}");
        assert!(out.mbr.unwrap() >= mech.guaranteed_mbr() - 1e-9);
    }

    #[test]
    fn rebudget_improves_efficiency_over_equal_budget() {
        let market = bbpc_market();
        let eq = EqualBudget::new(100.0).allocate(&market).unwrap();
        let rb = ReBudget::with_step(100.0, 40.0).allocate(&market).unwrap();
        assert!(
            rb.efficiency >= eq.efficiency - 1e-6,
            "ReBudget-40 ({}) should not lose to EqualBudget ({})",
            rb.efficiency,
            eq.efficiency
        );
        // And it needed more equilibrium rounds to get there.
        assert!(rb.equilibrium_rounds > eq.equilibrium_rounds);
    }

    #[test]
    fn rebudget_raises_mur() {
        let market = bbpc_market();
        let eq = EqualBudget::new(100.0).allocate(&market).unwrap();
        let rb = ReBudget::with_step(100.0, 40.0).allocate(&market).unwrap();
        assert!(
            rb.mur.unwrap() >= eq.mur.unwrap() - 0.05,
            "MUR should move toward 1: {} vs {}",
            rb.mur.unwrap(),
            eq.mur.unwrap()
        );
    }

    #[test]
    fn fairness_floor_constructor_matches_theory() {
        let mech = ReBudget::with_fairness_floor(100.0, 0.5).unwrap();
        let mbr = crate::theory::min_mbr_for_ef(0.5).unwrap();
        assert!((mech.guaranteed_mbr() - mbr).abs() < 1e-12);
        assert!((mech.initial_step - (1.0 - mbr) * 50.0).abs() < 1e-12);
        assert!(ReBudget::with_fairness_floor(100.0, 0.9).is_err());
    }

    #[test]
    fn max_efficiency_dominates_all_market_mechanisms() {
        let market = bbpc_market();
        let opt = MaxEfficiency::default().allocate(&market).unwrap();
        for mech in [
            &EqualShare as &dyn Mechanism,
            &EqualBudget::new(100.0),
            &ReBudget::with_step(100.0, 20.0),
        ] {
            let out = mech.allocate(&market).unwrap();
            assert!(
                opt.efficiency >= out.efficiency - 1e-6,
                "{} beat the oracle: {} > {}",
                out.mechanism,
                out.efficiency,
                opt.efficiency
            );
        }
    }

    #[test]
    fn mechanism_names() {
        assert_eq!(EqualShare.name(), "EqualShare");
        assert_eq!(ReBudget::with_step(100.0, 20.0).name(), "ReBudget-20");
        assert_eq!(ReBudget::with_step(100.0, 40.0).name(), "ReBudget-40");
    }

    #[test]
    fn compare_runs_everything() {
        let market = bbpc_market();
        let outs = compare(
            &market,
            &[
                &EqualShare,
                &EqualBudget::new(100.0),
                &MaxEfficiency::default(),
            ],
        )
        .unwrap();
        assert_eq!(outs.len(), 3);
        assert_eq!(outs[0].mechanism, "EqualShare");
    }
}
