//! *Elasticities Proportional* (EP) — Zahedi & Lee's REF mechanism
//! (ASPLOS 2014), the curve-fitting baseline the paper discusses in §1:
//!
//! > "such guarantees rely on the assumption that an application's utility
//! > can be accurately curve-fitted to a Cobb-Douglas function, where the
//! > coefficients are used as the 'elasticities' of resources. Our XChange
//! > work shows that EP can in fact perform worse than expected when such
//! > curve-fitting is not well suited to the applications."
//!
//! EP fits each player's utility to `U_i(r) = s_i · Π_j r_j^{e_ij}` and
//! allocates each resource in proportion to the fitted elasticities:
//! `r_ij = C_j · ê_ij / Σ_k ê_kj`, where `ê_ij` is player `i`'s elasticity
//! normalized so its own elasticities sum to 1 (each player "spends" one
//! unit of entitlement across resources according to its tastes). For
//! genuinely Cobb-Douglas players this is the market equilibrium of an
//! equal-budget Fisher market, hence Pareto-efficient and envy-free; for
//! cliffy multicore utilities the fit — and therefore the allocation —
//! degrades, which the `ep_quality` ablation demonstrates.

use rebudget_market::fit::{fit_cobb_douglas, sample_utility, CobbDouglasFit};
use rebudget_market::{AllocationMatrix, Market, Result};

use crate::mechanisms::{Mechanism, MechanismOutcome};

/// The EP (elasticities proportional) mechanism.
#[derive(Debug, Clone)]
pub struct ElasticitiesProportional {
    /// Samples per axis for the utility fit (default 6).
    pub fit_points_per_axis: usize,
}

impl ElasticitiesProportional {
    /// Creates the mechanism with default fitting granularity.
    pub fn new() -> Self {
        Self {
            fit_points_per_axis: 6,
        }
    }

    /// Fits every player's utility, returning the per-player fits (useful
    /// for inspecting fit quality).
    ///
    /// # Errors
    ///
    /// Propagates fitting failures (degenerate utilities).
    pub fn fit_players(&self, market: &Market) -> Result<Vec<CobbDouglasFit>> {
        let caps = market.resources().capacities();
        let ranges: Vec<(f64, f64)> = caps.iter().map(|&c| (c * 0.02, c)).collect();
        market
            .players()
            .iter()
            .map(|p| {
                let samples =
                    sample_utility(p.utility().as_ref(), &ranges, self.fit_points_per_axis);
                fit_cobb_douglas(&samples)
            })
            .collect()
    }
}

impl Default for ElasticitiesProportional {
    fn default() -> Self {
        Self::new()
    }
}

impl Mechanism for ElasticitiesProportional {
    fn name(&self) -> String {
        "EP".to_string()
    }

    fn allocate(&self, market: &Market) -> Result<MechanismOutcome> {
        let n = market.len();
        let m = market.resources().len();
        let caps = market.resources().capacities();
        let fits = self.fit_players(market)?;

        // Normalize each player's elasticities to sum to 1 (its "spend"),
        // then hand out each resource proportionally.
        let mut shares = vec![vec![0.0; m]; n];
        for (i, fit) in fits.iter().enumerate() {
            let es = fit.fitted.elasticities();
            let sum: f64 = es.iter().sum();
            for j in 0..m {
                shares[i][j] = if sum > 0.0 {
                    es[j] / sum
                } else {
                    1.0 / m as f64
                };
            }
        }
        let mut allocation = AllocationMatrix::zeros(n, m)?;
        for j in 0..m {
            let total: f64 = (0..n).map(|i| shares[i][j]).sum();
            for i in 0..n {
                let frac = if total > 0.0 {
                    shares[i][j] / total
                } else {
                    1.0 / n as f64
                };
                allocation.set(i, j, frac * caps[j]);
            }
        }

        let utilities: Vec<f64> = market
            .players()
            .iter()
            .enumerate()
            .map(|(i, p)| p.utility_of(allocation.row(i)))
            .collect();
        let efficiency = utilities.iter().sum();
        let envy_freeness = rebudget_market::metrics::envy_freeness(market, &allocation);
        Ok(MechanismOutcome {
            mechanism: self.name(),
            allocation,
            budgets: Vec::new(),
            utilities,
            lambdas: Vec::new(),
            efficiency,
            envy_freeness,
            mur: None,
            mbr: None,
            equilibrium_rounds: 0,
            total_iterations: 0,
            converged: true,
            solver_recoveries: 0,
            rolled_back_rounds: 0,
            degraded: false,
            timed_out_solves: 0,
            retry_attempts: 0,
            worst_residual: 0.0,
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use rebudget_market::utility::CobbDouglas;
    use rebudget_market::{Player, ResourceSpace};
    use std::sync::Arc;

    fn cobb_market() -> Market {
        let resources = ResourceSpace::new(vec![100.0, 50.0]).unwrap();
        Market::new(
            resources,
            vec![
                Player::new(
                    "a",
                    100.0,
                    Arc::new(CobbDouglas::new(1.0, vec![0.8, 0.2]).unwrap()),
                ),
                Player::new(
                    "b",
                    100.0,
                    Arc::new(CobbDouglas::new(1.0, vec![0.2, 0.8]).unwrap()),
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn ep_is_exact_for_cobb_douglas_players() {
        let market = cobb_market();
        let out = ElasticitiesProportional::new().allocate(&market).unwrap();
        assert!(out.allocation.is_exhaustive(&[100.0, 50.0], 1e-9));
        // a's normalized elasticities (0.8, 0.2) against b's (0.2, 0.8):
        // resource 0 splits 0.8 : 0.2.
        assert!((out.allocation.get(0, 0) - 80.0).abs() < 1.0);
        assert!((out.allocation.get(1, 1) - 40.0).abs() < 1.0);
        // For true Cobb-Douglas players EP is envy-free.
        assert!(out.envy_freeness >= 1.0 - 1e-6, "EF {}", out.envy_freeness);
    }

    #[test]
    fn ep_fit_quality_is_inspectable() {
        let market = cobb_market();
        let fits = ElasticitiesProportional::new()
            .fit_players(&market)
            .unwrap();
        assert_eq!(fits.len(), 2);
        assert!(fits.iter().all(|f| f.log_rmse < 1e-6));
    }

    #[test]
    fn ep_runs_on_non_cobb_douglas_players() {
        use rebudget_market::utility::SeparableUtility;
        let caps = [16.0, 80.0];
        let market = Market::new(
            ResourceSpace::new(caps.to_vec()).unwrap(),
            vec![
                Player::new(
                    "a",
                    100.0,
                    Arc::new(SeparableUtility::proportional(&[0.9, 0.1], &caps).unwrap()),
                ),
                Player::new(
                    "b",
                    100.0,
                    Arc::new(SeparableUtility::proportional(&[0.3, 0.7], &caps).unwrap()),
                ),
            ],
        )
        .unwrap();
        let out = ElasticitiesProportional::new().allocate(&market).unwrap();
        assert!(out.allocation.is_exhaustive(&caps, 1e-9));
        assert!(out.efficiency > 0.0);
    }
}
