#![warn(missing_docs)]

//! **ReBudget** — the primary contribution of Wang & Martínez (ASPLOS 2016):
//! runtime budget re-assignment for market-based multicore resource
//! allocation, with theoretical efficiency/fairness bounds.
//!
//! The crate has three parts:
//!
//! * [`theory`] — the paper's Theorems 1 and 2: Price-of-Anarchy lower
//!   bounds from the **Market Utility Range** (MUR) and approximate
//!   envy-freeness bounds from the **Market Budget Range** (MBR), plus the
//!   inverse mapping that turns a fairness floor into a minimum MBR.
//! * [`mechanisms`] — the allocation mechanisms compared in the paper's
//!   evaluation (§6): `EqualShare`, `EqualBudget`, XChange's `Balanced`,
//!   `ReBudget-step`, and the `MaxEfficiency` oracle, all behind one
//!   [`mechanisms::Mechanism`] trait.
//! * [`sweep`] — helpers to sweep the ReBudget aggressiveness knob and
//!   tabulate the efficiency-vs-fairness trade-off.
//!
//! # Quick example
//!
//! ```
//! use std::sync::Arc;
//! use rebudget_market::{Market, Player, ResourceSpace};
//! use rebudget_market::utility::SeparableUtility;
//! use rebudget_core::mechanisms::{Mechanism, ReBudget};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let caps = [16.0, 80.0];
//! let resources = ResourceSpace::new(caps.to_vec())?;
//! let players = vec![
//!     Player::new("a", 100.0, Arc::new(SeparableUtility::proportional(&[0.9, 0.1], &caps)?)),
//!     Player::new("b", 100.0, Arc::new(SeparableUtility::proportional(&[0.2, 0.8], &caps)?)),
//! ];
//! let market = Market::new(resources, players)?;
//!
//! // ReBudget-20: first-round budget cut of 20 out of 100.
//! let outcome = ReBudget::with_step(100.0, 20.0).allocate(&market)?;
//! println!("efficiency {:.3}, envy-freeness {:.3}", outcome.efficiency, outcome.envy_freeness);
//! # Ok(())
//! # }
//! ```

pub mod ep;
pub mod linearized;
pub mod mechanisms;
pub mod sweep;
pub mod theory;
pub mod uncoordinated;

pub use ep::ElasticitiesProportional;
pub use mechanisms::{
    Balanced, EqualBudget, EqualShare, MaxEfficiency, Mechanism, MechanismOutcome, ReBudget,
};
pub use theory::{ef_lower_bound, min_mbr_for_ef, poa_lower_bound};
pub use uncoordinated::Uncoordinated;
