//! The *uncoordinated* baseline: per-resource allocators that do not talk
//! to each other.
//!
//! The paper's introduction motivates the market with exactly this
//! strawman: "single-resource, and more generally uncoordinated resource
//! allocation, can be significantly suboptimal, due to its inability to
//! model the interactions among resources". This mechanism allocates the
//! cache with UCP's lookahead algorithm (Qureshi & Patt — the standard
//! single-resource cache partitioner, reimplemented in
//! [`rebudget_cache::ucp`]) while splitting power equally, each decision
//! blind to the other.

use rebudget_cache::ucp::ucp_lookahead;
use rebudget_market::{AllocationMatrix, Market, MarketError, Result};

use crate::mechanisms::{Mechanism, MechanismOutcome};

/// UCP for the cache + an equal split of power, uncoordinated.
#[derive(Debug, Clone, Default)]
pub struct Uncoordinated;

impl Mechanism for Uncoordinated {
    fn name(&self) -> String {
        "UCP+EqualPower".to_string()
    }

    fn allocate(&self, market: &Market) -> Result<MechanismOutcome> {
        let n = market.len();
        let m = market.resources().len();
        if m != 2 {
            return Err(MarketError::DimensionMismatch {
                what: "uncoordinated baseline resources (cache, power)",
                expected: 2,
                actual: m,
            });
        }
        let cache_cap = market.resources().capacity(0);
        let power_cap = market.resources().capacity(1);
        let units = cache_cap.floor() as usize;
        let equal_power = power_cap / n as f64;

        // Build per-player "miss curves" for UCP from their utilities:
        // UCP minimizes misses; maximizing utility is equivalent to
        // minimizing (U_max − U), evaluated while power sits at its equal
        // share — the cache allocator cannot see power trades, which is
        // the whole point of this baseline.
        let curves: Vec<Vec<f64>> = market
            .players()
            .iter()
            .map(|p| {
                (0..=units)
                    .map(|w| 1.0 - p.utility_of(&[w as f64, equal_power]))
                    .collect()
            })
            .collect();
        let ways = ucp_lookahead(&curves, units, 0).map_err(|e| MarketError::InvalidUtility {
            reason: format!("UCP failed: {e}"),
        })?;

        let mut allocation = AllocationMatrix::zeros(n, 2)?;
        // Distribute the fractional remainder of the cache evenly so the
        // allocation stays exhaustive.
        let leftover = (cache_cap - units as f64) / n as f64;
        for i in 0..n {
            allocation.set(i, 0, ways[i] as f64 + leftover);
            allocation.set(i, 1, equal_power);
        }

        let utilities: Vec<f64> = market
            .players()
            .iter()
            .enumerate()
            .map(|(i, p)| p.utility_of(allocation.row(i)))
            .collect();
        let efficiency = utilities.iter().sum();
        let envy_freeness = rebudget_market::metrics::envy_freeness(market, &allocation);
        Ok(MechanismOutcome {
            mechanism: self.name(),
            allocation,
            budgets: Vec::new(),
            utilities,
            lambdas: Vec::new(),
            efficiency,
            envy_freeness,
            mur: None,
            mbr: None,
            equilibrium_rounds: 0,
            total_iterations: 0,
            converged: true,
            solver_recoveries: 0,
            rolled_back_rounds: 0,
            degraded: false,
            timed_out_solves: 0,
            retry_attempts: 0,
            worst_residual: 0.0,
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::mechanisms::{EqualShare, MaxEfficiency};
    use rebudget_market::utility::SeparableUtility;
    use rebudget_market::{Player, ResourceSpace};
    use std::sync::Arc;

    fn market() -> Market {
        let caps = [16.0, 60.0];
        Market::new(
            ResourceSpace::new(caps.to_vec()).unwrap(),
            vec![
                Player::new(
                    "cache-hungry",
                    100.0,
                    Arc::new(SeparableUtility::proportional(&[0.9, 0.1], &caps).unwrap()),
                ),
                Player::new(
                    "power-hungry",
                    100.0,
                    Arc::new(SeparableUtility::proportional(&[0.1, 0.9], &caps).unwrap()),
                ),
                Player::new(
                    "balanced",
                    100.0,
                    Arc::new(SeparableUtility::proportional(&[0.5, 0.5], &caps).unwrap()),
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn allocates_exhaustively_and_favours_cache_hungry() {
        let market = market();
        let out = Uncoordinated.allocate(&market).unwrap();
        assert!(out.allocation.is_exhaustive(&[16.0, 60.0], 1e-9));
        assert!(
            out.allocation.get(0, 0) > out.allocation.get(1, 0),
            "cache-hungry player should get more cache"
        );
        // Power is split equally — uncoordinated.
        assert!((out.allocation.get(0, 1) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn beats_equal_share_but_not_the_oracle() {
        let market = market();
        let share = EqualShare.allocate(&market).unwrap();
        let unc = Uncoordinated.allocate(&market).unwrap();
        let opt = MaxEfficiency::default().allocate(&market).unwrap();
        assert!(unc.efficiency >= share.efficiency - 1e-9);
        assert!(
            unc.efficiency <= opt.efficiency + 1e-9,
            "uncoordinated {} vs oracle {}",
            unc.efficiency,
            opt.efficiency
        );
    }

    #[test]
    fn rejects_non_two_resource_markets() {
        let caps = [8.0];
        let market = Market::new(
            ResourceSpace::new(caps.to_vec()).unwrap(),
            vec![Player::new(
                "a",
                1.0,
                Arc::new(SeparableUtility::proportional(&[1.0], &caps).unwrap()),
            )],
        )
        .unwrap();
        assert!(Uncoordinated.allocate(&market).is_err());
    }
}
