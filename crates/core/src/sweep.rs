//! Sweeping the ReBudget aggressiveness knob.
//!
//! §6.2 of the paper concludes that "system designers and administrators
//! can use the *step* as a 'knob' to trade off" efficiency for fairness.
//! This module tabulates that knob: it runs `ReBudget-step` across a set of
//! step values (plus the `EqualBudget` endpoint at step 0) and reports
//! efficiency — optionally normalized to the `MaxEfficiency` oracle — next
//! to measured envy-freeness and the Theorem-2 floor.
//!
//! The step values are mutually independent (each runs its own mechanism
//! from scratch on the shared market), so [`sweep_steps_with`] fans them
//! out across worker threads. Every mechanism run produces values that are
//! a pure function of its inputs, so the sweep is bit-identical under any
//! [`ParallelPolicy`] and points always come back in input order. When the
//! outer sweep is parallel, the nested equilibrium solves are forced
//! serial — the coarse-grained fan-out is where the win is, and nesting
//! thread pools would oversubscribe.

use rebudget_market::par::{self, ParallelPolicy};
use rebudget_market::{Market, Result};

use crate::mechanisms::{EqualBudget, MaxEfficiency, Mechanism, ReBudget};
use crate::theory::ef_lower_bound;

/// Solver health behind one sweep point.
///
/// A sweep point is the product of one or more equilibrium solves (one per
/// ReBudget round). This summary aggregates their [`rebudget_market::SolveReport`]s
/// so sweep output can distinguish a certified equilibrium from a
/// best-effort or deadline-clipped iterate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolveSummary {
    /// Whether every equilibrium solve behind this point converged. A
    /// `false` point is best-effort, *not* a certified equilibrium — plots
    /// should mark it rather than silently report it as one.
    pub converged: bool,
    /// Equilibrium rounds run (1 for EqualBudget, reassignment rounds + 1
    /// for ReBudget).
    pub rounds: u64,
    /// Total bidding–pricing iterations across all rounds.
    pub iterations: u64,
    /// Solver guardrail interventions (clamps/restarts) across all rounds.
    pub recoveries: u64,
    /// Extra retry-ladder attempts spent beyond the first solve per round.
    pub retries: u64,
    /// Solves that hit their [`rebudget_market::DeadlineBudget`].
    pub timed_out: u64,
}

impl SolveSummary {
    /// True when the point converged with no guardrail recoveries, no
    /// retry-ladder attempts, and no deadline hits.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.converged && self.recoveries == 0 && self.retries == 0 && self.timed_out == 0
    }
}

/// One point of a knob sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The first-round budget cut (0 = EqualBudget).
    pub step: f64,
    /// Absolute efficiency `Σ_i U_i`.
    pub efficiency: f64,
    /// Efficiency normalized to the MaxEfficiency oracle, if requested.
    pub normalized_efficiency: Option<f64>,
    /// Measured envy-freeness.
    pub envy_freeness: f64,
    /// Measured Market Utility Range.
    pub mur: f64,
    /// Measured Market Budget Range.
    pub mbr: f64,
    /// Worst-case envy-freeness floor from Theorem 2 at the measured MBR.
    pub ef_floor: f64,
    /// Aggregated solver health behind this point.
    pub solve: SolveSummary,
}

impl SweepPoint {
    /// Whether every equilibrium solve behind this point converged.
    #[must_use]
    pub fn converged(&self) -> bool {
        self.solve.converged
    }
}

/// Sweeps `ReBudget-step` over `steps` on `market`, with
/// [`ParallelPolicy::Auto`]. See [`sweep_steps_with`].
///
/// # Errors
///
/// Propagates mechanism errors (degenerate markets).
pub fn sweep_steps(
    market: &Market,
    base_budget: f64,
    steps: &[f64],
    normalize: bool,
) -> Result<Vec<SweepPoint>> {
    sweep_steps_with(market, base_budget, steps, normalize, ParallelPolicy::Auto)
}

/// Sweeps `ReBudget-step` over `steps` on `market` under an explicit
/// [`ParallelPolicy`].
///
/// A step of exactly `0.0` runs plain `EqualBudget`. When `normalize` is
/// true, the `MaxEfficiency` oracle runs once and every point reports
/// `efficiency / OPT`. Points are returned in the order of `steps`, and the
/// values are identical under every policy.
///
/// # Errors
///
/// Propagates mechanism errors (degenerate markets).
pub fn sweep_steps_with(
    market: &Market,
    base_budget: f64,
    steps: &[f64],
    normalize: bool,
    policy: ParallelPolicy,
) -> Result<Vec<SweepPoint>> {
    let threads = policy.resolved_threads_coarse(steps.len());
    // When the sweep itself is parallel, keep the nested equilibrium solves
    // serial; their values do not depend on the policy.
    let inner = if threads > 1 {
        ParallelPolicy::Serial
    } else {
        policy
    };
    let opt = if normalize {
        Some(sweep_oracle(market, inner)?)
    } else {
        None
    };
    let points = par::map_indexed(threads, steps.len(), |k| -> Result<SweepPoint> {
        sweep_point(market, base_budget, steps[k], opt, inner)
    });
    points.into_iter().collect()
}

/// Computes a single sweep point — the unit of work behind
/// [`sweep_steps_with`], exposed so resumable sweeps can recompute exactly
/// the points a checkpoint is missing.
///
/// `opt` is the `MaxEfficiency` oracle value to normalize against (`None`
/// for absolute efficiency); `policy` governs the nested equilibrium solve.
/// The result is a pure function of the arguments, so recomputing a point
/// after a crash yields bit-identical values.
///
/// # Errors
///
/// Propagates mechanism errors (degenerate markets).
pub fn sweep_point(
    market: &Market,
    base_budget: f64,
    step: f64,
    opt: Option<f64>,
    policy: ParallelPolicy,
) -> Result<SweepPoint> {
    let out = if step <= 0.0 {
        EqualBudget::new(base_budget)
            .with_parallel(policy)
            .allocate(market)?
    } else {
        ReBudget::with_step(base_budget, step)
            .with_parallel(policy)
            .allocate(market)?
    };
    let mbr = out.mbr.unwrap_or(1.0);
    Ok(SweepPoint {
        step,
        efficiency: out.efficiency,
        normalized_efficiency: opt.map(|o| if o > 0.0 { out.efficiency / o } else { 1.0 }),
        envy_freeness: out.envy_freeness,
        mur: out.mur.unwrap_or(1.0),
        mbr,
        ef_floor: ef_lower_bound(mbr),
        solve: SolveSummary {
            converged: out.converged,
            rounds: out.equilibrium_rounds,
            iterations: out.total_iterations,
            recoveries: out.solver_recoveries,
            retries: out.retry_attempts,
            timed_out: out.timed_out_solves,
        },
    })
}

/// Computes the `MaxEfficiency` normalizer for a sweep, if requested.
///
/// Exposed so resumable sweeps can recompute the oracle value with the same
/// policy discipline as [`sweep_steps_with`].
///
/// # Errors
///
/// Propagates mechanism errors (degenerate markets).
pub fn sweep_oracle(market: &Market, policy: ParallelPolicy) -> Result<f64> {
    Ok(MaxEfficiency::default()
        .with_parallel(policy)
        .allocate(market)?
        .efficiency)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use rebudget_market::utility::SeparableUtility;
    use rebudget_market::{Player, ResourceSpace};
    use std::sync::Arc;

    fn market() -> Market {
        let caps = [16.0, 80.0];
        Market::new(
            ResourceSpace::new(caps.to_vec()).unwrap(),
            vec![
                Player::new(
                    "a",
                    100.0,
                    Arc::new(SeparableUtility::proportional(&[0.9, 0.1], &caps).unwrap()),
                ),
                Player::new(
                    "b",
                    100.0,
                    Arc::new(SeparableUtility::proportional(&[0.5, 0.5], &caps).unwrap()),
                ),
                Player::new(
                    "c",
                    100.0,
                    Arc::new(SeparableUtility::proportional(&[0.1, 0.9], &caps).unwrap()),
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn sweep_produces_one_point_per_step() {
        let pts = sweep_steps(&market(), 100.0, &[0.0, 20.0, 40.0], true).unwrap();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0].step, 0.0);
        assert_eq!(pts[0].mbr, 1.0);
        assert!(pts.iter().all(|p| p.converged()), "clean market converges");
        assert!(
            pts.iter()
                .all(|p| p.solve.timed_out == 0 && p.solve.retries == 0),
            "no deadlines or retries configured"
        );
        assert!(pts.iter().all(|p| p.solve.rounds >= 1));
        for p in &pts {
            assert!(p.normalized_efficiency.unwrap() <= 1.0 + 1e-6);
            assert!(p.ef_floor <= 0.8285);
            // Theorem 2 must hold: measured EF at or above the floor.
            assert!(
                p.envy_freeness >= p.ef_floor - 1e-9,
                "step {}: EF {} below floor {}",
                p.step,
                p.envy_freeness,
                p.ef_floor
            );
        }
    }

    #[test]
    fn sweep_is_independent_of_parallel_policy() {
        let m = market();
        let steps = [0.0, 10.0, 20.0, 40.0];
        let serial = sweep_steps_with(&m, 100.0, &steps, true, ParallelPolicy::Serial).unwrap();
        let threaded =
            sweep_steps_with(&m, 100.0, &steps, true, ParallelPolicy::Threads(4)).unwrap();
        assert_eq!(serial.len(), threaded.len());
        for (a, b) in serial.iter().zip(&threaded) {
            assert_eq!(a.step, b.step);
            assert_eq!(a.efficiency.to_bits(), b.efficiency.to_bits());
            assert_eq!(a.envy_freeness.to_bits(), b.envy_freeness.to_bits());
            assert_eq!(a.mur.to_bits(), b.mur.to_bits());
            assert_eq!(a.mbr.to_bits(), b.mbr.to_bits());
            assert_eq!(
                a.normalized_efficiency.unwrap().to_bits(),
                b.normalized_efficiency.unwrap().to_bits()
            );
            assert_eq!(a.solve, b.solve);
        }
    }

    #[test]
    fn more_aggressive_steps_never_raise_mbr() {
        let pts = sweep_steps(&market(), 100.0, &[0.0, 10.0, 40.0], false).unwrap();
        assert!(pts[0].normalized_efficiency.is_none());
        assert!(pts.windows(2).all(|w| w[1].mbr <= w[0].mbr + 1e-9));
    }
}
