//! The paper's theoretical bounds (Theorems 1 and 2, Figure 1).
//!
//! * **Theorem 1 (efficiency).** With Market Utility Range
//!   `MUR = min_i λ_i / max_i λ_i`, any market equilibrium satisfies
//!   `PoA ≥ 1 − 1/(4·MUR)` when `MUR ≥ ½` (hence at least 50% of optimal),
//!   and `PoA ≥ MUR` when `MUR < ½`.
//! * **Theorem 2 (fairness).** With Market Budget Range
//!   `MBR = min_i B_i / max_i B_i`, any market equilibrium is
//!   `(2·√(1 + MBR) − 2)`-approximate envy-free.
//!
//! Both bounds are *worst-case floors*: the observed efficiency and
//! envy-freeness in §6 of the paper sit well above them, but no equilibrium
//! may fall below (the paper verifies "none of the bundles violates the
//! theoretic guarantee").

/// Price-of-Anarchy lower bound as a function of MUR (Theorem 1).
///
/// The input is clamped to `[0, 1]`.
///
/// ```
/// use rebudget_core::theory::poa_lower_bound;
/// assert_eq!(poa_lower_bound(1.0), 0.75);
/// assert_eq!(poa_lower_bound(0.5), 0.5);
/// assert_eq!(poa_lower_bound(0.25), 0.25);
/// ```
pub fn poa_lower_bound(mur: f64) -> f64 {
    let mur = mur.clamp(0.0, 1.0);
    if mur >= 0.5 {
        1.0 - 1.0 / (4.0 * mur)
    } else {
        mur
    }
}

/// Approximate envy-freeness lower bound as a function of MBR (Theorem 2):
/// `2·√(1 + MBR) − 2`.
///
/// The input is clamped to `[0, 1]`. At `MBR = 1` (equal budgets) this
/// recovers Zhang's 0.828 bound (Lemma 3 of the paper).
///
/// ```
/// use rebudget_core::theory::ef_lower_bound;
/// assert!((ef_lower_bound(1.0) - 0.8284271247461903).abs() < 1e-12);
/// assert_eq!(ef_lower_bound(0.0), 0.0);
/// ```
pub fn ef_lower_bound(mbr: f64) -> f64 {
    let mbr = mbr.clamp(0.0, 1.0);
    2.0 * (1.0 + mbr).sqrt() - 2.0
}

/// The largest envy-freeness floor any budget assignment can guarantee
/// through Theorem 2 (attained at `MBR = 1`): `2·√2 − 2 ≈ 0.828`.
pub const MAX_GUARANTEED_EF: f64 = 0.828_427_124_746_190_3;

/// Inverts Theorem 2: the minimum MBR that guarantees at least
/// `target_ef`-approximate envy-freeness. This is how ReBudget converts an
/// administrator's fairness floor into a budget-range constraint (§4.2:
/// "the system administrator can set a lowest acceptable envy-freeness
/// level, and using Theorem 2, the minimum MBR can be computed").
///
/// Returns `None` if `target_ef` is negative or exceeds
/// [`MAX_GUARANTEED_EF`] (no budget range can guarantee more than 0.828).
///
/// ```
/// use rebudget_core::theory::{ef_lower_bound, min_mbr_for_ef};
/// let mbr = min_mbr_for_ef(0.5).unwrap();
/// assert!((ef_lower_bound(mbr) - 0.5).abs() < 1e-12);
/// assert!(min_mbr_for_ef(0.9).is_none());
/// ```
pub fn min_mbr_for_ef(target_ef: f64) -> Option<f64> {
    if !(0.0..=MAX_GUARANTEED_EF).contains(&target_ef) {
        return None;
    }
    let root = (target_ef + 2.0) / 2.0;
    Some((root * root - 1.0).clamp(0.0, 1.0))
}

/// A sampled theory curve, e.g. for regenerating Figure 1.
#[derive(Debug, Clone, PartialEq)]
pub struct TheoryCurve {
    /// The metric values on the x axis (MUR or MBR).
    pub x: Vec<f64>,
    /// The corresponding bound values.
    pub y: Vec<f64>,
}

/// Samples `PoA ≥ f(MUR)` over `[0, 1]` (left panel of Figure 1).
pub fn poa_curve(samples: usize) -> TheoryCurve {
    sample_curve(samples, poa_lower_bound)
}

/// Samples `EF ≥ 2√(1+MBR) − 2` over `[0, 1]` (right panel of Figure 1).
pub fn ef_curve(samples: usize) -> TheoryCurve {
    sample_curve(samples, ef_lower_bound)
}

fn sample_curve(samples: usize, f: impl Fn(f64) -> f64) -> TheoryCurve {
    let samples = samples.max(2);
    let x: Vec<f64> = (0..samples)
        .map(|k| k as f64 / (samples - 1) as f64)
        .collect();
    let y = x.iter().map(|&v| f(v)).collect();
    TheoryCurve { x, y }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn theorem1_continuous_at_half() {
        let below = poa_lower_bound(0.5 - 1e-9);
        let at = poa_lower_bound(0.5);
        assert!((below - at).abs() < 1e-6);
        assert_eq!(at, 0.5);
    }

    #[test]
    fn theorem1_monotone_nondecreasing() {
        let mut prev = -1.0;
        for k in 0..=100 {
            let v = poa_lower_bound(k as f64 / 100.0);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn theorem1_guarantees_half_above_half() {
        for k in 50..=100 {
            assert!(poa_lower_bound(k as f64 / 100.0) >= 0.5);
        }
    }

    #[test]
    fn theorem1_clamps_out_of_range() {
        assert_eq!(poa_lower_bound(-0.5), 0.0);
        assert_eq!(poa_lower_bound(2.0), 0.75);
    }

    #[test]
    fn theorem2_matches_zhang_at_equal_budget() {
        assert!((ef_lower_bound(1.0) - MAX_GUARANTEED_EF).abs() < 1e-12);
    }

    #[test]
    fn theorem2_paper_rebudget_floors() {
        // §6.2: ReBudget-20 has a theoretical floor of 0.53 (min budget
        // 61.25/100) and ReBudget-40 of 0.19 (min budget ~20/100).
        assert!((ef_lower_bound(0.6125) - 0.53).abs() < 0.01);
        assert!((ef_lower_bound(0.20) - 0.19).abs() < 0.005);
    }

    #[test]
    fn inverse_round_trips() {
        for k in 0..=82 {
            let ef = k as f64 / 100.0;
            let mbr = min_mbr_for_ef(ef).expect("within range");
            assert!((ef_lower_bound(mbr) - ef).abs() < 1e-9, "ef={ef}");
        }
    }

    #[test]
    fn inverse_rejects_out_of_range() {
        assert!(min_mbr_for_ef(-0.1).is_none());
        assert!(min_mbr_for_ef(0.83).is_none());
        assert!(min_mbr_for_ef(f64::NAN).is_none());
    }

    #[test]
    fn curves_span_unit_interval() {
        let c = poa_curve(101);
        assert_eq!(c.x.len(), 101);
        assert_eq!(c.x[0], 0.0);
        assert_eq!(*c.x.last().unwrap(), 1.0);
        assert_eq!(c.y[0], 0.0);
        assert_eq!(*c.y.last().unwrap(), 0.75);
        let e = ef_curve(3);
        assert_eq!(e.x, vec![0.0, 0.5, 1.0]);
    }
}
