//! Utility-surface construction cost: the per-quantum work each core's
//! monitor triggers (profile → hull → grid), and a full 1 ms allocation
//! quantum (monitor + market + execute) on the 8-core case study.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use rebudget_apps::spec::app_by_name;
use rebudget_core::mechanisms::ReBudget;
use rebudget_sim::utility_model::app_utility_grid;
use rebudget_sim::{run_simulation, DramConfig, SimOptions, SystemConfig};
use rebudget_workloads::paper_bbpc_8core;

fn bench_grid_build(c: &mut Criterion) {
    let sys = SystemConfig::paper_8core();
    let dram = DramConfig::ddr3_1600();
    let mcf = app_by_name("mcf").expect("exists");
    c.bench_function("utility_grid_mcf", |b| {
        b.iter(|| black_box(app_utility_grid(mcf, &sys, &dram).axis0().len()))
    });
}

fn bench_quantum_loop(c: &mut Criterion) {
    let sys = SystemConfig::paper_8core();
    let dram = DramConfig::ddr3_1600();
    let bundle = paper_bbpc_8core();
    let opts = SimOptions {
        quanta: 2,
        accesses_per_quantum: 5_000,
        budget: 100.0,
        use_monitors: true,
        seed: 3,
        ..SimOptions::default()
    };
    c.bench_function("sim_2_quanta_rebudget20_8core", |b| {
        b.iter(|| {
            let r = run_simulation(
                &sys,
                &dram,
                &bundle,
                &ReBudget::with_step(100.0, 20.0),
                &opts,
            )
            .expect("simulation runs");
            black_box(r.efficiency)
        })
    });
}

criterion_group!(benches, bench_grid_build, bench_quantum_loop);
criterion_main!(benches);
