//! Cache-substrate throughput: plain LRU accesses, Futility-Scaling
//! partitioned accesses, UMON shadow-tag observation, and Talus planning.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use rebudget_cache::futility::FutilityPartitionedCache;
use rebudget_cache::talus::Talus;
use rebudget_cache::{CacheConfig, MissCurve, SetAssocCache, UmonShadowTags};

fn lcg_addresses(n: usize, distinct: u64) -> Vec<u64> {
    let mut x = 0x1234_5678_9abc_def0u64;
    (0..n)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((x >> 32) % distinct) * 32
        })
        .collect()
}

fn bench_set_assoc(c: &mut Criterion) {
    let cfg = CacheConfig {
        size_bytes: 1 << 20,
        ways: 16,
        line_bytes: 32,
    };
    let addrs = lcg_addresses(10_000, 100_000);
    c.bench_function("set_assoc_10k_accesses", |b| {
        b.iter(|| {
            let mut cache = SetAssocCache::new(cfg).expect("valid config");
            for &a in &addrs {
                black_box(cache.access(0, a).hit);
            }
            cache.stats(0).misses
        })
    });
}

fn bench_futility(c: &mut Criterion) {
    let cfg = CacheConfig {
        size_bytes: 1 << 20,
        ways: 16,
        line_bytes: 32,
    };
    let addrs = lcg_addresses(10_000, 100_000);
    c.bench_function("futility_10k_accesses_4parts", |b| {
        b.iter(|| {
            let mut cache = FutilityPartitionedCache::new(cfg, 4).expect("valid config");
            for (k, &a) in addrs.iter().enumerate() {
                black_box(cache.access(k % 4, a));
            }
            cache.occupancy(0)
        })
    });
}

fn bench_umon(c: &mut Criterion) {
    let addrs = lcg_addresses(10_000, 100_000);
    c.bench_function("umon_10k_observations", |b| {
        b.iter(|| {
            let mut umon = UmonShadowTags::paper_config(4096, 32).expect("valid");
            for &a in &addrs {
                umon.observe(a);
            }
            black_box(umon.estimated_misses_at(8))
        })
    });
}

fn bench_talus(c: &mut Criterion) {
    let points: Vec<(f64, f64)> = (1..=16)
        .map(|k| {
            let cap = k as f64 * 131072.0;
            let misses = if k < 12 {
                1000.0 - k as f64
            } else {
                50.0 - k as f64
            };
            (cap, misses)
        })
        .collect();
    let curve = MissCurve::new(points).expect("valid curve");
    c.bench_function("talus_hull_and_plan", |b| {
        b.iter(|| {
            let talus = Talus::new(curve.clone());
            black_box(talus.plan(1_000_000.0).expected_misses)
        })
    });
}

criterion_group!(
    benches,
    bench_set_assoc,
    bench_futility,
    bench_umon,
    bench_talus
);
criterion_main!(benches);
