//! Scalability of the equilibrium search: solve time vs. player count.
//!
//! The paper's core scalability claim is that the market is "largely
//! distributed": each iteration is O(N) best responses, and convergence
//! takes a small constant number of iterations (§6.4). This bench
//! measures wall-clock equilibrium time at 8, 16, 32, and 64 players.

use std::hint::black_box;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rebudget_market::equilibrium::EquilibriumOptions;
use rebudget_market::utility::SeparableUtility;
use rebudget_market::{Market, Player, ResourceSpace};

fn synthetic_market(n: usize) -> Market {
    let caps = [3.0 * n as f64, 7.0 * n as f64];
    let resources = ResourceSpace::new(caps.to_vec()).expect("valid capacities");
    let players = (0..n)
        .map(|i| {
            // Deterministically varied tastes.
            let w0 = 0.1 + 0.8 * (i as f64 * 0.37).fract();
            Player::new(
                format!("p{i}"),
                100.0,
                Arc::new(
                    SeparableUtility::proportional(&[w0, 1.0 - w0], &caps).expect("valid weights"),
                ) as Arc<dyn rebudget_market::Utility>,
            )
        })
        .collect();
    Market::new(resources, players).expect("valid market")
}

fn bench_equilibrium_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("equilibrium_solve");
    for n in [8usize, 16, 32, 64] {
        let market = synthetic_market(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &market, |b, m| {
            b.iter(|| {
                let out = m
                    .equilibrium(&EquilibriumOptions::default())
                    .expect("solvable");
                black_box(out.iterations)
            })
        });
    }
    group.finish();
}

fn bench_single_best_response(c: &mut Criterion) {
    use rebudget_market::bidding::{best_response, BiddingOptions};
    let caps = [16.0, 80.0];
    let u = SeparableUtility::proportional(&[0.7, 0.3], &caps).expect("valid");
    c.bench_function("best_response", |b| {
        b.iter(|| {
            let r = best_response(
                black_box(&u),
                100.0,
                &[40.0, 60.0],
                &caps,
                &BiddingOptions::default(),
            );
            black_box(r.lambda())
        })
    });
}

criterion_group!(
    benches,
    bench_equilibrium_scaling,
    bench_single_best_response
);
criterion_main!(benches);
