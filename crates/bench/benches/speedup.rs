//! Parallel-vs-serial speedup of the equilibrium engine.
//!
//! Solves the same synthetic market under `ParallelPolicy::Serial` and
//! under a thread-count policy sized to the machine, at 8, 32, 128, and
//! 256 players. The two configurations produce bit-identical outcomes
//! (asserted before timing), so any wall-clock difference is pure
//! execution-strategy overhead or win.
//!
//! On machines with fewer than 4 cores only the serial baseline runs —
//! thread fan-out on a 1–2 core box measures scheduler noise, not the
//! engine. (The acceptance speedup target applies at ≥4 cores.)

use std::hint::black_box;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rebudget_market::equilibrium::EquilibriumOptions;
use rebudget_market::utility::SeparableUtility;
use rebudget_market::{Market, ParallelPolicy, Player, ResourceSpace};

fn synthetic_market(n: usize) -> Market {
    let caps = [3.0 * n as f64, 7.0 * n as f64];
    let resources = ResourceSpace::new(caps.to_vec()).expect("valid capacities");
    let players = (0..n)
        .map(|i| {
            let w0 = 0.1 + 0.8 * (i as f64 * 0.37).fract();
            Player::new(
                format!("p{i}"),
                100.0,
                Arc::new(
                    SeparableUtility::proportional(&[w0, 1.0 - w0], &caps).expect("valid weights"),
                ) as Arc<dyn rebudget_market::Utility>,
            )
        })
        .collect();
    Market::new(resources, players).expect("valid market")
}

fn solve(
    market: &Market,
    policy: ParallelPolicy,
) -> rebudget_market::equilibrium::EquilibriumOutcome {
    market
        .equilibrium(&EquilibriumOptions::default().with_parallel(policy))
        .expect("solvable")
}

fn bench_speedup(c: &mut Criterion) {
    let cores = rebudget_market::par::max_threads();
    let parallel = ParallelPolicy::Threads(cores);
    let mut group = c.benchmark_group("equilibrium_speedup");
    for n in [8usize, 32, 128, 256] {
        let market = synthetic_market(n);

        // Bit-identity guard: the timed configurations must agree exactly.
        if cores > 1 {
            let s = solve(&market, ParallelPolicy::Serial);
            let p = solve(&market, parallel);
            assert_eq!(s.iterations, p.iterations);
            assert!(s
                .bids
                .as_slice()
                .iter()
                .zip(p.bids.as_slice())
                .all(|(a, b)| a.to_bits() == b.to_bits()));
        }

        group.bench_with_input(BenchmarkId::new("serial", n), &market, |b, m| {
            b.iter(|| black_box(solve(m, ParallelPolicy::Serial).iterations))
        });
        if cores >= 4 {
            group.bench_with_input(
                BenchmarkId::new(&format!("threads{cores}"), n),
                &market,
                |b, m| b.iter(|| black_box(solve(m, parallel).iterations)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_speedup);
criterion_main!(benches);
