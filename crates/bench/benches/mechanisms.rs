//! End-to-end mechanism cost on the paper's BBPC case-study market:
//! EqualBudget (one equilibrium), ReBudget-20/40 (several re-convergences),
//! and the MaxEfficiency oracle (the "infeasible" fine-grained search).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use rebudget_core::mechanisms::{EqualBudget, MaxEfficiency, Mechanism, ReBudget};
use rebudget_sim::analytic::build_market;
use rebudget_sim::{DramConfig, SystemConfig};
use rebudget_workloads::paper_bbpc_8core;

fn bench_mechanisms(c: &mut Criterion) {
    let sys = SystemConfig::paper_8core();
    let dram = DramConfig::ddr3_1600();
    let market = build_market(&paper_bbpc_8core(), &sys, &dram, 100.0).expect("valid market");

    let mut group = c.benchmark_group("mechanism_bbpc8");
    group.bench_function("EqualBudget", |b| {
        b.iter(|| {
            black_box(
                EqualBudget::new(100.0)
                    .allocate(&market)
                    .expect("runs")
                    .efficiency,
            )
        })
    });
    group.bench_function("ReBudget-20", |b| {
        b.iter(|| {
            black_box(
                ReBudget::with_step(100.0, 20.0)
                    .allocate(&market)
                    .expect("runs")
                    .efficiency,
            )
        })
    });
    group.bench_function("ReBudget-40", |b| {
        b.iter(|| {
            black_box(
                ReBudget::with_step(100.0, 40.0)
                    .allocate(&market)
                    .expect("runs")
                    .efficiency,
            )
        })
    });
    group.bench_function("MaxEfficiency", |b| {
        b.iter(|| {
            black_box(
                MaxEfficiency::default()
                    .allocate(&market)
                    .expect("runs")
                    .efficiency,
            )
        })
    });
    group.finish();
}

fn bench_market_construction(c: &mut Criterion) {
    let sys = SystemConfig::paper_8core();
    let dram = DramConfig::ddr3_1600();
    let bundle = paper_bbpc_8core();
    c.bench_function("build_market_bbpc8", |b| {
        b.iter(|| {
            black_box(
                build_market(&bundle, &sys, &dram, 100.0)
                    .expect("valid")
                    .len(),
            )
        })
    });
}

criterion_group!(benches, bench_mechanisms, bench_market_construction);
criterion_main!(benches);
