#![warn(missing_docs)]

//! Shared harness code for the figure/table regeneration binaries and the
//! Criterion benches.
//!
//! Each binary under `src/bin/` regenerates one artifact of the paper's
//! evaluation (see `DESIGN.md` for the experiment index):
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig1_theory` | Figure 1 (theory curves) |
//! | `fig2_cache_utility` | Figure 2 (mcf/vpr cache utility + Talus hull) |
//! | `fig3_lambda` | Figure 3 (per-app λ under EqualBudget/ReBudget-20/40) |
//! | `fig4_analytical` | Figure 4a/4b (240-bundle analytical sweep) |
//! | `fig5_simulation` | Figure 5a/5b (execution-driven phase) |
//! | `table1_config` | Table 1 (system configuration) |
//! | `convergence` | §6.4 (equilibrium convergence statistics) |
//! | `ablation` | Design-choice ablations (step knob, Talus on/off, thresholds) |

pub mod export;

use rebudget_core::mechanisms::{
    Balanced, EqualBudget, EqualShare, MaxEfficiency, Mechanism, ReBudget,
};
use rebudget_market::{MarketError, ParallelPolicy, Result};
use rebudget_sim::analytic::build_market;
use rebudget_sim::{DramConfig, SystemConfig};
use rebudget_workloads::Bundle;

/// Per-player starting budget used throughout the paper's evaluation (§6).
pub const PAPER_BUDGET: f64 = 100.0;

/// The market mechanisms of Figure 4/5, in the paper's order
/// (MaxEfficiency is handled separately as the normalizer).
pub fn paper_mechanisms() -> Vec<Box<dyn Mechanism>> {
    paper_mechanisms_with(ParallelPolicy::Auto)
}

/// [`paper_mechanisms`] with an explicit [`ParallelPolicy`] for the inner
/// equilibrium solves (mechanism outcomes are identical under every
/// policy; only wall-clock changes).
pub fn paper_mechanisms_with(policy: ParallelPolicy) -> Vec<Box<dyn Mechanism>> {
    vec![
        Box::new(EqualShare),
        Box::new(EqualBudget::new(PAPER_BUDGET).with_parallel(policy)),
        Box::new(Balanced::new(PAPER_BUDGET).with_parallel(policy)),
        Box::new(ReBudget::with_step(PAPER_BUDGET, 20.0).with_parallel(policy)),
        Box::new(ReBudget::with_step(PAPER_BUDGET, 40.0).with_parallel(policy)),
    ]
}

/// Parses a CLI/harness policy spec: `auto`, `serial`, or a thread count
/// (e.g. `4`). Anything unparseable falls back to `Auto`.
pub fn parse_policy(spec: &str) -> ParallelPolicy {
    match spec.to_ascii_lowercase().as_str() {
        "serial" | "1" => ParallelPolicy::Serial,
        "auto" | "" => ParallelPolicy::Auto,
        s => s
            .parse::<usize>()
            .map(ParallelPolicy::Threads)
            .unwrap_or(ParallelPolicy::Auto),
    }
}

/// Positional CLI argument `n` parsed as a [`ParallelPolicy`]
/// (default `Auto`).
pub fn policy_arg(n: usize) -> ParallelPolicy {
    std::env::args()
        .nth(n)
        .map(|s| parse_policy(&s))
        .unwrap_or(ParallelPolicy::Auto)
}

/// One mechanism's result on one bundle.
#[derive(Debug, Clone)]
pub struct MechanismRow {
    /// Mechanism display name.
    pub mechanism: String,
    /// Efficiency normalized to the MaxEfficiency oracle.
    pub normalized_efficiency: f64,
    /// Envy-freeness of the allocation.
    pub envy_freeness: f64,
    /// Market Utility Range at equilibrium (NaN for non-market mechanisms).
    pub mur: f64,
    /// Market Budget Range of final budgets (NaN for non-market mechanisms).
    pub mbr: f64,
}

/// All mechanisms evaluated on one bundle (phase-1, analytical).
#[derive(Debug, Clone)]
pub struct BundleResult {
    /// Bundle label, e.g. `"CPBB#07"`.
    pub label: String,
    /// The oracle's absolute efficiency (the normalizer).
    pub max_efficiency: f64,
    /// Per-mechanism rows, in [`paper_mechanisms`] order.
    pub rows: Vec<MechanismRow>,
}

impl BundleResult {
    /// The row for a mechanism by name.
    pub fn row(&self, mechanism: &str) -> Option<&MechanismRow> {
        self.rows.iter().find(|r| r.mechanism == mechanism)
    }
}

/// Runs the phase-1 (analytical) evaluation of one bundle: profiled,
/// convexified utilities; every paper mechanism; normalized to the oracle.
///
/// # Errors
///
/// Propagates [`MarketError`]s (cannot occur for valid bundles).
pub fn evaluate_bundle_analytic(
    bundle: &Bundle,
    sys: &SystemConfig,
    dram: &DramConfig,
) -> Result<BundleResult> {
    let market = build_market(bundle, sys, dram, PAPER_BUDGET)?;
    // Run the mechanisms first; the best of them warm-starts the oracle
    // (OPT is a maximum over all allocations, so polishing the best
    // equilibrium can only tighten the normalizer).
    let outcomes: Vec<_> = paper_mechanisms()
        .iter()
        .map(|m| m.allocate(&market))
        .collect::<Result<_>>()?;
    let oracle = MaxEfficiency::default().allocate(&market)?;
    // Normalize by the best welfare found anywhere: the raw climb, or a
    // climb polished from the best equilibrium.
    let mut max_efficiency = oracle.efficiency;
    if let Some(best) = outcomes
        .iter()
        .max_by(|a, b| a.efficiency.partial_cmp(&b.efficiency).expect("finite"))
    {
        let polished = rebudget_market::optimal::max_efficiency_from(
            &market,
            &rebudget_market::optimal::OptimalOptions::default(),
            best.allocation.clone(),
        )?;
        max_efficiency = max_efficiency.max(polished.efficiency);
    }
    let max_efficiency = max_efficiency.max(1e-12);
    let mut rows: Vec<MechanismRow> = outcomes
        .iter()
        .map(|out| MechanismRow {
            mechanism: out.mechanism.clone(),
            normalized_efficiency: out.efficiency / max_efficiency,
            envy_freeness: out.envy_freeness,
            mur: out.mur.unwrap_or(f64::NAN),
            mbr: out.mbr.unwrap_or(f64::NAN),
        })
        .collect();
    // The oracle itself, for the fairness comparison of Figure 4b.
    rows.push(MechanismRow {
        mechanism: oracle.mechanism.clone(),
        normalized_efficiency: 1.0,
        envy_freeness: oracle.envy_freeness,
        mur: f64::NAN,
        mbr: f64::NAN,
    });
    Ok(BundleResult {
        label: bundle.label(),
        max_efficiency,
        rows,
    })
}

/// Sorts bundle results by EqualShare efficiency, the x-axis ordering of
/// Figure 4 ("workloads are ordered by the efficiency of EqualShare").
pub fn sort_by_equal_share(results: &mut [BundleResult]) {
    results.sort_by(|a, b| {
        let ea = a.row("EqualShare").map_or(0.0, |r| r.normalized_efficiency);
        let eb = b.row("EqualShare").map_or(0.0, |r| r.normalized_efficiency);
        ea.partial_cmp(&eb).expect("finite efficiencies")
    });
}

/// Fraction of bundles on which `mechanism` reaches at least `threshold`
/// of the oracle's efficiency (§6.1.1 reports these for EqualBudget).
pub fn fraction_at_least(results: &[BundleResult], mechanism: &str, threshold: f64) -> f64 {
    let hits = results
        .iter()
        .filter(|r| {
            r.row(mechanism)
                .is_some_and(|m| m.normalized_efficiency >= threshold)
        })
        .count();
    hits as f64 / results.len().max(1) as f64
}

/// Worst-case (minimum) envy-freeness across bundles for a mechanism.
pub fn worst_envy_freeness(results: &[BundleResult], mechanism: &str) -> f64 {
    results
        .iter()
        .filter_map(|r| r.row(mechanism).map(|m| m.envy_freeness))
        .fold(f64::INFINITY, f64::min)
}

/// Median envy-freeness across bundles for a mechanism ("typical" in §6.2).
pub fn median_envy_freeness(results: &[BundleResult], mechanism: &str) -> f64 {
    let mut efs: Vec<f64> = results
        .iter()
        .filter_map(|r| r.row(mechanism).map(|m| m.envy_freeness))
        .collect();
    if efs.is_empty() {
        return f64::NAN;
    }
    efs.sort_by(|a, b| a.partial_cmp(b).expect("finite EF"));
    efs[efs.len() / 2]
}

/// Parses positional CLI argument `n` as a number, with a default.
pub fn arg_or<T: std::str::FromStr>(n: usize, default: T) -> T {
    std::env::args()
        .nth(n)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Builds the system/DRAM pair for a core count (8 and 64 use the paper
/// configurations; anything else uses the scaled config).
pub fn system_for(cores: usize) -> (SystemConfig, DramConfig) {
    let sys = match cores {
        8 => SystemConfig::paper_8core(),
        64 => SystemConfig::paper_64core(),
        n => SystemConfig::scaled(n),
    };
    (sys, DramConfig::ddr3_1600())
}

/// Converts a [`MarketError`] chain into a process exit with a message —
/// for binary main functions.
pub fn exit_on_error<T>(result: std::result::Result<T, MarketError>) -> T {
    match result {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rebudget_workloads::paper_bbpc_8core;

    #[test]
    fn evaluate_bundle_produces_all_rows() {
        let (sys, dram) = system_for(8);
        let r = evaluate_bundle_analytic(&paper_bbpc_8core(), &sys, &dram).unwrap();
        assert_eq!(r.rows.len(), 6);
        assert!(r.row("EqualBudget").is_some());
        assert!(r.row("ReBudget-40").is_some());
        assert!(r.row("MaxEfficiency").is_some());
        for row in &r.rows {
            assert!(
                row.normalized_efficiency > 0.2 && row.normalized_efficiency <= 1.05,
                "{}: {}",
                row.mechanism,
                row.normalized_efficiency
            );
        }
    }

    #[test]
    fn summary_statistics() {
        let (sys, dram) = system_for(8);
        let r = evaluate_bundle_analytic(&paper_bbpc_8core(), &sys, &dram).unwrap();
        let results = vec![r];
        assert!(fraction_at_least(&results, "MaxEfficiency", 0.99) >= 1.0);
        assert!(worst_envy_freeness(&results, "EqualBudget") > 0.5);
        let med = median_envy_freeness(&results, "EqualBudget");
        assert!(med.is_finite());
    }

    #[test]
    fn policy_spec_parsing() {
        assert_eq!(parse_policy("serial"), ParallelPolicy::Serial);
        assert_eq!(parse_policy("Auto"), ParallelPolicy::Auto);
        assert_eq!(parse_policy("4"), ParallelPolicy::Threads(4));
        assert_eq!(parse_policy("bogus"), ParallelPolicy::Auto);
    }

    #[test]
    fn sorting_by_equal_share() {
        let (sys, dram) = system_for(8);
        let a = evaluate_bundle_analytic(&paper_bbpc_8core(), &sys, &dram).unwrap();
        let mut b = a.clone();
        b.rows[0].normalized_efficiency = 0.01;
        let mut v = vec![a, b];
        sort_by_equal_share(&mut v);
        assert!(v[0].rows[0].normalized_efficiency <= v[1].rows[0].normalized_efficiency);
    }
}
