//! Warm-vs-cold online re-solve throughput — the server crate's claim
//! that warm-starting each tick's equilibrium from the previous
//! quantum's bids makes high-churn online serving tractable.
//!
//! Models the daemon's steady state: a large sparse market whose
//! *interest structure is fixed* while a small fraction of player
//! budgets change every tick (deterministic, seeded churn). Two arms
//! re-solve the same tick stream:
//!
//! * **cold** — every tick solves from the equal-split initial bids,
//!   as a daemon without warm starting would;
//! * **warm** — every tick seeds the solver with the previous tick's
//!   final bids via [`WarmStart`], as `rebudget serve` does.
//!
//! Both arms solve tick 0 outside the timer (the warm arm needs a seed;
//! the cold arm gets the same cache warm-up), then run the timed churn
//! ticks. Every solve must converge under the tolerance — the binary
//! **exits non-zero** on any over-tolerance residual, and on a speedup
//! below the configured floor (the acceptance gate is warm ≥ 2× cold).
//! Results land in a machine-readable `BENCH_server.json`.
//!
//! The tolerance defaults to the serve subcommand's online operating
//! point (1e-4): there the warm start converges in a fraction of the
//! cold iterations. At the batch pipeline's 1e-6 the slow geometric
//! tail of the first-order dynamics dominates both arms and the warm
//! advantage vanishes — measured, not assumed; see EXPERIMENTS.md.
//!
//! Usage: `server_bench [players] [ticks] [churn_percent] [json] [tol] [min_speedup] [solver]`
//! (defaults: 10000, 12, 1.0, BENCH_server.json, 1e-4, 2.0, propresp).

use std::path::Path;
use std::time::Instant;

use rebudget_bench::exit_on_error;
use rebudget_bench::export::{write_server_json, ServerBenchSummary};
use rebudget_market::equilibrium::{EquilibriumOptions, WarmStart};
use rebudget_market::{SolverKind, SparseMarket, SynthSpec};

/// The fixed resource count, matching the scalability bench's sparse arm.
const RESOURCES: usize = 64;

/// SplitMix64 — the workspace's standalone seeded hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Applies tick `t`'s deterministic churn: roughly `churn_percent` of
/// players get their budget rescaled into `[0.5, 1.5)` of the base.
/// Interests are untouched, so the CSR structure (and hence the warm
/// bid vector's shape) is constant across ticks.
fn churn_budgets(base: &[f64], churn_percent: f64, tick: u64) -> Vec<f64> {
    let threshold = (churn_percent * 100.0).round() as u64; // out of 10_000
    base.iter()
        .enumerate()
        .map(|(i, &b)| {
            let h = splitmix64(tick.wrapping_mul(0x5151_5151).wrapping_add(i as u64));
            if h % 10_000 < threshold {
                let frac = (splitmix64(h) % 1_000) as f64 / 1_000.0;
                b * (0.5 + frac)
            } else {
                b
            }
        })
        .collect()
}

/// One arm's timed result.
struct Arm {
    elapsed_s: f64,
    iterations: u64,
    max_residual: f64,
    converged: bool,
}

/// Runs `ticks` churn re-solves. `warm` seeds each tick from the
/// previous outcome's bids; tick 0 (untimed) provides the first seed.
fn run_arm(
    template: &SparseMarket,
    opts: &EquilibriumOptions,
    ticks: usize,
    churn_percent: f64,
    warm: bool,
) -> Arm {
    let base = template.budgets().to_vec();
    let tick0 = exit_on_error(template.solve(opts));
    let mut seed_bids = tick0.bids.vals().to_vec();

    let mut iterations = 0u64;
    let mut max_residual = 0.0f64;
    let mut converged = true;
    let t = Instant::now();
    for tick in 1..=ticks as u64 {
        let budgets = churn_budgets(&base, churn_percent, tick);
        let market = exit_on_error(SparseMarket::new(
            template.capacities().to_vec(),
            budgets,
            template.interests().clone(),
            template.kind(),
        ));
        let tick_opts = if warm {
            opts.clone().with_warm_start(
                WarmStart {
                    bids: seed_bids.clone(),
                }
                .shared(),
            )
        } else {
            opts.clone()
        };
        let out = exit_on_error(market.solve(&tick_opts));
        iterations += out.iterations;
        if out.report.residual.is_nan() || out.report.residual > max_residual {
            max_residual = out.report.residual;
        }
        converged &= out.converged();
        if warm {
            seed_bids = out.bids.vals().to_vec();
        }
    }
    Arm {
        elapsed_s: t.elapsed().as_secs_f64(),
        iterations,
        max_residual,
        converged,
    }
}

fn main() {
    let players: usize = rebudget_bench::arg_or(1, 10_000);
    let ticks: usize = rebudget_bench::arg_or(2, 12);
    let churn_percent: f64 = rebudget_bench::arg_or(3, 1.0);
    let json_path = std::env::args()
        .nth(4)
        .unwrap_or_else(|| "BENCH_server.json".to_string());
    let tolerance: f64 = rebudget_bench::arg_or(5, 1e-4);
    let min_speedup: f64 = rebudget_bench::arg_or(6, 2.0);
    let solver = match std::env::args().nth(7).as_deref() {
        None | Some("propresp") => SolverKind::ProportionalResponse,
        Some("mirror") => SolverKind::MirrorDescent,
        Some(other) => {
            eprintln!("error: unknown solver '{other}' (propresp | mirror)");
            std::process::exit(1);
        }
    };

    let template = exit_on_error(SynthSpec::new(players, RESOURCES, 1).generate());
    let mut opts = EquilibriumOptions::large_scale().with_solver(solver);
    opts.price_tolerance = tolerance;

    println!(
        "# Online re-solve throughput: N={players} M={RESOURCES} nnz={} \
         {ticks} ticks, {churn_percent}% budget churn, {} @ tol {tolerance:e}",
        template.nnz(),
        solver.label()
    );

    let cold = run_arm(&template, &opts, ticks, churn_percent, false);
    let warm = run_arm(&template, &opts, ticks, churn_percent, true);

    let cold_tps = ticks as f64 / cold.elapsed_s;
    let warm_tps = ticks as f64 / warm.elapsed_s;
    let speedup = warm_tps / cold_tps;
    let max_residual = cold.max_residual.max(warm.max_residual);
    let converged = cold.converged && warm.converged;

    println!(
        "{:>6} {:>12} {:>10} {:>12} {:>5}",
        "arm", "ticks/sec", "iters", "residual", "conv"
    );
    for (label, arm, tps) in [("cold", &cold, cold_tps), ("warm", &warm, warm_tps)] {
        println!(
            "{label:>6} {tps:>12.2} {:>10} {:>12.2e} {:>5}",
            arm.iterations,
            arm.max_residual,
            if arm.converged { "yes" } else { "NO" }
        );
    }
    println!("# speedup: {speedup:.2}x (gate: >= {min_speedup:.2}x)");

    let summary = ServerBenchSummary {
        players,
        resources: RESOURCES,
        nnz: template.nnz(),
        ticks,
        churn_percent,
        solver: solver.label().to_string(),
        cold_ticks_per_sec: cold_tps,
        warm_ticks_per_sec: warm_tps,
        speedup,
        cold_iterations: cold.iterations,
        warm_iterations: warm.iterations,
        max_residual,
        converged,
    };
    if let Err(e) = write_server_json(Path::new(&json_path), tolerance, min_speedup, &summary) {
        eprintln!("error: cannot write {json_path}: {e}");
        std::process::exit(1);
    }
    println!("# wrote {json_path}");

    if !converged || max_residual.is_nan() || max_residual > tolerance {
        eprintln!("error: a solve finished over tolerance {tolerance:e} (max {max_residual:e})");
        std::process::exit(1);
    }
    if speedup < min_speedup {
        eprintln!("error: warm speedup {speedup:.2}x below the {min_speedup:.2}x gate");
        std::process::exit(1);
    }
}
