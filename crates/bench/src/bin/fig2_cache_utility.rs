//! Regenerates **Figure 2** of the paper: normalized utility of *mcf* and
//! *vpr* versus allocated cache (at maximum frequency), with and without
//! Talus convexification.
//!
//! The paper's markers are the raw (cliffy) utilities; the line is the
//! Talus convex hull. We print both, per cache-way-equivalent (one 128 kB
//! region per column, 1–16).

use rebudget_apps::perf::{performance, PerfEnv};
use rebudget_apps::spec::app_by_name;
use rebudget_market::utility::PiecewiseLinear;
use rebudget_sim::config::CACHE_REGION_BYTES;
use rebudget_sim::DramConfig;

fn main() {
    let dram = DramConfig::ddr3_1600();
    let env = PerfEnv {
        mem_latency_ns: dram.reference_latency_ns(),
        alone_cache_bytes: 16.0 * CACHE_REGION_BYTES,
        alone_freq_ghz: 4.0,
    };

    println!("# Figure 2: normalized utility vs. cache regions (at 4.0 GHz)");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10}",
        "regions", "mcf-raw", "mcf-talus", "vpr-raw", "vpr-talus"
    );

    let mut curves = Vec::new();
    for name in ["mcf", "vpr"] {
        let app = app_by_name(name).expect("paper app exists");
        let alone = performance(app, &env, env.alone_cache_bytes, env.alone_freq_ghz);
        let raw: Vec<(f64, f64)> = (1..=16)
            .map(|r| {
                let bytes = r as f64 * CACHE_REGION_BYTES;
                (
                    r as f64,
                    performance(app, &env, bytes, env.alone_freq_ghz) / alone,
                )
            })
            .collect();
        let hull = PiecewiseLinear::new(raw.clone())
            .expect("utility curve is monotone")
            .upper_concave_hull();
        curves.push((raw, hull));
    }

    for r in 1..=16usize {
        let x = r as f64;
        println!(
            "{:>8} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            r,
            curves[0].0[r - 1].1,
            curves[0].1.value(x),
            curves[1].0[r - 1].1,
            curves[1].1.value(x),
        );
    }
    println!();
    println!("# Expected shape (paper): mcf is ~flat low until its 1.5 MB (12-region)");
    println!("# working set fits, then jumps to 1.0; Talus replaces the cliff with a");
    println!("# linear ramp. vpr is already concave, so raw == talus.");
}
