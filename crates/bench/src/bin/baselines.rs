//! Extended baseline comparison (the mechanisms §1 of the paper argues
//! against):
//!
//! * **EP** (elasticities proportional / REF, Zahedi & Lee) — exact for
//!   Cobb–Douglas utilities, degrades when the fit is poor ("EP can in
//!   fact perform worse than expected when such curve-fitting is not well
//!   suited to the applications");
//! * **UCP+EqualPower** — uncoordinated single-resource allocation
//!   ("single-resource … allocation can be significantly suboptimal");
//! * the coordinated market mechanisms, for reference.
//!
//! Usage: `baselines [cores] [bundles_per_category] [seed]`
//! (defaults: 8, 2, 1).

use rebudget_bench::{exit_on_error, system_for, PAPER_BUDGET};
use rebudget_core::ep::ElasticitiesProportional;
use rebudget_core::mechanisms::{EqualBudget, EqualShare, MaxEfficiency, Mechanism, ReBudget};
use rebudget_core::uncoordinated::Uncoordinated;
use rebudget_sim::analytic::build_market;
use rebudget_workloads::{generate_bundle, Category};

fn main() {
    let cores: usize = rebudget_bench::arg_or(1, 8);
    let per_category: usize = rebudget_bench::arg_or(2, 2);
    let seed: u64 = rebudget_bench::arg_or(3, 1);
    let (sys, dram) = system_for(cores);

    let mechanisms: Vec<Box<dyn Mechanism>> = vec![
        Box::new(EqualShare),
        Box::new(Uncoordinated),
        Box::new(ElasticitiesProportional::new()),
        Box::new(EqualBudget::new(PAPER_BUDGET)),
        Box::new(ReBudget::with_step(PAPER_BUDGET, 40.0)),
    ];
    let names: Vec<String> = mechanisms.iter().map(|m| m.name()).collect();

    let mut sums = vec![0.0; names.len()];
    let mut ef_min = vec![f64::INFINITY; names.len()];
    let mut count = 0usize;

    println!("# Baseline comparison: efficiency normalized to MaxEfficiency");
    print!("{:<10}", "bundle");
    for n in &names {
        print!(" {n:>15}");
    }
    println!();
    for category in Category::ALL {
        for index in 0..per_category {
            let bundle = generate_bundle(category, cores, index, seed).expect("valid cores");
            let market = exit_on_error(build_market(&bundle, &sys, &dram, PAPER_BUDGET));
            let opt = exit_on_error(MaxEfficiency::default().allocate(&market));
            print!("{:<10}", bundle.label());
            for (k, mech) in mechanisms.iter().enumerate() {
                let out = exit_on_error(mech.allocate(&market));
                let norm = out.efficiency / opt.efficiency.max(1e-12);
                sums[k] += norm;
                ef_min[k] = ef_min[k].min(out.envy_freeness);
                print!(" {norm:>15.3}");
            }
            println!();
            count += 1;
        }
    }
    println!();
    println!("{:<10}", "mean");
    for (k, n) in names.iter().enumerate() {
        println!(
            "{:<18} mean eff/OPT {:>6.3}   worst EF {:>6.3}",
            n,
            sums[k] / count as f64,
            ef_min[k]
        );
    }
    println!();
    println!("# Expected shape (paper §1): the coordinated market beats the");
    println!("# uncoordinated single-resource allocator; EP trails the market when");
    println!("# utilities (mcf's cliff!) defy Cobb-Douglas fitting.");
}
