//! Regenerates **Figure 5** of the paper: the phase-2 (execution-driven)
//! evaluation — one randomly selected bundle per category, utilities
//! monitored online with UMON shadow tags, the market re-run every 1 ms
//! quantum. Reports system efficiency normalized to the MaxEfficiency run
//! (5a) and envy-freeness (5b).
//!
//! Usage: `fig5_simulation [cores] [quanta] [accesses_per_quantum] [seed] [trace]`
//! (defaults: 64, 10, 20000, 1; pass `trace` as the 5th argument to run
//! the trace-driven execution model — real shared-cache contention —
//! instead of the analytic one).

use rebudget_bench::{paper_mechanisms, system_for, PAPER_BUDGET};
use rebudget_core::mechanisms::MaxEfficiency;
use rebudget_sim::simulation::ExecutionModel;
use rebudget_sim::{run_simulation, SimOptions};
use rebudget_workloads::{generate_bundle, Category};

fn main() {
    let cores: usize = rebudget_bench::arg_or(1, 64);
    let quanta: usize = rebudget_bench::arg_or(2, 10);
    let accesses: usize = rebudget_bench::arg_or(3, 20_000);
    let seed: u64 = rebudget_bench::arg_or(4, 1);
    let execution = match std::env::args().nth(5).as_deref() {
        Some("trace") => ExecutionModel::TraceDriven,
        _ => ExecutionModel::Analytic,
    };
    let (sys, dram) = system_for(cores);
    let opts = SimOptions {
        quanta,
        accesses_per_quantum: accesses,
        budget: PAPER_BUDGET,
        use_monitors: true,
        seed,
        execution,
        ..SimOptions::default()
    };

    println!(
        "# Figure 5: execution-driven phase ({} cores, {} quanta of 1 ms, online UMON)",
        cores, quanta
    );
    println!(
        "{:<10} {:<14} {:>12} {:>12} {:>8} {:>8}",
        "bundle", "mechanism", "eff/OPT", "envy-free", "rounds", "iters"
    );

    for category in Category::ALL {
        // "We randomly select one application bundle per category" (§6).
        let bundle = generate_bundle(category, cores, 0, seed).expect("divisible core count");
        let oracle = match run_simulation(&sys, &dram, &bundle, &MaxEfficiency::default(), &opts) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{}: oracle failed: {e}", bundle.label());
                continue;
            }
        };
        let norm = oracle.efficiency.max(1e-12);
        println!(
            "{:<10} {:<14} {:>12.3} {:>12.3} {:>8.1} {:>8.1}",
            bundle.label(),
            "MaxEfficiency",
            1.0,
            oracle.envy_freeness,
            oracle.avg_equilibrium_rounds,
            oracle.avg_iterations
        );
        for mech in paper_mechanisms() {
            match run_simulation(&sys, &dram, &bundle, mech.as_ref(), &opts) {
                Ok(r) => println!(
                    "{:<10} {:<14} {:>12.3} {:>12.3} {:>8.1} {:>8.1}",
                    bundle.label(),
                    r.mechanism,
                    r.efficiency / norm,
                    r.envy_freeness,
                    r.avg_equilibrium_rounds,
                    r.avg_iterations
                ),
                Err(e) => eprintln!("{}: {} failed: {e}", bundle.label(), mech.name()),
            }
        }
        println!();
    }
    println!("# Expected ranking (paper §6.3): MaxEfficiency highest efficiency but worst");
    println!("# fairness; EqualBudget highest envy-freeness; ReBudget-20/40 in between,");
    println!("# with aggressiveness trading efficiency for fairness.");
}
