//! Regenerates **Figure 1** of the paper: the theoretical relationship
//! between Price of Anarchy and MUR (left panel) and between
//! envy-freeness and MBR (right panel).
//!
//! Usage: `fig1_theory [samples]` (default 21).

use rebudget_core::theory::{ef_curve, poa_curve};

fn main() {
    let samples: usize = rebudget_bench::arg_or(1, 21);
    let poa = poa_curve(samples);
    let ef = ef_curve(samples);

    println!("# Figure 1 (left): Price of Anarchy lower bound vs. MUR");
    println!("{:>8} {:>10}", "MUR", "PoA>=");
    for (x, y) in poa.x.iter().zip(&poa.y) {
        println!("{x:>8.3} {y:>10.4}");
    }
    println!();
    println!("# Figure 1 (right): envy-freeness lower bound vs. MBR");
    println!("{:>8} {:>10}", "MBR", "EF>=");
    for (x, y) in ef.x.iter().zip(&ef.y) {
        println!("{x:>8.3} {y:>10.4}");
    }
    println!();
    println!("# Reference points from the paper:");
    println!("#   MUR=1.0 -> PoA>=0.75; MUR=0.5 -> PoA>=0.50 (knee of Theorem 1)");
    println!("#   MBR=1.0 -> EF>=0.828 (Zhang's equal-budget bound, Lemma 3)");
}
