//! Regenerates **Figure 4** of the paper: the phase-1 (analytical)
//! evaluation over the full bundle suite — efficiency normalized to
//! MaxEfficiency (4a) and envy-freeness (4b) for EqualShare, EqualBudget,
//! XChange-Balanced, ReBudget-20, and ReBudget-40 — plus the §6.1/§6.2
//! summary numbers.
//!
//! Usage: `fig4_analytical [cores] [bundles_per_category] [seed] [csv_path]`
//! (defaults: 64, 40, 1 — i.e. the paper's 240-bundle sweep; pass a path
//! as the 4th argument to also write the sweep as CSV).

use rebudget_bench::{
    evaluate_bundle_analytic, fraction_at_least, median_envy_freeness, sort_by_equal_share,
    system_for, worst_envy_freeness,
};
use rebudget_core::theory::ef_lower_bound;
use rebudget_workloads::{generate_bundle, Category};

fn main() {
    let cores: usize = rebudget_bench::arg_or(1, 64);
    let per_category: usize = rebudget_bench::arg_or(2, 40);
    let seed: u64 = rebudget_bench::arg_or(3, 1);
    let (sys, dram) = system_for(cores);

    let mut results = Vec::new();
    for category in Category::ALL {
        for index in 0..per_category {
            let bundle = generate_bundle(category, cores, index, seed)
                .expect("core count is divisible by 4");
            match evaluate_bundle_analytic(&bundle, &sys, &dram) {
                Ok(r) => results.push(r),
                Err(e) => eprintln!("bundle {} failed: {e}", bundle.label()),
            }
        }
    }
    sort_by_equal_share(&mut results);

    if let Some(csv_path) = std::env::args().nth(4) {
        match rebudget_bench::export::write_fig4_csv(std::path::Path::new(&csv_path), &results) {
            Ok(()) => eprintln!("wrote {csv_path}"),
            Err(e) => eprintln!("failed to write {csv_path}: {e}"),
        }
    }

    let mechanisms = [
        "EqualShare",
        "EqualBudget",
        "Balanced",
        "ReBudget-20",
        "ReBudget-40",
        "MaxEfficiency",
    ];

    println!(
        "# Figure 4a: efficiency normalized to MaxEfficiency ({} cores, {} bundles)",
        cores,
        results.len()
    );
    print!("{:<10}", "bundle");
    for m in &mechanisms[..5] {
        print!(" {m:>12}");
    }
    println!();
    for r in &results {
        print!("{:<10}", r.label);
        for m in &mechanisms[..5] {
            print!(
                " {:>12.3}",
                r.row(m).map_or(f64::NAN, |x| x.normalized_efficiency)
            );
        }
        println!();
    }

    println!();
    println!("# Figure 4b: envy-freeness (same ordering)");
    print!("{:<10}", "bundle");
    for m in &mechanisms {
        print!(" {m:>13}");
    }
    println!();
    for r in &results {
        print!("{:<10}", r.label);
        for m in &mechanisms {
            print!(" {:>13.3}", r.row(m).map_or(f64::NAN, |x| x.envy_freeness));
        }
        println!();
    }

    println!();
    println!("# ---- Summary (paper §6.1, §6.2) ----");
    println!(
        "EqualBudget bundles >=95% of MaxEfficiency: {:>5.1}%   (paper: 37%)",
        100.0 * fraction_at_least(&results, "EqualBudget", 0.95)
    );
    println!(
        "EqualBudget bundles >=90% of MaxEfficiency: {:>5.1}%   (paper: >90%)",
        100.0 * fraction_at_least(&results, "EqualBudget", 0.90)
    );
    println!(
        "ReBudget-40 bundles >=95% of MaxEfficiency: {:>5.1}%   (paper: 100%)",
        100.0 * fraction_at_least(&results, "ReBudget-40", 0.95)
    );
    println!(
        "EqualBudget worst-case envy-freeness:      {:>6.3}   (paper: 0.93)",
        worst_envy_freeness(&results, "EqualBudget")
    );
    println!(
        "Balanced worst-case envy-freeness:         {:>6.3}   (paper: 0.86)",
        worst_envy_freeness(&results, "Balanced")
    );
    println!(
        "MaxEfficiency typical envy-freeness:       {:>6.3}   (paper: ~0.35)",
        median_envy_freeness(&results, "MaxEfficiency")
    );
    println!(
        "ReBudget-20 typical envy-freeness:         {:>6.3}   (paper: ~0.8, floor {:.2})",
        median_envy_freeness(&results, "ReBudget-20"),
        ef_lower_bound(1.0 - 2.0 * 20.0 / 100.0)
    );
    println!(
        "ReBudget-40 typical envy-freeness:         {:>6.3}   (paper: ~0.5, floor {:.2})",
        median_envy_freeness(&results, "ReBudget-40"),
        ef_lower_bound(1.0 - 2.0 * 40.0 / 100.0)
    );
    // Theorem-2 floors must never be violated.
    let mut violations = 0;
    for r in &results {
        for (m, step) in [("ReBudget-20", 20.0), ("ReBudget-40", 40.0)] {
            if let Some(row) = r.row(m) {
                let floor = ef_lower_bound(1.0 - 2.0 * step / 100.0);
                if row.envy_freeness < floor - 1e-9 {
                    violations += 1;
                }
            }
        }
    }
    println!("Theorem-2 floor violations:                {violations:>6}   (paper: none)");
}
