//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. the ReBudget **step knob** (the paper evaluates 20 and 40; we sweep
//!    5–80 to show the full efficiency-vs-fairness frontier);
//! 2. **Talus convexification on/off** (paper footnote 4: convexified
//!    utilities improve even the XChange baselines);
//! 3. the **λ-threshold** of the re-assignment rule (paper: 50%, tied to
//!    the knee of Theorem 1);
//! 4. the **price-convergence tolerance** of the equilibrium search
//!    (paper: 1%).
//!
//! Usage: `ablation [cores] [seed] [policy]` (defaults: 8, 1, auto;
//! policy: `auto`, `serial`, or a thread count — the sweep fans step
//! values out across worker threads).

use std::sync::Arc;

use rebudget_bench::{exit_on_error, policy_arg, system_for, PAPER_BUDGET};
use rebudget_core::mechanisms::{EqualBudget, MaxEfficiency, Mechanism, ReBudget};
use rebudget_core::sweep::sweep_steps_with;
use rebudget_market::equilibrium::EquilibriumOptions;
use rebudget_market::{Market, Player, ResourceSpace, Utility};
use rebudget_sim::analytic::{build_market, resource_space};
use rebudget_sim::utility_model::app_utility_grid_with;
use rebudget_workloads::paper_bbpc_8core;

fn main() {
    let cores: usize = rebudget_bench::arg_or(1, 8);
    let seed: u64 = rebudget_bench::arg_or(2, 1);
    let policy = policy_arg(3);
    let (sys, dram) = system_for(8);
    let _ = (cores, seed); // the case-study bundle is fixed at 8 cores
    let bundle = paper_bbpc_8core();
    let market = exit_on_error(build_market(&bundle, &sys, &dram, PAPER_BUDGET));

    // ---- 1. Step knob sweep -------------------------------------------
    println!("# Ablation 1: ReBudget step knob (BBPC bundle, analytical)");
    println!(
        "{:>6} {:>10} {:>10} {:>8} {:>8} {:>10}",
        "step", "eff/OPT", "envy-free", "MUR", "MBR", "EF-floor"
    );
    let steps = [0.0, 5.0, 10.0, 20.0, 40.0, 80.0];
    let points = exit_on_error(sweep_steps_with(
        &market,
        PAPER_BUDGET,
        &steps,
        true,
        policy,
    ));
    for p in &points {
        println!(
            "{:>6.0} {:>10.3} {:>10.3} {:>8.3} {:>8.3} {:>10.3}",
            p.step,
            p.normalized_efficiency.unwrap_or(f64::NAN),
            p.envy_freeness,
            p.mur,
            p.mbr,
            p.ef_floor
        );
    }

    // ---- 2. Talus convexification on/off ------------------------------
    println!();
    println!("# Ablation 2: Talus convexification of utilities");
    for convexify in [true, false] {
        let resources = exit_on_error(resource_space(&bundle, &sys));
        let players: Vec<Player> = bundle
            .apps
            .iter()
            .enumerate()
            .map(|(core, app)| {
                Player::new(
                    format!("{}#{core}", app.name),
                    PAPER_BUDGET,
                    Arc::new(app_utility_grid_with(app, &sys, &dram, convexify))
                        as Arc<dyn Utility>,
                )
            })
            .collect();
        let m = exit_on_error(resources_market(resources, players));
        let opt = exit_on_error(MaxEfficiency::default().allocate(&m));
        let eq = exit_on_error(EqualBudget::new(PAPER_BUDGET).allocate(&m));
        let rb = exit_on_error(ReBudget::with_step(PAPER_BUDGET, 40.0).allocate(&m));
        println!(
            "convexify={:<5}  EqualBudget eff/OPT={:.3}  ReBudget-40 eff/OPT={:.3}  (converged: {} / {})",
            convexify,
            eq.efficiency / opt.efficiency,
            rb.efficiency / opt.efficiency,
            eq.converged,
            rb.converged,
        );
    }

    // ---- 3. λ threshold of the re-assignment rule ---------------------
    println!();
    println!("# Ablation 3: ReBudget λ threshold (paper: 0.5)");
    println!(
        "{:>10} {:>10} {:>10} {:>8}",
        "threshold", "eff/OPT", "envy-free", "rounds"
    );
    let opt = exit_on_error(MaxEfficiency::default().allocate(&market));
    for thr in [0.25, 0.5, 0.75, 0.9] {
        let mut mech = ReBudget::with_step(PAPER_BUDGET, 40.0);
        mech.lambda_threshold = thr;
        let out = exit_on_error(mech.allocate(&market));
        println!(
            "{thr:>10.2} {:>10.3} {:>10.3} {:>8}",
            out.efficiency / opt.efficiency,
            out.envy_freeness,
            out.equilibrium_rounds
        );
    }

    // ---- 4. Price-convergence tolerance --------------------------------
    println!();
    println!("# Ablation 4: equilibrium price tolerance (paper: 1%)");
    println!("{:>10} {:>10} {:>10}", "tolerance", "eff/OPT", "iterations");
    for tol in [0.05, 0.01, 0.002] {
        let mut mech = EqualBudget::new(PAPER_BUDGET);
        mech.options = EquilibriumOptions {
            price_tolerance: tol,
            ..EquilibriumOptions::default()
        };
        let out = exit_on_error(mech.allocate(&market));
        println!(
            "{tol:>10.3} {:>10.3} {:>10}",
            out.efficiency / opt.efficiency,
            out.total_iterations
        );
    }
}

fn resources_market(
    resources: ResourceSpace,
    players: Vec<Player>,
) -> rebudget_market::Result<Market> {
    Market::new(resources, players)
}
