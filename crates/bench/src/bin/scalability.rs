//! Scalability of the market mechanisms with player count — the paper's
//! claim that the largely distributed bidding–pricing process "is scalable
//! … to deal with large-scale systems" (§1, §4.2).
//!
//! Prints wall-clock time per allocation decision at 8–256 players, for
//! EqualBudget (one equilibrium) and ReBudget-40 (several), plus the
//! per-player iteration statistics. Each timing reports the **minimum**
//! (the least-noise estimate of the true cost) and the **median** (the
//! typical run) over the repeats, and the number of worker threads the
//! chosen parallel policy resolves to at that player count. The
//! per-decision work grows linearly in N per iteration, and the iteration
//! count stays flat.
//!
//! A second arm benchmarks the **first-order sparse solvers**
//! (`propresp`, `mirror`) on synthetic power-law markets at
//! N ∈ {10³, 10⁴, …, max_sparse} with M = 64 resources, reporting the
//! final residual of every solve in the workspace's unified
//! relative-excess-demand semantics and writing a machine-readable
//! `BENCH_scalability.json` artifact. The binary **exits non-zero** if any
//! first-order solve finishes with a residual above the configured
//! tolerance — CI treats an inaccurate fast solver as a failure, not a
//! result.
//!
//! Usage: `scalability [max_players] [repeats] [policy] [max_sparse] [json] [tol]`
//! (defaults: 256, 5, auto, 1000000, BENCH_scalability.json, 1e-6;
//! policy: `auto`, `serial`, or a thread count).

use std::path::Path;
use std::time::Instant;

use rebudget_bench::export::{write_scalability_json, ScalabilityPoint};
use rebudget_bench::{exit_on_error, policy_arg, PAPER_BUDGET};
use rebudget_core::mechanisms::{EqualBudget, Mechanism, ReBudget};
use rebudget_market::equilibrium::EquilibriumOptions;
use rebudget_market::{SolverKind, SynthSpec};
use rebudget_sim::analytic::build_market;
use rebudget_sim::{DramConfig, SystemConfig};
use rebudget_workloads::{generate_bundle, Category};

/// Times one closure `repeats` times; returns (min ms, median ms).
fn time_ms(repeats: usize, mut f: impl FnMut()) -> (f64, f64) {
    let mut samples: Vec<f64> = (0..repeats.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    (samples[0], samples[samples.len() / 2])
}

fn main() {
    let max_players: usize = rebudget_bench::arg_or(1, 256);
    let repeats: usize = rebudget_bench::arg_or(2, 5);
    let policy = policy_arg(3);
    let dram = DramConfig::ddr3_1600();

    println!(
        "# Allocation latency vs. player count (min/median of {repeats} runs, policy {policy:?})"
    );
    println!(
        "{:>8} {:>8} {:>12} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "players",
        "threads",
        "EqB-min(ms)",
        "EqB-med(ms)",
        "RB40-min",
        "RB40-med",
        "eq-iters",
        "rb-rounds"
    );
    let mut n = 8usize;
    while n <= max_players {
        let sys = SystemConfig::scaled(n);
        let bundle = generate_bundle(Category::Cpbn, n, 0, 1).expect("divisible by 4");
        let market = exit_on_error(build_market(&bundle, &sys, &dram, PAPER_BUDGET));

        let threads = policy.resolved_threads(n);
        let equal = EqualBudget::new(PAPER_BUDGET).with_parallel(policy);
        let rebudget = ReBudget::with_step(PAPER_BUDGET, 40.0).with_parallel(policy);

        let mut eq_iters = 0u64;
        let mut rb_rounds = 0u64;
        let (eq_min, eq_med) = time_ms(repeats, || {
            eq_iters = exit_on_error(equal.allocate(&market)).total_iterations;
        });
        let (rb_min, rb_med) = time_ms(repeats, || {
            rb_rounds = exit_on_error(rebudget.allocate(&market)).equilibrium_rounds;
        });
        println!(
            "{n:>8} {threads:>8} {eq_min:>12.2} {eq_med:>12.2} {rb_min:>12.2} {rb_med:>12.2} {eq_iters:>10} {rb_rounds:>10}"
        );
        n *= 2;
    }
    println!();
    println!("# The per-decision cost is dominated by N independent best responses per");
    println!("# iteration (fanned out across the worker threads above); iteration counts");
    println!("# stay flat with N (the distributed-market scalability argument of the paper).");

    let max_sparse: usize = rebudget_bench::arg_or(4, 1_000_000);
    let json_path = std::env::args()
        .nth(5)
        .unwrap_or_else(|| "BENCH_scalability.json".to_string());
    let tolerance: f64 = rebudget_bench::arg_or(6, 1e-6);

    const SPARSE_RESOURCES: usize = 64;
    println!();
    println!(
        "# First-order solvers on sparse synthetic markets (M={SPARSE_RESOURCES}, \
         power-law degrees, tol {tolerance:e})"
    );
    println!(
        "{:>9} {:>10} {:>8} {:>9} {:>12} {:>12} {:>7} {:>10} {:>5}",
        "players", "nnz", "threads", "solver", "min(ms)", "med(ms)", "iters", "residual", "conv"
    );
    let mut points: Vec<ScalabilityPoint> = Vec::new();
    let mut over_tolerance = false;
    let mut n = 1_000usize;
    while n <= max_sparse {
        let market = exit_on_error(SynthSpec::new(n, SPARSE_RESOURCES, 1).generate());
        for solver in [SolverKind::ProportionalResponse, SolverKind::MirrorDescent] {
            let mut opts = EquilibriumOptions::large_scale().with_solver(solver);
            opts.parallel = policy;
            opts.price_tolerance = tolerance;
            let threads = policy.resolved_threads(n);
            let mut iterations = 0u64;
            let mut residual = f64::NAN;
            let mut converged = false;
            let (min_ms, med_ms) = time_ms(repeats, || {
                let o = exit_on_error(market.solve(&opts));
                iterations = o.iterations;
                residual = o.report.residual;
                converged = o.converged();
            });
            println!(
                "{n:>9} {:>10} {threads:>8} {:>9} {min_ms:>12.2} {med_ms:>12.2} \
                 {iterations:>7} {residual:>10.2e} {:>5}",
                market.nnz(),
                solver.label(),
                if converged { "yes" } else { "NO" }
            );
            if residual.is_nan() || residual > tolerance {
                eprintln!(
                    "error: {} at N={n} finished with residual {residual:e} > tolerance \
                     {tolerance:e}",
                    solver.label()
                );
                over_tolerance = true;
            }
            points.push(ScalabilityPoint {
                solver: solver.label().to_string(),
                players: n,
                resources: SPARSE_RESOURCES,
                nnz: market.nnz(),
                threads,
                min_ns: (min_ms * 1e6) as u64,
                median_ns: (med_ms * 1e6) as u64,
                iterations,
                residual,
                converged,
            });
        }
        n = n.saturating_mul(10);
    }
    if let Err(e) = write_scalability_json(Path::new(&json_path), tolerance, &points) {
        eprintln!("error: cannot write {json_path}: {e}");
        std::process::exit(1);
    }
    println!();
    println!("# wrote {json_path} ({} points)", points.len());
    if over_tolerance {
        std::process::exit(1);
    }
}
