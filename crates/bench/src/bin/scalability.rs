//! Scalability of the market mechanisms with player count — the paper's
//! claim that the largely distributed bidding–pricing process "is scalable
//! … to deal with large-scale systems" (§1, §4.2).
//!
//! Prints wall-clock time per allocation decision at 8–256 players, for
//! EqualBudget (one equilibrium) and ReBudget-40 (several), plus the
//! per-player iteration statistics. The per-decision work grows linearly
//! in N per iteration, and the iteration count stays flat.
//!
//! Usage: `scalability [max_players] [repeats]` (defaults: 256, 3).

use std::time::Instant;

use rebudget_bench::{exit_on_error, PAPER_BUDGET};
use rebudget_core::mechanisms::{EqualBudget, Mechanism, ReBudget};
use rebudget_sim::analytic::build_market;
use rebudget_sim::{DramConfig, SystemConfig};
use rebudget_workloads::{generate_bundle, Category};

fn main() {
    let max_players: usize = rebudget_bench::arg_or(1, 256);
    let repeats: usize = rebudget_bench::arg_or(2, 3);
    let dram = DramConfig::ddr3_1600();

    println!("# Allocation latency vs. player count (mean of {repeats} runs)");
    println!(
        "{:>8} {:>16} {:>16} {:>12} {:>12}",
        "players", "EqualBudget(ms)", "ReBudget-40(ms)", "eq-iters", "rb-rounds"
    );
    let mut n = 8usize;
    while n <= max_players {
        let sys = SystemConfig::scaled(n);
        let bundle = generate_bundle(Category::Cpbn, n, 0, 1).expect("divisible by 4");
        let market = exit_on_error(build_market(&bundle, &sys, &dram, PAPER_BUDGET));

        let mut eq_ms = 0.0;
        let mut rb_ms = 0.0;
        let mut eq_iters = 0usize;
        let mut rb_rounds = 0usize;
        for _ in 0..repeats {
            let t = Instant::now();
            let out = exit_on_error(EqualBudget::new(PAPER_BUDGET).allocate(&market));
            eq_ms += t.elapsed().as_secs_f64() * 1e3;
            eq_iters = out.total_iterations;

            let t = Instant::now();
            let out = exit_on_error(ReBudget::with_step(PAPER_BUDGET, 40.0).allocate(&market));
            rb_ms += t.elapsed().as_secs_f64() * 1e3;
            rb_rounds = out.equilibrium_rounds;
        }
        println!(
            "{n:>8} {:>16.2} {:>16.2} {eq_iters:>12} {rb_rounds:>12}",
            eq_ms / repeats as f64,
            rb_ms / repeats as f64
        );
        n *= 2;
    }
    println!();
    println!("# The per-decision cost is dominated by N independent best responses per");
    println!("# iteration; iteration counts stay flat with N (the distributed-market");
    println!("# scalability argument of the paper).");
}
