//! Regenerates **Table 1** of the paper: the chip-multiprocessor system
//! configuration, as actually instantiated by the simulator.

use rebudget_sim::config::table1_rows;

fn main() {
    println!("# Table 1: system configuration (8-core / 64-core)");
    println!("{:<34} {:>24} {:>28}", "Parameter", "8-core", "64-core");
    println!("{}", "-".repeat(88));
    for (name, v8, v64) in table1_rows() {
        println!("{name:<34} {v8:>24} {v64:>28}");
    }
}
