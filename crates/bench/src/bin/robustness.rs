//! Regenerates the **robustness** study: how much efficiency and
//! envy-freeness the market pipeline retains as fault intensity rises.
//!
//! Two sections:
//!
//! 1. **Market level** — a static market is solved under a faulted view
//!    (noise, spikes, NaNs, dropped bids, liar bidders at increasing
//!    intensity); the resulting allocation is then scored with the *clean*
//!    utilities, so the numbers measure what the faults actually cost,
//!    not what the faulted telemetry claims.
//! 2. **Simulation level** — the full monitor → market → enforce loop of
//!    `rebudget-sim` with the same plan installed, reporting degraded /
//!    fallback quanta and solver recovery actions alongside retention.
//!
//! Usage: `robustness [cores] [quanta] [seed]` (defaults: 8, 8, 1).

use rebudget_bench::{exit_on_error, system_for, PAPER_BUDGET};
use rebudget_core::mechanisms::{EqualBudget, Mechanism, ReBudget};
use rebudget_market::{metrics, FaultPlan};
use rebudget_sim::analytic::build_market;
use rebudget_sim::{run_simulation, SimOptions};
use rebudget_workloads::paper_bbpc_8core;

/// The base (intensity 1.0) fault plan the sweep scales.
fn base_plan(seed: u64) -> FaultPlan {
    exit_on_error(FaultPlan::parse(
        "noise=0.2,spike=0.05,stale=0.3,drop=0.1,nan=0.02,liars=2",
    ))
    .with_seed(seed)
}

const INTENSITIES: [f64; 7] = [0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0];

fn main() {
    let cores: usize = rebudget_bench::arg_or(1, 8);
    let quanta: usize = rebudget_bench::arg_or(2, 8);
    let seed: u64 = rebudget_bench::arg_or(3, 1);
    let (sys, dram) = system_for(cores);
    let bundle = if cores == 8 {
        paper_bbpc_8core()
    } else {
        rebudget_workloads::generate_bundle(rebudget_workloads::Category::Bbpn, cores, 0, seed)
            .expect("valid cores")
    };
    let plan = base_plan(seed);

    // ---- 1. Market level: clean-utility scoring of faulted solves ------
    println!(
        "# Robustness sweep: {} cores, bundle {}, seed {seed}",
        cores,
        bundle.label()
    );
    println!("# Base plan (intensity 1.0): {plan:?}");
    println!();
    println!("# Market level — allocations solved under faulted telemetry,");
    println!("# scored with clean utilities (retention relative to intensity 0).");
    println!(
        "{:<14} {:>9} {:>10} {:>9} {:>9} {:>9} {:>10}",
        "mechanism", "intensity", "efficiency", "eff-ret", "envy-free", "EF-ret", "recoveries"
    );
    let market = exit_on_error(build_market(&bundle, &sys, &dram, PAPER_BUDGET));
    let mechanisms: Vec<Box<dyn Mechanism>> = vec![
        Box::new(EqualBudget::new(PAPER_BUDGET)),
        Box::new(ReBudget::with_step(PAPER_BUDGET, 40.0)),
    ];
    for mech in &mechanisms {
        let mut clean_eff = f64::NAN;
        let mut clean_ef = f64::NAN;
        for &x in &INTENSITIES {
            let scaled = plan.at_intensity(x);
            let faulted = exit_on_error(scaled.apply(&market, 0));
            let out = exit_on_error(mech.allocate(&faulted.market));
            let full = exit_on_error(faulted.expand_allocation(&out.allocation, market.len()));
            let eff = metrics::efficiency(&market, &full);
            let ef = metrics::envy_freeness(&market, &full);
            if x == 0.0 {
                clean_eff = eff;
                clean_ef = ef;
            }
            println!(
                "{:<14} {:>9.2} {:>10.4} {:>9.3} {:>9.4} {:>9.3} {:>10}",
                out.mechanism,
                x,
                eff,
                eff / clean_eff,
                ef,
                ef / clean_ef,
                out.solver_recoveries
            );
        }
        println!();
    }

    // ---- 2. Simulation level: the full loop under the same plan --------
    println!("# Simulation level — monitor → market → enforce for {quanta} quanta;");
    println!("# degraded/fallback count quanta, recoveries count solver actions.");
    println!(
        "{:<14} {:>9} {:>10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "mechanism",
        "intensity",
        "efficiency",
        "eff-ret",
        "envy-free",
        "EF-ret",
        "degraded",
        "fallback",
        "recoveries"
    );
    for mech in &mechanisms {
        let mut clean_eff = f64::NAN;
        let mut clean_ef = f64::NAN;
        for &x in &INTENSITIES {
            let scaled = plan.at_intensity(x);
            let opts = SimOptions {
                quanta,
                accesses_per_quantum: 10_000,
                budget: PAPER_BUDGET,
                use_monitors: true,
                seed,
                faults: if scaled.is_active() {
                    Some(scaled)
                } else {
                    None
                },
                ..SimOptions::default()
            };
            let r = match run_simulation(&sys, &dram, &bundle, mech.as_ref(), &opts) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            };
            if x == 0.0 {
                clean_eff = r.efficiency;
                clean_ef = r.envy_freeness;
            }
            println!(
                "{:<14} {:>9.2} {:>10.4} {:>9.3} {:>9.4} {:>9.3} {:>9} {:>9} {:>10}",
                r.mechanism,
                x,
                r.efficiency,
                r.efficiency / clean_eff,
                r.envy_freeness,
                r.envy_freeness / clean_ef,
                r.degraded_quanta,
                r.fallback_quanta,
                r.solver_recoveries
            );
        }
        println!();
    }
    println!("# Reading: retention near 1.0 means the guardrails held; degraded > 0");
    println!("# marks best-effort quanta; fallback > 0 marks EqualShare safe-mode");
    println!("# intervals after repeated solver failures (ISSUE-3 degradation policy).");
}
