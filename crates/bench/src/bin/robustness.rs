//! Regenerates the **robustness** study: how much efficiency and
//! envy-freeness the market pipeline retains as fault intensity rises.
//!
//! Three sections:
//!
//! 1. **Market level** — a static market is solved under a faulted view
//!    (noise, spikes, NaNs, dropped bids, liar bidders at increasing
//!    intensity); the resulting allocation is then scored with the *clean*
//!    utilities, so the numbers measure what the faults actually cost,
//!    not what the faulted telemetry claims.
//! 2. **Simulation level** — the full monitor → market → enforce loop of
//!    `rebudget-sim` with the same plan installed, reporting degraded /
//!    fallback quanta and solver recovery actions alongside retention.
//! 3. **Checkpoint overhead** — the same simulation with durable
//!    checkpointing every quantum vs. without, reporting time per quantum
//!    and the relative overhead (target: < 5%).
//! 4. **Tracing overhead** — the same simulation with telemetry compiled
//!    in but disabled (target: < 1%) and with the full JSONL journal +
//!    metrics recording enabled (target: < 5%), against the same
//!    interleaved median-of-paired-differences protocol.
//!
//! Usage: `robustness [cores] [quanta] [seed]` (defaults: 8, 8, 1).

use std::time::Instant;

use rebudget_bench::{exit_on_error, system_for, PAPER_BUDGET};
use rebudget_core::mechanisms::{EqualBudget, Mechanism, ReBudget};
use rebudget_market::{metrics, FaultPlan};
use rebudget_sim::analytic::build_market;
use rebudget_sim::simulation::run_simulation_recoverable;
use rebudget_sim::{run_simulation, RecoveryOptions, SimOptions};
use rebudget_workloads::paper_bbpc_8core;

/// The base (intensity 1.0) fault plan the sweep scales.
fn base_plan(seed: u64) -> FaultPlan {
    exit_on_error(FaultPlan::parse(
        "noise=0.2,spike=0.05,stale=0.3,drop=0.1,nan=0.02,liars=2",
    ))
    .with_seed(seed)
}

const INTENSITIES: [f64; 7] = [0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0];

fn main() {
    let cores: usize = rebudget_bench::arg_or(1, 8);
    let quanta: usize = rebudget_bench::arg_or(2, 8);
    let seed: u64 = rebudget_bench::arg_or(3, 1);
    let (sys, dram) = system_for(cores);
    let bundle = if cores == 8 {
        paper_bbpc_8core()
    } else {
        rebudget_workloads::generate_bundle(rebudget_workloads::Category::Bbpn, cores, 0, seed)
            .expect("valid cores")
    };
    let plan = base_plan(seed);

    // ---- 1. Market level: clean-utility scoring of faulted solves ------
    println!(
        "# Robustness sweep: {} cores, bundle {}, seed {seed}",
        cores,
        bundle.label()
    );
    println!("# Base plan (intensity 1.0): {plan:?}");
    println!();
    println!("# Market level — allocations solved under faulted telemetry,");
    println!("# scored with clean utilities (retention relative to intensity 0).");
    println!(
        "{:<14} {:>9} {:>10} {:>9} {:>9} {:>9} {:>10}",
        "mechanism", "intensity", "efficiency", "eff-ret", "envy-free", "EF-ret", "recoveries"
    );
    let market = exit_on_error(build_market(&bundle, &sys, &dram, PAPER_BUDGET));
    let mechanisms: Vec<Box<dyn Mechanism>> = vec![
        Box::new(EqualBudget::new(PAPER_BUDGET)),
        Box::new(ReBudget::with_step(PAPER_BUDGET, 40.0)),
    ];
    for mech in &mechanisms {
        let mut clean_eff = f64::NAN;
        let mut clean_ef = f64::NAN;
        for &x in &INTENSITIES {
            let scaled = plan.at_intensity(x);
            let faulted = exit_on_error(scaled.apply(&market, 0));
            let out = exit_on_error(mech.allocate(&faulted.market));
            let full = exit_on_error(faulted.expand_allocation(&out.allocation, market.len()));
            let eff = metrics::efficiency(&market, &full);
            let ef = metrics::envy_freeness(&market, &full);
            if x == 0.0 {
                clean_eff = eff;
                clean_ef = ef;
            }
            println!(
                "{:<14} {:>9.2} {:>10.4} {:>9.3} {:>9.4} {:>9.3} {:>10}",
                out.mechanism,
                x,
                eff,
                eff / clean_eff,
                ef,
                ef / clean_ef,
                out.solver_recoveries
            );
        }
        println!();
    }

    // ---- 2. Simulation level: the full loop under the same plan --------
    println!("# Simulation level — monitor → market → enforce for {quanta} quanta;");
    println!("# degraded/fallback count quanta, recoveries count solver actions.");
    println!(
        "{:<14} {:>9} {:>10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "mechanism",
        "intensity",
        "efficiency",
        "eff-ret",
        "envy-free",
        "EF-ret",
        "degraded",
        "fallback",
        "recoveries"
    );
    for mech in &mechanisms {
        let mut clean_eff = f64::NAN;
        let mut clean_ef = f64::NAN;
        for &x in &INTENSITIES {
            let scaled = plan.at_intensity(x);
            let opts = SimOptions {
                quanta,
                accesses_per_quantum: 10_000,
                budget: PAPER_BUDGET,
                use_monitors: true,
                seed,
                faults: if scaled.is_active() {
                    Some(scaled)
                } else {
                    None
                },
                ..SimOptions::default()
            };
            let r = match run_simulation(&sys, &dram, &bundle, mech.as_ref(), &opts) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            };
            if x == 0.0 {
                clean_eff = r.efficiency;
                clean_ef = r.envy_freeness;
            }
            println!(
                "{:<14} {:>9.2} {:>10.4} {:>9.3} {:>9.4} {:>9.3} {:>9} {:>9} {:>10}",
                r.mechanism,
                x,
                r.efficiency,
                r.efficiency / clean_eff,
                r.envy_freeness,
                r.envy_freeness / clean_ef,
                r.degraded_quanta,
                r.fallback_quanta,
                r.solver_recoveries
            );
        }
        println!();
    }
    println!("# Reading: retention near 1.0 means the guardrails held; degraded > 0");
    println!("# marks best-effort quanta; fallback > 0 marks EqualShare safe-mode");
    println!("# intervals after repeated solver failures (ISSUE-3 degradation policy).");
    println!();

    // ---- 3. Checkpoint overhead: durable snapshots every quantum -------
    println!("# Checkpoint overhead — ReBudget-40 under the intensity-1.0 plan,");
    println!("# durable snapshot after every quantum vs. no checkpointing");
    println!("# ({CHECKPOINT_REPS} interleaved pairs, median paired difference; target < 5%).");
    checkpoint_overhead(&sys, &dram, &bundle, &plan, quanta, seed);
    println!();

    // ---- 4. Tracing overhead: disabled vs full journal + metrics -------
    println!("# Tracing overhead — same run with telemetry disabled (the compiled-in");
    println!("# one-branch fast path; target < 1%) and fully enabled (JSONL journal,");
    println!("# metrics, spans; target < 5%). {TRACE_REPS} interleaved reps each.");
    tracing_overhead(&sys, &dram, &bundle, &plan, quanta, seed);
}

const CHECKPOINT_REPS: usize = 5;

/// Times the full simulation loop with and without per-quantum durable
/// checkpointing and reports the relative overhead. Also asserts the
/// recovery layer's core invariant: checkpointing must not perturb the
/// simulated results by a single bit.
fn checkpoint_overhead(
    sys: &rebudget_sim::SystemConfig,
    dram: &rebudget_sim::DramConfig,
    bundle: &rebudget_workloads::Bundle,
    plan: &FaultPlan,
    quanta: usize,
    seed: u64,
) {
    let mech = ReBudget::with_step(PAPER_BUDGET, 40.0);
    let opts = SimOptions {
        quanta,
        accesses_per_quantum: 10_000,
        budget: PAPER_BUDGET,
        use_monitors: true,
        seed,
        faults: Some(plan.clone()),
        ..SimOptions::default()
    };
    let dir = std::env::temp_dir().join(format!("rebudget-ckpt-bench-{}", std::process::id()));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
    let recovery = RecoveryOptions {
        checkpoint: Some(dir.join("bench.ckpt")),
        checkpoint_every: 1,
        resume: None,
    };

    let timed = |rec: &RecoveryOptions| {
        let t0 = Instant::now();
        let r = match run_simulation_recoverable(sys, dram, bundle, &mech, &opts, rec) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        };
        (t0.elapsed().as_secs_f64(), r)
    };

    // Interleave the two configurations so machine-load drift hits both
    // equally, then estimate the overhead from the *median of paired
    // differences* over the fastest plain rep — robust against the odd
    // rep that lands on a noisy scheduler interval.
    let plain_opts = RecoveryOptions::default();
    let mut plain_s = f64::INFINITY;
    let mut diffs = Vec::with_capacity(CHECKPOINT_REPS);
    let (mut plain, mut ckpt) = (None, None);
    for _ in 0..CHECKPOINT_REPS {
        let (ps, pr) = timed(&plain_opts);
        let (cs, cr) = timed(&recovery);
        plain_s = plain_s.min(ps);
        diffs.push(cs - ps);
        plain = Some(pr);
        ckpt = Some(cr);
    }
    diffs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let ckpt_s = plain_s + diffs[diffs.len() / 2];
    let (plain, ckpt) = (plain.expect("reps > 0"), ckpt.expect("reps > 0"));
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(
        plain.efficiency.to_bits(),
        ckpt.efficiency.to_bits(),
        "checkpointing must not perturb the simulation"
    );

    let per_quantum = |s: f64| s * 1e3 / quanta as f64;
    let overhead = (ckpt_s - plain_s) / plain_s * 100.0;
    println!(
        "{:<24} {:>12} {:>12}",
        "configuration", "ms/quantum", "overhead"
    );
    println!(
        "{:<24} {:>12.3} {:>12}",
        "no checkpointing",
        per_quantum(plain_s),
        "-"
    );
    println!(
        "{:<24} {:>12.3} {:>11.2}%",
        "snapshot every quantum",
        per_quantum(ckpt_s),
        overhead
    );
    println!(
        "# Verdict: {} (results bit-identical with and without snapshots).",
        if overhead < 5.0 {
            "within the < 5% budget"
        } else {
            "OVER the 5% budget"
        }
    );
}

const TRACE_REPS: usize = 7;

/// Times the simulation loop with telemetry (a) compiled in but disabled
/// — the cost every untraced run pays for the `enabled()` branches — and
/// (b) fully enabled (journal + metrics + spans). Asserts the tracing
/// invariant along the way: the observed run's results are bit-identical
/// to the unobserved one.
fn tracing_overhead(
    sys: &rebudget_sim::SystemConfig,
    dram: &rebudget_sim::DramConfig,
    bundle: &rebudget_workloads::Bundle,
    plan: &FaultPlan,
    quanta: usize,
    seed: u64,
) {
    let mech = ReBudget::with_step(PAPER_BUDGET, 40.0);
    let opts = SimOptions {
        quanta,
        accesses_per_quantum: 10_000,
        budget: PAPER_BUDGET,
        use_monitors: true,
        seed,
        faults: Some(plan.clone()),
        ..SimOptions::default()
    };
    let timed = |traced: bool| {
        if traced {
            rebudget_telemetry::reset();
            rebudget_telemetry::set_enabled(true);
        }
        let t0 = Instant::now();
        let r = run_simulation(sys, dram, bundle, &mech, &opts);
        let s = t0.elapsed().as_secs_f64();
        if traced {
            rebudget_telemetry::set_enabled(false);
        }
        match r {
            Ok(r) => (s, r),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    };

    // Interleaved reps, median of paired differences over the fastest
    // disabled rep — the same drift-resistant protocol as section 3.
    let mut disabled_s = f64::INFINITY;
    let mut diffs = Vec::with_capacity(TRACE_REPS);
    let (mut plain, mut traced) = (None, None);
    for _ in 0..TRACE_REPS {
        let (ds, dr) = timed(false);
        let (ts, tr) = timed(true);
        disabled_s = disabled_s.min(ds);
        diffs.push(ts - ds);
        plain = Some(dr);
        traced = Some(tr);
    }
    diffs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let traced_s = disabled_s + diffs[diffs.len() / 2];
    let (plain, traced) = (plain.expect("reps > 0"), traced.expect("reps > 0"));
    assert_eq!(
        plain.efficiency.to_bits(),
        traced.efficiency.to_bits(),
        "tracing must not perturb the simulation"
    );
    let events = rebudget_telemetry::global().journal.len();

    let per_quantum = |s: f64| s * 1e3 / quanta as f64;
    let overhead = (traced_s - disabled_s) / disabled_s * 100.0;
    println!(
        "{:<24} {:>12} {:>12} {:>10}",
        "configuration", "ms/quantum", "overhead", "events"
    );
    println!(
        "{:<24} {:>12.3} {:>12} {:>10}",
        "telemetry disabled",
        per_quantum(disabled_s),
        "-",
        0
    );
    println!(
        "{:<24} {:>12.3} {:>11.2}% {:>10}",
        "full tracing",
        per_quantum(traced_s),
        overhead,
        events
    );
    // The disabled fast path is one relaxed atomic load + branch. Time it
    // directly, then scale by how often the hot loop consults it (each
    // journal event of the traced run ≈ one guarded site) to bound what
    // compiling telemetry in costs an untraced run.
    let checks: u64 = 100_000_000;
    let t0 = Instant::now();
    let mut live = 0u64;
    for _ in 0..checks {
        live = live.wrapping_add(u64::from(std::hint::black_box(
            rebudget_telemetry::enabled(),
        )));
    }
    let ns_per_check = t0.elapsed().as_secs_f64() * 1e9 / checks as f64;
    std::hint::black_box(live);
    let sites_per_quantum = events as f64 / quanta as f64;
    let disabled_pct = sites_per_quantum * ns_per_check / (per_quantum(disabled_s) * 1e6) * 100.0;
    println!(
        "# Disabled-path cost: {ns_per_check:.2} ns/check × {sites_per_quantum:.0} guarded \
         sites/quantum = {disabled_pct:.4}% of a quantum ({}).",
        if disabled_pct < 1.0 {
            "within the < 1% budget"
        } else {
            "OVER the 1% budget"
        }
    );
    println!(
        "# Verdict: {} (results bit-identical traced vs untraced).",
        if overhead < 5.0 {
            "within the < 5% budget"
        } else {
            "OVER the 5% budget"
        }
    );
}
