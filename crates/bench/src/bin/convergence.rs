//! Regenerates the **§6.4 convergence** study: how many bidding–pricing
//! iterations the market needs to reach equilibrium, per mechanism, across
//! the bundle suite — including the 30-iteration fail-safe count.
//!
//! The paper: "EqualBudget and XChange-Balanced converge within 3
//! iterations for 95% of the bundles. ReBudget spends a few more
//! iterations, because it needs to re-converge after budget adjustment."
//!
//! Usage: `convergence [cores] [bundles_per_category] [seed] [policy]`
//! (defaults: 64, 10, 1, auto; policy: `auto`, `serial`, or a thread
//! count for the per-player best-response fan-out).

use rebudget_bench::system_for;
use rebudget_bench::{
    exit_on_error, paper_mechanisms, paper_mechanisms_with, policy_arg, PAPER_BUDGET,
};
use rebudget_sim::analytic::build_market_with;
use rebudget_workloads::{generate_bundle, Category};

fn main() {
    let cores: usize = rebudget_bench::arg_or(1, 64);
    let per_category: usize = rebudget_bench::arg_or(2, 10);
    let seed: u64 = rebudget_bench::arg_or(3, 1);
    let policy = policy_arg(4);
    let (sys, dram) = system_for(cores);

    // Per-mechanism: iteration counts of the *final* equilibrium solve
    // plus totals across budget-adjustment rounds.
    let names: Vec<String> = paper_mechanisms().iter().map(|m| m.name()).collect();
    let mut per_solve: Vec<Vec<f64>> = vec![Vec::new(); names.len()];
    let mut rounds: Vec<Vec<f64>> = vec![Vec::new(); names.len()];
    let mut failsafe = vec![0usize; names.len()];

    for category in Category::ALL {
        for index in 0..per_category {
            let bundle = generate_bundle(category, cores, index, seed).expect("valid cores");
            let market = exit_on_error(build_market_with(
                &bundle,
                &sys,
                &dram,
                PAPER_BUDGET,
                policy,
            ));
            for (k, mech) in paper_mechanisms_with(policy).iter().enumerate() {
                let out = exit_on_error(mech.allocate(&market));
                if out.equilibrium_rounds > 0 {
                    per_solve[k].push(out.total_iterations as f64 / out.equilibrium_rounds as f64);
                    rounds[k].push(out.equilibrium_rounds as f64);
                    if !out.converged {
                        failsafe[k] += 1;
                    }
                }
            }
        }
    }

    println!(
        "# Convergence over {} bundles, {} cores (iterations per equilibrium solve)",
        per_category * Category::ALL.len(),
        cores
    );
    println!(
        "{:<14} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "mechanism", "mean-iters", "p95-iters", "<=3 iters", "mean-rounds", "failsafe"
    );
    for (k, name) in names.iter().enumerate() {
        if per_solve[k].is_empty() {
            println!("{name:<14} {:>10} (no market)", "-");
            continue;
        }
        let mut sorted = per_solve[k].clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        let p95 = sorted[(sorted.len() as f64 * 0.95) as usize % sorted.len()];
        let within3 =
            sorted.iter().filter(|&&x| x <= 3.0).count() as f64 / sorted.len() as f64 * 100.0;
        let mean_rounds = rounds[k].iter().sum::<f64>() / rounds[k].len() as f64;
        println!(
            "{name:<14} {mean:>10.2} {p95:>10.2} {:>11.1}% {mean_rounds:>12.2} {:>10}",
            within3, failsafe[k]
        );
    }
    println!();
    println!("# Paper reference: EqualBudget/Balanced <=3 iterations for 95% of bundles;");
    println!("# ReBudget needs a few more (one re-convergence per budget step); fail-safe");
    println!("# terminates the search after 30 iterations in rare non-converging cases.");
}
