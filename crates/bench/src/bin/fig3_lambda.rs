//! Regenerates **Figure 3** of the paper: the marginal utility λᵢ of each
//! application in the 8-core BBPC case-study bundle (apsi×2, swim×2,
//! mcf×2, hmmer, sixtrack), normalized to the bundle's maximum λ, under
//! EqualBudget, ReBudget-20, and ReBudget-40 — with the MUR of each.
//!
//! The paper reports MUR = 0.40 / 0.46 / 0.59 for the three mechanisms and
//! shows the over-budgeted *swim* rising and budget-starved apps
//! requesting money.

use rebudget_bench::{exit_on_error, system_for, PAPER_BUDGET};
use rebudget_core::mechanisms::{EqualBudget, Mechanism, ReBudget};
use rebudget_sim::analytic::build_market;
use rebudget_workloads::paper_bbpc_8core;

fn main() {
    let (sys, dram) = system_for(8);
    let bundle = paper_bbpc_8core();
    let market = exit_on_error(build_market(&bundle, &sys, &dram, PAPER_BUDGET));

    let mechanisms: Vec<Box<dyn Mechanism>> = vec![
        Box::new(EqualBudget::new(PAPER_BUDGET)),
        Box::new(ReBudget::with_step(PAPER_BUDGET, 20.0)),
        Box::new(ReBudget::with_step(PAPER_BUDGET, 40.0)),
    ];

    println!("# Figure 3: normalized marginal utility λ_i per application");
    println!("# Bundle: {:?}", bundle.app_names());
    println!();
    println!(
        "{:<14} {:>12} {:>12} {:>12}",
        "app", "EqualBudget", "ReBudget-20", "ReBudget-40"
    );

    let mut columns = Vec::new();
    let mut murs = Vec::new();
    let mut budgets = Vec::new();
    for mech in &mechanisms {
        let out = exit_on_error(mech.allocate(&market));
        let max_l = out.lambdas.iter().cloned().fold(1e-12, f64::max);
        columns.push(out.lambdas.iter().map(|l| l / max_l).collect::<Vec<_>>());
        murs.push(out.mur.unwrap_or(f64::NAN));
        budgets.push(out.budgets.clone());
    }

    // "The multiple copies of the same application behave essentially the
    // same way, so only one of each is shown."
    let mut seen = std::collections::HashSet::new();
    for (i, app) in bundle.apps.iter().enumerate() {
        if !seen.insert(app.name) {
            continue;
        }
        println!(
            "{:<14} {:>12.3} {:>12.3} {:>12.3}",
            app.name, columns[0][i], columns[1][i], columns[2][i]
        );
    }
    println!();
    println!(
        "{:<14} {:>12.3} {:>12.3} {:>12.3}",
        "MUR", murs[0], murs[1], murs[2]
    );
    println!();
    println!("# Final budgets per mechanism:");
    for (k, mech) in ["EqualBudget", "ReBudget-20", "ReBudget-40"]
        .iter()
        .enumerate()
    {
        let b: Vec<String> = bundle
            .apps
            .iter()
            .zip(&budgets[k])
            .map(|(a, b)| format!("{}={b:.2}", a.name))
            .collect();
        println!("#   {mech:<12} {}", b.join(" "));
    }
    println!();
    println!("# Paper reference: MUR 0.40 (EqualBudget) -> 0.46 (ReBudget-20) -> 0.59");
    println!("# (ReBudget-40); swim's budget falls to 61.25 under ReBudget-20.");
}
