//! CSV/JSON export of experiment results (for external plotting and CI
//! artifacts).

use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

use crate::BundleResult;

/// One measured point of the scalability bench's first-order arm
/// (`src/bin/scalability.rs`), serialized into `BENCH_scalability.json`.
#[derive(Debug, Clone)]
pub struct ScalabilityPoint {
    /// Solver label ([`rebudget_market::SolverKind::label`]).
    pub solver: String,
    /// Player count `N`.
    pub players: usize,
    /// Resource count `M`.
    pub resources: usize,
    /// Non-zero (player, resource) interests in the generated market.
    pub nnz: usize,
    /// Worker threads the parallel policy resolved to.
    pub threads: usize,
    /// Fastest solve over the repeats, in nanoseconds.
    pub min_ns: u64,
    /// Median solve over the repeats, in nanoseconds.
    pub median_ns: u64,
    /// Iterations of the (deterministic) solve.
    pub iterations: u64,
    /// Final residual in the unified relative-excess-demand semantics.
    pub residual: f64,
    /// Whether the solve met the tolerance.
    pub converged: bool,
}

/// JSON float: finite values in exponent notation, non-finite as `null`
/// (JSON has no NaN/Infinity).
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:e}")
    } else {
        "null".to_string()
    }
}

/// Writes the scalability bench's machine-readable artifact — a JSON
/// document with one entry per (solver, N) point. Hand-rolled writer: the
/// workspace has no JSON dependency, and the schema is flat.
///
/// # Errors
///
/// Propagates I/O errors from file creation and writing.
pub fn write_scalability_json(
    path: &Path,
    tolerance: f64,
    points: &[ScalabilityPoint],
) -> io::Result<()> {
    let mut f = File::create(path)?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"bench\": \"scalability\",")?;
    writeln!(f, "  \"tolerance\": {},", json_f64(tolerance))?;
    writeln!(f, "  \"points\": [")?;
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        writeln!(
            f,
            "    {{\"solver\": \"{}\", \"players\": {}, \"resources\": {}, \
             \"nnz\": {}, \"threads\": {}, \"min_ns\": {}, \"median_ns\": {}, \
             \"iterations\": {}, \"residual\": {}, \"converged\": {}}}{comma}",
            p.solver,
            p.players,
            p.resources,
            p.nnz,
            p.threads,
            p.min_ns,
            p.median_ns,
            p.iterations,
            json_f64(p.residual),
            p.converged,
        )?;
    }
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    Ok(())
}

/// The warm-vs-cold online re-solve measurement of the server bench
/// (`src/bin/server_bench.rs`), serialized into `BENCH_server.json`.
#[derive(Debug, Clone)]
pub struct ServerBenchSummary {
    /// Player count `N`.
    pub players: usize,
    /// Resource count `M`.
    pub resources: usize,
    /// Non-zero (player, resource) interests in the generated market.
    pub nnz: usize,
    /// Timed churn ticks per arm.
    pub ticks: usize,
    /// Percent of players whose budget is perturbed each tick.
    pub churn_percent: f64,
    /// Solver label ([`rebudget_market::SolverKind::label`]).
    pub solver: String,
    /// Cold-start re-solve throughput (ticks per second).
    pub cold_ticks_per_sec: f64,
    /// Warm-started re-solve throughput (ticks per second).
    pub warm_ticks_per_sec: f64,
    /// `warm_ticks_per_sec / cold_ticks_per_sec`.
    pub speedup: f64,
    /// Total solver iterations across the cold arm's ticks.
    pub cold_iterations: u64,
    /// Total solver iterations across the warm arm's ticks.
    pub warm_iterations: u64,
    /// Worst final residual seen in either arm.
    pub max_residual: f64,
    /// Whether every solve in both arms converged under the tolerance.
    pub converged: bool,
}

/// Writes the server bench's machine-readable artifact. Flat JSON via
/// the same hand-rolled writer as [`write_scalability_json`].
///
/// # Errors
///
/// Propagates I/O errors from file creation and writing.
pub fn write_server_json(
    path: &Path,
    tolerance: f64,
    min_speedup: f64,
    s: &ServerBenchSummary,
) -> io::Result<()> {
    let mut f = File::create(path)?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"bench\": \"server\",")?;
    writeln!(f, "  \"tolerance\": {},", json_f64(tolerance))?;
    writeln!(f, "  \"min_speedup\": {},", json_f64(min_speedup))?;
    writeln!(f, "  \"players\": {},", s.players)?;
    writeln!(f, "  \"resources\": {},", s.resources)?;
    writeln!(f, "  \"nnz\": {},", s.nnz)?;
    writeln!(f, "  \"ticks\": {},", s.ticks)?;
    writeln!(f, "  \"churn_percent\": {},", json_f64(s.churn_percent))?;
    writeln!(f, "  \"solver\": \"{}\",", s.solver)?;
    writeln!(
        f,
        "  \"cold_ticks_per_sec\": {},",
        json_f64(s.cold_ticks_per_sec)
    )?;
    writeln!(
        f,
        "  \"warm_ticks_per_sec\": {},",
        json_f64(s.warm_ticks_per_sec)
    )?;
    writeln!(f, "  \"speedup\": {},", json_f64(s.speedup))?;
    writeln!(f, "  \"cold_iterations\": {},", s.cold_iterations)?;
    writeln!(f, "  \"warm_iterations\": {},", s.warm_iterations)?;
    writeln!(f, "  \"max_residual\": {},", json_f64(s.max_residual))?;
    writeln!(f, "  \"converged\": {}", s.converged)?;
    writeln!(f, "}}")?;
    Ok(())
}

/// Writes a generic CSV: one header row, then data rows.
///
/// # Errors
///
/// Propagates I/O errors from file creation and writing.
pub fn write_csv(path: &Path, headers: &[&str], rows: &[Vec<String>]) -> io::Result<()> {
    let mut f = File::create(path)?;
    writeln!(f, "{}", headers.join(","))?;
    for row in rows {
        writeln!(f, "{}", row.join(","))?;
    }
    Ok(())
}

/// Writes the Figure-4 sweep as CSV: one row per bundle with normalized
/// efficiency and envy-freeness for every mechanism.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_fig4_csv(path: &Path, results: &[BundleResult]) -> io::Result<()> {
    let mechanisms: Vec<&str> = results
        .first()
        .map(|r| r.rows.iter().map(|m| m.mechanism.as_str()).collect())
        .unwrap_or_default();
    let mut headers = vec!["bundle".to_string()];
    for m in &mechanisms {
        headers.push(format!("{m}_eff"));
        headers.push(format!("{m}_ef"));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            let mut row = vec![r.label.clone()];
            for m in &mechanisms {
                if let Some(x) = r.row(m) {
                    row.push(format!("{:.6}", x.normalized_efficiency));
                    row.push(format!("{:.6}", x.envy_freeness));
                } else {
                    row.push(String::new());
                    row.push(String::new());
                }
            }
            row
        })
        .collect();
    write_csv(path, &header_refs, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{evaluate_bundle_analytic, system_for};
    use rebudget_workloads::paper_bbpc_8core;

    #[test]
    fn generic_csv_round_trips() {
        let path = std::env::temp_dir().join("rebudget_test_generic.csv");
        write_csv(
            &path,
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        )
        .expect("writes");
        let text = std::fs::read_to_string(&path).expect("reads");
        assert_eq!(text, "a,b\n1,2\n3,4\n");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn scalability_json_is_well_formed() {
        let path = std::env::temp_dir().join("rebudget_test_scalability.json");
        let points = vec![
            ScalabilityPoint {
                solver: "propresp".into(),
                players: 1000,
                resources: 64,
                nnz: 8192,
                threads: 8,
                min_ns: 1_234_567,
                median_ns: 2_000_000,
                iterations: 321,
                residual: 3.2e-7,
                converged: true,
            },
            ScalabilityPoint {
                solver: "mirror".into(),
                players: 1000,
                resources: 64,
                nnz: 8192,
                threads: 8,
                min_ns: 1,
                median_ns: 2,
                iterations: 5,
                residual: f64::NAN,
                converged: false,
            },
        ];
        write_scalability_json(&path, 1e-6, &points).expect("writes");
        let text = std::fs::read_to_string(&path).expect("reads");
        assert!(text.contains("\"bench\": \"scalability\""));
        assert!(text.contains("\"solver\": \"propresp\""));
        assert!(text.contains("\"residual\": 3.2e-7"), "{text}");
        assert!(text.contains("\"residual\": null"), "{text}");
        // Exactly one trailing-comma-free last element: count rows.
        assert_eq!(text.matches("\"solver\"").count(), 2);
        assert!(text.trim_end().ends_with('}'));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fig4_csv_has_bundle_rows_and_mechanism_columns() {
        let (sys, dram) = system_for(8);
        let result = evaluate_bundle_analytic(&paper_bbpc_8core(), &sys, &dram).expect("runs");
        let path = std::env::temp_dir().join("rebudget_test_fig4.csv");
        write_fig4_csv(&path, &[result]).expect("writes");
        let text = std::fs::read_to_string(&path).expect("reads");
        let mut lines = text.lines();
        let header = lines.next().expect("header");
        assert!(header.starts_with("bundle,"));
        assert!(header.contains("EqualBudget_eff"));
        assert!(header.contains("MaxEfficiency_ef"));
        assert_eq!(lines.count(), 1);
        std::fs::remove_file(&path).ok();
    }
}
