//! CSV export of experiment results (for external plotting).

use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

use crate::BundleResult;

/// Writes a generic CSV: one header row, then data rows.
///
/// # Errors
///
/// Propagates I/O errors from file creation and writing.
pub fn write_csv(path: &Path, headers: &[&str], rows: &[Vec<String>]) -> io::Result<()> {
    let mut f = File::create(path)?;
    writeln!(f, "{}", headers.join(","))?;
    for row in rows {
        writeln!(f, "{}", row.join(","))?;
    }
    Ok(())
}

/// Writes the Figure-4 sweep as CSV: one row per bundle with normalized
/// efficiency and envy-freeness for every mechanism.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_fig4_csv(path: &Path, results: &[BundleResult]) -> io::Result<()> {
    let mechanisms: Vec<&str> = results
        .first()
        .map(|r| r.rows.iter().map(|m| m.mechanism.as_str()).collect())
        .unwrap_or_default();
    let mut headers = vec!["bundle".to_string()];
    for m in &mechanisms {
        headers.push(format!("{m}_eff"));
        headers.push(format!("{m}_ef"));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            let mut row = vec![r.label.clone()];
            for m in &mechanisms {
                if let Some(x) = r.row(m) {
                    row.push(format!("{:.6}", x.normalized_efficiency));
                    row.push(format!("{:.6}", x.envy_freeness));
                } else {
                    row.push(String::new());
                    row.push(String::new());
                }
            }
            row
        })
        .collect();
    write_csv(path, &header_refs, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{evaluate_bundle_analytic, system_for};
    use rebudget_workloads::paper_bbpc_8core;

    #[test]
    fn generic_csv_round_trips() {
        let path = std::env::temp_dir().join("rebudget_test_generic.csv");
        write_csv(
            &path,
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        )
        .expect("writes");
        let text = std::fs::read_to_string(&path).expect("reads");
        assert_eq!(text, "a,b\n1,2\n3,4\n");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fig4_csv_has_bundle_rows_and_mechanism_columns() {
        let (sys, dram) = system_for(8);
        let result = evaluate_bundle_analytic(&paper_bbpc_8core(), &sys, &dram).expect("runs");
        let path = std::env::temp_dir().join("rebudget_test_fig4.csv");
        write_fig4_csv(&path, &[result]).expect("writes");
        let text = std::fs::read_to_string(&path).expect("reads");
        let mut lines = text.lines();
        let header = lines.next().expect("header");
        assert!(header.starts_with("bundle,"));
        assert!(header.contains("EqualBudget_eff"));
        assert!(header.contains("MaxEfficiency_ef"));
        assert_eq!(lines.count(), 1);
        std::fs::remove_file(&path).ok();
    }
}
