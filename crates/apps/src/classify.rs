//! Deriving C/P/B/N sensitivity classes from first principles.
//!
//! The paper classifies its 24 applications "based on profiling" (§5). We
//! make the rule explicit: profile each application's normalized utility at
//! the corners of the allocation envelope and measure how much performance
//! it loses when starved of each resource while holding the other at its
//! maximum:
//!
//! * `cache_gain = U(c_max, f_max) − U(c_min, f_max)`
//! * `power_gain = U(c_max, f_max) − U(c_max, f_min)`
//!
//! An application is cache-sensitive when `cache_gain ≥ 0.25` and
//! power-sensitive when `power_gain ≥ 0.45` (the power threshold is higher
//! because the 5× frequency range gives every application *some* compute
//! speedup). Neither → N; exactly one → C or P. When both thresholds are
//! met, one resource may still *dominate*: if one gain exceeds the other
//! by [`DOMINANCE_RATIO`] the application is classified by the dominant
//! resource (e.g. *mcf* gains from frequency once its working set fits,
//! but its cache gain dwarfs that — the paper calls it C); otherwise → B.

use crate::perf::{utility, PerfEnv};
use crate::profile::{AppClass, AppProfile};

/// Minimum normalized-utility gain from cache to count as cache-sensitive.
pub const CACHE_GAIN_THRESHOLD: f64 = 0.25;

/// Minimum normalized-utility gain from power to count as power-sensitive.
pub const POWER_GAIN_THRESHOLD: f64 = 0.45;

/// When both thresholds are met, a gain this many times larger than the
/// other makes its resource dominant (C or P instead of B).
pub const DOMINANCE_RATIO: f64 = 1.25;

/// The profiling envelope: minimum guaranteed allocation (one 128 kB
/// region, 800 MHz) up to the stand-alone maximum (2 MB, 4 GHz).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Envelope {
    /// Minimum cache allocation in bytes (one region).
    pub c_min: f64,
    /// Maximum profiled cache in bytes.
    pub c_max: f64,
    /// Minimum frequency in GHz.
    pub f_min: f64,
    /// Maximum frequency in GHz.
    pub f_max: f64,
}

impl Envelope {
    /// The paper's envelope (§4.1, §5).
    pub fn paper() -> Self {
        Self {
            c_min: 128.0 * 1024.0,
            c_max: 2.0 * 1024.0 * 1024.0,
            f_min: 0.8,
            f_max: 4.0,
        }
    }
}

impl Default for Envelope {
    fn default() -> Self {
        Self::paper()
    }
}

/// The measured sensitivities behind a classification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sensitivity {
    /// Utility lost when starved of cache at full frequency.
    pub cache_gain: f64,
    /// Utility lost when starved of frequency at full cache.
    pub power_gain: f64,
    /// The resulting class.
    pub class: AppClass,
}

/// Measures an application's sensitivities and classifies it.
pub fn sensitivity(app: &AppProfile, env: &PerfEnv, envelope: &Envelope) -> Sensitivity {
    let top = utility(app, env, envelope.c_max, envelope.f_max);
    let cache_gain = top - utility(app, env, envelope.c_min, envelope.f_max);
    let power_gain = top - utility(app, env, envelope.c_max, envelope.f_min);
    let cache = cache_gain >= CACHE_GAIN_THRESHOLD;
    let power = power_gain >= POWER_GAIN_THRESHOLD;
    let class = match (cache, power) {
        (true, true) => {
            if cache_gain >= DOMINANCE_RATIO * power_gain {
                AppClass::Cache
            } else if power_gain >= DOMINANCE_RATIO * cache_gain {
                AppClass::Power
            } else {
                AppClass::Both
            }
        }
        (true, false) => AppClass::Cache,
        (false, true) => AppClass::Power,
        (false, false) => AppClass::None,
    };
    Sensitivity {
        cache_gain,
        power_gain,
        class,
    }
}

/// Classifies an application under the paper's envelope.
///
/// ```
/// use rebudget_apps::classify::classify;
/// use rebudget_apps::spec::app_by_name;
/// use rebudget_apps::AppClass;
///
/// assert_eq!(classify(app_by_name("mcf").unwrap()), AppClass::Cache);
/// assert_eq!(classify(app_by_name("hmmer").unwrap()), AppClass::Power);
/// ```
pub fn classify(app: &AppProfile) -> AppClass {
    sensitivity(app, &PerfEnv::paper(), &Envelope::paper()).class
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::all_apps;

    #[test]
    fn every_declared_class_is_derivable_from_the_model() {
        for app in all_apps() {
            let s = sensitivity(app, &PerfEnv::paper(), &Envelope::paper());
            assert_eq!(
                s.class, app.class,
                "{}: declared {:?} but measured {:?} (cache_gain {:.3}, power_gain {:.3})",
                app.name, app.class, s.class, s.cache_gain, s.power_gain
            );
        }
    }

    #[test]
    fn gains_are_in_unit_range() {
        for app in all_apps() {
            let s = sensitivity(app, &PerfEnv::paper(), &Envelope::paper());
            assert!((0.0..=1.0).contains(&s.cache_gain), "{}", app.name);
            assert!((0.0..=1.0).contains(&s.power_gain), "{}", app.name);
        }
    }

    #[test]
    fn class_archetypes() {
        assert_eq!(
            classify(crate::spec::app_by_name("mcf").unwrap()),
            AppClass::Cache
        );
        assert_eq!(
            classify(crate::spec::app_by_name("sixtrack").unwrap()),
            AppClass::Power
        );
        assert_eq!(
            classify(crate::spec::app_by_name("swim").unwrap()),
            AppClass::Both
        );
        assert_eq!(
            classify(crate::spec::app_by_name("libquantum").unwrap()),
            AppClass::None
        );
    }
}
