//! Synthetic address-trace generation.
//!
//! The quantum-level simulator consumes the analytic miss curves directly,
//! but the cache substrate (UMON shadow tags, Futility Scaling) is a real
//! cache model and wants real address streams. This module turns an
//! [`AppProfile`] into a reproducible synthetic L2 access stream whose
//! stack-distance behaviour matches the profile's miss curve in both
//! *shape* and *level*:
//!
//! * a **hot** region (1 kB) that hits at any allocation carries the
//!   fraction of references that never miss, so the measured MPKI equals
//!   `apki × miss-ratio` as the profile demands;
//! * a [`MpkiShape::Cliff`] profile adds a cyclic sweep over its working
//!   set (the canonical LRU cliff);
//! * smooth profiles (power-law / exponential / flat) add uniformly
//!   accessed regions at geometrically growing sizes whose weights are the
//!   *differences* of the MPKI curve between consecutive sizes, so the
//!   per-size hit gains telescope back to the original curve;
//! * a **cold** stream over a region far larger than any allocation
//!   carries the compulsory-miss floor.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::profile::{AppProfile, MpkiShape};

const KB: f64 = 1024.0;
const HOT_BYTES: f64 = 1.0 * KB;
const COLD_BYTES: f64 = 64.0 * 1024.0 * KB;

#[derive(Debug, Clone, Copy)]
enum Kind {
    /// Sequential cyclic sweep (LRU worst case: cliff at region size).
    Cyclic,
    /// Uniform random lines within the region (smooth miss curve).
    Uniform,
}

#[derive(Debug, Clone, Copy)]
struct Component {
    kind: Kind,
    lines: u64,
    weight: f64,
    cursor: u64,
}

/// A reproducible synthetic address stream for one application.
///
/// # Examples
///
/// ```
/// use rebudget_apps::spec::app_by_name;
/// use rebudget_apps::trace::TraceGenerator;
///
/// let mcf = app_by_name("mcf").expect("paper app");
/// let mut gen = TraceGenerator::from_profile(mcf, 42, 0, 32);
/// let addrs = gen.take_addresses(1000);
/// assert_eq!(addrs.len(), 1000);
/// // Same seed → same stream.
/// let mut again = TraceGenerator::from_profile(mcf, 42, 0, 32);
/// assert_eq!(again.take_addresses(1000), addrs);
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    components: Vec<Component>,
    total_weight: f64,
    rng: StdRng,
    base_addr: u64,
    line_bytes: u64,
}

impl TraceGenerator {
    /// Builds a generator for `app`, seeded deterministically. `base_addr`
    /// offsets the whole stream (give co-running apps disjoint bases).
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two.
    pub fn from_profile(app: &AppProfile, seed: u64, base_addr: u64, line_bytes: u64) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let lines_of = |bytes: f64| ((bytes / line_bytes as f64).max(1.0)) as u64;
        let apki = app.apki.max(1e-6);
        let mut components = Vec::new();
        let mut miss_weight = 0.0;

        let push = |components: &mut Vec<Component>, kind, bytes: f64, weight: f64| {
            if weight > 1e-9 {
                components.push(Component {
                    kind,
                    lines: lines_of(bytes),
                    weight,
                    cursor: 0,
                });
            }
        };

        match app.mpki {
            MpkiShape::Cliff {
                high,
                low,
                ws_bytes,
                ..
            } => {
                let cold = (low / apki).clamp(0.0, 1.0);
                let cliff = ((high - low) / apki).clamp(0.0, 1.0 - cold);
                push(&mut components, Kind::Cyclic, ws_bytes, cliff);
                push(&mut components, Kind::Uniform, COLD_BYTES, cold);
                miss_weight = cold + cliff;
            }
            MpkiShape::Flat { mpki } => {
                let cold = (mpki / apki).clamp(0.0, 1.0);
                push(&mut components, Kind::Uniform, COLD_BYTES, cold);
                miss_weight = cold;
            }
            MpkiShape::PowerLaw { .. } | MpkiShape::Exponential { .. } => {
                // Telescoping levels: the references that start hitting
                // when the allocation grows from s/2 to s live in a
                // uniform region of size s.
                let mut prev = app.mpki.mpki(64.0 * KB);
                for k in 0..5 {
                    let s = 128.0 * KB * 2.0_f64.powi(k);
                    let cur = app.mpki.mpki(s);
                    let w = ((prev - cur) / apki).clamp(0.0, 1.0);
                    push(&mut components, Kind::Uniform, s, w);
                    miss_weight += w;
                    prev = cur;
                }
                let cold = (prev / apki).clamp(0.0, 1.0 - miss_weight);
                push(&mut components, Kind::Uniform, COLD_BYTES, cold);
                miss_weight += cold;
            }
        }
        // The remaining references always hit: a tiny hot region.
        let hot = (1.0 - miss_weight).max(0.0);
        push(&mut components, Kind::Uniform, HOT_BYTES, hot);

        let total_weight = components.iter().map(|c| c.weight).sum();
        Self {
            components,
            total_weight,
            rng: StdRng::seed_from_u64(seed ^ 0x5eed_5eed_0000_0000),
            base_addr,
            line_bytes,
        }
    }

    /// The next L2 access address.
    pub fn next_address(&mut self) -> u64 {
        let mut pick = self.rng.random_range(0.0..self.total_weight.max(1e-12));
        let mut idx = self.components.len() - 1;
        for (k, c) in self.components.iter().enumerate() {
            if pick < c.weight {
                idx = k;
                break;
            }
            pick -= c.weight;
        }
        // Disjoint line ranges per component: offset by the sum of earlier
        // component sizes.
        let offset: u64 = self.components[..idx].iter().map(|c| c.lines).sum();
        let c = &mut self.components[idx];
        let line = match c.kind {
            Kind::Cyclic => {
                let l = c.cursor;
                c.cursor = (c.cursor + 1) % c.lines;
                l
            }
            Kind::Uniform => self.rng.random_range(0..c.lines),
        };
        self.base_addr + (offset + line) * self.line_bytes
    }

    /// Generates `n` addresses.
    pub fn take_addresses(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.next_address()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::app_by_name;
    use rebudget_cache::stack::StackProfiler;

    #[test]
    fn deterministic_with_same_seed() {
        let app = app_by_name("vpr").unwrap();
        let mut a = TraceGenerator::from_profile(app, 7, 0, 32);
        let mut b = TraceGenerator::from_profile(app, 7, 0, 32);
        assert_eq!(a.take_addresses(1000), b.take_addresses(1000));
        let mut c = TraceGenerator::from_profile(app, 8, 0, 32);
        assert_ne!(a.take_addresses(1000), c.take_addresses(1000));
    }

    #[test]
    fn base_address_offsets_stream() {
        let app = app_by_name("gzip").unwrap();
        let mut a = TraceGenerator::from_profile(app, 1, 0, 32);
        let mut b = TraceGenerator::from_profile(app, 1, 1 << 40, 32);
        let xs = a.take_addresses(100);
        let ys = b.take_addresses(100);
        for (x, y) in xs.iter().zip(&ys) {
            assert_eq!(x + (1 << 40), *y);
        }
    }

    #[test]
    fn cliff_profile_produces_cliff_in_stack_profile() {
        // Shrink the cliff to a test-sized working set by building a
        // bespoke profile.
        use crate::profile::{AppClass, AppProfile, MpkiShape, Suite};
        let app = AppProfile {
            name: "mini-mcf",
            suite: Suite::Spec2006,
            class: AppClass::Cache,
            base_cpi: 1.0,
            mpki: MpkiShape::Cliff {
                high: 40.0,
                low: 2.0,
                ws_bytes: 1024.0 * 32.0, // 1024 lines
                width_bytes: 2048.0,
            },
            mlp: 1.0,
            activity: 0.5,
            apki: 50.0,
        };
        let mut gen = TraceGenerator::from_profile(&app, 3, 0, 32);
        let mut prof = StackProfiler::new(64, 32, 32);
        for _ in 0..300_000 {
            prof.record(gen.next_address());
        }
        // 1024 lines / 64 sets = 16 ways needed to hold the sweep.
        let below = prof.misses_at(8) as f64;
        let above = prof.misses_at(24) as f64;
        assert!(
            above < below * 0.3,
            "cliff not visible: {below} misses at 8 ways vs {above} at 24"
        );
        // Miss *level* matches the profile: ratio ≈ high/apki below the
        // cliff, low/apki above it.
        let total = prof.accesses() as f64;
        assert!(
            (below / total - 40.0 / 50.0).abs() < 0.08,
            "{}",
            below / total
        );
        assert!(above / total < 0.12, "{}", above / total);
    }

    #[test]
    fn flat_profile_is_size_insensitive_and_level_accurate() {
        let app = app_by_name("libquantum").unwrap(); // flat 28 MPKI, apki 40
        let mut gen = TraceGenerator::from_profile(app, 4, 0, 32);
        let mut prof = StackProfiler::new(64, 32, 32);
        for _ in 0..200_000 {
            prof.record(gen.next_address());
        }
        let small = prof.misses_at(2) as f64;
        let large = prof.misses_at(32) as f64;
        // The hot region's reuse distance is perturbed by the cold flood,
        // so a small decay at tiny associativities is expected; the bulk
        // must stay flat.
        assert!(
            large > small * 0.85,
            "flat stream should not benefit from size: {small} → {large}"
        );
        let ratio = large / prof.accesses() as f64;
        assert!(
            (ratio - 28.0 / 40.0).abs() < 0.05,
            "miss ratio {ratio} should be mpki/apki = 0.7"
        );
    }

    #[test]
    fn power_law_profile_decays_smoothly() {
        let app = app_by_name("vpr").unwrap();
        let mut gen = TraceGenerator::from_profile(app, 5, 0, 32);
        // 4096-set profiler: way capacity = 128 kB, like the UMON monitor.
        let mut prof = StackProfiler::new(4096, 32, 16);
        for _ in 0..400_000 {
            prof.record(gen.next_address());
        }
        let m: Vec<u64> = (1..=16).map(|w| prof.misses_at(w)).collect();
        assert!(m.windows(2).all(|w| w[1] <= w[0]));
        // No single catastrophic cliff: the largest one-way drop is a
        // minority of the total decay.
        let total_drop = (m[0] - m[15]) as f64;
        let max_step = m.windows(2).map(|w| w[0] - w[1]).max().unwrap() as f64;
        assert!(total_drop > 0.0);
        assert!(
            max_step < 0.6 * total_drop,
            "power-law decay too cliff-like: step {max_step} of {total_drop}"
        );
    }
}
