//! The 24 SPEC CPU2000/2006-inspired application models (§5 of the paper).
//!
//! Parameters are synthetic but shaped after published characteristics of
//! each benchmark where they matter to the paper:
//!
//! * *mcf*'s 1.5 MB working-set cliff (Figure 2 of the paper);
//! * *vpr*'s smooth concave cache curve (same figure);
//! * *swim*/*apsi* as "both-sensitive" apps and *hmmer*/*sixtrack* as
//!   "power-sensitive" apps, matching the BBPC case study of §6.1.1;
//! * six applications per class so the workload generator can draw the
//!   paper's category mixes.
//!
//! Classes are validated against [`crate::classify::classify`] by the test suite —
//! the label stored here must be derivable from the model itself.

use crate::profile::{AppClass, AppProfile, MpkiShape, Suite};

const KB: f64 = 1024.0;
const MB: f64 = 1024.0 * 1024.0;

/// All 24 application models, grouped by class (6 per class).
pub fn all_apps() -> &'static [AppProfile] {
    &APPS
}

/// Looks up an application model by name.
pub fn app_by_name(name: &str) -> Option<&'static AppProfile> {
    APPS.iter().find(|a| a.name == name)
}

/// All applications of a given class, in declaration order.
pub fn apps_in_class(class: AppClass) -> Vec<&'static AppProfile> {
    APPS.iter().filter(|a| a.class == class).collect()
}

static APPS: [AppProfile; 24] = [
    // ----- Cache-sensitive (C): big miss-curve drops, latency-bound ------
    AppProfile {
        name: "mcf",
        suite: Suite::Spec2000Int,
        class: AppClass::Cache,
        base_cpi: 1.0,
        mpki: MpkiShape::Cliff {
            high: 45.0,
            low: 2.0,
            ws_bytes: 1.5 * MB,
            width_bytes: 128.0 * KB,
        },
        mlp: 0.7,
        activity: 0.40,
        apki: 70.0,
    },
    AppProfile {
        name: "vpr",
        suite: Suite::Spec2000Int,
        class: AppClass::Cache,
        base_cpi: 0.7,
        mpki: MpkiShape::PowerLaw {
            base: 30.0,
            ref_bytes: 128.0 * KB,
            alpha: 0.6,
            floor: 12.0,
        },
        mlp: 1.0,
        activity: 0.50,
        apki: 55.0,
    },
    AppProfile {
        name: "art",
        suite: Suite::Spec2000Fp,
        class: AppClass::Cache,
        base_cpi: 0.8,
        mpki: MpkiShape::Cliff {
            high: 60.0,
            low: 3.0,
            ws_bytes: 896.0 * KB,
            width_bytes: 128.0 * KB,
        },
        mlp: 0.9,
        activity: 0.45,
        apki: 90.0,
    },
    AppProfile {
        name: "twolf",
        suite: Suite::Spec2000Int,
        class: AppClass::Cache,
        base_cpi: 0.8,
        mpki: MpkiShape::PowerLaw {
            base: 35.0,
            ref_bytes: 128.0 * KB,
            alpha: 0.55,
            floor: 14.0,
        },
        mlp: 1.0,
        activity: 0.50,
        apki: 60.0,
    },
    AppProfile {
        name: "parser",
        suite: Suite::Spec2000Int,
        class: AppClass::Cache,
        base_cpi: 0.9,
        mpki: MpkiShape::PowerLaw {
            base: 25.0,
            ref_bytes: 128.0 * KB,
            alpha: 0.45,
            floor: 12.0,
        },
        mlp: 0.9,
        activity: 0.45,
        apki: 45.0,
    },
    AppProfile {
        name: "milc",
        suite: Suite::Spec2006,
        class: AppClass::Cache,
        base_cpi: 0.7,
        mpki: MpkiShape::PowerLaw {
            base: 30.0,
            ref_bytes: 128.0 * KB,
            alpha: 0.5,
            floor: 13.0,
        },
        mlp: 1.1,
        activity: 0.45,
        apki: 50.0,
    },
    // ----- Power-sensitive (P): compute-bound, tiny footprints ----------
    AppProfile {
        name: "sixtrack",
        suite: Suite::Spec2000Fp,
        class: AppClass::Power,
        base_cpi: 0.8,
        mpki: MpkiShape::Flat { mpki: 0.3 },
        mlp: 1.0,
        activity: 0.95,
        apki: 5.0,
    },
    AppProfile {
        name: "hmmer",
        suite: Suite::Spec2006,
        class: AppClass::Power,
        base_cpi: 0.7,
        mpki: MpkiShape::Flat { mpki: 0.5 },
        mlp: 1.2,
        activity: 0.90,
        apki: 6.0,
    },
    AppProfile {
        name: "crafty",
        suite: Suite::Spec2000Int,
        class: AppClass::Power,
        base_cpi: 0.8,
        mpki: MpkiShape::Exponential {
            base: 3.0,
            decay_bytes: 64.0 * KB,
            floor: 0.5,
        },
        mlp: 1.0,
        activity: 0.85,
        apki: 8.0,
    },
    AppProfile {
        name: "eon",
        suite: Suite::Spec2000Int,
        class: AppClass::Power,
        base_cpi: 0.9,
        mpki: MpkiShape::Flat { mpki: 0.2 },
        mlp: 1.0,
        activity: 0.90,
        apki: 5.0,
    },
    AppProfile {
        name: "gap",
        suite: Suite::Spec2000Int,
        class: AppClass::Power,
        base_cpi: 0.7,
        mpki: MpkiShape::Flat { mpki: 0.9 },
        mlp: 1.3,
        activity: 0.85,
        apki: 7.0,
    },
    AppProfile {
        name: "perlbmk",
        suite: Suite::Spec2000Int,
        class: AppClass::Power,
        base_cpi: 0.8,
        mpki: MpkiShape::Exponential {
            base: 2.5,
            decay_bytes: 48.0 * KB,
            floor: 0.4,
        },
        mlp: 1.0,
        activity: 0.88,
        apki: 7.0,
    },
    // ----- Both-sensitive (B): high-MLP miss curves + high activity -----
    AppProfile {
        name: "swim",
        suite: Suite::Spec2000Fp,
        class: AppClass::Both,
        base_cpi: 0.8,
        mpki: MpkiShape::PowerLaw {
            base: 30.0,
            ref_bytes: 128.0 * KB,
            alpha: 0.4,
            floor: 4.0,
        },
        mlp: 2.5,
        activity: 0.85,
        apki: 45.0,
    },
    AppProfile {
        name: "apsi",
        suite: Suite::Spec2000Fp,
        class: AppClass::Both,
        base_cpi: 0.7,
        mpki: MpkiShape::PowerLaw {
            base: 22.0,
            ref_bytes: 128.0 * KB,
            alpha: 0.45,
            floor: 3.5,
        },
        mlp: 2.2,
        activity: 0.80,
        apki: 35.0,
    },
    AppProfile {
        name: "equake",
        suite: Suite::Spec2000Fp,
        class: AppClass::Both,
        base_cpi: 0.9,
        mpki: MpkiShape::PowerLaw {
            base: 25.0,
            ref_bytes: 128.0 * KB,
            alpha: 0.4,
            floor: 4.5,
        },
        mlp: 2.4,
        activity: 0.78,
        apki: 40.0,
    },
    AppProfile {
        name: "ammp",
        suite: Suite::Spec2000Fp,
        class: AppClass::Both,
        base_cpi: 0.8,
        mpki: MpkiShape::PowerLaw {
            base: 20.0,
            ref_bytes: 128.0 * KB,
            alpha: 0.45,
            floor: 3.0,
        },
        mlp: 2.0,
        activity: 0.80,
        apki: 32.0,
    },
    AppProfile {
        name: "bzip2",
        suite: Suite::Spec2000Int,
        class: AppClass::Both,
        base_cpi: 0.7,
        mpki: MpkiShape::PowerLaw {
            base: 18.0,
            ref_bytes: 128.0 * KB,
            alpha: 0.5,
            floor: 2.5,
        },
        mlp: 2.0,
        activity: 0.82,
        apki: 30.0,
    },
    AppProfile {
        name: "mgrid",
        suite: Suite::Spec2000Fp,
        class: AppClass::Both,
        base_cpi: 0.8,
        mpki: MpkiShape::PowerLaw {
            base: 30.0,
            ref_bytes: 128.0 * KB,
            alpha: 0.45,
            floor: 4.0,
        },
        mlp: 2.6,
        activity: 0.85,
        apki: 38.0,
    },
    // ----- Insensitive (N): latency-bound with flat curves --------------
    AppProfile {
        name: "libquantum",
        suite: Suite::Spec2006,
        class: AppClass::None,
        base_cpi: 0.5,
        mpki: MpkiShape::Flat { mpki: 28.0 },
        mlp: 1.2,
        activity: 0.40,
        apki: 40.0,
    },
    AppProfile {
        name: "applu",
        suite: Suite::Spec2000Fp,
        class: AppClass::None,
        base_cpi: 0.6,
        mpki: MpkiShape::Flat { mpki: 20.0 },
        mlp: 1.6,
        activity: 0.45,
        apki: 32.0,
    },
    AppProfile {
        name: "lucas",
        suite: Suite::Spec2000Fp,
        class: AppClass::None,
        base_cpi: 0.55,
        mpki: MpkiShape::Flat { mpki: 16.0 },
        mlp: 1.3,
        activity: 0.40,
        apki: 28.0,
    },
    AppProfile {
        name: "mesa",
        suite: Suite::Spec2000Fp,
        class: AppClass::None,
        base_cpi: 0.6,
        mpki: MpkiShape::Flat { mpki: 10.0 },
        mlp: 0.9,
        activity: 0.45,
        apki: 20.0,
    },
    AppProfile {
        name: "vortex",
        suite: Suite::Spec2000Int,
        class: AppClass::None,
        base_cpi: 0.6,
        mpki: MpkiShape::Exponential {
            base: 18.0,
            decay_bytes: 96.0 * KB,
            floor: 10.0,
        },
        mlp: 1.1,
        activity: 0.45,
        apki: 26.0,
    },
    AppProfile {
        name: "gzip",
        suite: Suite::Spec2000Int,
        class: AppClass::None,
        base_cpi: 0.55,
        mpki: MpkiShape::Exponential {
            base: 15.0,
            decay_bytes: 48.0 * KB,
            floor: 9.0,
        },
        mlp: 1.0,
        activity: 0.45,
        apki: 22.0,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_four_apps_six_per_class() {
        assert_eq!(all_apps().len(), 24);
        for class in AppClass::ALL {
            assert_eq!(
                apps_in_class(class).len(),
                6,
                "class {class} must have 6 apps"
            );
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = all_apps().iter().map(|a| a.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 24);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(app_by_name("mcf").unwrap().class, AppClass::Cache);
        assert_eq!(app_by_name("swim").unwrap().class, AppClass::Both);
        assert!(app_by_name("doom").is_none());
    }

    #[test]
    fn parameters_are_sane() {
        for app in all_apps() {
            assert!(app.base_cpi > 0.0 && app.base_cpi < 5.0, "{}", app.name);
            assert!(app.mlp >= 0.5 && app.mlp <= 4.0, "{}", app.name);
            assert!((0.0..=1.0).contains(&app.activity), "{}", app.name);
            assert!(app.apki > 0.0, "{}", app.name);
            // apki must be able to carry the peak miss rate at the minimum
            // allocation (one 128 kB region).
            let peak_mpki = app.mpki_at(128.0 * 1024.0);
            assert!(
                app.apki >= peak_mpki * 0.9,
                "{}: apki {} < peak mpki {peak_mpki}",
                app.name,
                app.apki
            );
        }
    }

    #[test]
    fn mcf_cliff_at_1_5_mb() {
        // Paper, Figure 2: mcf's miss rate is "almost zero" once it
        // secures its 1.5 MB working set.
        let mcf = app_by_name("mcf").unwrap();
        assert_eq!(mcf.mpki_at(1.3 * 1024.0 * 1024.0), 45.0);
        assert_eq!(mcf.mpki_at(1.6 * 1024.0 * 1024.0), 2.0);
    }
}
