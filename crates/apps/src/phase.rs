//! Time-varying application behaviour (phases).
//!
//! §4.3 of the paper motivates re-running the budget re-assignment every
//! 1 ms "to handle the changing resource demands due to context switches
//! and application phase changes". This module models the latter: an
//! application that alternates between two behaviours (e.g. a
//! cache-friendly solve phase and a compute-bound assembly phase) on a
//! fixed quantum schedule. The integration tests drive a market across a
//! phase change and check the allocation follows.

use crate::profile::{AppProfile, MpkiShape};

/// A two-phase application: phase A is the base profile; phase B swaps in
/// a different miss curve and activity factor.
#[derive(Debug, Clone, Copy)]
pub struct PhasedApp {
    /// Phase-A behaviour (also supplies name, CPI, MLP, APKI).
    pub base: AppProfile,
    /// Phase-B miss curve.
    pub alt_mpki: MpkiShape,
    /// Phase-B activity factor.
    pub alt_activity: f64,
    /// Full cycle length in allocation quanta.
    pub period_quanta: usize,
    /// Fraction of the cycle spent in phase A, in `(0, 1)`.
    pub duty: f64,
}

impl PhasedApp {
    /// Creates a phased application.
    ///
    /// # Panics
    ///
    /// Panics if `period_quanta` is zero or `duty` is outside `(0, 1)`.
    pub fn new(
        base: AppProfile,
        alt_mpki: MpkiShape,
        alt_activity: f64,
        period_quanta: usize,
        duty: f64,
    ) -> Self {
        assert!(period_quanta > 0, "period must be non-zero");
        assert!(duty > 0.0 && duty < 1.0, "duty must be in (0, 1)");
        Self {
            base,
            alt_mpki,
            alt_activity,
            period_quanta,
            duty,
        }
    }

    /// Whether quantum `q` falls in phase A.
    pub fn in_phase_a(&self, quantum: usize) -> bool {
        let pos = quantum % self.period_quanta;
        (pos as f64) < self.duty * self.period_quanta as f64
    }

    /// The effective profile during quantum `q`. The returned profile
    /// keeps the base name/CPI/MLP/APKI and swaps the phase-dependent
    /// fields.
    pub fn profile_at(&self, quantum: usize) -> AppProfile {
        if self.in_phase_a(quantum) {
            self.base
        } else {
            AppProfile {
                mpki: self.alt_mpki,
                activity: self.alt_activity,
                ..self.base
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::app_by_name;

    fn phased() -> PhasedApp {
        // A cache-hungry solve phase (mcf-like base) alternating with a
        // compute-bound phase.
        PhasedApp::new(
            *app_by_name("mcf").unwrap(),
            MpkiShape::Flat { mpki: 0.5 },
            0.95,
            10,
            0.6,
        )
    }

    #[test]
    fn schedule_follows_duty_cycle() {
        let p = phased();
        let in_a: Vec<bool> = (0..10).map(|q| p.in_phase_a(q)).collect();
        assert_eq!(in_a.iter().filter(|&&x| x).count(), 6, "60% duty");
        assert!(in_a[0] && in_a[5]);
        assert!(!in_a[6] && !in_a[9]);
        // Periodic.
        assert_eq!(p.in_phase_a(3), p.in_phase_a(13));
    }

    #[test]
    fn profiles_swap_phase_dependent_fields_only() {
        let p = phased();
        let a = p.profile_at(0);
        let b = p.profile_at(7);
        assert_eq!(a.name, b.name);
        assert_eq!(a.base_cpi, b.base_cpi);
        assert_eq!(a.mpki_at(1e6), 45.0, "phase A keeps the mcf cliff");
        assert_eq!(b.mpki_at(1e6), 0.5, "phase B is compute-bound");
        assert_eq!(b.activity, 0.95);
    }

    #[test]
    #[should_panic(expected = "duty")]
    fn rejects_bad_duty() {
        let _ = PhasedApp::new(
            *app_by_name("mcf").unwrap(),
            MpkiShape::Flat { mpki: 1.0 },
            0.9,
            4,
            1.5,
        );
    }
}
