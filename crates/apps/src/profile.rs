//! Application profiles: the parameters that drive every model.

use rebudget_cache::MissCurve;

/// Resource-sensitivity class used by the paper's workload generator (§5):
/// *Cache-sensitive* (C), *Power-sensitive* (P), *Both-sensitive* (B), and
/// *None* (N).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppClass {
    /// Gains mostly from additional cache capacity.
    Cache,
    /// Gains mostly from additional power (frequency).
    Power,
    /// Gains substantially from both resources.
    Both,
    /// Largely insensitive to either resource.
    None,
}

impl AppClass {
    /// The single-letter code used in bundle category names (`C`, `P`,
    /// `B`, `N`).
    pub fn letter(self) -> char {
        match self {
            AppClass::Cache => 'C',
            AppClass::Power => 'P',
            AppClass::Both => 'B',
            AppClass::None => 'N',
        }
    }

    /// Parses a category letter.
    pub fn from_letter(c: char) -> Option<Self> {
        match c {
            'C' => Some(AppClass::Cache),
            'P' => Some(AppClass::Power),
            'B' => Some(AppClass::Both),
            'N' => Some(AppClass::None),
            _ => None,
        }
    }

    /// All four classes in canonical order.
    pub const ALL: [AppClass; 4] = [
        AppClass::Cache,
        AppClass::Power,
        AppClass::Both,
        AppClass::None,
    ];
}

impl std::fmt::Display for AppClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.letter())
    }
}

/// Benchmark suite of origin (informational).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC CPU2000 integer.
    Spec2000Int,
    /// SPEC CPU2000 floating point.
    Spec2000Fp,
    /// SPEC CPU2006.
    Spec2006,
}

/// The shape of an application's L2 miss curve (misses per
/// kilo-instruction as a function of allocated cache bytes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MpkiShape {
    /// `mpki(s) = max(floor, base · (ref_bytes / s)^alpha)` — the smooth
    /// concave-utility shape typical of *vpr*-like applications.
    PowerLaw {
        /// MPKI at `ref_bytes`.
        base: f64,
        /// Reference capacity in bytes.
        ref_bytes: f64,
        /// Decay exponent.
        alpha: f64,
        /// MPKI floor (compulsory misses).
        floor: f64,
    },
    /// A working-set cliff: `high` MPKI below `ws_bytes`, dropping to
    /// `low` across a `width_bytes` transition — *mcf*'s shape in
    /// Figure 2.
    Cliff {
        /// MPKI below the working set.
        high: f64,
        /// MPKI once the working set fits.
        low: f64,
        /// Working-set size in bytes.
        ws_bytes: f64,
        /// Width of the transition region in bytes.
        width_bytes: f64,
    },
    /// `mpki(s) = floor + (base − floor) · exp(−s / decay_bytes)`.
    Exponential {
        /// MPKI as capacity approaches zero.
        base: f64,
        /// Decay constant in bytes.
        decay_bytes: f64,
        /// MPKI floor.
        floor: f64,
    },
    /// Capacity-independent MPKI (streaming or tiny working set).
    Flat {
        /// The constant MPKI.
        mpki: f64,
    },
}

impl MpkiShape {
    /// Misses per kilo-instruction at `bytes` of cache.
    pub fn mpki(&self, bytes: f64) -> f64 {
        let bytes = bytes.max(1.0);
        match *self {
            MpkiShape::PowerLaw {
                base,
                ref_bytes,
                alpha,
                floor,
            } => (base * (ref_bytes / bytes).powf(alpha)).max(floor),
            MpkiShape::Cliff {
                high,
                low,
                ws_bytes,
                width_bytes,
            } => {
                if bytes <= ws_bytes - width_bytes {
                    high
                } else if bytes >= ws_bytes {
                    low
                } else {
                    let t = (bytes - (ws_bytes - width_bytes)) / width_bytes;
                    high + t * (low - high)
                }
            }
            MpkiShape::Exponential {
                base,
                decay_bytes,
                floor,
            } => floor + (base - floor) * (-bytes / decay_bytes).exp(),
            MpkiShape::Flat { mpki } => mpki,
        }
    }
}

/// A complete synthetic application model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppProfile {
    /// Benchmark name (e.g. `"mcf"`).
    pub name: &'static str,
    /// Suite of origin.
    pub suite: Suite,
    /// Intended sensitivity class (validated against [`crate::classify::classify`]).
    pub class: AppClass,
    /// Compute-phase cycles per instruction (frequency-independent).
    pub base_cpi: f64,
    /// The L2 miss curve shape.
    pub mpki: MpkiShape,
    /// Memory-level parallelism: effective overlap divisor on miss latency.
    pub mlp: f64,
    /// Dynamic-power activity factor in `[0, 1]`.
    pub activity: f64,
    /// L2 accesses per kilo-instruction (for trace generation; ≥ peak MPKI).
    pub apki: f64,
}

impl AppProfile {
    /// Misses per kilo-instruction at `bytes` of allocated cache.
    pub fn mpki_at(&self, bytes: f64) -> f64 {
        self.mpki.mpki(bytes)
    }

    /// Samples the miss curve at the given capacities (bytes), returning a
    /// [`MissCurve`] in MPKI units. Capacities must be increasing.
    ///
    /// # Panics
    ///
    /// Panics if `capacities` produces an invalid curve (non-increasing
    /// capacities), which indicates a caller bug.
    pub fn miss_curve(&self, capacities: &[f64]) -> MissCurve {
        let mut points: Vec<(f64, f64)> = Vec::with_capacity(capacities.len());
        let mut floor = f64::INFINITY;
        for &c in capacities {
            let mut m = self.mpki_at(c);
            if m > floor {
                m = floor; // enforce monotone non-increase against shape quirks
            }
            floor = m;
            points.push((c, m));
        }
        MissCurve::new(points).expect("profile miss curves are valid by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_letters_round_trip() {
        for class in AppClass::ALL {
            assert_eq!(AppClass::from_letter(class.letter()), Some(class));
            assert_eq!(format!("{class}").len(), 1);
        }
        assert_eq!(AppClass::from_letter('X'), None);
    }

    #[test]
    fn power_law_decays_to_floor() {
        let s = MpkiShape::PowerLaw {
            base: 10.0,
            ref_bytes: 128.0 * 1024.0,
            alpha: 0.5,
            floor: 1.0,
        };
        assert_eq!(s.mpki(128.0 * 1024.0), 10.0);
        assert!((s.mpki(512.0 * 1024.0) - 5.0).abs() < 1e-9);
        assert_eq!(s.mpki(1e12), 1.0);
    }

    #[test]
    fn cliff_has_three_regimes() {
        let s = MpkiShape::Cliff {
            high: 45.0,
            low: 5.0,
            ws_bytes: 1536.0 * 1024.0,
            width_bytes: 128.0 * 1024.0,
        };
        assert_eq!(s.mpki(1024.0 * 1024.0), 45.0);
        assert_eq!(s.mpki(2048.0 * 1024.0), 5.0);
        let mid = s.mpki(1472.0 * 1024.0);
        assert!(mid < 45.0 && mid > 5.0);
    }

    #[test]
    fn exponential_and_flat() {
        let e = MpkiShape::Exponential {
            base: 4.0,
            decay_bytes: 100.0,
            floor: 1.0,
        };
        assert!(e.mpki(1.0) > 3.9 && e.mpki(1.0) <= 4.0);
        assert!((e.mpki(1e9) - 1.0).abs() < 1e-9);
        let f = MpkiShape::Flat { mpki: 7.0 };
        assert_eq!(f.mpki(1.0), 7.0);
        assert_eq!(f.mpki(1e9), 7.0);
    }

    #[test]
    fn miss_curve_is_monotone_even_across_shapes() {
        let p = AppProfile {
            name: "x",
            suite: Suite::Spec2006,
            class: AppClass::Cache,
            base_cpi: 1.0,
            mpki: MpkiShape::Cliff {
                high: 40.0,
                low: 2.0,
                ws_bytes: 1.5e6,
                width_bytes: 1e5,
            },
            mlp: 1.5,
            activity: 0.5,
            apki: 50.0,
        };
        let caps: Vec<f64> = (1..=16).map(|k| k as f64 * 128.0 * 1024.0).collect();
        let curve = p.miss_curve(&caps);
        assert!(curve.misses().windows(2).all(|w| w[1] <= w[0]));
        assert_eq!(curve.capacities().len(), 16);
    }
}
