#![warn(missing_docs)]

//! Synthetic application models standing in for the paper's SPEC workloads.
//!
//! The paper evaluates on 24 SPEC CPU2000/2006 applications, cross-compiled
//! to MIPS and simulated in SESC over SimPoint regions (§5). We cannot ship
//! SPEC, so this crate provides 24 synthetic models whose *resource
//! behaviour* reproduces the shapes the paper depends on:
//!
//! * per-application **miss curves** (misses per kilo-instruction vs. cache
//!   size), including *mcf*'s famous 1.5 MB working-set cliff and *vpr*'s
//!   smooth concave curve (Figure 2 of the paper);
//! * compute/memory **phase decomposition** — the paper's utility monitor
//!   splits execution into a frequency-scaled compute phase and a
//!   cache-dependent memory phase (§4.1.1); [`perf`] implements that model;
//! * **activity factors** governing dynamic power draw;
//! * the four sensitivity classes — *Cache* (C), *Power* (P), *Both* (B),
//!   *None* (N) — that the paper's workload generator draws from
//!   ([`mod@classify`] recomputes them from first principles and the test suite
//!   checks they match the hardcoded labels);
//! * synthetic **address traces** per model ([`trace`]) so the real cache
//!   substrate (UMON, Futility Scaling) can be driven end to end.

pub mod classify;
pub mod perf;
pub mod phase;
pub mod profile;
pub mod spec;
pub mod trace;

pub use classify::classify;
pub use profile::{AppClass, AppProfile, MpkiShape, Suite};
pub use spec::{all_apps, app_by_name};
