//! The compute/memory phase performance model (§4.1.1 of the paper).
//!
//! The paper estimates execution time by splitting it into a *compute
//! phase*, whose length scales with frequency, and a *memory phase*, whose
//! length depends on the cache allocation (UMON miss estimates × a
//! critical-path memory latency) and is frequency-independent:
//!
//! `t_per_kilo_instruction = 1000 · CPI / f  +  MPKI(cache) · L_mem / MLP`
//!
//! Utility is performance normalized to the stand-alone configuration
//! (all cache, maximum frequency): `U = perf(r) / perf(alone)` — a value in
//! `(0, 1]`, exactly the paper's normalized-IPC convention.

use crate::profile::AppProfile;

/// Machine parameters the phase model needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfEnv {
    /// Effective memory (L2-miss) latency in nanoseconds, from the DRAM
    /// model (DDR3-1600 round trip ≈ 70–90 ns loaded).
    pub mem_latency_ns: f64,
    /// Cache capacity of the stand-alone ("alone") configuration in bytes
    /// (the paper caps profiling at 2 MB, §5 footnote 3).
    pub alone_cache_bytes: f64,
    /// Frequency of the stand-alone configuration in GHz.
    pub alone_freq_ghz: f64,
}

impl PerfEnv {
    /// The paper's reference environment: 80 ns memory latency, 2 MB cache
    /// cap, 4 GHz.
    pub fn paper() -> Self {
        Self {
            mem_latency_ns: 80.0,
            alone_cache_bytes: 2.0 * 1024.0 * 1024.0,
            alone_freq_ghz: 4.0,
        }
    }
}

impl Default for PerfEnv {
    fn default() -> Self {
        Self::paper()
    }
}

/// Nanoseconds to execute one kilo-instruction at the given allocation.
pub fn time_per_kilo_instruction(
    app: &AppProfile,
    env: &PerfEnv,
    cache_bytes: f64,
    freq_ghz: f64,
) -> f64 {
    let compute_ns = 1000.0 * app.base_cpi / freq_ghz.max(1e-3);
    let memory_ns = app.mpki_at(cache_bytes) * env.mem_latency_ns / app.mlp.max(0.1);
    compute_ns + memory_ns
}

/// Performance in kilo-instructions per nanosecond (arbitrary but
/// consistent unit).
pub fn performance(app: &AppProfile, env: &PerfEnv, cache_bytes: f64, freq_ghz: f64) -> f64 {
    1.0 / time_per_kilo_instruction(app, env, cache_bytes, freq_ghz)
}

/// Instructions per cycle at the given allocation.
pub fn ipc(app: &AppProfile, env: &PerfEnv, cache_bytes: f64, freq_ghz: f64) -> f64 {
    // instr/ns ÷ cycles/ns = instr/cycle.
    1000.0 * performance(app, env, cache_bytes, freq_ghz) / freq_ghz
}

/// Normalized utility: `perf(cache, f) / perf(alone)` (§4.1.1). Values lie
/// in `(0, 1]` whenever the allocation is within the stand-alone envelope.
pub fn utility(app: &AppProfile, env: &PerfEnv, cache_bytes: f64, freq_ghz: f64) -> f64 {
    performance(app, env, cache_bytes, freq_ghz)
        / performance(app, env, env.alone_cache_bytes, env.alone_freq_ghz)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::app_by_name;

    #[test]
    fn utility_is_one_when_alone() {
        let env = PerfEnv::paper();
        for app in crate::spec::all_apps() {
            let u = utility(app, &env, env.alone_cache_bytes, env.alone_freq_ghz);
            assert!((u - 1.0).abs() < 1e-12, "{}: {u}", app.name);
        }
    }

    #[test]
    fn utility_monotone_in_both_resources() {
        let env = PerfEnv::paper();
        let app = app_by_name("vpr").unwrap();
        let mut prev = 0.0;
        for k in 1..=16 {
            let u = utility(app, &env, k as f64 * 128.0 * 1024.0, 2.0);
            assert!(u >= prev);
            prev = u;
        }
        let mut prev = 0.0;
        for k in 0..=8 {
            let u = utility(app, &env, 1e6, 0.8 + k as f64 * 0.4);
            assert!(u >= prev);
            prev = u;
        }
    }

    #[test]
    fn mcf_cliff_shows_in_utility() {
        // Figure 2: mcf's normalized utility is ~flat low, then jumps once
        // its 1.5 MB working set fits.
        let env = PerfEnv::paper();
        let mcf = app_by_name("mcf").unwrap();
        let below = utility(mcf, &env, 1.0 * 1024.0 * 1024.0, 4.0);
        let above = utility(mcf, &env, 1.6 * 1024.0 * 1024.0, 4.0);
        assert!(below < 0.45, "below-cliff utility {below}");
        assert!(above > 0.85, "above-cliff utility {above}");
    }

    #[test]
    fn compute_bound_app_scales_with_frequency() {
        let env = PerfEnv::paper();
        let sixtrack = app_by_name("sixtrack").unwrap();
        let slow = utility(sixtrack, &env, 128.0 * 1024.0, 0.8);
        let fast = utility(sixtrack, &env, 128.0 * 1024.0, 4.0);
        assert!(
            fast / slow > 3.0,
            "sixtrack should scale ~linearly with f: {slow} → {fast}"
        );
    }

    #[test]
    fn memory_bound_app_barely_scales_with_frequency() {
        let env = PerfEnv::paper();
        let libq = app_by_name("libquantum").unwrap();
        let slow = utility(libq, &env, 256.0 * 1024.0, 0.8);
        let fast = utility(libq, &env, 256.0 * 1024.0, 4.0);
        assert!(
            fast / slow < 1.6,
            "libquantum is memory-bound: {slow} → {fast}"
        );
    }

    #[test]
    fn ipc_consistent_with_performance() {
        let env = PerfEnv::paper();
        let app = app_by_name("swim").unwrap();
        let f = 2.0;
        let p = performance(app, &env, 1e6, f);
        let i = ipc(app, &env, 1e6, f);
        assert!((i - 1000.0 * p / f).abs() < 1e-12);
    }
}
