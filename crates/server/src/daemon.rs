//! The single-threaded, non-blocking serving loop.
//!
//! One thread owns everything: the listener, every connection, the
//! bounded admission queue, and the [`ServerCore`]. Connections are
//! `std` sockets in non-blocking mode polled in a loop — no async
//! runtime, matching the workspace's zero-dependency rule.
//!
//! Robustness behaviors, each with its own counter (`server.*` in the
//! metrics registry, mirrored locally for the `stats` response):
//!
//! * **Bounded admission** — arrive/update/depart queue behind
//!   `queue_cap`; overflow is *shed* with
//!   `{"ok":false,"reason":"shed"}` instead of queued unboundedly.
//! * **Frame caps** — a line longer than `frame_cap` bytes is rejected
//!   (`oversized`) and the connection closed; a malformed line gets a
//!   `malformed` rejection but keeps the connection.
//! * **Slowloris guard** — a connection holding a partial frame longer
//!   than `read_timeout` without sending another byte is dropped.
//! * **Disconnect tolerance** — a client vanishing mid-conversation
//!   never stalls the loop; pending responses to it are discarded.
//!
//! Every complete request line is answered with exactly one response
//! line, in order. Ticks run either on an explicit `tick` command
//! (`tick_interval: None` — the deterministic mode the chaos harness
//! and lockstep clients use) or on a timer.

use std::collections::VecDeque;
use std::io::{self, Read as _, Write as _};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use rebudget_telemetry as telemetry;

use crate::proto::{err_response, ok_response, parse_request, Request};
use crate::state::{ServerCore, TickReport};
use crate::ServerResult;

/// Serving-loop knobs.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Admission queue bound; overflow is shed.
    pub queue_cap: usize,
    /// Maximum bytes per request line.
    pub frame_cap: usize,
    /// How long a connection may hold a partial frame without sending
    /// another byte before it is dropped (slowloris guard).
    pub read_timeout: Duration,
    /// Timer-driven tick period; `None` runs ticks only on explicit
    /// `tick` commands (the deterministic mode).
    pub tick_interval: Option<Duration>,
    /// Shut down (seal the ledger) after this many committed ticks.
    pub max_ticks: Option<u64>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        Self {
            queue_cap: 1024,
            frame_cap: 64 * 1024,
            read_timeout: Duration::from_secs(5),
            tick_interval: None,
            max_ticks: None,
        }
    }
}

/// Where the daemon listens.
#[derive(Debug, Clone)]
pub enum Endpoint {
    /// A Unix domain socket at this path (removed and re-bound if a
    /// stale file is left from a killed daemon).
    #[cfg(unix)]
    Unix(PathBuf),
    /// A TCP listen address, e.g. `127.0.0.1:0`.
    Tcp(String),
}

trait Sock: io::Read + io::Write + Send {}
#[cfg(unix)]
impl Sock for UnixStream {}
impl Sock for TcpStream {}

/// A bound listener, split from [`Daemon::serve`] so callers can
/// announce readiness (and the resumed tick) before serving begins.
pub struct Listener {
    inner: ListenerInner,
    /// Human-readable bound address.
    pub local_addr: String,
}

enum ListenerInner {
    #[cfg(unix)]
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    /// Binds (non-blocking) to `endpoint`.
    ///
    /// # Errors
    ///
    /// [`crate::ServerError::Io`] for bind failures.
    pub fn bind(endpoint: &Endpoint) -> ServerResult<Self> {
        match endpoint {
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                // A SIGKILLed daemon leaves its socket file behind; the
                // state directory (ledger collision) is the real
                // single-instance guard, so a stale file is removed.
                let _ = std::fs::remove_file(path);
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                Ok(Self {
                    inner: ListenerInner::Unix(l),
                    local_addr: path.display().to_string(),
                })
            }
            Endpoint::Tcp(addr) => {
                let l = TcpListener::bind(addr)?;
                l.set_nonblocking(true)?;
                let local = l.local_addr()?;
                Ok(Self {
                    inner: ListenerInner::Tcp(l),
                    local_addr: local.to_string(),
                })
            }
        }
    }

    fn accept(&self) -> io::Result<Option<Box<dyn Sock>>> {
        let sock: Box<dyn Sock> = match &self.inner {
            #[cfg(unix)]
            ListenerInner::Unix(l) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(true)?;
                    Box::new(s)
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(None),
                Err(e) => return Err(e),
            },
            ListenerInner::Tcp(l) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(true)?;
                    s.set_nodelay(true)?;
                    Box::new(s)
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(None),
                Err(e) => return Err(e),
            },
        };
        Ok(Some(sock))
    }
}

/// Request accounting, mirrored into `server.*` counters. The ledger of
/// request fates: every complete admission frame ends up in exactly one
/// of `shed`, `accepted`, or `rejected` once its tick has run (or
/// `malformed` if it never parsed); `requests` counts every complete
/// frame received.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Complete request lines received (admission + control).
    pub requests: u64,
    /// Lines that failed to parse or validate.
    pub malformed: u64,
    /// Frames over `frame_cap` (connection closed).
    pub oversized: u64,
    /// Admission commands shed at the full queue.
    pub shed: u64,
    /// Admission commands applied successfully at a tick.
    pub accepted: u64,
    /// Admission commands rejected at apply (duplicate/unknown id, …).
    pub rejected: u64,
    /// Control commands handled (tick / stats / shutdown).
    pub control: u64,
    /// Connections dropped by the slowloris guard.
    pub slowloris: u64,
    /// Connections that disconnected (EOF or write failure).
    pub disconnects: u64,
    /// Ticks committed by this process (resumed ticks not included).
    pub ticks: u64,
    /// Ticks that fell back to `EqualShare`.
    pub fallback_ticks: u64,
}

macro_rules! bump {
    ($stats:expr, $field:ident) => {{
        $stats.$field += 1;
        telemetry::global()
            .registry
            .counter(concat!("server.", stringify!($field)))
            .incr();
    }};
}

struct Conn {
    /// `None` once closed — dropping the boxed stream closes the fd, so
    /// the peer actually observes EOF/reset.
    sock: Option<Box<dyn Sock>>,
    /// Monotone id; queued commands name their sender by id, not index,
    /// so a recycled slot can never receive someone else's rejection.
    id: u64,
    buf: Vec<u8>,
    out: Vec<u8>,
    last_activity: Instant,
}

impl Conn {
    fn is_open(&self) -> bool {
        self.sock.is_some()
    }

    /// Writes as much pending output as the socket will take.
    /// `Ok(true)` if fully drained, `Ok(false)` on `WouldBlock`,
    /// `Err` on a fatal socket error.
    fn write_out(&mut self) -> io::Result<bool> {
        let Some(sock) = self.sock.as_mut() else {
            return Ok(true);
        };
        while !self.out.is_empty() {
            match sock.write(&self.out) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.out.drain(..n);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }

    /// Best-effort flush of pending output, then drops the socket
    /// (which closes it).
    fn close(&mut self) {
        let _ = self.write_out();
        if let Some(sock) = self.sock.as_mut() {
            let _ = sock.flush();
        }
        self.sock = None;
        self.buf.clear();
        self.out.clear();
    }

    /// Drops the socket without flushing (for misbehaving peers).
    fn abort(&mut self) {
        self.sock = None;
        self.buf.clear();
        self.out.clear();
    }
}

/// One queued admission command.
struct Queued {
    req: Request,
    /// [`Conn::id`] of the (possibly since-departed) sender.
    conn_id: u64,
}

/// What a serving run did, for the CLI's summary line.
#[derive(Debug, Clone)]
pub struct DaemonSummary {
    /// Ticks committed across the daemon's lifetime (including resumed
    /// ones from before a crash).
    pub ticks: u64,
    /// Sealed ledger record count.
    pub records: usize,
    /// Request accounting for this process.
    pub stats: Stats,
}

/// The serving loop around a [`ServerCore`].
pub struct Daemon {
    core: ServerCore,
    config: DaemonConfig,
    stats: Stats,
    queue: VecDeque<Queued>,
    conns: Vec<Conn>,
    next_conn_id: u64,
    shutdown: bool,
}

impl Daemon {
    /// Wraps a recovered-or-fresh core in a serving loop.
    #[must_use]
    pub fn new(core: ServerCore, config: DaemonConfig) -> Self {
        Self {
            core,
            config,
            stats: Stats::default(),
            queue: VecDeque::new(),
            conns: Vec::new(),
            next_conn_id: 0,
            shutdown: false,
        }
    }

    /// The wrapped core (for readiness announcements).
    #[must_use]
    pub fn core(&self) -> &ServerCore {
        &self.core
    }

    /// Serves until a `shutdown` command (or `max_ticks`), then seals
    /// the ledger.
    ///
    /// # Errors
    ///
    /// [`crate::ServerError::Io`] for listener failures and
    /// [`crate::ServerError::Market`]/[`crate::ServerError::Snapshot`]
    /// from tick commits. Per-connection errors are handled, not
    /// propagated.
    pub fn serve(mut self, listener: Listener) -> ServerResult<DaemonSummary> {
        let mut last_tick = Instant::now();
        loop {
            let mut active = false;
            while let Some(sock) = listener.accept()? {
                let id = self.next_conn_id;
                self.next_conn_id += 1;
                self.conns.push(Conn {
                    sock: Some(sock),
                    id,
                    buf: Vec::new(),
                    out: Vec::new(),
                    last_activity: Instant::now(),
                });
                active = true;
            }
            for i in 0..self.conns.len() {
                if self.conns[i].is_open() {
                    active |= self.pump_conn(i)?;
                }
            }
            if self.shutdown {
                break;
            }
            if let Some(interval) = self.config.tick_interval {
                if last_tick.elapsed() >= interval {
                    self.run_tick()?;
                    last_tick = Instant::now();
                    active = true;
                }
            }
            if let Some(max) = self.config.max_ticks {
                if self.core.tick_index() >= max {
                    break;
                }
            }
            self.guard_slowloris();
            self.flush_all();
            if !active {
                std::thread::sleep(Duration::from_micros(500));
            }
        }
        self.flush_all();
        for conn in &mut self.conns {
            conn.close();
        }
        let records = self.core.seal()?;
        Ok(DaemonSummary {
            ticks: self.core.tick_index(),
            records,
            stats: self.stats,
        })
    }

    /// Reads whatever `conn` has, handling every complete line.
    /// Returns whether anything happened.
    fn pump_conn(&mut self, i: usize) -> ServerResult<bool> {
        let mut active = false;
        let mut eof = false;
        let mut tmp = [0u8; 4096];
        while let Some(sock) = self.conns[i].sock.as_mut() {
            match sock.read(&mut tmp) {
                Ok(0) => {
                    eof = true;
                    active = true;
                    break;
                }
                Ok(n) => {
                    self.conns[i].buf.extend_from_slice(&tmp[..n]);
                    self.conns[i].last_activity = Instant::now();
                    active = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    eof = true;
                    active = true;
                    break;
                }
            }
        }
        // Handle every complete buffered line — including lines that
        // arrived in the same segment as an EOF — enforcing the frame
        // cap on both complete and still-partial frames.
        loop {
            let conn = &mut self.conns[i];
            if !conn.is_open() {
                break;
            }
            match conn.buf.iter().position(|&b| b == b'\n') {
                Some(pos) if pos > self.config.frame_cap => {
                    self.oversize(i);
                    break;
                }
                Some(pos) => {
                    let line: Vec<u8> = conn.buf.drain(..=pos).collect();
                    let line = String::from_utf8_lossy(&line[..pos]).into_owned();
                    let line = line.trim_end_matches('\r').to_string();
                    if line.is_empty() {
                        continue;
                    }
                    self.handle_line(i, &line)?;
                    active = true;
                }
                None if conn.buf.len() > self.config.frame_cap => {
                    self.oversize(i);
                    break;
                }
                None => break,
            }
        }
        if eof && self.conns[i].is_open() {
            bump!(self.stats, disconnects);
            self.conns[i].close();
        }
        Ok(active)
    }

    fn oversize(&mut self, i: usize) {
        bump!(self.stats, oversized);
        let cap = self.config.frame_cap;
        self.respond(
            i,
            &err_response("oversized", &format!("frame exceeds {cap} bytes")),
        );
        // `close` flushes the rejection before dropping the socket.
        self.conns[i].close();
    }

    fn event_request(&self, cmd: &str, outcome: &str) {
        if telemetry::enabled() {
            telemetry::record(
                telemetry::Event::new("server_request")
                    .field_str("cmd", cmd)
                    .field_str("outcome", outcome),
            );
        }
    }

    fn handle_line(&mut self, i: usize, line: &str) -> ServerResult<()> {
        bump!(self.stats, requests);
        let req = match parse_request(line) {
            Ok(req) => req,
            Err(e) => {
                bump!(self.stats, malformed);
                self.event_request("?", "malformed");
                self.respond(i, &err_response("malformed", &e.0));
                return Ok(());
            }
        };
        if req.is_admission() {
            if self.queue.len() >= self.config.queue_cap {
                bump!(self.stats, shed);
                self.event_request(req.cmd(), "shed");
                let cap = self.config.queue_cap;
                self.respond(
                    i,
                    &err_response("shed", &format!("admission queue full (cap {cap})")),
                );
            } else {
                self.event_request(req.cmd(), "queued");
                let ack = ok_response(&[
                    ("queued", "true".into()),
                    ("tick", self.core.tick_index().to_string()),
                ]);
                let conn_id = self.conns[i].id;
                self.queue.push_back(Queued { req, conn_id });
                self.respond(i, &ack);
            }
            return Ok(());
        }
        bump!(self.stats, control);
        match req {
            Request::Tick => {
                let report = self.run_tick()?;
                self.event_request("tick", "ok");
                let line = ok_response(&[
                    ("tick", report.tick.to_string()),
                    ("players", report.players.to_string()),
                    ("admitted", report.admitted.to_string()),
                    ("converged", report.converged.to_string()),
                    ("fallback", report.fallback.to_string()),
                    ("iterations", report.iterations.to_string()),
                ]);
                self.respond(i, &line);
            }
            Request::Stats => {
                self.event_request("stats", "ok");
                let s = &self.stats;
                let line = ok_response(&[
                    ("tick", self.core.tick_index().to_string()),
                    ("players", self.core.players().to_string()),
                    ("degraded", self.core.degraded().to_string()),
                    ("records", self.core.records().to_string()),
                    ("queued", self.queue.len().to_string()),
                    ("requests", s.requests.to_string()),
                    ("accepted", s.accepted.to_string()),
                    ("rejected", s.rejected.to_string()),
                    ("shed", s.shed.to_string()),
                    ("malformed", s.malformed.to_string()),
                    ("oversized", s.oversized.to_string()),
                ]);
                self.respond(i, &line);
            }
            Request::Shutdown => {
                self.event_request("shutdown", "ok");
                // Any still-queued admissions are committed first: the
                // client was promised a tick would apply them.
                if !self.queue.is_empty() {
                    self.run_tick()?;
                }
                let line = ok_response(&[("records", self.core.records().to_string())]);
                self.respond(i, &line);
                self.shutdown = true;
            }
            _ => unreachable!("admission handled above"),
        }
        Ok(())
    }

    /// Drains the admission queue and commits one tick.
    fn run_tick(&mut self) -> ServerResult<TickReport> {
        let mut admitted = 0usize;
        while let Some(q) = self.queue.pop_front() {
            match self.core.apply(&q.req) {
                Ok(()) => {
                    bump!(self.stats, accepted);
                    admitted += 1;
                }
                Err(e) => {
                    bump!(self.stats, rejected);
                    self.event_request(q.req.cmd(), "rejected");
                    // The enqueue ack promised nothing beyond a try; a
                    // rejected apply is surfaced on the sender's
                    // connection as an extra line if it is still here.
                    if let Some(t) = self.conns.iter().position(|c| c.id == q.conn_id) {
                        self.respond(t, &err_response("rejected", &e.to_string()));
                    }
                }
            }
        }
        let report = self.core.tick(admitted)?;
        bump!(self.stats, ticks);
        if report.fallback {
            bump!(self.stats, fallback_ticks);
        }
        if telemetry::enabled() {
            telemetry::record(
                telemetry::Event::new("server_tick")
                    .field_u64("tick", report.tick)
                    .field_u64("players", report.players as u64)
                    .field_u64("admitted", report.admitted as u64)
                    .field_bool("converged", report.converged)
                    .field_bool("fallback", report.fallback),
            );
        }
        Ok(report)
    }

    fn respond(&mut self, i: usize, line: &str) {
        if let Some(conn) = self.conns.get_mut(i) {
            if conn.is_open() {
                conn.out.extend_from_slice(line.as_bytes());
                conn.out.push(b'\n');
            }
        }
    }

    fn guard_slowloris(&mut self) {
        let timeout = self.config.read_timeout;
        for i in 0..self.conns.len() {
            let conn = &mut self.conns[i];
            if conn.is_open() && !conn.buf.is_empty() && conn.last_activity.elapsed() > timeout {
                conn.abort();
                bump!(self.stats, slowloris);
            }
        }
    }

    fn flush_all(&mut self) {
        for i in 0..self.conns.len() {
            if !self.conns[i].is_open() || self.conns[i].out.is_empty() {
                continue;
            }
            if self.conns[i].write_out().is_err() {
                self.conns[i].abort();
                bump!(self.stats, disconnects);
            }
        }
        // Drop fully-closed trailing connections; interior slots keep
        // their index so in-flight line handling stays valid.
        while self.conns.last().is_some_and(|c| !c.is_open()) {
            self.conns.pop();
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::state::ServerConfig;
    use rebudget_market::equilibrium::EquilibriumOptions;
    use rebudget_market::{RetryPolicy, SolverKind};
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    fn test_config() -> ServerConfig {
        ServerConfig {
            capacities: vec![10.0; 4],
            solver: SolverKind::ProportionalResponse,
            options: EquilibriumOptions::large_scale(),
            retry: RetryPolicy::default(),
            fallback_after: 3,
            seed: 1,
            commit_delay_ms: 0,
        }
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rebudget-daemon-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Spawns a daemon on an ephemeral TCP port; returns the address
    /// and the serving thread's handle.
    fn spawn_daemon(
        tag: &str,
        dconfig: DaemonConfig,
    ) -> (String, std::thread::JoinHandle<DaemonSummary>) {
        let dir = temp_dir(tag);
        let core = ServerCore::open(test_config(), &dir).unwrap();
        let daemon = Daemon::new(core, dconfig);
        let listener = Listener::bind(&Endpoint::Tcp("127.0.0.1:0".into())).unwrap();
        let addr = listener.local_addr.clone();
        let handle = std::thread::spawn(move || daemon.serve(listener).unwrap());
        (addr, handle)
    }

    fn roundtrip(reader: &mut impl BufRead, sock: &mut impl Write, line: &str) -> String {
        writeln!(sock, "{line}").unwrap();
        sock.flush().unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        resp.trim_end().to_string()
    }

    #[test]
    fn serves_a_session_end_to_end() {
        let (addr, handle) = spawn_daemon("session", DaemonConfig::default());
        let sock = TcpStream::connect(&addr).unwrap();
        let mut reader = BufReader::new(sock.try_clone().unwrap());
        let mut sock = sock;
        let ack = roundtrip(
            &mut reader,
            &mut sock,
            "{\"cmd\":\"arrive\",\"id\":\"a\",\"budget\":100,\"interests\":[[0,1],[1,2]]}",
        );
        assert!(ack.contains("\"ok\":true"), "{ack}");
        let ack = roundtrip(
            &mut reader,
            &mut sock,
            "{\"cmd\":\"arrive\",\"id\":\"b\",\"budget\":100,\"interests\":[[1,1],[2,2]]}",
        );
        assert!(ack.contains("\"queued\":true"), "{ack}");
        let tick = roundtrip(&mut reader, &mut sock, "{\"cmd\":\"tick\"}");
        assert!(tick.contains("\"tick\":0"), "{tick}");
        assert!(tick.contains("\"players\":2"), "{tick}");
        assert!(tick.contains("\"admitted\":2"), "{tick}");
        assert!(tick.contains("\"converged\":true"), "{tick}");
        // Malformed line: named rejection, connection stays usable.
        let bad = roundtrip(&mut reader, &mut sock, "definitely not json");
        assert!(bad.contains("\"reason\":\"malformed\""), "{bad}");
        // Unknown player rejection surfaces at the tick.
        let ack = roundtrip(&mut reader, &mut sock, "{\"cmd\":\"depart\",\"id\":\"zz\"}");
        assert!(ack.contains("\"queued\":true"), "{ack}");
        writeln!(sock, "{{\"cmd\":\"tick\"}}").unwrap();
        let mut lines = Vec::new();
        for _ in 0..2 {
            let mut l = String::new();
            reader.read_line(&mut l).unwrap();
            lines.push(l);
        }
        let joined = lines.join("");
        assert!(joined.contains("\"reason\":\"rejected\""), "{joined}");
        assert!(joined.contains("\"tick\":1"), "{joined}");
        let stats = roundtrip(&mut reader, &mut sock, "{\"cmd\":\"stats\"}");
        assert!(stats.contains("\"players\":2"), "{stats}");
        assert!(stats.contains("\"rejected\":1"), "{stats}");
        let bye = roundtrip(&mut reader, &mut sock, "{\"cmd\":\"shutdown\"}");
        assert!(bye.contains("\"ok\":true"), "{bye}");
        let summary = handle.join().unwrap();
        assert_eq!(summary.ticks, 2);
        assert_eq!(summary.records, 2);
        assert_eq!(summary.stats.accepted, 2);
        assert_eq!(summary.stats.rejected, 1);
        assert_eq!(summary.stats.malformed, 1);
        // Every request frame is accounted for exactly once.
        assert_eq!(
            summary.stats.requests,
            summary.stats.accepted
                + summary.stats.rejected
                + summary.stats.shed
                + summary.stats.malformed
                + summary.stats.control
        );
    }

    #[test]
    fn sheds_above_the_admission_bound() {
        let config = DaemonConfig {
            queue_cap: 2,
            ..DaemonConfig::default()
        };
        let (addr, handle) = spawn_daemon("shed", config);
        let sock = TcpStream::connect(&addr).unwrap();
        let mut reader = BufReader::new(sock.try_clone().unwrap());
        let mut sock = sock;
        let mut sheds = 0;
        for k in 0..5 {
            let resp = roundtrip(
                &mut reader,
                &mut sock,
                &format!(
                    "{{\"cmd\":\"arrive\",\"id\":\"p{k}\",\"budget\":10,\"interests\":[[0,1]]}}"
                ),
            );
            if resp.contains("\"reason\":\"shed\"") {
                sheds += 1;
            }
        }
        assert_eq!(sheds, 3, "cap 2 of 5 queued");
        roundtrip(&mut reader, &mut sock, "{\"cmd\":\"tick\"}");
        roundtrip(&mut reader, &mut sock, "{\"cmd\":\"shutdown\"}");
        let summary = handle.join().unwrap();
        assert_eq!(summary.stats.shed, 3);
        assert_eq!(summary.stats.accepted, 2);
    }

    #[test]
    fn oversized_frames_close_the_connection() {
        let config = DaemonConfig {
            frame_cap: 128,
            ..DaemonConfig::default()
        };
        let (addr, handle) = spawn_daemon("oversize", config);
        let sock = TcpStream::connect(&addr).unwrap();
        let mut reader = BufReader::new(sock.try_clone().unwrap());
        let mut sock = sock;
        let huge = format!(
            "{{\"cmd\":\"arrive\",\"id\":\"p\",\"budget\":1,\"interests\":[[0,1]],\"pad\":\"{}\"}}",
            "x".repeat(512)
        );
        let resp = roundtrip(&mut reader, &mut sock, &huge);
        assert!(resp.contains("\"reason\":\"oversized\""), "{resp}");
        // The connection is closed after the rejection.
        let mut rest = String::new();
        reader.read_line(&mut rest).unwrap();
        assert!(rest.is_empty(), "EOF after oversized frame, got {rest:?}");
        // A fresh connection still works.
        let sock2 = TcpStream::connect(&addr).unwrap();
        let mut reader2 = BufReader::new(sock2.try_clone().unwrap());
        let mut sock2 = sock2;
        let bye = roundtrip(&mut reader2, &mut sock2, "{\"cmd\":\"shutdown\"}");
        assert!(bye.contains("\"ok\":true"), "{bye}");
        let summary = handle.join().unwrap();
        assert_eq!(summary.stats.oversized, 1);
    }

    #[test]
    fn slowloris_partial_frames_are_dropped() {
        let config = DaemonConfig {
            read_timeout: Duration::from_millis(50),
            ..DaemonConfig::default()
        };
        let (addr, handle) = spawn_daemon("slowloris", config);
        let mut slow = TcpStream::connect(&addr).unwrap();
        // A partial frame, never completed.
        slow.write_all(b"{\"cmd\":\"arr").unwrap();
        slow.flush().unwrap();
        std::thread::sleep(Duration::from_millis(200));
        // The guard must have dropped it: reads now see EOF/reset.
        let mut buf = [0u8; 16];
        let dropped = matches!(slow.read(&mut buf), Ok(0) | Err(_));
        assert!(dropped, "slowloris connection still open");
        let sock = TcpStream::connect(&addr).unwrap();
        let mut reader = BufReader::new(sock.try_clone().unwrap());
        let mut sock = sock;
        let bye = roundtrip(&mut reader, &mut sock, "{\"cmd\":\"shutdown\"}");
        assert!(bye.contains("\"ok\":true"), "{bye}");
        let summary = handle.join().unwrap();
        assert_eq!(summary.stats.slowloris, 1);
    }
}
