//! The daemon's durable tick state machine.
//!
//! [`ServerCore`] owns the live player table, the warm-start bid cache,
//! the append-only hash-chained ledger, and the crash-atomic snapshot.
//! Each [`ServerCore::tick`] assembles the current market, re-solves it
//! **warm-started from the previous quantum's bids**, appends one ledger
//! record, and then commits a snapshot — in that order, which is what
//! makes `kill -9` at any byte recoverable:
//!
//! * killed before the ledger append: the snapshot still says tick `T`
//!   and the ledger holds `T` records — resume re-runs tick `T`.
//! * killed mid-append: the torn tail is cut at
//!   [`rebudget_scenario::valid_prefix`]'s record boundary — same as
//!   above.
//! * killed between append and snapshot: the ledger holds `T + 1`
//!   records but the snapshot says `T` — recovery truncates the ledger
//!   back to the snapshot's `T` records and re-runs tick `T`, which is
//!   deterministic (same players, same warm seeds, same options) and so
//!   reproduces the truncated record **byte for byte**.
//! * killed mid-snapshot: [`rebudget_sim::checkpoint::write_atomic`]'s
//!   tmp/rename/`.prev` rotation guarantees a parseable generation
//!   survives; if only `.prev` does, that is an older tick and the
//!   ledger is truncated accordingly.
//!
//! No fsync is needed for these guarantees: a killed *process* loses
//! nothing from the kernel page cache, so `write_all` suffices. (A
//! power-cut story would need fsync; that is out of scope, as it is for
//! the checkpoint layer this reuses.)

use std::collections::BTreeMap;
use std::fs::File;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use rebudget_market::equilibrium::{EquilibriumOptions, WarmStart};
use rebudget_market::{
    solve_sparse_with_retry, solve_with_retry, RetryPolicy, SolverKind, SparseBids, SparseMarket,
    SparseUtilityKind,
};
use rebudget_scenario::{valid_prefix, Ledger, LedgerMeta};
use rebudget_sim::checkpoint::{fnv1a, prev_path, write_atomic};

use crate::{ServerError, ServerResult};

const SNAPSHOT_HEADER: &str = "rebudget-server-snapshot v1";

fn f64_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn hex_list(values: &[f64]) -> String {
    values
        .iter()
        .map(|&v| f64_hex(v))
        .collect::<Vec<_>>()
        .join(" ")
}

fn parse_hex_f64(s: &str) -> Option<f64> {
    // Fixed-width to keep snapshot lines canonical (encode emits 16).
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

/// Static configuration of the market the daemon serves.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Per-resource capacities (fixes the resource count `M`).
    pub capacities: Vec<f64>,
    /// Equilibrium engine for the per-tick solves. `Jacobi` densifies
    /// the sparse player table each tick (small markets only); the
    /// first-order engines solve it sparse.
    pub solver: SolverKind,
    /// Base solve options; the per-tick warm start is installed on top.
    pub options: EquilibriumOptions,
    /// Retry ladder each tick's solve runs under.
    pub retry: RetryPolicy,
    /// Consecutive failed ticks (non-converged after the whole ladder)
    /// before the daemon degrades to `EqualShare` allocations. Recovery
    /// is automatic: the solve is still attempted every tick, and the
    /// first converged one lifts the degradation.
    pub fallback_after: usize,
    /// Seed stamped into the ledger meta (the workload seed when driven
    /// by the seeded generator; purely descriptive).
    pub seed: u64,
    /// Chaos hook: sleep this long between the ledger append and the
    /// snapshot write of every tick, widening the crash window where
    /// the ledger is one record ahead of the snapshot. Zero (the
    /// default) in production; the kill-safety tests set it to make
    /// SIGKILL land inside that window deterministically often.
    pub commit_delay_ms: u64,
}

impl ServerConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`ServerError::Config`] for an empty or non-positive capacity
    /// vector or a zero `fallback_after`.
    pub fn validate(&self) -> ServerResult<()> {
        if self.capacities.is_empty() {
            return Err(ServerError::Config {
                reason: "server needs at least one resource".into(),
            });
        }
        if self.capacities.iter().any(|&c| !c.is_finite() || c <= 0.0) {
            return Err(ServerError::Config {
                reason: "every capacity must be finite and positive".into(),
            });
        }
        if self.fallback_after == 0 {
            return Err(ServerError::Config {
                reason: "fallback-after must be at least 1 tick".into(),
            });
        }
        Ok(())
    }
}

/// One live player.
#[derive(Debug, Clone, PartialEq)]
struct PlayerRec {
    budget: f64,
    /// `(resource, weight)` interests, sorted by resource.
    interests: Vec<(u32, f64)>,
    /// Bids from the last converged solve over exactly these interests —
    /// the next tick's warm seed. Cleared when the interest set changes.
    bids: Option<Vec<f64>>,
}

/// What one tick did, for the response line and telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct TickReport {
    /// The tick index just committed.
    pub tick: u64,
    /// Live players at solve time.
    pub players: usize,
    /// Admission commands applied in this tick's batch.
    pub admitted: usize,
    /// Whether the solve converged within its retry ladder.
    pub converged: bool,
    /// Whether the enforced allocation fell back to `EqualShare`.
    pub fallback: bool,
    /// Solver iterations of the final attempt (0 for an empty market).
    pub iterations: u64,
    /// Final residual (0 for an empty market).
    pub residual: f64,
    /// System efficiency of the enforced allocation.
    pub efficiency: f64,
}

/// An admission command's typed rejection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApplyError {
    /// `arrive` with an id that is already live.
    Duplicate(String),
    /// `depart`/`update` naming no live player.
    Unknown(String),
    /// An interest names a resource index `>= M`.
    ResourceRange(u32),
}

impl std::fmt::Display for ApplyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApplyError::Duplicate(id) => write!(f, "player '{id}' is already live"),
            ApplyError::Unknown(id) => write!(f, "no live player '{id}'"),
            ApplyError::ResourceRange(c) => write!(f, "resource index {c} out of range"),
        }
    }
}

/// The durable tick state machine. See the module docs for the commit
/// ordering that makes it kill-safe.
#[derive(Debug)]
pub struct ServerCore {
    config: ServerConfig,
    /// Live players, keyed by id. `BTreeMap` fixes the market's row
    /// order to id order, independent of arrival interleaving.
    players: BTreeMap<String, PlayerRec>,
    /// Next tick to run (ticks `0..tick` are committed).
    tick: u64,
    consecutive_failures: usize,
    degraded: bool,
    ledger: Ledger,
    ledger_file: File,
    ledger_path: PathBuf,
    snapshot_path: PathBuf,
    /// Bytes of `ledger.text()` already on disk.
    written: usize,
    /// Whether recovery fell back to the `.prev` snapshot generation.
    recovered_from_prev: bool,
}

impl ServerCore {
    /// Opens the daemon state under `state_dir`: recovers from an
    /// existing snapshot if one is present, otherwise starts fresh with
    /// a new ledger (`server.ledger`) and snapshot (`server.snapshot`).
    ///
    /// # Errors
    ///
    /// [`ServerError::Config`] for invalid configuration,
    /// [`ServerError::Ledger`] when a fresh start collides with an
    /// existing (immutable) ledger, [`ServerError::Snapshot`] when
    /// recovery finds no usable snapshot generation, and
    /// [`ServerError::Io`] for filesystem trouble.
    pub fn open(config: ServerConfig, state_dir: &Path) -> ServerResult<Self> {
        config.validate()?;
        std::fs::create_dir_all(state_dir)?;
        let ledger_path = state_dir.join("server.ledger");
        let snapshot_path = state_dir.join("server.snapshot");
        if snapshot_path.exists() || prev_path(&snapshot_path).exists() {
            Self::recover(config, ledger_path, snapshot_path)
        } else {
            Self::fresh(config, ledger_path, snapshot_path)
        }
    }

    fn ledger_meta(config: &ServerConfig) -> LedgerMeta {
        LedgerMeta {
            scenario: "server".into(),
            seed: config.seed,
            mechanism: config.solver.label().into(),
            workload: "online".into(),
            cores: 0,
            resources: config.capacities.len(),
            // The stream is open-ended; the seal carries the real count.
            quanta: 0,
            budget: 0.0,
            faults: String::new(),
        }
    }

    fn fresh(
        config: ServerConfig,
        ledger_path: PathBuf,
        snapshot_path: PathBuf,
    ) -> ServerResult<Self> {
        let ledger = Ledger::new(&Self::ledger_meta(&config));
        let mut ledger_file = rebudget_scenario::create_new_ledger_file(&ledger_path)?;
        ledger_file.write_all(ledger.text().as_bytes())?;
        ledger_file.flush()?;
        let written = ledger.text().len();
        let core = Self {
            config,
            players: BTreeMap::new(),
            tick: 0,
            consecutive_failures: 0,
            degraded: false,
            ledger,
            ledger_file,
            ledger_path,
            snapshot_path,
            written,
            recovered_from_prev: false,
        };
        core.write_snapshot()?;
        Ok(core)
    }

    fn recover(
        config: ServerConfig,
        ledger_path: PathBuf,
        snapshot_path: PathBuf,
    ) -> ServerResult<Self> {
        let ledger_text =
            std::fs::read_to_string(&ledger_path).map_err(|e| ServerError::Snapshot {
                reason: format!(
                    "snapshot exists but ledger '{}' is unreadable: {e}",
                    ledger_path.display()
                ),
            })?;
        let prefix = valid_prefix(&ledger_text);
        if prefix.header_bytes == 0 {
            return Err(ServerError::Snapshot {
                reason: format!(
                    "ledger '{}' has no valid header; cannot recover",
                    ledger_path.display()
                ),
            });
        }
        // Try the live snapshot first, then the rotated .prev generation.
        // A generation is usable only if the ledger still holds at least
        // as many valid records as the snapshot's tick (the ledger is
        // written before the snapshot, so this holds for every crash
        // point).
        let mut chosen: Option<(Decoded, bool)> = None;
        let mut failures: Vec<String> = Vec::new();
        for (path, is_prev) in [
            (snapshot_path.clone(), false),
            (prev_path(&snapshot_path), true),
        ] {
            match std::fs::read_to_string(&path) {
                Ok(text) => match decode_snapshot(&text, &config) {
                    Ok(snap) if (snap.tick as usize) <= prefix.records => {
                        chosen = Some((snap, is_prev));
                        break;
                    }
                    Ok(snap) => failures.push(format!(
                        "{}: snapshot tick {} ahead of ledger ({} records)",
                        path.display(),
                        snap.tick,
                        prefix.records
                    )),
                    Err(reason) => failures.push(format!("{}: {reason}", path.display())),
                },
                Err(e) => failures.push(format!("{}: {e}", path.display())),
            }
        }
        let Some((snap, recovered_from_prev)) = chosen else {
            return Err(ServerError::Snapshot {
                reason: format!("no usable snapshot generation: {}", failures.join("; ")),
            });
        };
        // Truncate the ledger to exactly the snapshot's records: drops
        // both torn tails and whole records from a crash that landed
        // between the ledger append and the snapshot write. The dropped
        // tick re-runs deterministically.
        let keep = if snap.tick == 0 {
            prefix.header_bytes
        } else {
            prefix.record_ends[snap.tick as usize - 1]
        };
        let file = std::fs::OpenOptions::new().write(true).open(&ledger_path)?;
        file.set_len(keep as u64)?;
        drop(file);
        let ledger = Ledger::resume(&ledger_text[..keep])?;
        let ledger_file = std::fs::OpenOptions::new()
            .append(true)
            .open(&ledger_path)?;
        Ok(Self {
            config,
            players: snap.players,
            tick: snap.tick,
            consecutive_failures: snap.failures,
            degraded: snap.degraded,
            ledger,
            ledger_file,
            ledger_path,
            snapshot_path,
            written: keep,
            recovered_from_prev,
        })
    }

    /// The next tick to run (ticks `0..tick()` are committed).
    pub fn tick_index(&self) -> u64 {
        self.tick
    }

    /// Live player count.
    pub fn players(&self) -> usize {
        self.players.len()
    }

    /// Whether the daemon is currently degraded to `EqualShare`.
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// Whether recovery used the rotated `.prev` snapshot generation.
    pub fn recovered_from_prev(&self) -> bool {
        self.recovered_from_prev
    }

    /// Ledger records committed so far (equals [`Self::tick_index`]).
    pub fn records(&self) -> usize {
        self.ledger.records()
    }

    /// Path of the ledger file.
    pub fn ledger_path(&self) -> &Path {
        &self.ledger_path
    }

    /// Applies one admission command (arrive / update / depart).
    ///
    /// # Errors
    ///
    /// [`ApplyError`] naming the rejection; the player table is
    /// unchanged on error.
    pub fn apply(&mut self, req: &crate::proto::Request) -> Result<(), ApplyError> {
        use crate::proto::Request;
        let m = self.config.capacities.len() as u32;
        let check_range = |interests: &[(u32, f64)]| {
            interests
                .iter()
                .find(|&&(c, _)| c >= m)
                .map_or(Ok(()), |&(c, _)| Err(ApplyError::ResourceRange(c)))
        };
        match req {
            Request::Arrive {
                id,
                budget,
                interests,
            } => {
                if self.players.contains_key(id) {
                    return Err(ApplyError::Duplicate(id.clone()));
                }
                check_range(interests)?;
                self.players.insert(
                    id.clone(),
                    PlayerRec {
                        budget: *budget,
                        interests: interests.clone(),
                        bids: None,
                    },
                );
                Ok(())
            }
            Request::Update { id, interests } => {
                check_range(interests)?;
                let rec = self
                    .players
                    .get_mut(id)
                    .ok_or_else(|| ApplyError::Unknown(id.clone()))?;
                if rec.interests != *interests {
                    rec.interests = interests.clone();
                    // The warm seed indexes the old interest set.
                    rec.bids = None;
                }
                Ok(())
            }
            Request::Depart { id } => self
                .players
                .remove(id)
                .map(|_| ())
                .ok_or_else(|| ApplyError::Unknown(id.clone())),
            _ => unreachable!("only admission commands reach apply()"),
        }
    }

    /// Runs one market quantum: solve (warm-started), append the ledger
    /// record, commit the snapshot. `admitted` is the size of this
    /// tick's admission batch, recorded in the ledger.
    ///
    /// # Errors
    ///
    /// [`ServerError::Market`] for a degenerate market the admission
    /// validation failed to catch, [`ServerError::Io`] for ledger or
    /// snapshot write failures. Non-convergence is **not** an error —
    /// it feeds the degradation counter.
    pub fn tick(&mut self, admitted: usize) -> ServerResult<TickReport> {
        let m = self.config.capacities.len();
        let n = self.players.len();
        let (solved, prices, alloc, utilities) = if n == 0 {
            (None, vec![0.0; m], Vec::new(), Vec::new())
        } else {
            let (outcome, report) = self.solve()?;
            (Some(report), outcome.0, outcome.1, outcome.2)
        };
        let converged = solved.as_ref().is_none_or(|r| r.0);
        let iterations = solved.as_ref().map_or(0, |r| r.1);
        let residual = solved.as_ref().map_or(0.0, |r| r.2);
        // Degradation bookkeeping: K consecutive failed ticks flip to
        // EqualShare; the first converged tick flips back.
        if n > 0 {
            if converged {
                self.consecutive_failures = 0;
                self.degraded = false;
            } else {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.config.fallback_after {
                    self.degraded = true;
                }
            }
        }
        let fallback = self.degraded && n > 0;
        let (alloc, utilities) = if fallback {
            self.equal_share()
        } else {
            (alloc, utilities)
        };
        let efficiency: f64 = utilities.iter().sum();
        let budgets: Vec<f64> = self.players.values().map(|p| p.budget).collect();
        let ids: Vec<&str> = self.players.keys().map(String::as_str).collect();
        let report = TickReport {
            tick: self.tick,
            players: n,
            admitted,
            converged,
            fallback,
            iterations,
            residual,
            efficiency,
        };
        // Commit point 1: the ledger record (crash before/inside this
        // write re-runs the tick from the previous snapshot).
        let alloc_hex = hex_list(&alloc);
        let fields: Vec<(&str, String)> = vec![
            ("players", n.to_string()),
            ("admitted", admitted.to_string()),
            ("converged", u8::from(converged).to_string()),
            ("fallback", u8::from(fallback).to_string()),
            ("iterations", iterations.to_string()),
            (
                "ids_fnv",
                format!("{:016x}", fnv1a(ids.join(";").as_bytes())),
            ),
            ("budgets", hex_list(&budgets)),
            ("prices", hex_list(&prices)),
            ("alloc_fnv", format!("{:016x}", fnv1a(alloc_hex.as_bytes()))),
            ("eff", f64_hex(efficiency)),
        ];
        self.ledger.append_section(self.tick as usize, &fields);
        self.ledger_file
            .write_all(&self.ledger.text().as_bytes()[self.written..])?;
        self.ledger_file.flush()?;
        self.written = self.ledger.text().len();
        self.tick += 1;
        if self.config.commit_delay_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(
                self.config.commit_delay_ms,
            ));
        }
        // Commit point 2: the snapshot (crash between the two replays
        // this tick deterministically and reproduces the record bytes).
        self.write_snapshot()?;
        Ok(report)
    }

    /// Solves the current market warm-started from the stored bids.
    /// Returns `((prices, alloc, utilities), (converged, iterations,
    /// residual))` where `alloc` is row-major over each player's
    /// interest set.
    #[allow(clippy::type_complexity)]
    fn solve(&mut self) -> ServerResult<((Vec<f64>, Vec<f64>, Vec<f64>), (bool, u64, f64))> {
        let m = self.config.capacities.len();
        let rows: Vec<Vec<(usize, f64)>> = self
            .players
            .values()
            .map(|p| p.interests.iter().map(|&(c, w)| (c as usize, w)).collect())
            .collect();
        let interests = SparseBids::from_rows(m, rows)?;
        let budgets: Vec<f64> = self.players.values().map(|p| p.budget).collect();
        let market = SparseMarket::new(
            self.config.capacities.clone(),
            budgets.clone(),
            interests,
            SparseUtilityKind::Linear,
        )?;
        if self.config.solver == SolverKind::Jacobi {
            return self.solve_dense(&market, &budgets);
        }
        // Warm seed over the CSR values: stored bids where the player
        // has a converged prior solve, equal split (== the cold start)
        // elsewhere. Per-row usability is the solver's problem.
        let mut warm = Vec::with_capacity(market.nnz());
        for rec in self.players.values() {
            match &rec.bids {
                Some(bids) if bids.len() == rec.interests.len() => warm.extend_from_slice(bids),
                _ => {
                    let k = rec.interests.len() as f64;
                    warm.extend(rec.interests.iter().map(|_| rec.budget / k));
                }
            }
        }
        let options = self
            .config
            .options
            .clone()
            .with_warm_start(WarmStart { bids: warm }.shared());
        let (out, retry) = solve_sparse_with_retry(&market, &options, &self.config.retry)?;
        if retry.converged {
            for (rec, i) in self.players.values_mut().zip(0..) {
                rec.bids = Some(out.bids.row_vals(i).to_vec());
            }
        }
        let alloc: Vec<f64> = (0..out.bids.players())
            .flat_map(|i| out.allocation_of(i).into_iter().map(|(_, x)| x))
            .collect();
        Ok((
            (out.prices.clone(), alloc, out.utilities.clone()),
            (retry.converged, out.iterations, out.report.residual),
        ))
    }

    /// The dense (Jacobi) arm: densifies the player table and solves
    /// with a dense warm start assembled from the stored bids.
    #[allow(clippy::type_complexity)]
    fn solve_dense(
        &mut self,
        market: &SparseMarket,
        budgets: &[f64],
    ) -> ServerResult<((Vec<f64>, Vec<f64>, Vec<f64>), (bool, u64, f64))> {
        let m = self.config.capacities.len();
        let n = self.players.len();
        let dense = market.to_market()?;
        let mut options = self.config.options.clone();
        if self.players.values().any(|p| p.bids.is_some()) {
            let mut warm = vec![0.0; n * m];
            for (i, rec) in self.players.values().enumerate() {
                match &rec.bids {
                    Some(bids) if bids.len() == rec.interests.len() => {
                        for (&(c, _), &b) in rec.interests.iter().zip(bids) {
                            warm[i * m + c as usize] = b;
                        }
                    }
                    _ => {
                        // Cold row: equal split, the dense solver's own
                        // starting point.
                        for v in &mut warm[i * m..(i + 1) * m] {
                            *v = rec.budget / m as f64;
                        }
                    }
                }
            }
            options = options.with_warm_start(WarmStart { bids: warm }.shared());
        }
        let (out, retry) = solve_with_retry(&dense, budgets, &options, &self.config.retry)?;
        if retry.converged {
            let bids = out.bids.as_slice();
            for (i, rec) in self.players.values_mut().enumerate() {
                rec.bids = Some(
                    rec.interests
                        .iter()
                        .map(|&(c, _)| bids[i * m + c as usize])
                        .collect(),
                );
            }
        }
        // Project the dense allocation onto each player's interest set
        // so the ledger's allocation layout matches the sparse arm.
        let alloc: Vec<f64> = self
            .players
            .values()
            .enumerate()
            .flat_map(|(i, rec)| {
                rec.interests
                    .iter()
                    .map(|&(c, _)| out.allocation.get(i, c as usize))
                    .collect::<Vec<f64>>()
            })
            .collect();
        Ok((
            (out.prices.clone(), alloc, out.utilities.clone()),
            (retry.converged, out.iterations, out.report.residual),
        ))
    }

    /// The `EqualShare` fallback allocation: every resource is split
    /// evenly among the players interested in it. Returns the row-major
    /// interest-set allocation and per-player linear utilities.
    fn equal_share(&self) -> (Vec<f64>, Vec<f64>) {
        let m = self.config.capacities.len();
        let mut interested = vec![0usize; m];
        for rec in self.players.values() {
            for &(c, _) in &rec.interests {
                interested[c as usize] += 1;
            }
        }
        let mut alloc = Vec::new();
        let mut utilities = Vec::with_capacity(self.players.len());
        for rec in self.players.values() {
            let mut u = 0.0;
            for &(c, w) in &rec.interests {
                let share = self.config.capacities[c as usize] / interested[c as usize] as f64;
                alloc.push(share);
                u += w * share;
            }
            utilities.push(u);
        }
        (alloc, utilities)
    }

    /// Seals the ledger and flushes it; called on graceful shutdown.
    /// The snapshot generations are removed afterwards: a sealed ledger
    /// is final, and a later `open` of the same directory will refuse
    /// the collision rather than resume it.
    ///
    /// # Errors
    ///
    /// [`ServerError::Io`] for write failures.
    pub fn seal(&mut self) -> ServerResult<usize> {
        self.ledger.seal();
        self.ledger_file
            .write_all(&self.ledger.text().as_bytes()[self.written..])?;
        self.ledger_file.flush()?;
        self.ledger_file.sync_all()?;
        self.written = self.ledger.text().len();
        let _ = std::fs::remove_file(&self.snapshot_path);
        let _ = std::fs::remove_file(prev_path(&self.snapshot_path));
        Ok(self.ledger.records())
    }

    fn write_snapshot(&self) -> ServerResult<()> {
        write_atomic(&self.snapshot_path, &self.encode_snapshot()).map_err(|e| {
            ServerError::Snapshot {
                reason: e.to_string(),
            }
        })
    }

    fn encode_snapshot(&self) -> String {
        let mut text = String::new();
        text.push_str(SNAPSHOT_HEADER);
        text.push('\n');
        text.push_str("[config]\n");
        text.push_str(&format!("resources={}\n", self.config.capacities.len()));
        text.push_str(&format!("solver={}\n", self.config.solver.label()));
        text.push_str("[state]\n");
        text.push_str(&format!("tick={}\n", self.tick));
        text.push_str(&format!("degraded={}\n", u8::from(self.degraded)));
        text.push_str(&format!("failures={}\n", self.consecutive_failures));
        text.push_str(&format!("players={}\n", self.players.len()));
        for (k, (id, rec)) in self.players.iter().enumerate() {
            text.push_str(&format!("[player {k}]\n"));
            text.push_str(&format!("id={id}\n"));
            text.push_str(&format!("budget={}\n", f64_hex(rec.budget)));
            let interests: Vec<String> = rec
                .interests
                .iter()
                .map(|&(c, w)| format!("{c}:{}", f64_hex(w)))
                .collect();
            text.push_str(&format!("interests={}\n", interests.join(" ")));
            if let Some(bids) = &rec.bids {
                text.push_str(&format!("bids={}\n", hex_list(bids)));
            }
        }
        text.push_str("[seal]\n");
        let sum = fnv1a(text.as_bytes());
        text.push_str(&format!("fnv1a={sum:016x}\n"));
        text
    }
}

#[derive(Debug)]
struct Decoded {
    tick: u64,
    degraded: bool,
    failures: usize,
    players: BTreeMap<String, PlayerRec>,
}

fn decode_snapshot(text: &str, config: &ServerConfig) -> Result<Decoded, String> {
    // Checksum first: everything before the fnv1a line must hash to it.
    let seal_at = text
        .rfind("fnv1a=")
        .ok_or_else(|| "snapshot has no seal".to_string())?;
    let want = text[seal_at..]
        .trim_end()
        .strip_prefix("fnv1a=")
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or_else(|| "malformed seal hash".to_string())?;
    let got = fnv1a(&text.as_bytes()[..seal_at]);
    if got != want {
        return Err(format!(
            "snapshot checksum mismatch ({got:016x} != {want:016x})"
        ));
    }
    let mut lines = text.lines();
    if lines.next() != Some(SNAPSHOT_HEADER) {
        return Err(format!(
            "bad snapshot header (expected '{SNAPSHOT_HEADER}')"
        ));
    }
    let mut kv: BTreeMap<&str, &str> = BTreeMap::new();
    let mut players = BTreeMap::new();
    let mut current: Option<(Option<String>, PlayerRec)> = None;
    let flush = |current: &mut Option<(Option<String>, PlayerRec)>,
                 players: &mut BTreeMap<String, PlayerRec>| {
        if let Some((id, rec)) = current.take() {
            let id = id.ok_or_else(|| "player section missing id".to_string())?;
            if players.insert(id.clone(), rec).is_some() {
                return Err(format!("duplicate player '{id}' in snapshot"));
            }
        }
        Ok(())
    };
    for line in lines {
        if line.starts_with("[player ") {
            flush(&mut current, &mut players)?;
            current = Some((
                None,
                PlayerRec {
                    budget: 0.0,
                    interests: Vec::new(),
                    bids: None,
                },
            ));
            continue;
        }
        if line == "[seal]" {
            flush(&mut current, &mut players)?;
            continue;
        }
        if line.starts_with('[') {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("malformed snapshot line '{line}'"));
        };
        if let Some((id_slot, rec)) = &mut current {
            match key {
                "id" => *id_slot = Some(value.to_string()),
                "budget" => {
                    rec.budget = parse_hex_f64(value)
                        .ok_or_else(|| format!("malformed budget '{value}'"))?;
                }
                "interests" => {
                    for item in value.split(' ').filter(|s| !s.is_empty()) {
                        let (c, w) = item
                            .split_once(':')
                            .ok_or_else(|| format!("malformed interest '{item}'"))?;
                        let c: u32 = c
                            .parse()
                            .map_err(|_| format!("malformed interest column '{item}'"))?;
                        let w = parse_hex_f64(w)
                            .ok_or_else(|| format!("malformed interest weight '{item}'"))?;
                        rec.interests.push((c, w));
                    }
                }
                "bids" => {
                    let bids: Option<Vec<f64>> = value
                        .split(' ')
                        .filter(|s| !s.is_empty())
                        .map(parse_hex_f64)
                        .collect();
                    rec.bids = Some(bids.ok_or_else(|| format!("malformed bids '{value}'"))?);
                }
                other => return Err(format!("unknown player field '{other}'")),
            }
        } else {
            kv.insert(key, value);
        }
    }
    flush(&mut current, &mut players)?;
    let field = |key: &str| {
        kv.get(key)
            .copied()
            .ok_or_else(|| format!("snapshot missing '{key}'"))
    };
    let resources: usize = field("resources")?
        .parse()
        .map_err(|_| "malformed resources".to_string())?;
    if resources != config.capacities.len() {
        return Err(format!(
            "snapshot is for {resources} resources, server configured with {}",
            config.capacities.len()
        ));
    }
    let solver = field("solver")?;
    if solver != config.solver.label() {
        return Err(format!(
            "snapshot is for solver '{solver}', server configured with '{}'",
            config.solver.label()
        ));
    }
    let tick: u64 = field("tick")?
        .parse()
        .map_err(|_| "malformed tick".to_string())?;
    let degraded = field("degraded")? == "1";
    let failures: usize = field("failures")?
        .parse()
        .map_err(|_| "malformed failures".to_string())?;
    let declared: usize = field("players")?
        .parse()
        .map_err(|_| "malformed player count".to_string())?;
    if declared != players.len() {
        return Err(format!(
            "snapshot declares {declared} players, holds {}",
            players.len()
        ));
    }
    for (id, rec) in &players {
        if let Some(bids) = &rec.bids {
            if bids.len() != rec.interests.len() {
                return Err(format!("player '{id}' bids/interests length mismatch"));
            }
        }
    }
    Ok(Decoded {
        tick,
        degraded,
        failures,
        players,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::workload::WorkloadSpec;
    use rebudget_market::equilibrium::EquilibriumOptions;

    fn config(solver: SolverKind) -> ServerConfig {
        ServerConfig {
            capacities: vec![8.0; 6],
            solver,
            options: EquilibriumOptions::large_scale(),
            retry: RetryPolicy::default(),
            fallback_after: 2,
            seed: 11,
            commit_delay_ms: 0,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rebudget-state-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn spec() -> WorkloadSpec {
        WorkloadSpec::small(11, 6)
    }

    /// Applies tick `tick`'s workload commands, then commits the tick.
    fn drive(core: &mut ServerCore, tick: u64) -> TickReport {
        let commands = spec().commands_for_tick(tick);
        for cmd in &commands {
            core.apply(cmd).unwrap();
        }
        core.tick(commands.len()).unwrap()
    }

    /// An uninterrupted `0..ticks` run, sealed; returns the ledger bytes.
    fn reference_ledger(solver: SolverKind, tag: &str, ticks: u64) -> String {
        let dir = temp_dir(tag);
        let mut core = ServerCore::open(config(solver), &dir).unwrap();
        for t in 0..ticks {
            drive(&mut core, t);
        }
        core.seal().unwrap();
        std::fs::read_to_string(dir.join("server.ledger")).unwrap()
    }

    #[test]
    fn resume_between_ticks_is_byte_identical() {
        for (solver, tag) in [
            (SolverKind::ProportionalResponse, "resume-pr"),
            (SolverKind::MirrorDescent, "resume-md"),
            (SolverKind::Jacobi, "resume-jacobi"),
        ] {
            let reference = reference_ledger(solver, &format!("{tag}-ref"), 8);
            let dir = temp_dir(tag);
            let mut core = ServerCore::open(config(solver), &dir).unwrap();
            for t in 0..5 {
                drive(&mut core, t);
            }
            let live_players = core.players();
            // Simulated crash between ticks: drop without sealing.
            drop(core);
            let mut core = ServerCore::open(config(solver), &dir).unwrap();
            assert_eq!(core.tick_index(), 5, "{tag}");
            assert_eq!(core.players(), live_players, "{tag}");
            assert!(!core.recovered_from_prev(), "{tag}");
            for t in 5..8 {
                drive(&mut core, t);
            }
            core.seal().unwrap();
            let resumed = std::fs::read_to_string(dir.join("server.ledger")).unwrap();
            assert_eq!(
                resumed, reference,
                "{tag}: resumed ledger must be byte-identical"
            );
        }
    }

    #[test]
    fn torn_ledger_tail_is_cut_and_rerun() {
        let reference = reference_ledger(SolverKind::ProportionalResponse, "torn-ref", 8);
        let dir = temp_dir("torn");
        let mut core = ServerCore::open(config(SolverKind::ProportionalResponse), &dir).unwrap();
        for t in 0..5 {
            drive(&mut core, t);
        }
        drop(core);
        // Simulated crash mid-append: a torn, chain-less record tail.
        let ledger_path = dir.join("server.ledger");
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&ledger_path)
            .unwrap();
        file.write_all(b"[quantum 5]\nplayers=999\nadmitt").unwrap();
        drop(file);
        let mut core = ServerCore::open(config(SolverKind::ProportionalResponse), &dir).unwrap();
        assert_eq!(core.tick_index(), 5);
        for t in 5..8 {
            drive(&mut core, t);
        }
        core.seal().unwrap();
        let resumed = std::fs::read_to_string(&ledger_path).unwrap();
        assert_eq!(
            resumed, reference,
            "torn tail must be cut and re-run identically"
        );
    }

    #[test]
    fn stale_snapshot_rerun_reproduces_record_bytes() {
        let reference = reference_ledger(SolverKind::ProportionalResponse, "stale-ref", 8);
        let dir = temp_dir("stale");
        let mut core = ServerCore::open(config(SolverKind::ProportionalResponse), &dir).unwrap();
        for t in 0..5 {
            drive(&mut core, t);
        }
        // Save the tick-5 snapshot, then commit tick 5 so the ledger
        // runs one record ahead of the restored snapshot.
        let snapshot_path = dir.join("server.snapshot");
        let stale = std::fs::read_to_string(&snapshot_path).unwrap();
        drive(&mut core, 5);
        drop(core);
        std::fs::write(&snapshot_path, &stale).unwrap();
        // Recovery must truncate the ledger back to 5 records and the
        // re-run of tick 5 must reproduce the dropped record exactly.
        let mut core = ServerCore::open(config(SolverKind::ProportionalResponse), &dir).unwrap();
        assert_eq!(core.tick_index(), 5);
        for t in 5..8 {
            drive(&mut core, t);
        }
        core.seal().unwrap();
        let resumed = std::fs::read_to_string(dir.join("server.ledger")).unwrap();
        assert_eq!(
            resumed, reference,
            "re-run of the un-snapshotted tick must reproduce its record bytes"
        );
    }

    #[test]
    fn corrupt_snapshot_falls_back_to_prev_generation() {
        let reference = reference_ledger(SolverKind::ProportionalResponse, "prev-ref", 8);
        let dir = temp_dir("prev");
        let mut core = ServerCore::open(config(SolverKind::ProportionalResponse), &dir).unwrap();
        for t in 0..5 {
            drive(&mut core, t);
        }
        drop(core);
        // Simulated crash mid-snapshot-write: the live generation is
        // garbage, the rotated .prev (tick 4) must carry recovery.
        let snapshot_path = dir.join("server.snapshot");
        std::fs::write(&snapshot_path, "rebudget-server-snapshot v1\ngarbage\n").unwrap();
        let mut core = ServerCore::open(config(SolverKind::ProportionalResponse), &dir).unwrap();
        assert!(core.recovered_from_prev());
        assert_eq!(core.tick_index(), 4);
        for t in 4..8 {
            drive(&mut core, t);
        }
        core.seal().unwrap();
        let resumed = std::fs::read_to_string(dir.join("server.ledger")).unwrap();
        assert_eq!(
            resumed, reference,
            ".prev recovery must stay byte-identical"
        );
    }

    #[test]
    fn sealed_directory_refuses_reopen() {
        let dir = temp_dir("sealed");
        let mut core = ServerCore::open(config(SolverKind::ProportionalResponse), &dir).unwrap();
        drive(&mut core, 0);
        core.seal().unwrap();
        drop(core);
        let err = ServerCore::open(config(SolverKind::ProportionalResponse), &dir).unwrap_err();
        assert!(
            matches!(err, ServerError::Ledger(_)),
            "sealed ledger must collide, got: {err}"
        );
    }

    #[test]
    fn snapshot_codec_round_trips_and_checksums() {
        let dir = temp_dir("codec");
        let cfg = config(SolverKind::ProportionalResponse);
        let mut core = ServerCore::open(cfg.clone(), &dir).unwrap();
        drive(&mut core, 0);
        drive(&mut core, 1);
        let text = std::fs::read_to_string(dir.join("server.snapshot")).unwrap();
        let snap = decode_snapshot(&text, &cfg).unwrap();
        assert_eq!(snap.tick, 2);
        assert_eq!(snap.players, core.players);
        assert!(!snap.degraded);
        // Any flipped byte fails the checksum.
        let tampered = text.replacen("budget=", "budget=f", 1);
        let err = decode_snapshot(&tampered, &cfg).unwrap_err();
        assert!(err.contains("checksum"), "{err}");
        // A snapshot for a different market shape is refused.
        let mut other = cfg.clone();
        other.capacities.push(8.0);
        let err = decode_snapshot(&text, &other).unwrap_err();
        assert!(err.contains("resources"), "{err}");
    }

    #[test]
    fn apply_rejections_are_typed() {
        use crate::proto::Request;
        let dir = temp_dir("apply");
        let mut core = ServerCore::open(config(SolverKind::ProportionalResponse), &dir).unwrap();
        let arrive = Request::Arrive {
            id: "a".into(),
            budget: 10.0,
            interests: vec![(0, 1.0)],
        };
        core.apply(&arrive).unwrap();
        assert_eq!(
            core.apply(&arrive).unwrap_err(),
            ApplyError::Duplicate("a".into())
        );
        assert_eq!(
            core.apply(&Request::Depart { id: "zz".into() })
                .unwrap_err(),
            ApplyError::Unknown("zz".into())
        );
        assert_eq!(
            core.apply(&Request::Update {
                id: "zz".into(),
                interests: vec![(0, 1.0)],
            })
            .unwrap_err(),
            ApplyError::Unknown("zz".into())
        );
        assert_eq!(
            core.apply(&Request::Arrive {
                id: "b".into(),
                budget: 10.0,
                interests: vec![(99, 1.0)],
            })
            .unwrap_err(),
            ApplyError::ResourceRange(99)
        );
        // Rejected commands leave the table unchanged.
        assert_eq!(core.players(), 1);
    }

    #[test]
    fn degrades_to_equal_share_after_k_failures() {
        use crate::proto::Request;
        let dir = temp_dir("degrade");
        // An impossible tolerance with no retry budget: every solve
        // fails, flipping to EqualShare after fallback_after = 2.
        let mut cfg = config(SolverKind::ProportionalResponse);
        cfg.options.max_iterations = 1;
        cfg.options.price_tolerance = 0.0;
        cfg.retry = RetryPolicy {
            max_attempts: 1,
            tighten: 1.0,
            relax: 1.0,
            backoff: 1.0,
        };
        let mut core = ServerCore::open(cfg.clone(), &dir).unwrap();
        core.apply(&Request::Arrive {
            id: "a".into(),
            budget: 10.0,
            interests: vec![(0, 1.0)],
        })
        .unwrap();
        core.apply(&Request::Arrive {
            id: "b".into(),
            budget: 30.0,
            interests: vec![(0, 1.0), (1, 2.0)],
        })
        .unwrap();
        let r = core.tick(2).unwrap();
        assert!(!r.converged && !r.fallback, "first failure only counts");
        let r = core.tick(0).unwrap();
        assert!(!r.converged && r.fallback, "second failure degrades");
        assert!(core.degraded());
        // EqualShare: resource 0 split between both, resource 1 whole.
        let (alloc, utilities) = core.equal_share();
        assert_eq!(alloc, vec![4.0, 4.0, 8.0]);
        assert_eq!(utilities, vec![4.0, 4.0 + 16.0]);
        // Degradation survives a crash/recovery cycle.
        drop(core);
        let core = ServerCore::open(cfg, &dir).unwrap();
        assert!(core.degraded());
    }

    #[test]
    fn empty_market_ticks_commit() {
        let dir = temp_dir("empty");
        let mut core = ServerCore::open(config(SolverKind::ProportionalResponse), &dir).unwrap();
        let r = core.tick(0).unwrap();
        assert!(r.converged && !r.fallback);
        assert_eq!(r.players, 0);
        assert_eq!(core.records(), 1);
        drop(core);
        let core = ServerCore::open(config(SolverKind::ProportionalResponse), &dir).unwrap();
        assert_eq!(core.tick_index(), 1);
    }

    #[test]
    fn config_validation_rejects_degenerate_setups() {
        let mut cfg = config(SolverKind::ProportionalResponse);
        cfg.capacities.clear();
        assert!(matches!(cfg.validate(), Err(ServerError::Config { .. })));
        let mut cfg = config(SolverKind::ProportionalResponse);
        cfg.capacities[0] = -1.0;
        assert!(matches!(cfg.validate(), Err(ServerError::Config { .. })));
        let mut cfg = config(SolverKind::ProportionalResponse);
        cfg.fallback_after = 0;
        assert!(matches!(cfg.validate(), Err(ServerError::Config { .. })));
    }
}
