#![warn(missing_docs)]

//! Fault-tolerant online market daemon for the ReBudget reproduction.
//!
//! The batch pipeline solves a *fixed* player set; this crate serves a
//! *streaming* one. Clients connect over a Unix or TCP socket and speak
//! newline-delimited JSON ([`proto`]): players arrive, depart, and
//! update their utilities at any time. Mutations are **admission-
//! batched**: they queue behind a bounded gate and are applied together
//! at the next tick, when the daemon re-solves the market equilibrium
//! **warm-started from the previous quantum's bids** — the warm path
//! that makes high-churn online serving tractable (see
//! `EXPERIMENTS.md`'s warm-vs-cold table).
//!
//! Robustness is the point, not an afterthought:
//!
//! * **Backpressure** — the admission queue is bounded; overflow is
//!   shed with an explicit `{"ok":false,"reason":"shed"}` rather than
//!   queued without bound ([`daemon`]).
//! * **Deadlines** — every tick's solve runs under the market crate's
//!   [`rebudget_market::DeadlineBudget`] and
//!   [`rebudget_market::RetryPolicy`] ladder.
//! * **Graceful degradation** — after K consecutive failed ticks the
//!   daemon allocates `EqualShare` until a solve converges again
//!   ([`state`]).
//! * **Kill-safety** — tick state is durable through the hash-chained
//!   ledger plus a crash-atomic snapshot; `kill -9` at *any* byte
//!   resumes to a byte-identical ledger (see [`state`]'s module docs
//!   for the commit ordering and the chaos tests for the proof).
//!
//! The [`workload`] module generates seeded, *per-tick-pure* client
//! churn: the chaos harness replays exactly the commands a killed
//! server never committed, and the benchmark drives both warm and cold
//! arms from the same stream.

pub mod daemon;
pub mod proto;
pub mod state;
pub mod workload;

pub use daemon::{Daemon, DaemonConfig, DaemonSummary, Endpoint, Listener, Stats};
pub use proto::{parse_request, Request};
pub use state::{ServerConfig, ServerCore, TickReport};
pub use workload::WorkloadSpec;

use std::fmt;

/// Errors from daemon configuration, recovery, or serving.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServerError {
    /// Invalid static configuration.
    Config {
        /// What was wrong.
        reason: String,
    },
    /// No usable snapshot generation (or snapshot/ledger disagreement)
    /// during recovery, or a snapshot write failure.
    Snapshot {
        /// What was wrong.
        reason: String,
    },
    /// Ledger trouble — including the named collision when a fresh
    /// start targets a directory that already holds a (sealed, hence
    /// immutable) ledger.
    Ledger(rebudget_scenario::ScenarioError),
    /// A degenerate market slipped past admission validation.
    Market(rebudget_market::MarketError),
    /// Socket or file I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Config { reason } => write!(f, "server config error: {reason}"),
            ServerError::Snapshot { reason } => write!(f, "server snapshot error: {reason}"),
            ServerError::Ledger(e) => write!(f, "server ledger error: {e}"),
            ServerError::Market(e) => write!(f, "server market error: {e}"),
            ServerError::Io(e) => write!(f, "server io error: {e}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        ServerError::Io(e)
    }
}

impl From<rebudget_scenario::ScenarioError> for ServerError {
    fn from(e: rebudget_scenario::ScenarioError) -> Self {
        ServerError::Ledger(e)
    }
}

impl From<rebudget_market::MarketError> for ServerError {
    fn from(e: rebudget_market::MarketError) -> Self {
        ServerError::Market(e)
    }
}

/// Crate-local result alias.
pub type ServerResult<T> = Result<T, ServerError>;
