//! Seeded, per-tick-pure client churn for the daemon.
//!
//! [`WorkloadSpec::commands_for_tick`] is a **pure function of
//! `(spec, tick)`** — no generator state advances between calls. That
//! purity is what makes kill-safe replay work: after a `kill -9`, the
//! chaos harness asks the restarted server for its committed tick `T`
//! and simply re-drives `commands_for_tick(t)` for `t >= T`; the
//! commands the dead server never committed are regenerated bit-for-bit
//! without replaying the whole history.
//!
//! The schedule is deterministic by construction: player `k` arrives at
//! a fixed tick derived from its index, lives for a hashed lifetime,
//! and (sometimes) refreshes its utility mid-life. All attributes
//! (budget, interest set, weights) are hashed from `(seed, k)` alone.

use crate::proto::Request;

/// SplitMix64 — the workspace's standard cheap deterministic mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A seeded churn schedule over a fixed resource space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Seed for every hashed attribute and schedule choice.
    pub seed: u64,
    /// Players arriving at tick 0.
    pub initial_players: usize,
    /// Resource count `M` (interest columns are `< resources`).
    pub resources: usize,
    /// New players arriving at each tick `>= 1`.
    pub arrivals_per_tick: usize,
    /// Mean lifetime in ticks; actual lifetimes are
    /// `1 + hash % (2 * mean)` so the mean holds and nobody departs the
    /// tick it arrives.
    pub mean_lifetime: u64,
    /// Percent (0–100) of live players that refresh their utility
    /// weights each tick (the `update` command).
    pub update_percent: u64,
}

impl WorkloadSpec {
    /// A small default suitable for tests: 16 initial players over
    /// `resources` resources, 2 arrivals/tick, mean lifetime 8 ticks,
    /// 10% utility refresh.
    #[must_use]
    pub fn small(seed: u64, resources: usize) -> Self {
        Self {
            seed,
            initial_players: 16,
            resources,
            arrivals_per_tick: 2,
            mean_lifetime: 8,
            update_percent: 10,
        }
    }

    fn hash(&self, player: u64, salt: u64) -> u64 {
        splitmix64(self.seed ^ splitmix64(player) ^ salt.wrapping_mul(0xa076_1d64_78bd_642f))
    }

    /// Tick at which player `k` arrives.
    fn arrival(&self, k: usize) -> u64 {
        if k < self.initial_players {
            0
        } else {
            match (k - self.initial_players).checked_div(self.arrivals_per_tick) {
                Some(waves) => waves as u64 + 1,
                None => u64::MAX,
            }
        }
    }

    /// Tick at which player `k` departs (exclusive lifetime end).
    fn departure(&self, k: usize) -> u64 {
        let life = 1 + self.hash(k as u64, 1) % (2 * self.mean_lifetime.max(1));
        self.arrival(k).saturating_add(life)
    }

    /// Player indices with any scheduled activity at or before `tick`.
    fn horizon(&self, tick: u64) -> usize {
        self.initial_players + (tick as usize).saturating_mul(self.arrivals_per_tick)
    }

    /// Whether player `k` is live during tick `tick` (arrived, not yet
    /// departed) — from the schedule alone.
    #[must_use]
    pub fn live(&self, k: usize, tick: u64) -> bool {
        self.arrival(k) <= tick && tick < self.departure(k)
    }

    /// The player id for index `k`.
    #[must_use]
    pub fn id(&self, k: usize) -> String {
        format!("p{k}")
    }

    fn interests(&self, k: usize, generation: u64) -> Vec<(u32, f64)> {
        let m = self.resources as u64;
        let count =
            1 + self.hash(k as u64, 2u64.wrapping_add(generation.wrapping_mul(7919))) % m.min(6);
        let mut cols: Vec<u32> = Vec::with_capacity(count as usize);
        let mut probe = 0u64;
        while (cols.len() as u64) < count {
            let c = (self.hash(k as u64, 100 + probe + generation.wrapping_mul(7919)) % m) as u32;
            if !cols.contains(&c) {
                cols.push(c);
            }
            probe += 1;
        }
        cols.sort_unstable();
        cols.into_iter()
            .map(|c| {
                let w = self.hash(k as u64, 200 + u64::from(c) + generation.wrapping_mul(7919));
                // Weights in [0.1, 10.1): positive, finite, varied.
                (c, 0.1 + (w % 10_000) as f64 / 1_000.0)
            })
            .collect()
    }

    fn budget(&self, k: usize) -> f64 {
        // Budgets in [50, 150): positive, so every player bids.
        50.0 + (self.hash(k as u64, 3) % 10_000) as f64 / 100.0
    }

    /// The admission commands for tick `tick`, in a fixed order:
    /// departures (ascending index), then arrivals (ascending index),
    /// then utility updates (ascending index). Pure in `(self, tick)`.
    #[must_use]
    pub fn commands_for_tick(&self, tick: u64) -> Vec<Request> {
        let mut commands = Vec::new();
        let horizon = self.horizon(tick);
        for k in 0..horizon {
            if tick > 0 && self.departure(k) == tick {
                commands.push(Request::Depart { id: self.id(k) });
            }
        }
        for k in 0..horizon {
            if self.arrival(k) == tick {
                commands.push(Request::Arrive {
                    id: self.id(k),
                    budget: self.budget(k),
                    interests: self.interests(k, 0),
                });
            }
        }
        if self.update_percent > 0 && tick > 0 {
            for k in 0..horizon {
                // Updates only for players live both this tick and last
                // (an arrival this tick already carries fresh weights).
                if self.live(k, tick)
                    && self.live(k, tick.saturating_sub(1))
                    && self.arrival(k) < tick
                    && self.hash(k as u64, 400 + tick) % 100 < self.update_percent
                {
                    commands.push(Request::Update {
                        id: self.id(k),
                        interests: self.interests(k, tick),
                    });
                }
            }
        }
        commands
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn commands_are_pure_in_tick() {
        let spec = WorkloadSpec::small(7, 8);
        for t in 0..20 {
            assert_eq!(spec.commands_for_tick(t), spec.commands_for_tick(t));
        }
        // Replay-from-the-middle equals the original tail.
        let full: Vec<_> = (0..20).map(|t| spec.commands_for_tick(t)).collect();
        let tail: Vec<_> = (9..20).map(|t| spec.commands_for_tick(t)).collect();
        assert_eq!(&full[9..], tail.as_slice());
    }

    #[test]
    fn schedule_is_consistent() {
        let spec = WorkloadSpec::small(3, 8);
        let mut live: BTreeSet<String> = BTreeSet::new();
        let mut arrivals = 0usize;
        let mut departures = 0usize;
        let mut updates = 0usize;
        for t in 0..40 {
            for cmd in spec.commands_for_tick(t) {
                match cmd {
                    Request::Arrive {
                        id,
                        interests,
                        budget,
                    } => {
                        assert!(live.insert(id), "duplicate arrival");
                        assert!(!interests.is_empty());
                        assert!(interests.iter().all(|&(c, w)| {
                            (c as usize) < spec.resources && w.is_finite() && w > 0.0
                        }));
                        assert!(budget > 0.0);
                        arrivals += 1;
                    }
                    Request::Depart { id } => {
                        assert!(live.remove(&id), "departure of a dead player");
                        departures += 1;
                    }
                    Request::Update { id, interests } => {
                        assert!(live.contains(&id), "update of a dead player");
                        assert!(!interests.is_empty());
                        updates += 1;
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
        assert_eq!(arrivals, spec.initial_players + 39 * spec.arrivals_per_tick);
        assert!(departures > 0, "lifetimes expire within 40 ticks");
        assert!(updates > 0, "10% refresh fires within 40 ticks");
    }

    #[test]
    fn different_seeds_differ() {
        let a = WorkloadSpec::small(1, 8).commands_for_tick(0);
        let b = WorkloadSpec::small(2, 8).commands_for_tick(0);
        assert_ne!(a, b);
    }
}
