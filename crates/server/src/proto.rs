//! The daemon's wire protocol: newline-delimited JSON requests and
//! responses.
//!
//! One request per line, one response line per request, in order. The
//! request grammar (fields beyond these are ignored):
//!
//! ```text
//! {"cmd":"arrive","id":ID,"budget":B,"interests":[[RES,WEIGHT],...]}
//! {"cmd":"update","id":ID,"interests":[[RES,WEIGHT],...]}
//! {"cmd":"depart","id":ID}
//! {"cmd":"tick"}
//! {"cmd":"stats"}
//! {"cmd":"shutdown"}
//! ```
//!
//! `ID` is 1–64 characters of `[A-Za-z0-9_.-]` (it is embedded verbatim
//! in snapshot lines, so the alphabet is deliberately narrow). `B` is a
//! finite non-negative budget; each interest pairs a resource index with
//! a finite positive weight, no duplicates.
//!
//! Responses are `{"ok":true,...}` or
//! `{"ok":false,"reason":R,"error":DETAIL}` where `R` is a stable
//! machine-readable word: `malformed`, `oversized`, `shed`, `rejected`,
//! `timeout`. Parsing reuses the telemetry crate's dependency-free JSON
//! reader, so the workspace still builds offline with zero new deps.

use rebudget_telemetry::schema::{parse_json, Json};

/// Longest accepted player id.
pub const MAX_ID_LEN: usize = 64;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// A new player asks to join the market at the next tick.
    Arrive {
        /// Player id (unique among live players).
        id: String,
        /// The player's budget.
        budget: f64,
        /// `(resource, weight)` interests, sorted by resource.
        interests: Vec<(u32, f64)>,
    },
    /// A live player replaces its utility (interest weights).
    Update {
        /// Player id.
        id: String,
        /// The replacement interests.
        interests: Vec<(u32, f64)>,
    },
    /// A live player leaves at the next tick.
    Depart {
        /// Player id.
        id: String,
    },
    /// Run one market quantum now, admitting all queued commands first.
    Tick,
    /// Report daemon state (tick, live players, counters).
    Stats,
    /// Seal the ledger and exit gracefully.
    Shutdown,
}

impl Request {
    /// Stable command name, matching the wire `cmd` field.
    pub fn cmd(&self) -> &'static str {
        match self {
            Request::Arrive { .. } => "arrive",
            Request::Update { .. } => "update",
            Request::Depart { .. } => "depart",
            Request::Tick => "tick",
            Request::Stats => "stats",
            Request::Shutdown => "shutdown",
        }
    }

    /// Whether this request mutates the player set (and is therefore
    /// queued behind the bounded admission gate rather than handled
    /// immediately).
    pub fn is_admission(&self) -> bool {
        matches!(
            self,
            Request::Arrive { .. } | Request::Update { .. } | Request::Depart { .. }
        )
    }

    /// Renders the request back to its canonical wire line (no trailing
    /// newline). Used by the seeded workload generator and the chaos
    /// client.
    #[must_use]
    pub fn to_line(&self) -> String {
        let interests_json = |interests: &[(u32, f64)]| {
            let items: Vec<String> = interests
                .iter()
                .map(|&(c, w)| format!("[{c},{}]", json_f64(w)))
                .collect();
            format!("[{}]", items.join(","))
        };
        match self {
            Request::Arrive {
                id,
                budget,
                interests,
            } => format!(
                "{{\"cmd\":\"arrive\",\"id\":\"{}\",\"budget\":{},\"interests\":{}}}",
                json_escape(id),
                json_f64(*budget),
                interests_json(interests)
            ),
            Request::Update { id, interests } => format!(
                "{{\"cmd\":\"update\",\"id\":\"{}\",\"interests\":{}}}",
                json_escape(id),
                interests_json(interests)
            ),
            Request::Depart { id } => {
                format!("{{\"cmd\":\"depart\",\"id\":\"{}\"}}", json_escape(id))
            }
            Request::Tick => "{\"cmd\":\"tick\"}".to_string(),
            Request::Stats => "{\"cmd\":\"stats\"}".to_string(),
            Request::Shutdown => "{\"cmd\":\"shutdown\"}".to_string(),
        }
    }
}

/// A malformed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError(pub String);

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ProtoError {}

fn bad<T>(msg: impl Into<String>) -> Result<T, ProtoError> {
    Err(ProtoError(msg.into()))
}

fn valid_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= MAX_ID_LEN
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'_' | b'.' | b'-'))
}

fn field_str<'a>(map: &'a Json, key: &str) -> Result<&'a str, ProtoError> {
    let Json::Object(map) = map else {
        return bad("request is not a JSON object");
    };
    map.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| ProtoError(format!("missing or non-string \"{key}\"")))
}

fn field_id(map: &Json) -> Result<String, ProtoError> {
    let id = field_str(map, "id")?;
    if !valid_id(id) {
        return bad(format!(
            "invalid id {id:?} (1-{MAX_ID_LEN} chars of [A-Za-z0-9_.-])"
        ));
    }
    Ok(id.to_string())
}

fn field_interests(map: &Json) -> Result<Vec<(u32, f64)>, ProtoError> {
    let Json::Object(obj) = map else {
        return bad("request is not a JSON object");
    };
    let Some(Json::Array(items)) = obj.get("interests") else {
        return bad("missing or non-array \"interests\"");
    };
    if items.is_empty() {
        return bad("\"interests\" must name at least one resource");
    }
    let mut interests = Vec::with_capacity(items.len());
    for item in items {
        let Json::Array(pair) = item else {
            return bad("each interest must be a [resource, weight] pair");
        };
        let [res, weight] = pair.as_slice() else {
            return bad("each interest must be a [resource, weight] pair");
        };
        let Some(c) = res.as_u64().filter(|&c| c <= u64::from(u32::MAX)) else {
            return bad("interest resource must be a non-negative integer");
        };
        let Json::Number(w) = weight else {
            return bad("interest weight must be a number");
        };
        if !w.is_finite() || *w <= 0.0 {
            return bad(format!("interest weight {w} must be finite and positive"));
        }
        interests.push((c as u32, *w));
    }
    interests.sort_by_key(|&(c, _)| c);
    if interests.windows(2).any(|w| w[0].0 == w[1].0) {
        return bad("duplicate resource in \"interests\"");
    }
    Ok(interests)
}

/// Parses one request line.
///
/// # Errors
///
/// [`ProtoError`] describing the first problem (JSON syntax, unknown
/// command, missing/invalid field).
pub fn parse_request(line: &str) -> Result<Request, ProtoError> {
    let value = parse_json(line).map_err(|e| ProtoError(e.0))?;
    let cmd = field_str(&value, "cmd")?.to_string();
    match cmd.as_str() {
        "arrive" => {
            let id = field_id(&value)?;
            let Json::Object(obj) = &value else {
                unreachable!("field_str verified the object shape")
            };
            let Some(Json::Number(budget)) = obj.get("budget") else {
                return bad("missing or non-numeric \"budget\"");
            };
            if !budget.is_finite() || *budget < 0.0 {
                return bad(format!("budget {budget} must be finite and non-negative"));
            }
            Ok(Request::Arrive {
                id,
                budget: *budget,
                interests: field_interests(&value)?,
            })
        }
        "update" => Ok(Request::Update {
            id: field_id(&value)?,
            interests: field_interests(&value)?,
        }),
        "depart" => Ok(Request::Depart {
            id: field_id(&value)?,
        }),
        "tick" => Ok(Request::Tick),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        other => bad(format!(
            "unknown cmd {other:?} (arrive | update | depart | tick | stats | shutdown)"
        )),
    }
}

/// JSON string escaping for response/request rendering.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// JSON float: finite values via the shortest round-trip `{x}` form,
/// non-finite as `null` (JSON has no NaN/Infinity).
#[must_use]
pub fn json_f64(x: f64) -> String {
    if x.is_finite() {
        let s = format!("{x}");
        // Bare integers are valid JSON numbers; keep them as-is.
        s
    } else {
        "null".to_string()
    }
}

/// Builds an `{"ok":true,...}` response line from pre-rendered fields
/// (each `(key, json-value)`; values must already be valid JSON).
#[must_use]
pub fn ok_response(fields: &[(&str, String)]) -> String {
    let mut out = String::from("{\"ok\":true");
    for (key, value) in fields {
        out.push_str(&format!(",\"{key}\":{value}"));
    }
    out.push('}');
    out
}

/// Builds an `{"ok":false,...}` response with a stable `reason` word and
/// a human-readable `error` detail.
#[must_use]
pub fn err_response(reason: &str, detail: &str) -> String {
    format!(
        "{{\"ok\":false,\"reason\":\"{}\",\"error\":\"{}\"}}",
        json_escape(reason),
        json_escape(detail)
    )
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_their_wire_lines() {
        let reqs = [
            Request::Arrive {
                id: "p0".into(),
                budget: 100.5,
                interests: vec![(0, 1.0), (3, 2.25)],
            },
            Request::Update {
                id: "p0".into(),
                interests: vec![(1, 0.5)],
            },
            Request::Depart { id: "p0".into() },
            Request::Tick,
            Request::Stats,
            Request::Shutdown,
        ];
        for req in reqs {
            let line = req.to_line();
            assert_eq!(parse_request(&line).unwrap(), req, "{line}");
        }
    }

    #[test]
    fn malformed_lines_are_named_errors() {
        for (line, needle) in [
            ("not json", "invalid"),
            ("{\"cmd\":\"explode\"}", "unknown cmd"),
            ("{\"id\":\"p\"}", "\"cmd\""),
            ("{\"cmd\":\"depart\"}", "\"id\""),
            ("{\"cmd\":\"depart\",\"id\":\"bad id\"}", "invalid id"),
            ("{\"cmd\":\"arrive\",\"id\":\"p\"}", "budget"),
            (
                "{\"cmd\":\"arrive\",\"id\":\"p\",\"budget\":-1,\"interests\":[[0,1]]}",
                "non-negative",
            ),
            (
                "{\"cmd\":\"arrive\",\"id\":\"p\",\"budget\":1,\"interests\":[]}",
                "at least one",
            ),
            (
                "{\"cmd\":\"arrive\",\"id\":\"p\",\"budget\":1,\"interests\":[[0,1],[0,2]]}",
                "duplicate",
            ),
            (
                "{\"cmd\":\"arrive\",\"id\":\"p\",\"budget\":1,\"interests\":[[0,0]]}",
                "positive",
            ),
        ] {
            let e = parse_request(line).unwrap_err();
            assert!(
                e.0.to_lowercase().contains(&needle.to_lowercase()),
                "{line}: {e}"
            );
        }
        // Ids at the boundary.
        assert!(valid_id(&"x".repeat(MAX_ID_LEN)));
        assert!(!valid_id(&"x".repeat(MAX_ID_LEN + 1)));
        assert!(!valid_id(""));
    }

    #[test]
    fn interests_are_sorted_on_parse() {
        let req = parse_request(
            "{\"cmd\":\"arrive\",\"id\":\"p\",\"budget\":1,\"interests\":[[5,1],[2,3]]}",
        )
        .unwrap();
        let Request::Arrive { interests, .. } = req else {
            panic!("arrive")
        };
        assert_eq!(interests, vec![(2, 3.0), (5, 1.0)]);
    }

    #[test]
    fn responses_are_valid_json() {
        let ok = ok_response(&[("tick", "3".into()), ("players", "10".into())]);
        assert_eq!(ok, "{\"ok\":true,\"tick\":3,\"players\":10}");
        parse_json(&ok).unwrap();
        let err = err_response("shed", "queue full (cap 128)");
        assert!(err.contains("\"reason\":\"shed\""));
        parse_json(&err).unwrap();
        parse_json(&err_response("malformed", "quote \" and \\ backslash")).unwrap();
    }
}
