//! The trace schema and a dependency-free JSON validator.
//!
//! Every journal line must parse as a JSON object with `"seq"` (a
//! non-negative integer) and `"event"` (one of the known event names),
//! carry that event's required fields with the right types, and — across
//! a stream — use strictly increasing sequence numbers starting at 0.
//! The schema is *closed*: unknown event names fail validation, so a new
//! event type must be added here (and documented in DESIGN.md) before it
//! can ship.
//!
//! The parser is a minimal recursive-descent JSON reader (objects,
//! arrays, strings, numbers, booleans, null). It exists so the test
//! suite and the `trace_check` CI bin can validate traces without adding
//! a serde dependency to the workspace.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object (duplicate keys rejected at parse time).
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s.as_str()),
            _ => None,
        }
    }
}

/// A schema violation or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaError(pub String);

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for SchemaError {}

fn err<T>(msg: impl Into<String>) -> Result<T, SchemaError> {
    Err(SchemaError(msg.into()))
}

/// Parses one JSON document, rejecting trailing garbage and duplicate
/// object keys.
///
/// # Errors
///
/// [`SchemaError`] describing the first syntax problem.
pub fn parse_json(text: &str) -> Result<Json, SchemaError> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), SchemaError> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        err(format!("expected '{}' at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, SchemaError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => err("unexpected end of input"),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    lit: &str,
    value: Json,
) -> Result<Json, SchemaError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, SchemaError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| SchemaError(format!("invalid utf-8 in number at byte {start}")))?;
    match text.parse::<f64>() {
        Ok(n) if n.is_finite() => Ok(Json::Number(n)),
        _ => err(format!("invalid number '{text}' at byte {start}")),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, SchemaError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return err("unterminated string"),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| SchemaError("truncated \\u escape".into()))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| SchemaError("invalid \\u escape".into()))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| SchemaError("invalid \\u escape".into()))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return err("invalid escape"),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so
                // boundaries are valid).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| SchemaError("invalid utf-8 in string".into()))?;
                let c = rest
                    .chars()
                    .next()
                    .ok_or_else(|| SchemaError("unterminated string".into()))?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, SchemaError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => return err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, SchemaError> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        if map.insert(key.clone(), value).is_some() {
            return err(format!("duplicate key \"{key}\""));
        }
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(map));
            }
            _ => return err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

/// The type a required field must have.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Non-negative integer.
    U64,
    /// Any number, or `null` (non-finite values render as null).
    Num,
    /// Boolean.
    Bool,
    /// String.
    Str,
    /// Array of numbers/nulls.
    NumArray,
    /// Array of arrays of numbers/nulls.
    RowArray,
}

/// The closed event schema: every event name the journal may emit, with
/// its required fields. Extra fields are allowed; missing or mistyped
/// required fields are not.
pub const EVENTS: &[(&str, &[(&str, Kind)])] = &[
    (
        "trace_meta",
        &[("version", Kind::U64), ("command", Kind::Str)],
    ),
    (
        "solve_start",
        &[("players", Kind::U64), ("resources", Kind::U64)],
    ),
    (
        "solver_iteration",
        &[
            ("iteration", Kind::U64),
            ("residual", Kind::Num),
            ("prices", Kind::NumArray),
        ],
    ),
    (
        "recovery",
        &[("iteration", Kind::U64), ("action", Kind::Str)],
    ),
    (
        "solve_end",
        &[
            ("iterations", Kind::U64),
            ("converged", Kind::Bool),
            ("residual", Kind::Num),
            ("timed_out", Kind::Bool),
        ],
    ),
    (
        "retry_attempt",
        &[
            ("attempt", Kind::U64),
            ("converged", Kind::Bool),
            ("timed_out", Kind::Bool),
        ],
    ),
    (
        "oracle_pass",
        &[("pass", Kind::U64), ("efficiency", Kind::Num)],
    ),
    (
        "rebudget_round",
        &[
            ("round", Kind::U64),
            ("efficiency", Kind::Num),
            ("budgets", Kind::NumArray),
        ],
    ),
    (
        "floor_check",
        &[
            ("round", Kind::U64),
            ("floor", Kind::Num),
            ("efficiency", Kind::Num),
            ("ok", Kind::Bool),
        ],
    ),
    ("rollback", &[("round", Kind::U64), ("cause", Kind::Str)]),
    (
        "quantum",
        &[
            ("quantum", Kind::U64),
            ("mechanism", Kind::Str),
            ("efficiency", Kind::Num),
            ("degraded", Kind::Bool),
            ("fallback", Kind::Bool),
        ],
    ),
    (
        "quantum_alloc",
        &[("quantum", Kind::U64), ("allocation", Kind::RowArray)],
    ),
    (
        "degradation",
        &[
            ("quantum", Kind::U64),
            ("from", Kind::Str),
            ("to", Kind::Str),
        ],
    ),
    (
        "server_request",
        &[("cmd", Kind::Str), ("outcome", Kind::Str)],
    ),
    (
        "server_tick",
        &[
            ("tick", Kind::U64),
            ("players", Kind::U64),
            ("admitted", Kind::U64),
            ("converged", Kind::Bool),
            ("fallback", Kind::Bool),
        ],
    ),
];

fn kind_matches(kind: Kind, value: &Json) -> bool {
    match kind {
        Kind::U64 => value.as_u64().is_some(),
        Kind::Num => matches!(value, Json::Number(_) | Json::Null),
        Kind::Bool => matches!(value, Json::Bool(_)),
        Kind::Str => matches!(value, Json::String(_)),
        Kind::NumArray => matches!(value, Json::Array(items)
            if items.iter().all(|v| matches!(v, Json::Number(_) | Json::Null))),
        Kind::RowArray => matches!(value, Json::Array(rows)
            if rows.iter().all(|r| kind_matches(Kind::NumArray, r))),
    }
}

/// Validates one journal line against the schema and returns its `seq`.
///
/// # Errors
///
/// [`SchemaError`] naming the first violation (parse error, missing
/// `seq`/`event`, unknown event, or missing/mistyped required field).
pub fn validate_line(line: &str) -> Result<u64, SchemaError> {
    let value = parse_json(line)?;
    let Json::Object(map) = &value else {
        return err("line is not a JSON object");
    };
    let seq = map
        .get("seq")
        .and_then(Json::as_u64)
        .ok_or_else(|| SchemaError("missing or invalid \"seq\"".into()))?;
    let event = map
        .get("event")
        .and_then(Json::as_str)
        .ok_or_else(|| SchemaError("missing or invalid \"event\"".into()))?;
    let Some((_, required)) = EVENTS.iter().find(|(name, _)| *name == event) else {
        return err(format!("unknown event \"{event}\""));
    };
    for (field, kind) in *required {
        match map.get(*field) {
            None => return err(format!("event \"{event}\" missing field \"{field}\"")),
            Some(v) if !kind_matches(*kind, v) => {
                return err(format!(
                    "event \"{event}\" field \"{field}\" has wrong type (expected {kind:?})"
                ))
            }
            Some(_) => {}
        }
    }
    Ok(seq)
}

/// Validates a whole JSONL stream: every line against the schema, and
/// `seq` strictly increasing from 0. Returns the number of events.
///
/// # Errors
///
/// [`SchemaError`] prefixed with the 1-based line number.
pub fn validate_stream(text: &str) -> Result<usize, SchemaError> {
    let mut expected = 0u64;
    let mut count = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let seq =
            validate_line(line).map_err(|e| SchemaError(format!("line {}: {}", i + 1, e.0)))?;
        if seq != expected {
            return err(format!(
                "line {}: seq {} out of order (expected {})",
                i + 1,
                seq,
                expected
            ));
        }
        expected += 1;
        count += 1;
    }
    Ok(count)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::journal::{Event, Journal, TRACE_VERSION};

    #[test]
    fn parser_round_trips_values() {
        let v = parse_json(r#"{"a":[1,2.5,-3e2,null],"b":"x\"y","c":true,"d":{}}"#).unwrap();
        let Json::Object(map) = v else {
            panic!("object")
        };
        assert_eq!(map.get("b").unwrap().as_str(), Some("x\"y"));
        assert_eq!(
            map.get("a"),
            Some(&Json::Array(vec![
                Json::Number(1.0),
                Json::Number(2.5),
                Json::Number(-300.0),
                Json::Null
            ]))
        );
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("{}extra").is_err());
        assert!(parse_json(r#"{"a":1,"a":2}"#).is_err(), "duplicate keys");
        assert!(parse_json("NaN").is_err());
        assert!(parse_json("[1,]").is_err());
    }

    #[test]
    fn journal_output_validates() {
        let j = Journal::new();
        j.record(
            Event::new("trace_meta")
                .field_u64("version", TRACE_VERSION)
                .field_str("command", "simulate"),
        );
        j.record(
            Event::new("solver_iteration")
                .field_u64("iteration", 1)
                .field_f64("residual", f64::NAN)
                .field_f64s("prices", &[1.0, f64::INFINITY]),
        );
        j.record(
            Event::new("quantum_alloc")
                .field_u64("quantum", 0)
                .field_rows("allocation", vec![vec![1.0], vec![2.0]]),
        );
        let text = j.lines().join("\n");
        assert_eq!(validate_stream(&text).unwrap(), 3);
    }

    #[test]
    fn unknown_event_is_rejected() {
        let e = validate_line(r#"{"seq":0,"event":"mystery"}"#).unwrap_err();
        assert!(e.0.contains("unknown event"), "{e}");
    }

    #[test]
    fn missing_and_mistyped_fields_are_rejected() {
        let missing = validate_line(r#"{"seq":0,"event":"rollback","round":1}"#).unwrap_err();
        assert!(missing.0.contains("missing field \"cause\""), "{missing}");
        let mistyped =
            validate_line(r#"{"seq":0,"event":"rollback","round":"one","cause":"floor"}"#)
                .unwrap_err();
        assert!(mistyped.0.contains("wrong type"), "{mistyped}");
    }

    #[test]
    fn stream_sequencing_is_enforced() {
        let good = concat!(
            "{\"seq\":0,\"event\":\"trace_meta\",\"version\":1,\"command\":\"x\"}\n",
            "{\"seq\":1,\"event\":\"rollback\",\"round\":1,\"cause\":\"floor\"}\n",
        );
        assert_eq!(validate_stream(good).unwrap(), 2);
        let skipped = good.replace("\"seq\":1", "\"seq\":2");
        let e = validate_stream(&skipped).unwrap_err();
        assert!(e.0.contains("out of order"), "{e}");
    }

    #[test]
    fn server_events_validate() {
        let req = r#"{"seq":0,"event":"server_request","cmd":"arrive","outcome":"accepted"}"#;
        assert_eq!(validate_line(req).unwrap(), 0);
        let tick = concat!(
            r#"{"seq":1,"event":"server_tick","tick":3,"players":100,"#,
            r#""admitted":2,"converged":true,"fallback":false}"#,
        );
        assert_eq!(validate_line(tick).unwrap(), 1);
        let bad = r#"{"seq":0,"event":"server_tick","tick":3,"players":100,"admitted":2}"#;
        let e = validate_line(bad).unwrap_err();
        assert!(e.0.contains("missing field \"converged\""), "{e}");
    }

    #[test]
    fn every_schema_event_name_is_unique() {
        for (i, (name, _)) in EVENTS.iter().enumerate() {
            assert!(
                EVENTS.iter().skip(i + 1).all(|(other, _)| other != name),
                "duplicate schema entry for {name}"
            );
        }
    }
}
