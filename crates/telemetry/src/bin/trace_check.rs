//! Validates JSONL trace files against the journal schema.
//!
//! Usage: `trace_check FILE...` (or a stream on stdin with no arguments).
//! Exits 0 and prints one `ok:` line per input when every line validates
//! and sequence numbers are strictly increasing from 0; otherwise prints
//! the first violation (with its line number) and exits 1. CI's
//! trace-smoke job runs this over a freshly recorded `--trace` file.

use std::io::Read;
use std::process::ExitCode;

use rebudget_telemetry::schema::validate_stream;

fn check(label: &str, text: &str) -> bool {
    match validate_stream(text) {
        Ok(n) => {
            println!("ok: {label}: {n} events");
            true
        }
        Err(e) => {
            eprintln!("error: {label}: {e}");
            false
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut all_ok = true;
    if args.is_empty() {
        let mut text = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut text) {
            eprintln!("error: stdin: {e}");
            return ExitCode::FAILURE;
        }
        all_ok &= check("<stdin>", &text);
    }
    for path in &args {
        match std::fs::read_to_string(path) {
            Ok(text) => all_ok &= check(path, &text),
            Err(e) => {
                eprintln!("error: {path}: {e}");
                all_ok = false;
            }
        }
    }
    if all_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
