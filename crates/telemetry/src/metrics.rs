//! Lock-free counters, gauges, and mergeable log-scale histograms.
//!
//! Registration (name → instrument) takes a short mutex; every mutation
//! after that is a single atomic RMW on an `Arc`-shared instrument, so the
//! parallel engine's worker threads record without contention on any
//! shared lock. Snapshots are plain data: histogram snapshots merge by
//! element-wise addition, which makes merging associative and commutative
//! by construction — the property suite pins this.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Number of histogram buckets: one for zero plus one per power of two
/// (`u64` has 64 bit positions).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins `f64` value (stored as IEEE-754 bits).
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(AtomicU64::new(0f64.to_bits()))
    }
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A log₂-bucketed histogram of `u64` samples (typically nanoseconds or
/// iteration counts). Bucket `0` holds zeros; bucket `k ≥ 1` holds values
/// whose highest set bit is `k - 1`, i.e. the range `[2^(k-1), 2^k)`.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// The bucket a value falls in. Exposed for tests and table rendering.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive lower bound of bucket `index`.
pub fn bucket_floor(index: usize) -> u64 {
    if index == 0 {
        0
    } else {
        1u64 << (index - 1)
    }
}

impl Histogram {
    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// A point-in-time copy. Concurrent recording may make `count`/`sum`
    /// momentarily inconsistent with the buckets; quiescent snapshots
    /// (after joins) are exact.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of a [`Histogram`]; merging is element-wise addition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Sample count per log₂ bucket (see [`bucket_index`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all sample values (wrapping on overflow, like recording).
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Element-wise sum of two snapshots. Addition commutes and
    /// associates, so any merge tree over the same set of per-thread
    /// snapshots yields the same result.
    #[must_use]
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].wrapping_add(other.buckets[i])),
            count: self.count.wrapping_add(other.count),
            sum: self.sum.wrapping_add(other.sum),
        }
    }

    /// Mean sample value, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Lower bound of the highest non-empty bucket (a cheap max estimate).
    pub fn max_bucket_floor(&self) -> u64 {
        self.buckets
            .iter()
            .rposition(|&c| c > 0)
            .map(bucket_floor)
            .unwrap_or(0)
    }
}

/// Named instruments, created on first use and shared by name.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

/// Never poisoned in practice (no instrument op panics); recover the
/// guard rather than propagating a panic from an unrelated thread.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created if absent. Hot paths should hold
    /// on to the returned `Arc` — lookups take the registration lock.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = lock(&self.counters);
        Arc::clone(map.entry(name.to_owned()).or_default())
    }

    /// The gauge named `name`, created if absent.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = lock(&self.gauges);
        Arc::clone(map.entry(name.to_owned()).or_default())
    }

    /// The histogram named `name`, created if absent.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = lock(&self.histograms);
        Arc::clone(map.entry(name.to_owned()).or_default())
    }

    /// Drops every instrument. Outstanding `Arc`s keep recording into
    /// detached instruments that no snapshot will see.
    pub fn reset(&self) {
        lock(&self.counters).clear();
        lock(&self.gauges).clear();
        lock(&self.histograms).clear();
    }

    /// A sorted plain-data copy of every instrument.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: lock(&self.counters)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: lock(&self.gauges)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: lock(&self.histograms)
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// Sorted plain-data copy of a [`MetricsRegistry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter name → value, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge name → value, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram name → snapshot, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Renders the snapshot as an aligned text table (the CLI's
    /// `--metrics` section).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("  {name:<44} {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, v) in &self.gauges {
                out.push_str(&format!("  {name:<44} {v}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (name, h) in &self.histograms {
                out.push_str(&format!(
                    "  {name:<44} n={} mean={:.1} max≈{}\n",
                    h.count,
                    h.mean(),
                    h.max_bucket_floor()
                ));
            }
        }
        out
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counter_counts() {
        let r = MetricsRegistry::new();
        r.counter("x").add(3);
        r.counter("x").incr();
        assert_eq!(r.counter("x").get(), 4);
        assert_eq!(r.counter("fresh").get(), 0);
    }

    #[test]
    fn gauge_last_write_wins() {
        let g = Gauge::default();
        assert_eq!(g.get(), 0.0);
        g.set(2.5);
        g.set(-1.0);
        assert_eq!(g.get(), -1.0);
    }

    #[test]
    fn bucket_index_is_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..HISTOGRAM_BUCKETS {
            assert_eq!(bucket_index(bucket_floor(i)), i, "floor of bucket {i}");
        }
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let h = Histogram::default();
        for v in [0, 1, 1, 7, 1024] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1033);
        assert_eq!(s.buckets[bucket_index(0)], 1);
        assert_eq!(s.buckets[bucket_index(1)], 2);
        assert_eq!(s.buckets[bucket_index(7)], 1);
        assert_eq!(s.buckets[bucket_index(1024)], 1);
        assert_eq!(s.max_bucket_floor(), 1024);
        assert!((s.mean() - 1033.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn counters_exact_under_threads() {
        let r = Arc::new(MetricsRegistry::new());
        let c = r.counter("threads");
        let n_threads = 8;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..n_threads)
            .map(|_| {
                let c = Arc::clone(&c);
                thread::spawn(move || {
                    for _ in 0..per_thread {
                        c.incr();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), n_threads * per_thread);
    }

    #[test]
    fn reset_clears_instruments() {
        let r = MetricsRegistry::new();
        r.counter("a").incr();
        r.histogram("h").record(9);
        r.reset();
        let s = r.snapshot();
        assert!(s.counters.is_empty());
        assert!(s.histograms.is_empty());
    }

    #[test]
    fn render_table_lists_everything() {
        let r = MetricsRegistry::new();
        r.counter("solver.iterations").add(42);
        r.gauge("last.residual").set(0.5);
        r.histogram("span.quantum").record(1000);
        let t = r.snapshot().render_table();
        assert!(t.contains("solver.iterations"));
        assert!(t.contains("42"));
        assert!(t.contains("last.residual"));
        assert!(t.contains("span.quantum"));
    }
}
