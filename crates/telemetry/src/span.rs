//! Hierarchical wall-clock span timers.
//!
//! A span measures the wall-clock time between its creation and its drop
//! and records the duration (nanoseconds) into the global registry's
//! histogram named `span.<path>`, where the path reflects nesting:
//! `span!("quantum")` inside nothing is `quantum`; a `child("solve")` of
//! it — or a fresh `span!("solve")` opened while `quantum` is the
//! innermost live span on this thread — is `quantum/solve`.
//!
//! Aggregation is by path only; `span!("quantum", q)` accepts trailing
//! label expressions for call-site readability, but labels do not split
//! the histogram (per-label cardinality would swamp the registry).
//!
//! # Cost and robustness
//!
//! When telemetry is disabled the constructor is one relaxed load and one
//! branch, returning an inert guard. Guards are removed from the
//! per-thread nesting stack *by identity*, so dropping spans out of order
//! (e.g. moving a guard into an outliving struct) never panics and never
//! corrupts another span's path — the stale entry is simply excised
//! wherever it sits.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Unique id per live span, used for order-independent stack removal.
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Innermost-last stack of `(id, path)` for the current thread.
    static STACK: RefCell<Vec<(u64, String)>> = const { RefCell::new(Vec::new()) };
}

/// A live span; records its duration on drop. Inert when telemetry was
/// disabled at creation.
#[derive(Debug)]
pub struct SpanGuard {
    inner: Option<ActiveSpan>,
}

#[derive(Debug)]
struct ActiveSpan {
    id: u64,
    path: String,
    start: Instant,
}

/// Opens a span named `name`, nested under the innermost live span of the
/// current thread (if any). Prefer the [`crate::span!`] macro.
pub fn span(name: &str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { inner: None };
    }
    let parent = STACK.with(|s| s.borrow().last().map(|(_, p)| p.clone()));
    open(parent.as_deref(), name)
}

fn open(parent: Option<&str>, name: &str) -> SpanGuard {
    let path = match parent {
        Some(p) => format!("{p}/{name}"),
        None => name.to_owned(),
    };
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    STACK.with(|s| s.borrow_mut().push((id, path.clone())));
    SpanGuard {
        inner: Some(ActiveSpan {
            id,
            path,
            start: Instant::now(),
        }),
    }
}

impl SpanGuard {
    /// Opens a child span nested under this one (regardless of what else
    /// is on the thread's stack). Inert if this guard is inert.
    pub fn child(&self, name: &str) -> SpanGuard {
        match &self.inner {
            Some(active) if crate::enabled() => open(Some(&active.path), name),
            _ => SpanGuard { inner: None },
        }
    }

    /// The span's full path, if live (for tests).
    pub fn path(&self) -> Option<&str> {
        self.inner.as_ref().map(|a| a.path.as_str())
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.inner.take() else {
            return;
        };
        let nanos = active.start.elapsed().as_nanos();
        let nanos = u64::try_from(nanos).unwrap_or(u64::MAX);
        // Remove by id, wherever the entry sits: out-of-order drops leave
        // the other entries' paths untouched.
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|(id, _)| *id == active.id) {
                stack.remove(pos);
            }
        });
        // Record even if telemetry was disabled mid-span: the guard was
        // created under an enabled switch, and dropping data on a racy
        // flag read would make overhead measurements flaky.
        crate::global()
            .registry
            .histogram(&format!("span.{}", active.path))
            .record(nanos);
    }
}

/// Opens a [`SpanGuard`] named by the first argument. Trailing expressions
/// are accepted as call-site annotations (e.g. the quantum index) but do
/// not affect aggregation, which is by span path only.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::span($name)
    };
    ($name:expr, $($label:expr),+ $(,)?) => {{
        $(let _ = &$label;)+
        $crate::span::span($name)
    }};
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    // Span tests share the process-global enabled switch with the rest of
    // the suite; serialise them so concurrent toggles don't interleave.
    fn with_enabled<R>(f: impl FnOnce() -> R) -> R {
        static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _g = GATE
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        crate::set_enabled(true);
        let r = f();
        crate::set_enabled(false);
        r
    }

    #[test]
    fn disabled_spans_are_inert() {
        crate::set_enabled(false);
        let g = span("nothing");
        assert!(g.path().is_none());
        let c = g.child("also-nothing");
        assert!(c.path().is_none());
    }

    #[test]
    fn nesting_builds_paths() {
        with_enabled(|| {
            let outer = span!("quantum", 3usize);
            assert_eq!(outer.path(), Some("quantum"));
            let child = outer.child("solve");
            assert_eq!(child.path(), Some("quantum/solve"));
            // A free-standing span nests under the innermost live span.
            let implicit = span("metrics");
            assert_eq!(implicit.path(), Some("quantum/solve/metrics"));
        });
    }

    #[test]
    fn unbalanced_drop_order_is_safe() {
        with_enabled(|| {
            let a = span("a");
            let b = span("b");
            let c = span("c");
            // Drop the middle span first, then outermost, then innermost.
            drop(b);
            drop(a);
            let d = span("d");
            // `c` is still the innermost live span.
            assert_eq!(d.path(), Some("a/b/c/d"));
            drop(c);
            drop(d);
            // The stack fully drains: a new root span has a bare path.
            let fresh = span("fresh");
            assert_eq!(fresh.path(), Some("fresh"));
        });
    }

    #[test]
    fn durations_land_in_registry_histograms() {
        with_enabled(|| {
            {
                let _g = span("timed-unit");
            }
            let snap = crate::global()
                .registry
                .histogram("span.timed-unit")
                .snapshot();
            assert!(snap.count >= 1, "drop recorded a duration");
        });
    }
}
