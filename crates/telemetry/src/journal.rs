//! The structured JSONL event journal.
//!
//! Events are built with [`Event`] (a name plus typed fields), rendered
//! to one JSON object per line at record time, and buffered in memory
//! until [`Journal::flush_to`] writes them out. Every line carries a
//! process-unique monotonically increasing `seq` so a reader can detect
//! reordering or loss; [`crate::schema`] validates both the per-line
//! shape and the stream-level sequencing.
//!
//! # Crash atomicity
//!
//! `flush_to` uses the same tmp+rename discipline as the simulator's
//! checkpoint writer: the full journal is written to `<path>.tmp`,
//! fsynced, then renamed over `<path>`. A crash mid-flush leaves either
//! the previous complete journal or the new complete journal, never a
//! torn file.
//!
//! # Determinism
//!
//! Rendering is a pure function of the event; `seq` assignment and buffer
//! order follow record order. Callers keep that deterministic by emitting
//! only from serial sections (see the crate docs).

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Schema version stamped on the `trace_meta` line.
pub const TRACE_VERSION: u64 = 1;

/// One field value of an [`Event`].
#[derive(Debug, Clone, PartialEq)]
enum Value {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
    F64s(Vec<f64>),
    Rows(Vec<Vec<f64>>),
}

/// A structured event under construction. Build with the chainable
/// `field_*` methods, then hand to [`crate::record`] /
/// [`Journal::record`].
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    name: &'static str,
    fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// A new event named `name` (must be one of the schema's event names
    /// for the trace to validate).
    pub fn new(name: &'static str) -> Self {
        Event {
            name,
            fields: Vec::new(),
        }
    }

    /// Adds an unsigned integer field.
    #[must_use]
    pub fn field_u64(mut self, key: &'static str, value: u64) -> Self {
        self.fields.push((key, Value::U64(value)));
        self
    }

    /// Adds a signed integer field.
    #[must_use]
    pub fn field_i64(mut self, key: &'static str, value: i64) -> Self {
        self.fields.push((key, Value::I64(value)));
        self
    }

    /// Adds a float field (non-finite values render as `null`).
    #[must_use]
    pub fn field_f64(mut self, key: &'static str, value: f64) -> Self {
        self.fields.push((key, Value::F64(value)));
        self
    }

    /// Adds a boolean field.
    #[must_use]
    pub fn field_bool(mut self, key: &'static str, value: bool) -> Self {
        self.fields.push((key, Value::Bool(value)));
        self
    }

    /// Adds a string field.
    #[must_use]
    pub fn field_str(mut self, key: &'static str, value: &str) -> Self {
        self.fields.push((key, Value::Str(value.to_owned())));
        self
    }

    /// Adds an array-of-numbers field (e.g. a price or budget vector).
    #[must_use]
    pub fn field_f64s(mut self, key: &'static str, values: &[f64]) -> Self {
        self.fields.push((key, Value::F64s(values.to_vec())));
        self
    }

    /// Adds an array-of-arrays field (e.g. an allocation matrix).
    #[must_use]
    pub fn field_rows(mut self, key: &'static str, rows: Vec<Vec<f64>>) -> Self {
        self.fields.push((key, Value::Rows(rows)));
        self
    }

    /// Renders the event as one JSON line with the given sequence number.
    fn render(&self, seq: u64) -> String {
        let mut out = String::with_capacity(64);
        out.push_str("{\"seq\":");
        out.push_str(&seq.to_string());
        out.push_str(",\"event\":");
        push_json_str(&mut out, self.name);
        for (key, value) in &self.fields {
            out.push(',');
            push_json_str(&mut out, key);
            out.push(':');
            push_value(&mut out, value);
        }
        out.push('}');
        out
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` prints a shortest round-trip representation that is
        // valid JSON for finite values ("1.5", "1e300", "-0.0").
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

fn push_value(out: &mut String, value: &Value) {
    match value {
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::F64(v) => push_f64(out, *v),
        Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
        Value::Str(v) => push_json_str(out, v),
        Value::F64s(vs) => {
            out.push('[');
            for (i, v) in vs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_f64(out, *v);
            }
            out.push(']');
        }
        Value::Rows(rows) => {
            out.push('[');
            for (i, row) in rows.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('[');
                for (j, v) in row.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    push_f64(out, *v);
                }
                out.push(']');
            }
            out.push(']');
        }
    }
}

/// In-memory buffer of rendered JSONL lines plus the sequence counter.
#[derive(Debug, Default)]
pub struct Journal {
    seq: AtomicU64,
    lines: Mutex<Vec<String>>,
}

fn lock(m: &Mutex<Vec<String>>) -> MutexGuard<'_, Vec<String>> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Journal {
    /// An empty journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assigns the next sequence number, renders, and buffers `event`.
    pub fn record(&self, event: Event) {
        // Hold the buffer lock across seq assignment so buffer order and
        // seq order can never disagree, even under (discouraged)
        // concurrent recording.
        let mut lines = lock(&self.lines);
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        lines.push(event.render(seq));
    }

    /// Number of buffered lines.
    pub fn len(&self) -> usize {
        lock(&self.lines).len()
    }

    /// Whether the journal holds no lines.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of the buffered lines, in record order.
    pub fn lines(&self) -> Vec<String> {
        lock(&self.lines).clone()
    }

    /// Clears the buffer and restarts sequencing at 0.
    pub fn reset(&self) {
        let mut lines = lock(&self.lines);
        lines.clear();
        self.seq.store(0, Ordering::Relaxed);
    }

    /// Writes the journal to `path` crash-atomically (tmp + fsync +
    /// rename). The buffer is left intact so later flushes rewrite the
    /// longer journal over the same path.
    ///
    /// # Errors
    ///
    /// Any I/O error from creating, writing, syncing, or renaming the
    /// temporary file.
    pub fn flush_to(&self, path: &Path) -> io::Result<()> {
        let lines = self.lines();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        {
            let mut f = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp)?;
            for line in &lines {
                f.write_all(line.as_bytes())?;
                f.write_all(b"\n")?;
            }
            f.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        // Best-effort directory sync so the rename itself is durable.
        if let Some(dir) = path.parent() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn events_render_as_json_lines() {
        let j = Journal::new();
        j.record(
            Event::new("solver_iteration")
                .field_u64("iteration", 3)
                .field_f64("residual", 0.25)
                .field_f64s("prices", &[1.0, 2.5]),
        );
        j.record(Event::new("rollback").field_str("cause", "floor \"check\""));
        let lines = j.lines();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"seq\":0,\"event\":\"solver_iteration\",\"iteration\":3,\"residual\":0.25,\"prices\":[1.0,2.5]}"
        );
        assert_eq!(
            lines[1],
            "{\"seq\":1,\"event\":\"rollback\",\"cause\":\"floor \\\"check\\\"\"}"
        );
    }

    #[test]
    fn non_finite_floats_render_null() {
        let j = Journal::new();
        j.record(
            Event::new("solve_end")
                .field_f64("residual", f64::NAN)
                .field_f64s("prices", &[f64::INFINITY, 1.0]),
        );
        let line = j.lines().remove(0);
        assert!(line.contains("\"residual\":null"));
        assert!(line.contains("[null,1.0]"));
    }

    #[test]
    fn allocation_rows_render_nested_arrays() {
        let j = Journal::new();
        j.record(
            Event::new("quantum_alloc")
                .field_u64("quantum", 0)
                .field_rows("allocation", vec![vec![1.0, 2.0], vec![3.0, 4.0]]),
        );
        let line = j.lines().remove(0);
        assert!(line.contains("\"allocation\":[[1.0,2.0],[3.0,4.0]]"));
    }

    #[test]
    fn reset_restarts_sequencing() {
        let j = Journal::new();
        j.record(Event::new("trace_meta"));
        j.record(Event::new("trace_meta"));
        j.reset();
        assert!(j.is_empty());
        j.record(Event::new("trace_meta"));
        assert!(j.lines()[0].starts_with("{\"seq\":0,"));
    }

    #[test]
    fn flush_is_atomic_and_repeatable() {
        let dir =
            std::env::temp_dir().join(format!("rebudget-journal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let j = Journal::new();
        j.record(Event::new("trace_meta").field_u64("version", TRACE_VERSION));
        j.flush_to(&path).unwrap();
        let first = std::fs::read_to_string(&path).unwrap();
        assert_eq!(first.lines().count(), 1);
        j.record(Event::new("solve_start").field_u64("players", 2));
        j.flush_to(&path).unwrap();
        let second = std::fs::read_to_string(&path).unwrap();
        assert_eq!(second.lines().count(), 2);
        assert!(second.starts_with(&first), "flush rewrites a superset");
        assert!(
            !path.with_extension("jsonl.tmp").exists(),
            "tmp renamed away"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
