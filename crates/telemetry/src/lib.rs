//! Observability for the ReBudget stack: metrics, spans, and a trace
//! journal — with a one-branch fast path when disabled.
//!
//! The paper's mechanism is driven entirely by runtime observation
//! (per-interval utility monitoring feeds the budget re-assignment
//! decisions), yet diagnosing *why* a solve converged slowly or a round
//! rolled back needs visibility into solver internals that end-of-run
//! counters cannot provide. This crate supplies that layer without adding
//! any dependency:
//!
//! * [`metrics`] — a [`metrics::MetricsRegistry`] of named counters,
//!   gauges, and mergeable log-scale histograms. All mutation is lock-free
//!   (atomics), so the `parallel` feature's Jacobi fan-out can record
//!   contention-free; only name registration takes a lock.
//! * [`span`] — hierarchical wall-clock span timers
//!   (`span!("quantum").child("solve")`). Durations aggregate into
//!   registry histograms keyed by the span path.
//! * [`journal`] — a structured JSONL event journal (per-iteration solver
//!   residuals and prices, guardrail recoveries, ReBudget round budgets,
//!   per-quantum allocations) flushed with the same crash-atomic
//!   tmp+rename discipline as `rebudget-sim`'s checkpoints.
//! * [`schema`] — a hand-rolled JSON parser and the closed event schema,
//!   shared by the test suite and the `trace_check` bin so CI can validate
//!   every emitted line.
//!
//! # Cost model
//!
//! Telemetry is compiled in unconditionally but *off* by default. Every
//! instrumentation site is guarded by [`enabled()`] — a single relaxed
//! atomic load and branch — so the disabled path costs one predictable
//! branch per site (measured ≤ 1% on the robustness bench; see
//! EXPERIMENTS.md). Enabling tracing records events and timings but never
//! participates in any numeric computation: a traced run is bit-identical
//! to an untraced run, and the determinism suite pins that.
//!
//! # Determinism
//!
//! Journal events must be emitted only from deterministic serial sections
//! (e.g. the solver's post-sweep main loop), never from inside a parallel
//! fan-out, so the event order is a pure function of the inputs. Metrics
//! and spans are unordered aggregates and may be recorded anywhere.

pub mod journal;
pub mod metrics;
pub mod schema;
pub mod span;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

pub use journal::{Event, Journal};
pub use metrics::{HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use span::SpanGuard;

/// The process-wide telemetry sinks.
///
/// A global is the only channel that reaches every instrumentation site:
/// options structs like `EquilibriumOptions` derive `PartialEq`/`Copy`
/// semantics that a sink handle would break, and the `Mechanism` trait
/// offers no configuration path into nested solves.
pub struct Telemetry {
    /// Process-wide metrics registry (counters, gauges, histograms).
    pub registry: MetricsRegistry,
    /// Process-wide trace journal (structured JSONL events).
    pub journal: Journal,
}

/// Master switch. Separate from [`Telemetry`] so the disabled fast path is
/// exactly one relaxed load + branch, with no `OnceLock` indirection.
static ENABLED: AtomicBool = AtomicBool::new(false);

static GLOBAL: OnceLock<Telemetry> = OnceLock::new();

/// The global telemetry sinks. Lazily initialised; cheap after first use.
pub fn global() -> &'static Telemetry {
    GLOBAL.get_or_init(|| Telemetry {
        registry: MetricsRegistry::new(),
        journal: Journal::new(),
    })
}

/// Whether telemetry is recording. Instrumentation sites guard on this;
/// when `false` the site costs one relaxed atomic load and one branch.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on or off. Off is the default; flipping the switch
/// never changes any computed result, only whether observations are kept.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Clears all recorded state (metrics, journal, sequence numbers) without
/// touching the enabled switch. Callers that own a "run" (the CLI, tests)
/// reset before recording so output reflects that run alone.
pub fn reset() {
    let t = global();
    t.registry.reset();
    t.journal.reset();
}

/// Records `event` in the global journal if telemetry is enabled.
///
/// The `Event` is only built by the caller when [`enabled()`] is true
/// (construction is inside the guard), so the disabled cost stays at one
/// branch.
pub fn record(event: Event) {
    global().journal.record(event);
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_toggles() {
        // Other tests may flip the switch concurrently; serialize through
        // the journal lock by only asserting the local round trip.
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
    }

    #[test]
    fn global_is_a_singleton() {
        let a = global() as *const Telemetry;
        let b = global() as *const Telemetry;
        assert_eq!(a, b);
    }
}
