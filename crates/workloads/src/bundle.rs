//! Bundles: one application per core.

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rebudget_apps::spec::apps_in_class;
use rebudget_apps::AppProfile;

use crate::category::Category;

/// Errors from bundle construction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WorkloadError {
    /// The core count cannot be split into four equal quarters.
    CoresNotDivisibleByFour {
        /// The offending core count.
        cores: usize,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::CoresNotDivisibleByFour { cores } => {
                write!(f, "core count {cores} is not divisible by 4")
            }
        }
    }
}

impl std::error::Error for WorkloadError {}

/// A multiprogrammed bundle: `cores` applications, one per core, drawn
/// from a [`Category`]'s class mix.
#[derive(Debug, Clone)]
pub struct Bundle {
    /// The category the bundle was drawn from.
    pub category: Category,
    /// Index of this bundle within its category's suite (0-based).
    pub index: usize,
    /// One application per core.
    pub apps: Vec<&'static AppProfile>,
}

impl Bundle {
    /// Number of cores (= applications).
    pub fn cores(&self) -> usize {
        self.apps.len()
    }

    /// A short display label, e.g. `"CPBB#07"` (hand-constructed bundles
    /// with the `usize::MAX` sentinel index display as `"…#paper"`).
    pub fn label(&self) -> String {
        if self.index == usize::MAX {
            format!("{}#paper", self.category.name())
        } else {
            format!("{}#{:02}", self.category.name(), self.index)
        }
    }

    /// The application names in core order.
    pub fn app_names(&self) -> Vec<&'static str> {
        self.apps.iter().map(|a| a.name).collect()
    }
}

/// Generates one bundle: `cores / 4` applications drawn (with replacement,
/// so bundles can contain multiple copies of an application — as in the
/// paper's Figure 3 bundle) from each of the category's four quarters.
///
/// # Examples
///
/// ```
/// use rebudget_workloads::{generate_bundle, Category};
///
/// # fn main() -> Result<(), rebudget_workloads::WorkloadError> {
/// let bundle = generate_bundle(Category::Cpbn, 8, 0, 1)?;
/// assert_eq!(bundle.cores(), 8);
/// // Two apps from each of C, P, B, N.
/// assert_eq!(bundle.apps.iter().filter(|a| a.class.letter() == 'C').count(), 2);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`WorkloadError::CoresNotDivisibleByFour`] unless `cores % 4 == 0`.
pub fn generate_bundle(
    category: Category,
    cores: usize,
    index: usize,
    seed: u64,
) -> Result<Bundle, WorkloadError> {
    if cores == 0 || !cores.is_multiple_of(4) {
        return Err(WorkloadError::CoresNotDivisibleByFour { cores });
    }
    let per_quarter = cores / 4;
    // Mix the category and index into the seed so every bundle differs but
    // the full suite is reproducible from one seed.
    let mixed = seed
        ^ (category
            .name()
            .bytes()
            .fold(0u64, |h, b| h.wrapping_mul(131).wrapping_add(b as u64)))
        ^ ((index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let mut rng = StdRng::seed_from_u64(mixed);
    let mut apps = Vec::with_capacity(cores);
    for class in category.quarters() {
        let pool = apps_in_class(class);
        debug_assert!(!pool.is_empty(), "every class has applications");
        for _ in 0..per_quarter {
            apps.push(pool[rng.random_range(0..pool.len())]);
        }
    }
    Ok(Bundle {
        category,
        index,
        apps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rebudget_apps::AppClass;
    use std::collections::HashMap;

    #[test]
    fn class_mix_matches_category() {
        for category in Category::ALL {
            let bundle = generate_bundle(category, 64, 0, 42).unwrap();
            assert_eq!(bundle.cores(), 64);
            let mut counts: HashMap<AppClass, usize> = HashMap::new();
            for app in &bundle.apps {
                *counts.entry(app.class).or_default() += 1;
            }
            let mut expected: HashMap<AppClass, usize> = HashMap::new();
            for class in category.quarters() {
                *expected.entry(class).or_default() += 16;
            }
            assert_eq!(counts, expected, "category {category}");
        }
    }

    #[test]
    fn reproducible_and_seed_sensitive() {
        let a = generate_bundle(Category::Cpbn, 8, 3, 7).unwrap();
        let b = generate_bundle(Category::Cpbn, 8, 3, 7).unwrap();
        assert_eq!(a.app_names(), b.app_names());
        let c = generate_bundle(Category::Cpbn, 8, 4, 7).unwrap();
        let d = generate_bundle(Category::Cpbn, 8, 3, 8).unwrap();
        // Different index or seed should (overwhelmingly) differ.
        assert!(a.app_names() != c.app_names() || a.app_names() != d.app_names());
    }

    #[test]
    fn rejects_bad_core_counts() {
        assert!(generate_bundle(Category::Ccpp, 6, 0, 1).is_err());
        assert!(generate_bundle(Category::Ccpp, 0, 0, 1).is_err());
        let err = generate_bundle(Category::Ccpp, 7, 0, 1).unwrap_err();
        assert!(err.to_string().contains("7"));
    }

    #[test]
    fn labels_are_stable() {
        let b = generate_bundle(Category::Bbcn, 8, 7, 1).unwrap();
        assert_eq!(b.label(), "BBCN#07");
    }

    #[test]
    fn replacement_allows_duplicates() {
        // With 16 draws from 6 apps, duplicates are certain.
        let b = generate_bundle(Category::Ccpp, 64, 0, 9).unwrap();
        let mut names = b.app_names();
        names.sort_unstable();
        names.dedup();
        assert!(names.len() < 64);
    }
}
