#![warn(missing_docs)]

//! Multiprogrammed workload construction (§5 of the paper).
//!
//! The paper classifies its 24 applications into four classes — C, P, B,
//! N — and builds six categories of multiprogrammed bundles: **CPBN**,
//! **CCPP**, **CPBB**, **BBNN**, **BBPN**, and **BBCN**. Each letter names
//! the class from which a quarter of the cores draw their applications
//! ("for an 8-core (64-core) configuration, 2 (16) applications are
//! randomly selected from each application class"). Forty bundles per
//! category are generated for each core count, for 240 bundles total.
//!
//! Generation is seeded and reproducible; the same seed always yields the
//! same suite.

pub mod bundle;
pub mod category;
pub mod suite;

pub use bundle::{generate_bundle, Bundle, WorkloadError};
pub use category::Category;
pub use suite::{full_suite, paper_bbpc_8core, BUNDLES_PER_CATEGORY};
