//! Full evaluation suites and the paper's fixed case-study bundle.

use rebudget_apps::spec::app_by_name;

use crate::bundle::{generate_bundle, Bundle, WorkloadError};
use crate::category::Category;

/// Bundles generated per category (§5: "we randomly generate 40 workloads"
/// per category).
pub const BUNDLES_PER_CATEGORY: usize = 40;

/// Generates the full evaluation suite for a core count: 40 bundles for
/// each of the six categories (240 total), reproducibly from `seed`.
///
/// # Errors
///
/// Returns [`WorkloadError`] if `cores` is not divisible by 4.
pub fn full_suite(cores: usize, seed: u64) -> Result<Vec<Bundle>, WorkloadError> {
    let mut bundles = Vec::with_capacity(Category::ALL.len() * BUNDLES_PER_CATEGORY);
    for category in Category::ALL {
        for index in 0..BUNDLES_PER_CATEGORY {
            bundles.push(generate_bundle(category, cores, index, seed)?);
        }
    }
    Ok(bundles)
}

/// The fixed 8-core bundle of the paper's §6.1.1 / Figure 3 case study:
/// "four 'B' apps (*apsi* and *swim*, 2 copies each), two 'C' apps (2
/// copies of *mcf*), and two 'P' apps (*hmmer* and *sixtrack*)".
pub fn paper_bbpc_8core() -> Bundle {
    let apps = [
        "apsi", "apsi", "swim", "swim", "mcf", "mcf", "hmmer", "sixtrack",
    ]
    .iter()
    .map(|name| app_by_name(name).expect("paper apps exist"))
    .collect();
    Bundle {
        category: Category::Cpbb,
        index: usize::MAX, // sentinel: hand-constructed, not generated
        apps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rebudget_apps::AppClass;

    #[test]
    fn suite_has_240_bundles() {
        let suite = full_suite(8, 1).unwrap();
        assert_eq!(suite.len(), 240);
        for category in Category::ALL {
            assert_eq!(
                suite.iter().filter(|b| b.category == category).count(),
                BUNDLES_PER_CATEGORY
            );
        }
    }

    #[test]
    fn suite_reproducible() {
        let a = full_suite(8, 5).unwrap();
        let b = full_suite(8, 5).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.app_names(), y.app_names());
        }
    }

    #[test]
    fn suite_works_at_64_cores() {
        let suite = full_suite(64, 1).unwrap();
        assert!(suite.iter().all(|b| b.cores() == 64));
    }

    #[test]
    fn paper_bundle_composition() {
        let b = paper_bbpc_8core();
        assert_eq!(b.cores(), 8);
        let count = |class| b.apps.iter().filter(|a| a.class == class).count();
        assert_eq!(count(AppClass::Both), 4);
        assert_eq!(count(AppClass::Cache), 2);
        assert_eq!(count(AppClass::Power), 2);
        assert_eq!(b.app_names()[4], "mcf");
    }
}
