//! The six bundle categories.

use rebudget_apps::AppClass;

/// A workload category: four letters, each naming the class from which one
/// quarter of the cores draw applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// One quarter each of C, P, B, and N.
    Cpbn,
    /// Half C, half P.
    Ccpp,
    /// Quarter C, quarter P, half B (the paper also calls a sample of this
    /// category "BBPC" in §6.1.1).
    Cpbb,
    /// Half B, half N.
    Bbnn,
    /// Half B, quarter P, quarter N.
    Bbpn,
    /// Half B, quarter C, quarter N.
    Bbcn,
}

impl Category {
    /// All six categories, in the paper's order.
    pub const ALL: [Category; 6] = [
        Category::Cpbn,
        Category::Ccpp,
        Category::Cpbb,
        Category::Bbnn,
        Category::Bbpn,
        Category::Bbcn,
    ];

    /// The category's display name (e.g. `"CPBN"`).
    pub fn name(self) -> &'static str {
        match self {
            Category::Cpbn => "CPBN",
            Category::Ccpp => "CCPP",
            Category::Cpbb => "CPBB",
            Category::Bbnn => "BBNN",
            Category::Bbpn => "BBPN",
            Category::Bbcn => "BBCN",
        }
    }

    /// The four per-quarter classes.
    pub fn quarters(self) -> [AppClass; 4] {
        let classes: Vec<AppClass> = self
            .name()
            .chars()
            .map(|c| AppClass::from_letter(c).expect("category names are valid"))
            .collect();
        [classes[0], classes[1], classes[2], classes[3]]
    }

    /// Parses a category name (case-insensitive).
    pub fn from_name(name: &str) -> Option<Self> {
        let upper = name.to_ascii_uppercase();
        Category::ALL.into_iter().find(|c| c.name() == upper)
    }
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_categories_with_valid_quarters() {
        assert_eq!(Category::ALL.len(), 6);
        for c in Category::ALL {
            let q = c.quarters();
            assert_eq!(q.len(), 4);
            let name: String = q.iter().map(|cl| cl.letter()).collect();
            assert_eq!(name, c.name());
        }
    }

    #[test]
    fn parse_round_trip() {
        for c in Category::ALL {
            assert_eq!(Category::from_name(c.name()), Some(c));
            assert_eq!(Category::from_name(&c.name().to_lowercase()), Some(c));
        }
        assert_eq!(Category::from_name("XXXX"), None);
        assert_eq!(format!("{}", Category::Cpbb), "CPBB");
    }
}
