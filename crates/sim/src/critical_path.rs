//! The leading-loads critical-path predictor (Miftakhutdinov, Ebrahimi &
//! Patt, MICRO 2012 — cited in §4.1.1 of the paper).
//!
//! To know how an application's execution time scales with frequency, the
//! paper's monitor splits time into a *compute phase* (scales with `f`)
//! and a *memory phase* (bounded by DRAM, frequency-independent): "the
//! length of the memory phase under different cache allocations is
//! estimated using UMON shadow tags and a critical path predictor". The
//! leading-loads technique measures the memory phase online: the stall
//! time of the *leading* (first outstanding) miss in each overlap burst is
//! charged to the memory phase; everything else is compute.
//!
//! [`LeadingLoadsPredictor`] consumes per-quantum observations (elapsed
//! time, frequency, misses, effective latency, overlap) and predicts the
//! quantum's duration at any other frequency — the `T(f') = T_comp·f/f' +
//! T_mem` model the utility surfaces are built on.

/// One quantum's observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantumObservation {
    /// Wall-clock duration of the quantum (ns).
    pub elapsed_ns: f64,
    /// Core frequency during the quantum (GHz).
    pub freq_ghz: f64,
    /// L2 misses observed.
    pub misses: f64,
    /// Effective per-miss latency (ns).
    pub miss_latency_ns: f64,
    /// Memory-level parallelism: misses overlapping a leading load.
    pub mlp: f64,
}

/// Online estimate of the compute/memory phase split.
///
/// # Examples
///
/// ```
/// use rebudget_sim::critical_path::{LeadingLoadsPredictor, QuantumObservation};
///
/// let mut p = LeadingLoadsPredictor::new();
/// // 1 ms quantum at 2 GHz: 0.4 ms of leading-load stalls.
/// p.observe(&QuantumObservation {
///     elapsed_ns: 1e6,
///     freq_ghz: 2.0,
///     misses: 10_000.0,
///     miss_latency_ns: 80.0,
///     mlp: 2.0,
/// });
/// // Doubling frequency halves only the compute phase.
/// let at_4ghz = p.predict_ns(4.0);
/// assert!((at_4ghz - (0.6e6 / 2.0 + 0.4e6)).abs() < 1.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LeadingLoadsPredictor {
    total_compute_cycles: f64, // GHz·ns = cycles
    total_memory_ns: f64,
    total_observed_ns: f64,
}

impl LeadingLoadsPredictor {
    /// Creates an empty predictor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one quantum's measurements.
    ///
    /// The leading-loads rule: memory time = misses × latency / MLP
    /// (only the leading miss of each overlap group stalls the pipeline);
    /// whatever remains is compute and is converted to cycles so it can
    /// be re-scaled to other frequencies.
    pub fn observe(&mut self, obs: &QuantumObservation) {
        let memory_ns = (obs.misses * obs.miss_latency_ns / obs.mlp.max(0.1)).min(obs.elapsed_ns);
        let compute_ns = obs.elapsed_ns - memory_ns;
        self.total_compute_cycles += compute_ns * obs.freq_ghz;
        self.total_memory_ns += memory_ns;
        self.total_observed_ns += obs.elapsed_ns;
    }

    /// Total observed time (ns).
    pub fn observed_ns(&self) -> f64 {
        self.total_observed_ns
    }

    /// Fraction of observed time attributed to the memory phase.
    pub fn memory_fraction(&self) -> f64 {
        if self.total_observed_ns <= 0.0 {
            0.0
        } else {
            self.total_memory_ns / self.total_observed_ns
        }
    }

    /// Predicted duration (ns) of the observed work at frequency
    /// `freq_ghz`: compute cycles re-scaled, memory phase unchanged.
    pub fn predict_ns(&self, freq_ghz: f64) -> f64 {
        self.total_compute_cycles / freq_ghz.max(1e-3) + self.total_memory_ns
    }

    /// Predicted speedup of running at `to_ghz` instead of `from_ghz`
    /// (ratio of durations; > 1 means faster).
    pub fn predicted_speedup(&self, from_ghz: f64, to_ghz: f64) -> f64 {
        let from = self.predict_ns(from_ghz);
        let to = self.predict_ns(to_ghz);
        if to <= 0.0 {
            1.0
        } else {
            from / to
        }
    }

    /// Resets all accumulated state (new epoch).
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rebudget_apps::perf::{time_per_kilo_instruction, PerfEnv};
    use rebudget_apps::spec::app_by_name;

    /// Synthesizes a ground-truth observation for `app` running one
    /// million instructions at (cache, f).
    fn observe_app(app: &rebudget_apps::AppProfile, cache: f64, f: f64) -> QuantumObservation {
        let env = PerfEnv::paper();
        let t_kilo = time_per_kilo_instruction(app, &env, cache, f);
        QuantumObservation {
            elapsed_ns: t_kilo * 1000.0, // 1M instructions
            freq_ghz: f,
            misses: app.mpki_at(cache) * 1000.0,
            miss_latency_ns: env.mem_latency_ns,
            mlp: app.mlp,
        }
    }

    #[test]
    fn predicts_dvfs_scaling_exactly_for_the_phase_model() {
        // The predictor observes at 2 GHz and must predict the 4 GHz and
        // 0.8 GHz durations of the same work — which the phase model
        // defines exactly.
        let env = PerfEnv::paper();
        for name in ["mcf", "sixtrack", "swim", "libquantum"] {
            let app = app_by_name(name).expect("exists");
            let cache = 1e6;
            let mut p = LeadingLoadsPredictor::new();
            p.observe(&observe_app(app, cache, 2.0));
            for target in [0.8, 4.0] {
                let predicted = p.predict_ns(target);
                let truth = time_per_kilo_instruction(app, &env, cache, target) * 1000.0;
                let err = (predicted - truth).abs() / truth;
                assert!(
                    err < 1e-9,
                    "{name} at {target} GHz: predicted {predicted} vs truth {truth}"
                );
            }
        }
    }

    #[test]
    fn memory_fraction_separates_app_classes() {
        let mut compute = LeadingLoadsPredictor::new();
        compute.observe(&observe_app(
            app_by_name("sixtrack").expect("exists"),
            1e6,
            2.0,
        ));
        let mut memory = LeadingLoadsPredictor::new();
        memory.observe(&observe_app(
            app_by_name("libquantum").expect("exists"),
            1e6,
            2.0,
        ));
        assert!(
            compute.memory_fraction() < 0.1,
            "{}",
            compute.memory_fraction()
        );
        assert!(
            memory.memory_fraction() > 0.6,
            "{}",
            memory.memory_fraction()
        );
    }

    #[test]
    fn speedup_is_sublinear_for_memory_bound_work() {
        let app = app_by_name("mcf").expect("exists");
        let mut p = LeadingLoadsPredictor::new();
        p.observe(&observe_app(app, 256.0 * 1024.0, 0.8)); // cache-starved
        let s = p.predicted_speedup(0.8, 4.0);
        assert!(
            s < 2.0,
            "memory-bound mcf should not enjoy the full 5× frequency: {s}"
        );
        let mut c = LeadingLoadsPredictor::new();
        c.observe(&observe_app(app_by_name("eon").expect("exists"), 1e6, 0.8));
        let s = c.predicted_speedup(0.8, 4.0);
        assert!(s > 4.5, "compute-bound eon should scale nearly 5×: {s}");
    }

    #[test]
    fn accumulates_across_quanta_and_resets() {
        let app = app_by_name("vpr").expect("exists");
        let mut p = LeadingLoadsPredictor::new();
        p.observe(&observe_app(app, 1e6, 2.0));
        let one = p.observed_ns();
        p.observe(&observe_app(app, 1e6, 2.0));
        assert!((p.observed_ns() - 2.0 * one).abs() < 1e-6);
        p.reset();
        assert_eq!(p.observed_ns(), 0.0);
        assert_eq!(p.memory_fraction(), 0.0);
    }

    #[test]
    fn memory_time_is_clamped_to_elapsed() {
        let mut p = LeadingLoadsPredictor::new();
        p.observe(&QuantumObservation {
            elapsed_ns: 100.0,
            freq_ghz: 2.0,
            misses: 1e9, // absurd
            miss_latency_ns: 80.0,
            mlp: 1.0,
        });
        assert!(p.memory_fraction() <= 1.0);
        assert!(p.predict_ns(4.0) >= 100.0 - 1e-9);
    }
}
