//! The multicore machine: enforcement and execution of one allocation
//! quantum.
//!
//! Given a per-core allocation (discretionary cache regions, discretionary
//! Watts), the machine
//!
//! 1. converts Watts to a frequency through each core's power model (the
//!    RAPL-style enforcement of §5),
//! 2. realizes the cache allocation at its Talus-convexified miss rate
//!    (Futility Scaling holds the partition at line granularity, Talus
//!    makes the effective miss curve equal its convex hull — §4.1.1),
//! 3. advances each application by the instructions it retires in the
//!    quantum, and
//! 4. steps the per-core thermal nodes under the drawn power.

use rebudget_cache::talus::Talus;
use rebudget_power::thermal_grid::ThermalGrid;
use rebudget_power::CorePowerModel;
use rebudget_workloads::Bundle;

use crate::config::{SystemConfig, QUANTUM_SECONDS};
use crate::dram::DramConfig;
use crate::utility_model::{analytic_mpki_curve, core_power_model};

/// Execution state of one core.
#[derive(Debug, Clone)]
pub struct CoreState {
    /// The application pinned to the core.
    pub app: &'static rebudget_apps::AppProfile,
    /// Power model (activity-scaled).
    pub power_model: CorePowerModel,
    /// Talus controller over the application's miss curve — the effective
    /// (convexified) miss behaviour the hardware realizes.
    pub talus: Talus,
    /// Instructions retired so far.
    pub instructions: f64,
    /// Frequency set in the last quantum (GHz).
    pub freq_ghz: f64,
    /// Energy consumed so far (Joules).
    pub energy_j: f64,
}

/// Per-quantum telemetry.
#[derive(Debug, Clone)]
pub struct QuantumStats {
    /// Frequencies the cores ran at (GHz).
    pub freqs_ghz: Vec<f64>,
    /// Power drawn per core (W).
    pub watts: Vec<f64>,
    /// Temperatures at quantum end (K).
    pub temps_k: Vec<f64>,
    /// Instructions retired this quantum, per core.
    pub instructions: Vec<f64>,
}

/// The machine: system config + per-core execution state.
#[derive(Debug, Clone)]
pub struct Machine {
    sys: SystemConfig,
    dram: DramConfig,
    cores: Vec<CoreState>,
    /// Laterally coupled per-core thermal mesh.
    thermal: ThermalGrid,
    elapsed_s: f64,
}

impl Machine {
    /// Builds a machine running `bundle` (one app per core).
    ///
    /// # Panics
    ///
    /// Panics if the bundle size differs from the configured core count.
    pub fn new(sys: SystemConfig, dram: DramConfig, bundle: &Bundle) -> Self {
        assert_eq!(
            bundle.cores(),
            sys.cores,
            "bundle size must match core count"
        );
        let cores: Vec<CoreState> = bundle
            .apps
            .iter()
            .map(|app| CoreState {
                app,
                power_model: core_power_model(app),
                talus: Talus::new(analytic_mpki_curve(app, &sys)),
                instructions: 0.0,
                freq_ghz: sys.dvfs.f_min,
                energy_j: 0.0,
            })
            .collect();
        let thermal = ThermalGrid::for_cores(cores.len());
        Self {
            sys,
            dram,
            cores,
            thermal,
            elapsed_s: 0.0,
        }
    }

    /// The system configuration.
    pub fn system(&self) -> &SystemConfig {
        &self.sys
    }

    /// Per-core state.
    pub fn cores(&self) -> &[CoreState] {
        &self.cores
    }

    /// Wall-clock seconds simulated so far.
    pub fn elapsed_seconds(&self) -> f64 {
        self.elapsed_s
    }

    /// Junction temperature of core `i` in Kelvin.
    pub fn temperature(&self, i: usize) -> f64 {
        self.thermal.temperature(i)
    }

    /// Total chip energy consumed so far (Joules).
    pub fn total_energy_joules(&self) -> f64 {
        self.cores.iter().map(|c| c.energy_j).sum()
    }

    /// Chip-level energy-delay product so far (J·s) — a common composite
    /// figure of merit for DVFS studies.
    pub fn energy_delay_product(&self) -> f64 {
        self.total_energy_joules() * self.elapsed_s
    }

    /// Executes one 1 ms quantum under the given allocation.
    ///
    /// `cache_regions[i]` is core `i`'s discretionary regions and
    /// `extra_watts[i]` its discretionary power.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ from the core count.
    pub fn run_quantum(&mut self, cache_regions: &[f64], extra_watts: &[f64]) -> QuantumStats {
        assert_eq!(cache_regions.len(), self.cores.len());
        assert_eq!(extra_watts.len(), self.cores.len());
        let mem_ns = self.dram.reference_latency_ns();
        let mut stats = QuantumStats {
            freqs_ghz: Vec::with_capacity(self.cores.len()),
            watts: Vec::with_capacity(self.cores.len()),
            temps_k: Vec::with_capacity(self.cores.len()),
            instructions: Vec::with_capacity(self.cores.len()),
        };
        let mut drawn_watts = Vec::with_capacity(self.cores.len());
        for (i, core) in self.cores.iter_mut().enumerate() {
            let temp = self.thermal.temperature(i);
            // RAPL enforcement: floor + discretionary → highest frequency
            // that fits.
            let budget = core.power_model.floor_power(temp) + extra_watts[i].max(0.0);
            let freq = core
                .power_model
                .frequency_for_power(budget, temp)
                .unwrap_or(self.sys.dvfs.f_min);
            // Talus-effective miss rate at the allocated partition size.
            let cache_bytes = self.sys.core_cache_bytes(cache_regions[i]);
            let mpki = core.talus.expected_misses(cache_bytes);
            let t_kilo_ns =
                1000.0 * core.app.base_cpi / freq + mpki * mem_ns / core.app.mlp.max(0.1);
            let retired = QUANTUM_SECONDS * 1e12 / t_kilo_ns; // instr this quantum
            core.instructions += retired;
            core.freq_ghz = freq;
            let drawn = core.power_model.total_power(freq, temp);
            core.energy_j += drawn * QUANTUM_SECONDS;
            drawn_watts.push(drawn);
            stats.freqs_ghz.push(freq);
            stats.watts.push(drawn);
            stats.instructions.push(retired);
        }
        self.thermal.step(&drawn_watts, QUANTUM_SECONDS);
        stats.temps_k = (0..self.cores.len())
            .map(|i| self.thermal.temperature(i))
            .collect();
        self.elapsed_s += QUANTUM_SECONDS;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rebudget_workloads::paper_bbpc_8core;

    fn machine() -> Machine {
        Machine::new(
            SystemConfig::paper_8core(),
            DramConfig::ddr3_1600(),
            &paper_bbpc_8core(),
        )
    }

    #[test]
    fn quantum_advances_time_and_instructions() {
        let mut m = machine();
        let regions = vec![3.0; 8];
        let watts = vec![5.0; 8];
        let stats = m.run_quantum(&regions, &watts);
        assert!((m.elapsed_seconds() - 1e-3).abs() < 1e-12);
        assert!(stats.instructions.iter().all(|&i| i > 0.0));
        assert!(m.cores()[0].instructions > 0.0);
    }

    #[test]
    fn more_watts_more_frequency_more_instructions() {
        let mut poor = machine();
        let mut rich = machine();
        let regions = vec![2.0; 8];
        let p = poor.run_quantum(&regions, &[0.5; 8]);
        let r = rich.run_quantum(&regions, &[8.0; 8]);
        for i in 0..8 {
            assert!(r.freqs_ghz[i] > p.freqs_ghz[i]);
            assert!(r.instructions[i] > p.instructions[i]);
        }
    }

    #[test]
    fn more_cache_helps_cache_sensitive_core() {
        // Core 4 runs mcf in the paper bundle.
        let mut small = machine();
        let mut big = machine();
        let watts = vec![4.0; 8];
        let mut r_small = vec![1.0; 8];
        let mut r_big = vec![1.0; 8];
        r_small[4] = 1.0;
        r_big[4] = 13.0; // past the 1.5 MB cliff
        let s = small.run_quantum(&r_small, &watts);
        let b = big.run_quantum(&r_big, &watts);
        assert!(
            b.instructions[4] > 1.5 * s.instructions[4],
            "mcf past its cliff should speed up a lot: {} vs {}",
            s.instructions[4],
            b.instructions[4]
        );
    }

    #[test]
    fn energy_accounting_respects_tdp() {
        let mut m = machine();
        for _ in 0..10 {
            m.run_quantum(&[2.0; 8], &[7.0; 8]);
        }
        let energy = m.total_energy_joules();
        // 10 ms at ≤80 W chip TDP-equivalent draw: bounded by budget.
        assert!(energy > 0.0);
        assert!(
            energy <= 80.0 * 0.010 * 1.3,
            "energy {energy} J over 10 ms exceeds plausible draw"
        );
        assert!((m.energy_delay_product() - energy * 0.010).abs() < 1e-9);
    }

    #[test]
    fn temperatures_rise_under_load() {
        let mut m = machine();
        let ambient = m.temperature(0);
        for _ in 0..50 {
            m.run_quantum(&[2.0; 8], &[8.0; 8]);
        }
        assert!(m.temperature(0) > ambient + 1.0);
    }

    #[test]
    fn unloaded_core_warms_from_hot_neighbours() {
        // Core 7 gets no discretionary power; its neighbours run hot.
        let mut m = machine();
        let ambient = m.temperature(7);
        let mut watts = [9.0; 8];
        watts[7] = 0.0;
        for _ in 0..100 {
            m.run_quantum(&[2.0; 8], &watts);
        }
        assert!(
            m.temperature(7) > ambient + 0.5,
            "lateral coupling should warm the idle core: {} vs ambient {}",
            m.temperature(7),
            ambient
        );
    }

    #[test]
    #[should_panic(expected = "bundle size")]
    fn bundle_size_mismatch_panics() {
        let _ = Machine::new(
            SystemConfig::paper_64core(),
            DramConfig::ddr3_1600(),
            &paper_bbpc_8core(),
        );
    }
}
