//! Trace-driven execution: the high-fidelity machine mode.
//!
//! [`crate::machine::Machine`] realizes cache allocations analytically
//! (Talus hull of the profile's miss curve). This module instead drives a
//! real [`FutilityPartitionedCache`] with each core's synthetic address
//! stream every quantum: partition targets are set from the market's
//! allocation, the controller's feedback loop converges occupancy, and the
//! *measured* per-core miss rates feed the timing model. Enforcement
//! imperfections — partitions still converging after a re-allocation,
//! inter-core conflict — appear naturally, as they would in hardware.

use rebudget_apps::trace::TraceGenerator;
use rebudget_cache::futility::FutilityPartitionedCache;
use rebudget_power::{CorePowerModel, ThermalNode};
use rebudget_workloads::Bundle;

use crate::config::{SystemConfig, QUANTUM_SECONDS};
use crate::dram::DramConfig;
use crate::machine::QuantumStats;
use crate::simulation::SimError;
use crate::utility_model::core_power_model;

struct TraceCore {
    app: &'static rebudget_apps::AppProfile,
    power_model: CorePowerModel,
    thermal: ThermalNode,
    trace: TraceGenerator,
    instructions: f64,
    last_accesses: u64,
    last_misses: u64,
}

/// The trace-driven machine.
pub struct TraceDrivenMachine {
    sys: SystemConfig,
    dram: DramConfig,
    cache: FutilityPartitionedCache,
    cores: Vec<TraceCore>,
    elapsed_s: f64,
}

impl TraceDrivenMachine {
    /// Builds the machine: one Futility-Scaling partition per core over
    /// the shared L2 of `sys`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BundleMismatch`] if the bundle size differs
    /// from the configured cores; cache-geometry errors cannot occur for
    /// the paper configurations.
    pub fn new(
        sys: SystemConfig,
        dram: DramConfig,
        bundle: &Bundle,
        seed: u64,
    ) -> Result<Self, SimError> {
        if bundle.cores() != sys.cores {
            return Err(SimError::BundleMismatch {
                cores: sys.cores,
                apps: bundle.cores(),
            });
        }
        let cache = FutilityPartitionedCache::new(sys.l2, sys.cores)
            .expect("paper cache geometries are valid");
        let cores = bundle
            .apps
            .iter()
            .enumerate()
            .map(|(i, app)| TraceCore {
                app,
                power_model: core_power_model(app),
                thermal: ThermalNode::paper(),
                trace: TraceGenerator::from_profile(
                    app,
                    seed ^ ((i as u64) << 32),
                    (i as u64) << 44,
                    sys.l2.line_bytes,
                ),
                instructions: 0.0,
                last_accesses: 0,
                last_misses: 0,
            })
            .collect();
        Ok(Self {
            sys,
            dram,
            cache,
            cores,
            elapsed_s: 0.0,
        })
    }

    /// Wall-clock seconds simulated.
    pub fn elapsed_seconds(&self) -> f64 {
        self.elapsed_s
    }

    /// Total instructions retired by core `i`.
    pub fn instructions(&self, i: usize) -> f64 {
        self.cores[i].instructions
    }

    /// Current cache occupancy of core `i` in lines.
    pub fn occupancy_lines(&self, i: usize) -> u64 {
        self.cache.occupancy(i)
    }

    /// Executes one quantum: sets partition targets, streams
    /// frequency-weighted accesses through the shared cache, and times
    /// each core by its *measured* miss rate.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ from the core count.
    pub fn run_quantum(
        &mut self,
        cache_regions: &[f64],
        extra_watts: &[f64],
        accesses_per_core: usize,
    ) -> QuantumStats {
        let n = self.cores.len();
        assert_eq!(cache_regions.len(), n);
        assert_eq!(extra_watts.len(), n);
        let mem_ns = self.dram.reference_latency_ns();

        // 1. Partition targets from the allocation.
        for (i, &regions) in cache_regions.iter().enumerate() {
            let bytes = self.sys.core_cache_bytes(regions);
            self.cache
                .set_target_bytes(i, bytes)
                .expect("targets within geometry");
        }

        // 2. DVFS from the Watt allocation.
        let freqs: Vec<f64> = self
            .cores
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let temp = c.thermal.temperature();
                let budget = c.power_model.floor_power(temp) + extra_watts[i].max(0.0);
                c.power_model
                    .frequency_for_power(budget, temp)
                    .unwrap_or(self.sys.dvfs.f_min)
            })
            .collect();

        // 3. Stream accesses, interleaved round-robin and weighted by
        //    frequency (faster cores issue proportionally more traffic).
        let f_max = self.sys.dvfs.f_max;
        let quanta_per_core: Vec<usize> = freqs
            .iter()
            .map(|&f| ((accesses_per_core as f64) * f / f_max).ceil() as usize)
            .collect();
        let rounds = quanta_per_core.iter().copied().max().unwrap_or(0);
        let before: Vec<(u64, u64)> = (0..n)
            .map(|i| {
                let s = self.cache.stats(i);
                (s.accesses, s.misses)
            })
            .collect();
        for r in 0..rounds {
            for i in 0..n {
                if r < quanta_per_core[i] {
                    let addr = self.cores[i].trace.next_address();
                    self.cache.access(i, addr);
                }
            }
        }

        // 4. Measured MPKI → timing → retired instructions; 5. thermals.
        let mut stats = QuantumStats {
            freqs_ghz: Vec::with_capacity(n),
            watts: Vec::with_capacity(n),
            temps_k: Vec::with_capacity(n),
            instructions: Vec::with_capacity(n),
        };
        for (i, core) in self.cores.iter_mut().enumerate() {
            let s = self.cache.stats(i);
            let d_acc = s.accesses - before[i].0;
            let d_miss = s.misses - before[i].1;
            core.last_accesses = d_acc;
            core.last_misses = d_miss;
            let kilo_instr = d_acc as f64 / core.app.apki;
            let mpki = if kilo_instr > 0.0 {
                d_miss as f64 / kilo_instr
            } else {
                core.app
                    .mpki_at(self.sys.core_cache_bytes(cache_regions[i]))
            };
            let f = freqs[i];
            let t_kilo_ns = 1000.0 * core.app.base_cpi / f + mpki * mem_ns / core.app.mlp.max(0.1);
            let retired = QUANTUM_SECONDS * 1e12 / t_kilo_ns;
            core.instructions += retired;
            let temp = core.thermal.temperature();
            let drawn = core.power_model.total_power(f, temp);
            let t_after = core.thermal.step(drawn, QUANTUM_SECONDS);
            stats.freqs_ghz.push(f);
            stats.watts.push(drawn);
            stats.temps_k.push(t_after);
            stats.instructions.push(retired);
        }
        self.elapsed_s += QUANTUM_SECONDS;
        stats
    }

    /// The miss rate core `i` experienced in the last quantum.
    pub fn last_miss_rate(&self, i: usize) -> f64 {
        let c = &self.cores[i];
        if c.last_accesses == 0 {
            0.0
        } else {
            c.last_misses as f64 / c.last_accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rebudget_workloads::generate_bundle;
    use rebudget_workloads::Category;

    fn machine() -> TraceDrivenMachine {
        let sys = SystemConfig::scaled(4);
        let bundle = generate_bundle(Category::Cpbn, 4, 0, 7).expect("4 cores");
        TraceDrivenMachine::new(sys, DramConfig::ddr3_1600(), &bundle, 3).expect("builds")
    }

    #[test]
    fn bundle_mismatch_is_an_error() {
        let sys = SystemConfig::scaled(8);
        let bundle = generate_bundle(Category::Cpbn, 4, 0, 7).expect("4 cores");
        assert!(TraceDrivenMachine::new(sys, DramConfig::ddr3_1600(), &bundle, 3).is_err());
    }

    #[test]
    fn quantum_retires_instructions_and_tracks_time() {
        let mut m = machine();
        let stats = m.run_quantum(&[2.0; 4], &[4.0; 4], 5_000);
        assert!((m.elapsed_seconds() - 1e-3).abs() < 1e-12);
        assert!(stats.instructions.iter().all(|&x| x > 0.0));
        assert!(m.instructions(0) > 0.0);
    }

    #[test]
    fn partition_targets_converge_under_streaming() {
        let mut m = machine();
        // Skew cache hard toward core 0.
        let regions = [9.0, 1.0, 1.0, 1.0];
        for _ in 0..30 {
            m.run_quantum(&regions, &[4.0; 4], 8_000);
        }
        let lines_per_region = (128.0 * 1024.0 / 32.0) as u64;
        let target0 = 10 * lines_per_region; // 9 discretionary + 1 free
        let occ0 = m.occupancy_lines(0);
        assert!(
            occ0 as f64 > 0.6 * target0 as f64,
            "core 0 occupancy {occ0} of target {target0}"
        );
        assert!(occ0 > m.occupancy_lines(1));
    }

    #[test]
    fn faster_cores_issue_more_traffic() {
        let mut m = machine();
        m.run_quantum(&[2.0; 4], &[0.0, 0.0, 12.0, 12.0], 5_000);
        let slow = m.cores[0].last_accesses;
        let fast = m.cores[2].last_accesses;
        assert!(fast > slow, "fast core {fast} vs slow core {slow}");
    }

    #[test]
    fn measured_miss_rate_is_sane() {
        let mut m = machine();
        for _ in 0..5 {
            m.run_quantum(&[3.0; 4], &[4.0; 4], 8_000);
        }
        for i in 0..4 {
            let r = m.last_miss_rate(i);
            assert!((0.0..=1.0).contains(&r), "core {i} miss rate {r}");
        }
    }
}
