//! Phase-2 runtime monitoring: per-core UMON shadow tags over synthetic
//! traces (§4.1.1: "this is all modeled dynamically online; no prior
//! off-line profiling is needed whatsoever").

use rebudget_apps::trace::TraceGenerator;
use rebudget_apps::AppProfile;
use rebudget_cache::{MissCurve, UmonShadowTags};

use crate::config::{SystemConfig, CACHE_REGION_BYTES};

/// The runtime monitor attached to one core: a synthetic L2 access stream
/// (standing in for the application's real references) observed by UMON
/// shadow tags, yielding an online MPKI curve.
#[derive(Debug, Clone)]
pub struct CoreMonitor {
    app: &'static AppProfile,
    trace: TraceGenerator,
    umon: UmonShadowTags,
}

impl CoreMonitor {
    /// Creates the monitor for `app` on core `core`. The UMON directory
    /// covers the 2 MB / 16-way monitored space at the paper's sampling
    /// rate.
    ///
    /// # Panics
    ///
    /// Panics only if the fixed paper geometry were invalid (it is not).
    pub fn new(app: &'static AppProfile, sys: &SystemConfig, core: usize, seed: u64) -> Self {
        let line = sys.l2.line_bytes;
        // Monitored space: max_regions × 128 kB at 16 ways.
        let monitored_bytes = sys.max_regions_per_core as u64 * CACHE_REGION_BYTES as u64;
        let sets = (monitored_bytes / (16 * line)) as usize;
        let umon = UmonShadowTags::new(sets, line, 32, 16).expect("paper UMON geometry is valid");
        let trace = TraceGenerator::from_profile(
            app,
            seed ^ (core as u64) << 32,
            (core as u64) << 44,
            line,
        );
        Self { app, trace, umon }
    }

    /// The monitored application.
    pub fn app(&self) -> &'static AppProfile {
        self.app
    }

    /// Simulates `accesses` L2 references through the shadow tags.
    pub fn observe_quantum(&mut self, accesses: usize) {
        for _ in 0..accesses {
            let addr = self.trace.next_address();
            self.umon.observe(addr);
        }
    }

    /// Warms the shadow tags with `accesses` references and then resets
    /// the counters, so subsequent epochs measure steady-state behaviour
    /// (compulsory misses on first touch would otherwise dwarf the miss
    /// floor of cache-friendly applications).
    pub fn warm_up(&mut self, accesses: usize) {
        self.observe_quantum(accesses);
        self.umon.reset_counters();
    }

    /// Kilo-instructions represented by the observed references
    /// (references / APKI × 1000 instructions each … i.e. accesses/apki).
    pub fn kilo_instructions(&self) -> f64 {
        self.umon.accesses() as f64 / self.app.apki
    }

    /// The online MPKI curve estimated by the shadow tags, or `None`
    /// before any reference has been observed.
    pub fn mpki_curve(&self) -> Option<MissCurve> {
        let ki = self.kilo_instructions();
        if ki <= 0.0 {
            return None;
        }
        let raw = self.umon.miss_curve().ok()?;
        let points: Vec<(f64, f64)> = raw
            .capacities()
            .iter()
            .zip(raw.misses())
            .map(|(&c, &m)| (c, m / ki))
            .collect();
        MissCurve::new(points).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rebudget_apps::spec::app_by_name;

    #[test]
    fn monitor_covers_one_region_per_way() {
        let sys = SystemConfig::paper_8core();
        let m = CoreMonitor::new(app_by_name("vpr").unwrap(), &sys, 0, 1);
        // 2 MB / (16 ways × 32 B) = 4096 sets; each way = 128 kB.
        assert_eq!(m.umon.accesses(), 0);
        assert!(m.mpki_curve().is_none());
    }

    #[test]
    fn online_curve_tracks_analytic_shape_for_flat_app() {
        let sys = SystemConfig::paper_8core();
        let app = app_by_name("libquantum").unwrap();
        let mut m = CoreMonitor::new(app, &sys, 0, 2);
        m.observe_quantum(200_000);
        let curve = m.mpki_curve().expect("curve after observation");
        // Flat profile: the measured MPKI barely changes with capacity and
        // sits near the profile value.
        let lo = curve.at(128.0 * 1024.0);
        let hi = curve.at(2.0 * 1024.0 * 1024.0);
        assert!(hi > lo * 0.8, "flat app shouldn't gain: {lo} → {hi}");
        let expect = app.mpki_at(1e6);
        assert!(
            (lo - expect).abs() / expect < 0.4,
            "measured {lo} vs profile {expect}"
        );
    }

    #[test]
    fn online_curve_shows_mcf_cliff() {
        let sys = SystemConfig::paper_8core();
        let app = app_by_name("mcf").unwrap();
        let mut m = CoreMonitor::new(app, &sys, 3, 7);
        m.observe_quantum(400_000);
        let curve = m.mpki_curve().expect("curve after observation");
        let below = curve.at(1.0 * 1024.0 * 1024.0);
        let above = curve.at(2.0 * 1024.0 * 1024.0);
        assert!(
            above < below * 0.55,
            "cliff must be visible online: {below} → {above}"
        );
    }

    #[test]
    fn kilo_instructions_accounting() {
        let sys = SystemConfig::paper_8core();
        let app = app_by_name("gzip").unwrap();
        let mut m = CoreMonitor::new(app, &sys, 1, 3);
        m.observe_quantum(22_000);
        // gzip: apki 22 → 22k accesses ≈ 1000 kilo-instructions.
        assert!((m.kilo_instructions() - 1000.0).abs() < 1.0);
    }
}
