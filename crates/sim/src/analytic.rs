//! Phase-1 ("analytical") evaluation support: build a market directly from
//! application models (§6: "we extensively profile each application … and
//! analytically evaluate the system efficiency and fairness").

use std::sync::Arc;

use rebudget_market::par::{self, ParallelPolicy};
use rebudget_market::{Market, Player, ResourceSpace, Result};
use rebudget_workloads::Bundle;

use crate::config::SystemConfig;
use crate::dram::DramConfig;
use crate::utility_model::{
    app_utility_grid, core_power_model, discretionary_watts_at, NOMINAL_TEMP_K,
};

/// Total discretionary Watts on the chip: TDP minus every core's 800 MHz
/// floor at nominal temperature.
pub fn discretionary_watts(bundle: &Bundle, sys: &SystemConfig) -> f64 {
    let floors: f64 = bundle
        .apps
        .iter()
        .map(|app| core_power_model(app).floor_power(NOMINAL_TEMP_K))
        .sum();
    (sys.power.total_watts - floors).max(0.0)
}

/// The two-resource space the multicore market trades: discretionary cache
/// regions and discretionary Watts.
pub fn resource_space(bundle: &Bundle, sys: &SystemConfig) -> Result<ResourceSpace> {
    ResourceSpace::with_names(vec![
        (
            "cache-regions".to_string(),
            sys.discretionary_regions() as f64,
        ),
        ("watts".to_string(), discretionary_watts(bundle, sys)),
    ])
}

/// Builds the phase-1 market for a bundle: one player per core, utilities
/// from the profiled + convexified surfaces, equal budgets.
///
/// # Examples
///
/// ```
/// use rebudget_core::mechanisms::{EqualBudget, Mechanism};
/// use rebudget_sim::analytic::build_market;
/// use rebudget_sim::{DramConfig, SystemConfig};
/// use rebudget_workloads::paper_bbpc_8core;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let market = build_market(
///     &paper_bbpc_8core(),
///     &SystemConfig::paper_8core(),
///     &DramConfig::ddr3_1600(),
///     100.0,
/// )?;
/// let outcome = EqualBudget::new(100.0).allocate(&market)?;
/// assert!(outcome.converged);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Propagates construction errors (cannot occur for valid bundles).
pub fn build_market(
    bundle: &Bundle,
    sys: &SystemConfig,
    dram: &DramConfig,
    budget: f64,
) -> Result<Market> {
    build_market_with(bundle, sys, dram, budget, ParallelPolicy::Auto)
}

/// [`build_market`] under an explicit [`ParallelPolicy`].
///
/// Profiling + convexifying one application's utility surface walks the
/// full cache×power grid and is the dominant cost of market construction,
/// so the per-core surfaces are built across worker threads. Each surface
/// depends only on its own app model; the resulting market is identical
/// under every policy.
///
/// # Errors
///
/// Propagates construction errors (cannot occur for valid bundles).
pub fn build_market_with(
    bundle: &Bundle,
    sys: &SystemConfig,
    dram: &DramConfig,
    budget: f64,
    policy: ParallelPolicy,
) -> Result<Market> {
    let resources = resource_space(bundle, sys)?;
    let threads = policy.resolved_threads_coarse(bundle.apps.len());
    let players = par::map_indexed(threads, bundle.apps.len(), |core| {
        let app = &bundle.apps[core];
        Player::new(
            format!("{}#{core}", app.name),
            budget,
            Arc::new(app_utility_grid(app, sys, dram)) as Arc<dyn rebudget_market::Utility>,
        )
    });
    Market::new(resources, players)
}

/// Sanity helper: the maximum discretionary Watts any single core could
/// usefully consume (running at `f_max`).
pub fn max_useful_watts_per_core(bundle: &Bundle, sys: &SystemConfig) -> Vec<f64> {
    bundle
        .apps
        .iter()
        .map(|app| {
            let m = core_power_model(app);
            discretionary_watts_at(&m, sys.dvfs.f_max)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rebudget_core::mechanisms::{EqualBudget, EqualShare, Mechanism};
    use rebudget_workloads::paper_bbpc_8core;

    fn setup() -> (SystemConfig, DramConfig, Bundle) {
        (
            SystemConfig::paper_8core(),
            DramConfig::ddr3_1600(),
            paper_bbpc_8core(),
        )
    }

    #[test]
    fn resource_space_is_sane() {
        let (sys, _dram, bundle) = setup();
        let space = resource_space(&bundle, &sys).unwrap();
        assert_eq!(space.len(), 2);
        assert_eq!(space.capacity(0), 24.0, "4 MB − 8 free regions");
        let watts = space.capacity(1);
        assert!(
            watts > 40.0 && watts < 80.0,
            "discretionary Watts {watts} should be TDP minus floors"
        );
    }

    #[test]
    fn market_runs_equal_budget_end_to_end() {
        let (sys, dram, bundle) = setup();
        let market = build_market(&bundle, &sys, &dram, 100.0).unwrap();
        assert_eq!(market.len(), 8);
        let out = EqualBudget::new(100.0).allocate(&market).unwrap();
        assert!(out.converged, "BBPC market should converge");
        assert!(out.efficiency > 0.0);
        // Weighted speedup cannot exceed N (utilities ≤ 1 each).
        assert!(out.efficiency <= 8.0 + 1e-6);
        assert!(out
            .allocation
            .is_exhaustive(market.resources().capacities(), 1e-6));
    }

    #[test]
    fn market_beats_equal_share_for_heterogeneous_bundle() {
        let (sys, dram, bundle) = setup();
        let market = build_market(&bundle, &sys, &dram, 100.0).unwrap();
        let share = EqualShare.allocate(&market).unwrap();
        let eq = EqualBudget::new(100.0).allocate(&market).unwrap();
        assert!(
            eq.efficiency >= share.efficiency * 0.98,
            "market {} should be at least comparable to equal share {}",
            eq.efficiency,
            share.efficiency
        );
    }

    #[test]
    fn max_useful_watts_below_capacity_each() {
        let (sys, _dram, bundle) = setup();
        for w in max_useful_watts_per_core(&bundle, &sys) {
            assert!(w > 0.0 && w < 20.0);
        }
        // Power must be scarce overall: the sum of what cores could
        // usefully burn exceeds the discretionary supply.
        let total: f64 = max_useful_watts_per_core(&bundle, &sys).iter().sum();
        assert!(
            total > discretionary_watts(&bundle, &sys),
            "power should be contended"
        );
    }
}
