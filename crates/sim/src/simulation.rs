//! The phase-2 simulation loop (§6.3): monitor → market → enforce →
//! execute, once per 1 ms quantum.

use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

use rebudget_core::mechanisms::{EqualShare, Mechanism};
use rebudget_market::{metrics, AllocationMatrix, FaultPlan, Market, MarketError, Player, Utility};
use rebudget_workloads::Bundle;

use crate::analytic::resource_space;
use rebudget_telemetry as telemetry;

use crate::checkpoint::{CheckpointError, QuantumRecord, SimCheckpoint, SimCounters, SimMeta};
use crate::config::SystemConfig;
use crate::dram::DramConfig;
use crate::machine::Machine;
use crate::monitor::CoreMonitor;
use crate::utility_model::{
    alone_instruction_rate, app_utility_grid, perturbed_mpki_curve, utility_grid_from_mpki,
};

/// Errors from the simulation driver.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The underlying market failed (degenerate inputs).
    Market(MarketError),
    /// The bundle does not match the system's core count.
    BundleMismatch {
        /// Cores in the system.
        cores: usize,
        /// Applications in the bundle.
        apps: usize,
    },
    /// A checkpoint could not be written, read, or applied.
    Checkpoint(CheckpointError),
    /// A [`QuantumHook`] produced malformed controls (wrong lengths,
    /// non-positive scales, or no active player).
    Hook(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Market(e) => write!(f, "market error: {e}"),
            SimError::BundleMismatch { cores, apps } => {
                write!(f, "bundle has {apps} apps for {cores} cores")
            }
            SimError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
            SimError::Hook(reason) => write!(f, "hook error: {reason}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<MarketError> for SimError {
    fn from(e: MarketError) -> Self {
        SimError::Market(e)
    }
}

impl From<CheckpointError> for SimError {
    fn from(e: CheckpointError) -> Self {
        SimError::Checkpoint(e)
    }
}

/// How allocations are realized and executed each quantum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionModel {
    /// Analytic timing over the Talus hull of each app's miss curve
    /// (fast; the default).
    #[default]
    Analytic,
    /// Drive a real Futility-Scaling shared cache with each core's
    /// synthetic address stream and time cores by their *measured* miss
    /// rates (see [`crate::trace_machine`]). Slower but captures
    /// enforcement transients and inter-core contention.
    TraceDriven,
}

/// Simulation options.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOptions {
    /// Number of 1 ms quanta to simulate.
    pub quanta: usize,
    /// Synthetic L2 references observed per core per quantum (drives the
    /// UMON monitors, and the shared cache in trace-driven mode).
    pub accesses_per_quantum: usize,
    /// Per-player budget handed to market mechanisms.
    pub budget: f64,
    /// When `true` (phase 2), utilities are rebuilt every quantum from the
    /// UMON monitors; when `false`, the analytic (phase 1) surfaces are
    /// used throughout.
    pub use_monitors: bool,
    /// RNG seed for the synthetic traces.
    pub seed: u64,
    /// Execution model (see [`ExecutionModel`]).
    pub execution: ExecutionModel,
    /// Optional fault-injection plan. `None` (the default) runs the clean
    /// pipeline and lets market errors propagate; with a plan installed,
    /// telemetry faults are injected every quantum and solver failures
    /// degrade gracefully instead of aborting the run.
    pub faults: Option<FaultPlan>,
    /// After this many consecutive quanta whose solve failed or hit the
    /// fail-safe, the next quantum falls back to [`EqualShare`] (logged and
    /// counted), then the market is re-attempted.
    pub max_consecutive_failures: usize,
}

impl Default for SimOptions {
    fn default() -> Self {
        Self {
            quanta: 10,
            accesses_per_quantum: 20_000,
            budget: 100.0,
            use_monitors: true,
            seed: 1,
            execution: ExecutionModel::Analytic,
            faults: None,
            max_consecutive_failures: 3,
        }
    }
}

/// Durability knobs for [`run_simulation_recoverable`]: where to write
/// quantum-boundary snapshots and where to resume from.
///
/// All fields default to off; the default value makes
/// [`run_simulation_recoverable`] behave exactly like [`run_simulation`].
#[derive(Debug, Clone, Default)]
pub struct RecoveryOptions {
    /// Write a snapshot of the run to this path at quantum boundaries
    /// (atomic rename with a rotating `.prev` generation).
    pub checkpoint: Option<PathBuf>,
    /// Quanta between snapshots (`0` is treated as `1`). The final
    /// quantum is always snapshotted when `checkpoint` is set.
    pub checkpoint_every: usize,
    /// Resume from the snapshot at this path: its recorded quanta are
    /// replayed (monitors and machine re-run deterministically with the
    /// recorded allocations, skipping the market solves) and the run
    /// continues from the snapshot boundary. The snapshot's configuration
    /// must match this run's exactly.
    pub resume: Option<PathBuf>,
}

/// The per-quantum control surface a [`QuantumHook`] may mutate before a
/// quantum's market is built. Neutral controls (the values the hook is
/// handed) reproduce the un-hooked pipeline **bit for bit**: no wrapper is
/// installed for a unit utility scale, a unit budget scale multiplies
/// exactly, and a fully-active player set takes the ordinary market path.
#[derive(Debug, Clone)]
pub struct QuantumControls {
    /// Fault plan in force this quantum. Starts as the run's base plan
    /// ([`SimOptions::faults`]); a hook may install, replace, or clear it
    /// (fault *onsets* in scenario terms).
    pub faults: Option<FaultPlan>,
    /// Per-player budget multipliers (budget shocks). `1.0` leaves the
    /// configured [`SimOptions::budget`] untouched.
    pub budget_scale: Vec<f64>,
    /// Per-player multiplicative utility re-shaping (demand drift). `1.0`
    /// leaves the monitored surface untouched.
    pub utility_scale: Vec<f64>,
    /// Player presence (churn). A `false` entry removes the player from
    /// this quantum's market; its allocation row is zero, like a dropped
    /// bid. At least one player must stay active.
    pub active: Vec<bool>,
}

impl QuantumControls {
    /// Neutral controls for `n` players with the run's base fault plan.
    #[must_use]
    pub fn neutral(n: usize, faults: Option<FaultPlan>) -> Self {
        Self {
            faults,
            budget_scale: vec![1.0; n],
            utility_scale: vec![1.0; n],
            active: vec![true; n],
        }
    }

    fn validate(&self, n: usize) -> Result<(), SimError> {
        if self.budget_scale.len() != n || self.utility_scale.len() != n || self.active.len() != n {
            return Err(SimError::Hook(format!(
                "control vectors must have one entry per player ({n})"
            )));
        }
        for (what, scales) in [
            ("budget_scale", &self.budget_scale),
            ("utility_scale", &self.utility_scale),
        ] {
            if let Some(bad) = scales.iter().find(|s| !(s.is_finite() && **s > 0.0)) {
                return Err(SimError::Hook(format!(
                    "{what} entries must be finite and positive (got {bad})"
                )));
            }
        }
        if !self.active.iter().any(|&a| a) {
            return Err(SimError::Hook("at least one player must be active".into()));
        }
        Ok(())
    }
}

/// What one completed quantum looked like, as reported to a
/// [`QuantumHook`]. Metric-threshold triggers evaluate against the
/// *previous* quantum's observation (the hook stores it).
#[derive(Debug, Clone)]
pub struct QuantumObservation {
    /// The quantum index.
    pub quantum: usize,
    /// Instantaneous weighted speedup this quantum produced.
    pub efficiency: f64,
    /// Envy-freeness of this quantum's allocation over the clean (scaled,
    /// un-faulted) market of active players.
    pub envy_freeness: f64,
    /// Whether the solve failed or hit the fail-safe this quantum.
    pub degraded: bool,
    /// Whether this quantum fell back to EqualShare.
    pub fallback: bool,
    /// Whether every solve this quantum met the convergence test.
    pub converged: bool,
    /// Worst relative price-gap residual across this quantum's solves
    /// (`0` for non-market mechanisms and replayed quanta).
    pub residual: f64,
    /// Market Utility Range at the final equilibrium, if a market ran.
    pub mur: Option<f64>,
    /// Market Budget Range of the final budgets, if a market ran.
    pub mbr: Option<f64>,
    /// Effective budgets of the active players, in player order.
    pub budgets: Vec<f64>,
    /// Row-major `cores × resources` allocation enforced this quantum
    /// (zero rows for inactive/dropped players).
    pub allocation: Vec<f64>,
    /// Cumulative degraded quanta so far (including this one).
    pub cumulative_degraded: usize,
    /// Cumulative fallback quanta so far (including this one).
    pub cumulative_fallback: usize,
    /// `true` when this quantum was replayed from a checkpoint: solver
    /// health fields (`degraded`, `residual`, `mur`, …) are not recorded
    /// in snapshots and carry their neutral values.
    pub replayed: bool,
}

/// Observer/controller driven once per quantum by
/// [`run_simulation_hooked`] — the attachment surface for the declarative
/// scenario engine (`rebudget-scenario`) and for ad-hoc experiments.
///
/// Hooks must be **deterministic** functions of what they have observed:
/// the checkpoint-resume path re-drives the hook through replayed quanta,
/// so a hook that consults wall clocks or ambient randomness breaks the
/// bit-identical-resume guarantee.
pub trait QuantumHook {
    /// Called before quantum `quantum` is built. Mutate `controls` to
    /// inject fault onsets, budget shocks, utility re-shaping, or churn.
    fn control(&mut self, quantum: usize, controls: &mut QuantumControls);
    /// Whether per-quantum [`QuantumObservation`]s should be produced.
    /// Building one costs an `O(players²)` envy evaluation per quantum,
    /// so the no-op hook opts out and un-hooked runs pay nothing extra.
    fn observing(&self) -> bool {
        true
    }
    /// Called after each quantum completes.
    fn observe(&mut self, observation: &QuantumObservation);
    /// Called once after the final quantum with the clean market of
    /// active players and the allocation they received — the audit
    /// surface for post-run property verification (fairness floors need
    /// the actual utility surfaces, not just the scalar trajectory).
    fn observe_final(&mut self, _market: &Market, _allocation: &AllocationMatrix) {}
}

/// A no-op hook: [`run_simulation_recoverable`] runs through the same
/// code path as hooked runs with this installed.
struct NoopHook;

impl QuantumHook for NoopHook {
    fn control(&mut self, _quantum: usize, _controls: &mut QuantumControls) {}
    fn observing(&self) -> bool {
        false
    }
    fn observe(&mut self, _observation: &QuantumObservation) {}
}

/// A utility wrapper scaling value and marginals by a constant factor —
/// the hook surface's "utility-shape drift" effect. Unlike the fault
/// layer's liar wrapper this is *declared* behaviour: fairness is judged
/// on the scaled surface.
struct ScaledUtility {
    inner: Arc<dyn Utility>,
    factor: f64,
}

impl Utility for ScaledUtility {
    fn value(&self, r: &[f64]) -> f64 {
        self.factor * self.inner.value(r)
    }
    fn marginal(&self, r: &[f64], j: usize) -> f64 {
        self.factor * self.inner.marginal(r, j)
    }
}

/// The result of simulating one bundle under one mechanism.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Mechanism display name.
    pub mechanism: String,
    /// Measured system efficiency: `Σ_i (IPS_i / IPS_i^alone)` over the
    /// whole run — weighted speedup (Eq. 5 of the paper).
    pub efficiency: f64,
    /// Envy-freeness of the final allocation, evaluated with the final
    /// monitored utility surfaces.
    pub envy_freeness: f64,
    /// Measured per-core normalized performance.
    pub utilities: Vec<f64>,
    /// Quanta simulated.
    pub quanta: usize,
    /// Mean market-equilibrium solves per quantum.
    pub avg_equilibrium_rounds: f64,
    /// Mean bidding–pricing iterations per quantum.
    pub avg_iterations: f64,
    /// Whether every quantum's market converged before the fail-safe.
    pub always_converged: bool,
    /// Instantaneous weighted speedup per quantum (the efficiency
    /// trajectory — useful for phase-change and warm-up studies).
    pub efficiency_history: Vec<f64>,
    /// Quanta that fell back to [`EqualShare`] after repeated solver
    /// failures (always 0 without a fault plan).
    pub fallback_quanta: usize,
    /// Quanta whose solve failed outright or hit the iteration fail-safe
    /// (best-effort allocations, counted toward the fallback trigger).
    pub degraded_quanta: usize,
    /// Total solver recovery actions (damping, restarts, sanitizations)
    /// across the run.
    pub solver_recoveries: u64,
    /// Retry-ladder attempts spent beyond the first solve (always 0
    /// unless the mechanism carries a `RetryPolicy`).
    pub retried_solves: u64,
    /// Solves that hit their deadline budget (always 0 unless a
    /// `DeadlineBudget` is configured).
    pub timed_out_solves: u64,
    /// Quanta replayed from a checkpoint instead of solved (0 for a
    /// fresh run).
    pub replayed_quanta: usize,
    /// Whether resume had to fall back to the rotated `.prev` snapshot
    /// generation because the live snapshot failed validation.
    pub used_prev_generation: bool,
}

/// Builds this quantum's per-core utility surfaces, honouring stale-reading
/// and curve-noise faults. Returns one grid per core; the caller keeps them
/// as history so stale faults at quantum `q` can reuse interval `q − k`.
// `faults` is passed separately from `opts.faults` because a scenario hook
// may swap the plan mid-run.
#[allow(clippy::too_many_arguments)]
fn quantum_grids(
    bundle: &Bundle,
    sys: &SystemConfig,
    dram: &DramConfig,
    monitors: &[CoreMonitor],
    faults: Option<&FaultPlan>,
    opts: &SimOptions,
    interval: u64,
    history: &[Vec<Arc<dyn Utility>>],
) -> Vec<Arc<dyn Utility>> {
    bundle
        .apps
        .iter()
        .enumerate()
        .map(|(core, app)| {
            if let Some(plan) = faults {
                if let Some(k) = plan.stale_depth_for(interval, core) {
                    if let Some(old) = history.len().checked_sub(k).map(|q| &history[q][core]) {
                        return Arc::clone(old);
                    }
                }
            }
            let grid = if opts.use_monitors {
                match monitors[core].mpki_curve() {
                    Some(curve) => {
                        let curve = match faults {
                            Some(plan) if plan.noise_sigma > 0.0 => {
                                let salt = plan.seed
                                    ^ interval.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                                    ^ (core as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                                perturbed_mpki_curve(&curve, plan.noise_sigma, salt)
                            }
                            _ => curve,
                        };
                        utility_grid_from_mpki(
                            &curve,
                            app.base_cpi,
                            app.mlp,
                            app.activity,
                            sys,
                            dram,
                        )
                    }
                    None => app_utility_grid(app, sys, dram),
                }
            } else {
                app_utility_grid(app, sys, dram)
            };
            Arc::new(grid) as Arc<dyn Utility>
        })
        .collect()
}

/// Builds the quantum's market under the hook controls: inactive players
/// are omitted, budgets are scaled, and non-unit utility scales install a
/// [`ScaledUtility`] wrapper. Returns the market plus the original player
/// indices it contains, in order. Neutral controls reproduce the
/// un-hooked market exactly (same players, budgets, and `Arc` clones).
fn market_from_grids(
    bundle: &Bundle,
    sys: &SystemConfig,
    budget: f64,
    grids: &[Arc<dyn Utility>],
    ctl: &QuantumControls,
) -> Result<(Market, Vec<usize>), MarketError> {
    let resources = resource_space(bundle, sys)?;
    let kept: Vec<usize> = (0..bundle.apps.len())
        .filter(|&core| ctl.active[core])
        .collect();
    let players: Vec<Player> = kept
        .iter()
        .map(|&core| {
            let app = &bundle.apps[core];
            let mut utility: Arc<dyn Utility> = Arc::clone(&grids[core]);
            let scale = ctl.utility_scale[core];
            if scale != 1.0 {
                utility = Arc::new(ScaledUtility {
                    inner: utility,
                    factor: scale,
                });
            }
            Player::new(
                format!("{}#{core}", app.name),
                budget * ctl.budget_scale[core],
                utility,
            )
        })
        .collect();
    Market::new(resources, players).map(|m| (m, kept))
}

/// Expands an allocation over the active players back to the full player
/// count: active players keep their rows, inactive players get zero rows.
fn expand_rows(
    alloc: &AllocationMatrix,
    kept: &[usize],
    players: usize,
) -> Result<AllocationMatrix, MarketError> {
    let m = alloc.resources();
    let mut full = AllocationMatrix::zeros(players, m)?;
    for (row, &i) in kept.iter().enumerate() {
        for j in 0..m {
            full.set(i, j, alloc.get(row, j));
        }
    }
    Ok(full)
}

/// Runs a bundle under a mechanism for `opts.quanta` quanta and reports
/// measured efficiency and fairness.
///
/// # Errors
///
/// Returns [`SimError::BundleMismatch`] if the bundle size differs from
/// the configured cores, or propagates market errors.
pub fn run_simulation(
    sys: &SystemConfig,
    dram: &DramConfig,
    bundle: &Bundle,
    mechanism: &dyn Mechanism,
    opts: &SimOptions,
) -> Result<SimResult, SimError> {
    run_simulation_recoverable(
        sys,
        dram,
        bundle,
        mechanism,
        opts,
        &RecoveryOptions::default(),
    )
}

fn execution_label(execution: ExecutionModel) -> &'static str {
    match execution {
        ExecutionModel::Analytic => "analytic",
        ExecutionModel::TraceDriven => "trace",
    }
}

/// Runs a bundle under a mechanism with durable checkpointing and/or
/// resume-from-snapshot, per `recovery`.
///
/// The pipeline is deterministic, so a run that is killed and resumed
/// from its latest snapshot produces **bit-identical** results to an
/// uninterrupted run: monitors evolve independently of allocations and
/// the machine depends only on the allocation applied each quantum, so
/// replaying the recorded allocations reconstructs the exact pre-crash
/// state without re-running any market solve.
///
/// # Errors
///
/// [`SimError::BundleMismatch`] for a mis-sized bundle, market errors
/// from degenerate inputs, and [`SimError::Checkpoint`] when a snapshot
/// cannot be written, fails validation (corrupt/stale/mismatched), or
/// replays to different machine state than it recorded.
pub fn run_simulation_recoverable(
    sys: &SystemConfig,
    dram: &DramConfig,
    bundle: &Bundle,
    mechanism: &dyn Mechanism,
    opts: &SimOptions,
    recovery: &RecoveryOptions,
) -> Result<SimResult, SimError> {
    let mut noop = NoopHook;
    run_simulation_hooked(sys, dram, bundle, mechanism, opts, recovery, &mut noop)
}

/// Runs a bundle under a mechanism with a [`QuantumHook`] attached: the
/// hook steers each quantum's controls (fault onsets, budget shocks,
/// utility re-shaping, churn) and observes each quantum's outcome.
///
/// With a no-op hook this is exactly [`run_simulation_recoverable`] — the
/// neutral-control path is bit-identical to the un-hooked pipeline, which
/// the golden-output suite pins.
///
/// # Errors
///
/// Everything [`run_simulation_recoverable`] can return, plus
/// [`SimError::Hook`] when the hook produces malformed controls.
pub fn run_simulation_hooked(
    sys: &SystemConfig,
    dram: &DramConfig,
    bundle: &Bundle,
    mechanism: &dyn Mechanism,
    opts: &SimOptions,
    recovery: &RecoveryOptions,
    hook: &mut dyn QuantumHook,
) -> Result<SimResult, SimError> {
    if bundle.cores() != sys.cores {
        return Err(SimError::BundleMismatch {
            cores: sys.cores,
            apps: bundle.cores(),
        });
    }
    enum Exec {
        Analytic(Box<Machine>),
        Trace(Box<crate::trace_machine::TraceDrivenMachine>),
    }
    let mut machine = match opts.execution {
        ExecutionModel::Analytic => {
            Exec::Analytic(Box::new(Machine::new(sys.clone(), *dram, bundle)))
        }
        ExecutionModel::TraceDriven => {
            Exec::Trace(Box::new(crate::trace_machine::TraceDrivenMachine::new(
                sys.clone(),
                *dram,
                bundle,
                opts.seed ^ 0xface,
            )?))
        }
    };
    let mut monitors: Vec<CoreMonitor> = bundle
        .apps
        .iter()
        .enumerate()
        .map(|(core, app)| CoreMonitor::new(app, sys, core, opts.seed))
        .collect();
    if opts.use_monitors {
        // One warm-up epoch so quantum 0's curves reflect steady state.
        for monitor in &mut monitors {
            monitor.warm_up(opts.accesses_per_quantum);
        }
    }

    let n = sys.cores;
    let alone_rates: Vec<f64> = bundle
        .apps
        .iter()
        .map(|app| alone_instruction_rate(app, sys, dram))
        .collect();
    let plan = opts.faults.clone().filter(FaultPlan::is_active);
    let meta = SimMeta {
        mechanism: mechanism.name(),
        cores: n,
        resources: 2,
        apps: bundle.apps.iter().map(|a| a.name.to_string()).collect(),
        seed: opts.seed,
        budget: opts.budget,
        accesses_per_quantum: opts.accesses_per_quantum,
        use_monitors: opts.use_monitors,
        execution: execution_label(opts.execution).to_string(),
        max_consecutive_failures: opts.max_consecutive_failures,
        faults: plan.clone(),
    };

    // Load and validate the snapshot we are resuming from, if any.
    let (mut records, mut c, used_prev_generation) = match &recovery.resume {
        Some(path) => {
            let (cp, used_prev) = SimCheckpoint::load_with_fallback(path)?;
            meta.ensure_matches(&cp.meta)?;
            if cp.quanta.len() > opts.quanta {
                return Err(SimError::Checkpoint(CheckpointError::ConfigMismatch {
                    what: "quanta".into(),
                    expected: format!("at most {}", opts.quanta),
                    found: cp.quanta.len().to_string(),
                }));
            }
            (cp.quanta, cp.counters, used_prev)
        }
        None => (
            Vec::new(),
            SimCounters {
                always_converged: true,
                ..SimCounters::default()
            },
            false,
        ),
    };
    let replayed_quanta = records.len();

    let mut efficiency_history = Vec::with_capacity(opts.quanta);
    let mut last: Option<(Market, AllocationMatrix)> = None;
    let mut grid_history: Vec<Vec<Arc<dyn Utility>>> = Vec::new();

    // Replay the recorded quanta: monitors and machine are re-run
    // deterministically with the recorded allocations; market solves are
    // skipped. The recorded per-quantum efficiency doubles as a
    // divergence check.
    for (q, record) in records.iter().enumerate() {
        let mut ctl = QuantumControls::neutral(n, plan.clone());
        hook.control(q, &mut ctl);
        ctl.validate(n)?;
        let qplan = ctl.faults.clone().filter(FaultPlan::is_active);
        if opts.use_monitors {
            for monitor in &mut monitors {
                monitor.observe_quantum(opts.accesses_per_quantum);
            }
        }
        let grids = quantum_grids(
            bundle,
            sys,
            dram,
            &monitors,
            qplan.as_ref(),
            opts,
            q as u64,
            &grid_history,
        );
        let (market, kept) = market_from_grids(bundle, sys, opts.budget, &grids, &ctl)?;
        grid_history.push(grids);
        let mut alloc = AllocationMatrix::zeros(n, 2)?;
        for i in 0..n {
            alloc.set(i, 0, record.allocation[i * 2]);
            alloc.set(i, 1, record.allocation[i * 2 + 1]);
        }
        let regions: Vec<f64> = (0..n).map(|i| alloc.get(i, 0)).collect();
        let watts: Vec<f64> = (0..n).map(|i| alloc.get(i, 1)).collect();
        let stats = match &mut machine {
            Exec::Analytic(m) => m.run_quantum(&regions, &watts),
            Exec::Trace(m) => m.run_quantum(&regions, &watts, opts.accesses_per_quantum),
        };
        let quantum_eff: f64 = stats
            .instructions
            .iter()
            .zip(&alone_rates)
            .map(|(&instr, &alone)| (instr / crate::config::QUANTUM_SECONDS) / alone)
            .sum();
        if quantum_eff.to_bits() != record.efficiency.to_bits() {
            return Err(SimError::Checkpoint(CheckpointError::ReplayDivergence {
                quantum: q,
            }));
        }
        efficiency_history.push(quantum_eff);
        // Restrict the recorded allocation to the active players so the
        // final fairness verdict (and the hook's view) matches what a
        // live run of this quantum stored.
        let mut alloc_kept = AllocationMatrix::zeros(kept.len(), 2)?;
        for (row, &i) in kept.iter().enumerate() {
            alloc_kept.set(row, 0, alloc.get(i, 0));
            alloc_kept.set(row, 1, alloc.get(i, 1));
        }
        if hook.observing() {
            let envy = metrics::envy_freeness(&market, &alloc_kept);
            hook.observe(&QuantumObservation {
                quantum: q,
                efficiency: quantum_eff,
                envy_freeness: envy,
                degraded: false,
                fallback: false,
                converged: true,
                residual: 0.0,
                mur: None,
                mbr: None,
                budgets: market.players().iter().map(|p| p.budget()).collect(),
                allocation: record.allocation.clone(),
                cumulative_degraded: c.degraded_quanta,
                cumulative_fallback: c.fallback_quanta,
                replayed: true,
            });
        }
        last = Some((market, alloc_kept));
    }

    // Per-quantum health state for the `degradation` trace event: the
    // previous quantum's verdict, so transitions are emitted exactly once.
    let mut health = "normal";
    for q in replayed_quanta..opts.quanta {
        let _quantum_span = telemetry::span!("quantum", q);
        let mut ctl = QuantumControls::neutral(n, plan.clone());
        hook.control(q, &mut ctl);
        ctl.validate(n)?;
        let qplan = ctl.faults.clone().filter(FaultPlan::is_active);
        let mut quantum_degraded = false;
        let mut quantum_fallback = false;
        let q_converged;
        let mut q_residual = 0.0_f64;
        let mut q_mur = None;
        let mut q_mbr = None;
        if opts.use_monitors {
            for monitor in &mut monitors {
                monitor.observe_quantum(opts.accesses_per_quantum);
            }
        }
        let grids = quantum_grids(
            bundle,
            sys,
            dram,
            &monitors,
            qplan.as_ref(),
            opts,
            q as u64,
            &grid_history,
        );
        let (market, kept) = market_from_grids(bundle, sys, opts.budget, &grids, &ctl)?;
        grid_history.push(grids);

        let alloc_kept = if let Some(qplan) = &qplan {
            // Noise and staleness were already injected at the curve /
            // history level above; zero them here so the market-level pass
            // only adds drops, spikes, NaNs, and liars.
            let market_plan = FaultPlan {
                noise_sigma: 0.0,
                stale_probability: 0.0,
                ..qplan.clone()
            };
            let faulted = market_plan.apply(&market, q as u64)?;
            if c.consecutive_failures >= opts.max_consecutive_failures.max(1) {
                // Safe mode for this interval: equal shares, no market.
                // Re-attempt the market next interval.
                let out = EqualShare.allocate(&market)?;
                c.fallback_quanta += 1;
                c.consecutive_failures = 0;
                c.always_converged = false;
                quantum_fallback = true;
                q_converged = false;
                out.allocation
            } else {
                match mechanism.allocate(&faulted.market) {
                    Ok(out) => {
                        c.total_rounds += out.equilibrium_rounds;
                        c.total_iterations += out.total_iterations;
                        c.solver_recoveries += out.solver_recoveries;
                        c.retried_solves += out.retry_attempts;
                        c.timed_out_solves += out.timed_out_solves;
                        c.always_converged &= out.converged;
                        q_converged = out.converged;
                        q_residual = out.worst_residual;
                        q_mur = out.mur;
                        q_mbr = out.mbr;
                        if out.degraded {
                            c.degraded_quanta += 1;
                            c.consecutive_failures += 1;
                            quantum_degraded = true;
                        } else {
                            c.consecutive_failures = 0;
                        }
                        faulted.expand_allocation(&out.allocation, kept.len())?
                    }
                    Err(_) => {
                        // The solve blew up outright: count the failure and
                        // take the safe path for this interval.
                        c.degraded_quanta += 1;
                        c.consecutive_failures += 1;
                        c.fallback_quanta += 1;
                        c.always_converged = false;
                        quantum_degraded = true;
                        quantum_fallback = true;
                        q_converged = false;
                        EqualShare.allocate(&market)?.allocation
                    }
                }
            }
        } else {
            let out = mechanism.allocate(&market)?;
            c.total_rounds += out.equilibrium_rounds;
            c.total_iterations += out.total_iterations;
            c.solver_recoveries += out.solver_recoveries;
            c.retried_solves += out.retry_attempts;
            c.timed_out_solves += out.timed_out_solves;
            c.always_converged &= out.converged;
            quantum_degraded = out.degraded;
            q_converged = out.converged;
            q_residual = out.worst_residual;
            q_mur = out.mur;
            q_mbr = out.mbr;
            out.allocation
        };
        let alloc = expand_rows(&alloc_kept, &kept, n)?;

        let regions: Vec<f64> = (0..n).map(|i| alloc.get(i, 0)).collect();
        let watts: Vec<f64> = (0..n).map(|i| alloc.get(i, 1)).collect();
        let stats = match &mut machine {
            Exec::Analytic(m) => m.run_quantum(&regions, &watts),
            Exec::Trace(m) => m.run_quantum(&regions, &watts, opts.accesses_per_quantum),
        };
        let quantum_eff: f64 = stats
            .instructions
            .iter()
            .zip(&alone_rates)
            .map(|(&instr, &alone)| (instr / crate::config::QUANTUM_SECONDS) / alone)
            .sum();
        efficiency_history.push(quantum_eff);
        if telemetry::enabled() {
            telemetry::record(
                telemetry::Event::new("quantum")
                    .field_u64("quantum", q as u64)
                    .field_str("mechanism", &mechanism.name())
                    .field_f64("efficiency", quantum_eff)
                    .field_bool("degraded", quantum_degraded)
                    .field_bool("fallback", quantum_fallback),
            );
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|i| vec![alloc.get(i, 0), alloc.get(i, 1)])
                .collect();
            telemetry::record(
                telemetry::Event::new("quantum_alloc")
                    .field_u64("quantum", q as u64)
                    .field_rows("allocation", rows),
            );
            let now = if quantum_fallback {
                "fallback"
            } else if quantum_degraded {
                "degraded"
            } else {
                "normal"
            };
            if now != health {
                telemetry::record(
                    telemetry::Event::new("degradation")
                        .field_u64("quantum", q as u64)
                        .field_str("from", health)
                        .field_str("to", now),
                );
                health = now;
            }
            let registry = &telemetry::global().registry;
            registry.counter("sim.quanta").incr();
            if quantum_degraded {
                registry.counter("sim.degraded_quanta").incr();
            }
            if quantum_fallback {
                registry.counter("sim.fallback_quanta").incr();
            }
        }
        if let Some(path) = &recovery.checkpoint {
            let mut allocation = Vec::with_capacity(n * 2);
            for i in 0..n {
                allocation.push(alloc.get(i, 0));
                allocation.push(alloc.get(i, 1));
            }
            records.push(QuantumRecord {
                allocation,
                efficiency: quantum_eff,
            });
            let every = recovery.checkpoint_every.max(1);
            if (q + 1) % every == 0 || q + 1 == opts.quanta {
                SimCheckpoint::save_parts(path, &meta, &c, &records)?;
            }
        }
        if hook.observing() {
            let envy = metrics::envy_freeness(&market, &alloc_kept);
            let mut allocation = Vec::with_capacity(n * 2);
            for i in 0..n {
                allocation.push(alloc.get(i, 0));
                allocation.push(alloc.get(i, 1));
            }
            hook.observe(&QuantumObservation {
                quantum: q,
                efficiency: quantum_eff,
                envy_freeness: envy,
                degraded: quantum_degraded,
                fallback: quantum_fallback,
                converged: q_converged,
                residual: q_residual,
                mur: q_mur,
                mbr: q_mbr,
                budgets: market.players().iter().map(|p| p.budget()).collect(),
                allocation,
                cumulative_degraded: c.degraded_quanta,
                cumulative_fallback: c.fallback_quanta,
                replayed: false,
            });
        }
        last = Some((market, alloc_kept));
    }

    let (last_market, last_alloc) = last.expect("at least one quantum");
    hook.observe_final(&last_market, &last_alloc);
    let (elapsed, per_core_instructions): (f64, Vec<f64>) = match &machine {
        Exec::Analytic(m) => (
            m.elapsed_seconds(),
            m.cores().iter().map(|c| c.instructions).collect(),
        ),
        Exec::Trace(m) => (
            m.elapsed_seconds(),
            (0..n).map(|i| m.instructions(i)).collect(),
        ),
    };
    let utilities: Vec<f64> = alone_rates
        .iter()
        .zip(&per_core_instructions)
        .map(|(&alone, &instr)| (instr / elapsed) / alone)
        .collect();
    let efficiency = utilities.iter().sum();
    // Fairness is judged over all players with the un-wrapped utility
    // surfaces — liar exaggeration and NaN/spike wrappers don't distort
    // the verdict, and dropped players' zero rows count as real envy.
    let envy_freeness = metrics::envy_freeness(&last_market, &last_alloc);

    Ok(SimResult {
        mechanism: mechanism.name(),
        efficiency,
        envy_freeness,
        utilities,
        quanta: opts.quanta,
        avg_equilibrium_rounds: c.total_rounds as f64 / opts.quanta as f64,
        avg_iterations: c.total_iterations as f64 / opts.quanta as f64,
        always_converged: c.always_converged,
        efficiency_history,
        fallback_quanta: c.fallback_quanta,
        degraded_quanta: c.degraded_quanta,
        solver_recoveries: c.solver_recoveries,
        retried_solves: c.retried_solves,
        timed_out_solves: c.timed_out_solves,
        replayed_quanta,
        used_prev_generation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rebudget_core::mechanisms::{EqualBudget, EqualShare, MaxEfficiency, ReBudget};
    use rebudget_workloads::paper_bbpc_8core;

    fn fast_opts() -> SimOptions {
        SimOptions {
            quanta: 4,
            accesses_per_quantum: 8_000,
            budget: 100.0,
            use_monitors: true,
            seed: 11,
            ..SimOptions::default()
        }
    }

    #[test]
    fn bundle_mismatch_is_an_error() {
        let sys = SystemConfig::paper_64core();
        let dram = DramConfig::ddr3_1600();
        let err = run_simulation(&sys, &dram, &paper_bbpc_8core(), &EqualShare, &fast_opts())
            .unwrap_err();
        assert!(matches!(err, SimError::BundleMismatch { .. }));
    }

    #[test]
    fn equal_budget_simulation_runs_and_is_sane() {
        let sys = SystemConfig::paper_8core();
        let dram = DramConfig::ddr3_1600();
        let r = run_simulation(
            &sys,
            &dram,
            &paper_bbpc_8core(),
            &EqualBudget::new(100.0),
            &fast_opts(),
        )
        .unwrap();
        assert_eq!(r.utilities.len(), 8);
        assert!(r.efficiency > 0.0 && r.efficiency <= 8.0 + 1e-6);
        assert!(r.utilities.iter().all(|&u| u > 0.0 && u <= 1.0 + 1e-6));
        assert!(r.avg_equilibrium_rounds >= 1.0);
        // The efficiency trajectory averages to the reported efficiency.
        assert_eq!(r.efficiency_history.len(), r.quanta);
        let mean: f64 = r.efficiency_history.iter().sum::<f64>() / r.quanta as f64;
        assert!(
            (mean - r.efficiency).abs() < 1e-6,
            "{mean} vs {}",
            r.efficiency
        );
    }

    #[test]
    fn mechanism_ordering_matches_paper() {
        // MaxEfficiency ≥ ReBudget-40 ≥ EqualBudget in efficiency;
        // EqualBudget ≥ ReBudget-40 in envy-freeness (§6.3).
        let sys = SystemConfig::paper_8core();
        let dram = DramConfig::ddr3_1600();
        let opts = fast_opts();
        let bundle = paper_bbpc_8core();
        let eq = run_simulation(&sys, &dram, &bundle, &EqualBudget::new(100.0), &opts).unwrap();
        let rb = run_simulation(
            &sys,
            &dram,
            &bundle,
            &ReBudget::with_step(100.0, 40.0),
            &opts,
        )
        .unwrap();
        let opt = run_simulation(&sys, &dram, &bundle, &MaxEfficiency::default(), &opts).unwrap();
        assert!(
            opt.efficiency >= rb.efficiency - 0.05,
            "oracle {} vs ReBudget {}",
            opt.efficiency,
            rb.efficiency
        );
        assert!(
            rb.efficiency >= eq.efficiency - 0.05,
            "ReBudget {} vs EqualBudget {}",
            rb.efficiency,
            eq.efficiency
        );
        assert!(
            eq.envy_freeness >= rb.envy_freeness - 0.05,
            "EqualBudget EF {} vs ReBudget EF {}",
            eq.envy_freeness,
            rb.envy_freeness
        );
    }

    #[test]
    fn trace_driven_mode_tracks_analytic_mode() {
        let sys = SystemConfig::scaled(4);
        let dram = DramConfig::ddr3_1600();
        let bundle =
            rebudget_workloads::generate_bundle(rebudget_workloads::Category::Cpbn, 4, 0, 5)
                .expect("4 cores");
        let mut opts = fast_opts();
        opts.quanta = 6;
        let analytic =
            run_simulation(&sys, &dram, &bundle, &EqualBudget::new(100.0), &opts).unwrap();
        opts.execution = ExecutionModel::TraceDriven;
        let traced = run_simulation(&sys, &dram, &bundle, &EqualBudget::new(100.0), &opts).unwrap();
        assert!(traced.efficiency > 0.0);
        // Trace-driven execution pays for enforcement transients and real
        // contention; it must stay in the same ballpark, below-or-near the
        // analytic ideal.
        let ratio = traced.efficiency / analytic.efficiency;
        assert!(
            (0.4..=1.15).contains(&ratio),
            "trace-driven {} vs analytic {} (ratio {ratio})",
            traced.efficiency,
            analytic.efficiency
        );
    }

    #[test]
    fn faulted_simulation_survives_and_stays_sane() {
        let sys = SystemConfig::paper_8core();
        let dram = DramConfig::ddr3_1600();
        let mut opts = fast_opts();
        opts.faults = Some(
            FaultPlan::parse("noise=0.15,drop=0.2,nan=0.05,stale=0.3,liars=2,seed=3").unwrap(),
        );
        let r = run_simulation(
            &sys,
            &dram,
            &paper_bbpc_8core(),
            &EqualBudget::new(100.0),
            &opts,
        )
        .unwrap();
        assert!(r.efficiency.is_finite() && r.efficiency > 0.0);
        assert!(r.envy_freeness.is_finite());
        assert!(r.utilities.iter().all(|&u| u.is_finite() && u >= 0.0));
        assert!(r.fallback_quanta <= r.quanta);
        assert!(r.degraded_quanta <= r.quanta);
    }

    #[test]
    fn faulted_simulation_is_deterministic() {
        let sys = SystemConfig::paper_8core();
        let dram = DramConfig::ddr3_1600();
        let mut opts = fast_opts();
        opts.faults = Some(FaultPlan::parse("noise=0.2,drop=0.15,liars=1,seed=17").unwrap());
        let run = || {
            run_simulation(
                &sys,
                &dram,
                &paper_bbpc_8core(),
                &EqualBudget::new(100.0),
                &opts,
            )
            .unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.efficiency.to_bits(), b.efficiency.to_bits());
        assert_eq!(a.envy_freeness.to_bits(), b.envy_freeness.to_bits());
        assert_eq!(a.fallback_quanta, b.fallback_quanta);
        assert_eq!(a.degraded_quanta, b.degraded_quanta);
    }

    #[test]
    fn total_drop_falls_back_without_panicking() {
        // Every bid dropped every quantum: the faulted market keeps one
        // player; the run must complete with finite outputs.
        let sys = SystemConfig::paper_8core();
        let dram = DramConfig::ddr3_1600();
        let mut opts = fast_opts();
        opts.faults = Some(FaultPlan::parse("drop=1.0,seed=5").unwrap());
        let r = run_simulation(
            &sys,
            &dram,
            &paper_bbpc_8core(),
            &EqualBudget::new(100.0),
            &opts,
        )
        .unwrap();
        assert!(r.efficiency.is_finite() && r.efficiency > 0.0);
    }

    #[test]
    fn checkpoint_resume_is_bit_identical() {
        let sys = SystemConfig::paper_8core();
        let dram = DramConfig::ddr3_1600();
        let bundle = paper_bbpc_8core();
        let opts = fast_opts();
        let dir = std::env::temp_dir().join(format!("rebudget-sim-cp-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("resume.ckpt");

        let mech = EqualBudget::new(100.0);
        let reference = run_simulation(&sys, &dram, &bundle, &mech, &opts).unwrap();

        // Simulate a crash after 2 of 4 quanta: run a truncated copy with
        // checkpointing on, then resume the full run from its snapshot.
        let mut partial = opts.clone();
        partial.quanta = 2;
        run_simulation_recoverable(
            &sys,
            &dram,
            &bundle,
            &mech,
            &partial,
            &RecoveryOptions {
                checkpoint: Some(path.clone()),
                checkpoint_every: 1,
                resume: None,
            },
        )
        .unwrap();
        let resumed = run_simulation_recoverable(
            &sys,
            &dram,
            &bundle,
            &mech,
            &opts,
            &RecoveryOptions {
                resume: Some(path.clone()),
                ..RecoveryOptions::default()
            },
        )
        .unwrap();

        assert_eq!(resumed.replayed_quanta, 2);
        assert!(!resumed.used_prev_generation);
        assert_eq!(resumed.efficiency.to_bits(), reference.efficiency.to_bits());
        assert_eq!(
            resumed.envy_freeness.to_bits(),
            reference.envy_freeness.to_bits()
        );
        for (a, b) in resumed
            .efficiency_history
            .iter()
            .zip(&reference.efficiency_history)
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in resumed.utilities.iter().zip(&reference.utilities) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_rejects_mismatched_configuration() {
        let sys = SystemConfig::paper_8core();
        let dram = DramConfig::ddr3_1600();
        let bundle = paper_bbpc_8core();
        let opts = fast_opts();
        let dir = std::env::temp_dir().join(format!("rebudget-sim-mis-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mismatch.ckpt");
        run_simulation_recoverable(
            &sys,
            &dram,
            &bundle,
            &EqualBudget::new(100.0),
            &opts,
            &RecoveryOptions {
                checkpoint: Some(path.clone()),
                checkpoint_every: 2,
                resume: None,
            },
        )
        .unwrap();
        // Different seed: the snapshot must be refused, not silently used.
        let mut other = opts.clone();
        other.seed += 1;
        let err = run_simulation_recoverable(
            &sys,
            &dram,
            &bundle,
            &EqualBudget::new(100.0),
            &other,
            &RecoveryOptions {
                resume: Some(path.clone()),
                ..RecoveryOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(
            err,
            SimError::Checkpoint(crate::checkpoint::CheckpointError::ConfigMismatch { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn analytic_mode_skips_monitors() {
        let sys = SystemConfig::paper_8core();
        let dram = DramConfig::ddr3_1600();
        let mut opts = fast_opts();
        opts.use_monitors = false;
        opts.accesses_per_quantum = 0;
        let r = run_simulation(
            &sys,
            &dram,
            &paper_bbpc_8core(),
            &EqualBudget::new(100.0),
            &opts,
        )
        .unwrap();
        assert!(r.efficiency > 0.0);
    }
}
