#![warn(missing_docs)]

//! The multicore simulator substrate (the paper's SESC stand-in).
//!
//! The paper evaluates ReBudget with SESC, a cycle-level execution-driven
//! simulator, in two phases (§6): an *analytical* phase over profiled,
//! convexified utilities (240 bundles), and a *simulation* phase where
//! utilities are monitored online with the hardware of §4.1.1 (UMON +
//! critical-path predictor + power model) while the budget re-assignment
//! runs every 1 ms.
//!
//! We reproduce both phases on a quantum-based performance model:
//!
//! * [`config`] — the Table 1 system configurations (8 and 64 cores);
//! * [`dram`] — Micron DDR3-1600 timing, yielding the effective memory
//!   latency the phase model consumes;
//! * [`utility_model`] — the paper's 90-point (cache × frequency) utility
//!   profiling, concave-hull convexification per Figure 2, and the mapping
//!   from frequency to discretionary Watts that turns a profile into a
//!   market [`rebudget_market::utility::GridUtility`];
//! * [`analytic`] — phase-1 evaluation: build a [`rebudget_market::Market`]
//!   straight from application models;
//! * [`monitor`] — phase-2 runtime monitoring: per-core UMON shadow tags
//!   over synthetic traces produce the miss curve online;
//! * [`machine`] and [`simulation`] — the 1 ms allocation quantum loop:
//!   monitor → market → DVFS/partition enforcement → execute → thermals.

pub mod analytic;
pub mod checkpoint;
pub mod config;
pub mod critical_path;
pub mod dram;
pub mod dram_sim;
pub mod groups;
pub mod machine;
pub mod monitor;
pub mod simulation;
pub mod trace_machine;
pub mod utility_model;

pub use checkpoint::{CheckpointError, SimCheckpoint, SweepCheckpoint};
pub use config::SystemConfig;
pub use dram::DramConfig;
pub use simulation::{
    run_simulation, run_simulation_hooked, run_simulation_recoverable, QuantumControls,
    QuantumHook, QuantumObservation, RecoveryOptions, SimOptions, SimResult,
};
