//! A bank-level DDR3 timing simulator.
//!
//! [`crate::dram::DramConfig`] feeds the phase model a closed-form
//! *average* miss latency. This module backs that number with an actual
//! event-driven model of the paper's memory system ("we also faithfully
//! model Micron's DDR3-1600 DRAM timing", §5): channels × banks with open
//! rows, bank busy times derived from the datasheet parameters, FCFS
//! per-bank queueing, and address interleaving. The test suite checks the
//! closed-form reference latency falls inside the band the simulator
//! produces across realistic row-hit rates and loads.

use crate::dram::DramConfig;

/// State of one DRAM bank.
#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    /// Currently open row, if any.
    open_row: Option<u64>,
    /// Absolute time (ns) at which the bank can accept the next command.
    ready_at_ns: f64,
}

/// Outcome classification of one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowOutcome {
    /// The open row matched.
    Hit,
    /// The bank had no open row.
    Closed,
    /// A different row was open (precharge first).
    Conflict,
}

/// An event-driven multi-channel, multi-bank DDR3 model.
///
/// # Examples
///
/// ```
/// use rebudget_sim::dram_sim::{DramSimulator, RowOutcome};
/// use rebudget_sim::DramConfig;
///
/// let mut dram = DramSimulator::new(DramConfig::ddr3_1600(), 2, 8);
/// let (_, first) = dram.access(0.0, 0x1000);
/// assert_eq!(first, RowOutcome::Closed);
/// // Same row, shortly after: a row-buffer hit is cheaper.
/// let (lat, second) = dram.access(200.0, 0x1040);
/// assert_eq!(second, RowOutcome::Hit);
/// assert!(lat < DramConfig::ddr3_1600().row_miss_ns());
/// ```
#[derive(Debug, Clone)]
pub struct DramSimulator {
    cfg: DramConfig,
    channels: usize,
    banks_per_channel: usize,
    row_bytes: u64,
    banks: Vec<Bank>,
    /// Accumulated statistics.
    accesses: u64,
    total_latency_ns: f64,
    hits: u64,
    conflicts: u64,
}

impl DramSimulator {
    /// Creates a simulator with the given channel/bank organization.
    /// DDR3 devices have 8 banks; the paper's systems use 2 or 16
    /// channels (Table 1). Rows are 8 kB.
    ///
    /// # Panics
    ///
    /// Panics if `channels` or `banks_per_channel` is zero.
    pub fn new(cfg: DramConfig, channels: usize, banks_per_channel: usize) -> Self {
        assert!(channels > 0, "need at least one channel");
        assert!(banks_per_channel > 0, "need at least one bank");
        Self {
            cfg,
            channels,
            banks_per_channel,
            row_bytes: 8 * 1024,
            banks: vec![Bank::default(); channels * banks_per_channel],
            accesses: 0,
            total_latency_ns: 0.0,
            hits: 0,
            conflicts: 0,
        }
    }

    fn map(&self, addr: u64) -> (usize, u64) {
        // Row-interleaved mapping: consecutive rows rotate over channels
        // then banks.
        let row_global = addr / self.row_bytes;
        let bank_count = self.banks.len();
        let bank = (row_global % bank_count as u64) as usize;
        let row = row_global / bank_count as u64;
        (bank, row)
    }

    /// Issues one read at absolute time `now_ns`; returns the completion
    /// latency in nanoseconds (including any bank queueing).
    pub fn access(&mut self, now_ns: f64, addr: u64) -> (f64, RowOutcome) {
        let (bank_idx, row) = self.map(addr);
        let bank = &mut self.banks[bank_idx];
        let start = now_ns.max(bank.ready_at_ns);
        let (service, outcome) = match bank.open_row {
            Some(open) if open == row => (self.cfg.row_hit_ns(), RowOutcome::Hit),
            Some(_) => (self.cfg.row_conflict_ns(), RowOutcome::Conflict),
            None => (self.cfg.row_miss_ns(), RowOutcome::Closed),
        };
        bank.open_row = Some(row);
        bank.ready_at_ns = start + service - self.cfg.onchip_overhead_ns;
        let latency = (start - now_ns) + service;
        self.accesses += 1;
        self.total_latency_ns += latency;
        match outcome {
            RowOutcome::Hit => self.hits += 1,
            RowOutcome::Conflict => self.conflicts += 1,
            RowOutcome::Closed => {}
        }
        (latency, outcome)
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Number of banks per channel.
    pub fn banks_per_channel(&self) -> usize {
        self.banks_per_channel
    }

    /// Mean access latency so far (ns).
    pub fn mean_latency_ns(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.total_latency_ns / self.accesses as f64
        }
    }

    /// Observed row-hit fraction.
    pub fn row_hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Observed row-conflict fraction.
    pub fn row_conflict_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.conflicts as f64 / self.accesses as f64
        }
    }

    /// Accesses simulated.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> DramSimulator {
        DramSimulator::new(DramConfig::ddr3_1600(), 2, 8)
    }

    #[test]
    fn sequential_stream_hits_rows() {
        // Consecutive lines within one row: first access opens, the rest
        // hit.
        let mut s = sim();
        let mut t = 0.0;
        for k in 0..128u64 {
            let (lat, _) = s.access(t, k * 64);
            t += lat + 50.0; // unloaded
        }
        assert!(
            s.row_hit_rate() > 0.95,
            "sequential stream should row-hit: {}",
            s.row_hit_rate()
        );
        assert!(s.mean_latency_ns() < DramConfig::ddr3_1600().row_miss_ns());
    }

    #[test]
    fn row_ping_pong_conflicts() {
        // Alternating between two rows of the same bank: every access
        // after the first conflicts.
        let mut s = sim();
        let bank_count = (s.channels() * s.banks_per_channel()) as u64;
        let stride = 8 * 1024 * bank_count; // same bank, next row
        let mut t = 0.0;
        for k in 0..100u64 {
            let (lat, _) = s.access(t, (k % 2) * stride);
            t += lat + 100.0;
        }
        assert!(
            s.row_conflict_rate() > 0.9,
            "ping-pong should conflict: {}",
            s.row_conflict_rate()
        );
    }

    #[test]
    fn queueing_inflates_latency_under_load() {
        let cfg = DramConfig::ddr3_1600();
        let mut light = sim();
        let mut heavy = sim();
        let mut x = 12345u64;
        let mut addr = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            (x >> 20) % (1 << 30)
        };
        let mut t = 0.0;
        for _ in 0..5_000 {
            light.access(t, addr());
            t += 500.0; // one access per 500 ns: idle banks
        }
        let mut t = 0.0;
        for _ in 0..5_000 {
            heavy.access(t, addr());
            t += 3.0; // far beyond one channel-bank's service rate
        }
        assert!(
            heavy.mean_latency_ns() > 1.5 * light.mean_latency_ns(),
            "load should queue: {} vs {}",
            light.mean_latency_ns(),
            heavy.mean_latency_ns()
        );
        assert!(light.mean_latency_ns() >= cfg.row_hit_ns() * 0.8);
    }

    #[test]
    fn closed_form_reference_sits_in_simulated_band() {
        // The reference latency the phase model uses must fall between
        // the unloaded random-access latency and a heavily loaded one.
        let cfg = DramConfig::ddr3_1600();
        let mut unloaded = sim();
        let mut loaded = sim();
        let mut x = 777u64;
        let mut addr = move || {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            (x >> 16) % (1 << 31)
        };
        let mut t = 0.0;
        for _ in 0..20_000 {
            unloaded.access(t, addr());
            t += 400.0;
        }
        let mut t = 0.0;
        for _ in 0..20_000 {
            loaded.access(t, addr());
            t += 8.0;
        }
        let reference = cfg.reference_latency_ns();
        assert!(
            reference >= unloaded.mean_latency_ns() * 0.8,
            "reference {reference} vs unloaded {}",
            unloaded.mean_latency_ns()
        );
        assert!(
            reference <= loaded.mean_latency_ns() * 1.6,
            "reference {reference} vs loaded {}",
            loaded.mean_latency_ns()
        );
    }

    #[test]
    fn more_channels_reduce_queueing() {
        let cfg = DramConfig::ddr3_1600();
        let mut narrow = DramSimulator::new(cfg, 2, 8);
        let mut wide = DramSimulator::new(cfg, 16, 8);
        let mut x = 99u64;
        let mut addr = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            (x >> 18) % (1 << 31)
        };
        let mut t = 0.0;
        for _ in 0..20_000 {
            narrow.access(t, addr());
            t += 6.0;
        }
        let mut t = 0.0;
        for _ in 0..20_000 {
            wide.access(t, addr());
            t += 6.0;
        }
        assert!(
            wide.mean_latency_ns() < narrow.mean_latency_ns(),
            "16 channels {} should beat 2 channels {}",
            wide.mean_latency_ns(),
            narrow.mean_latency_ns()
        );
    }
}
