//! Micron DDR3-1600 timing (§5: "we also faithfully model Micron's
//! DDR3-1600 DRAM timing").
//!
//! The phase-decomposition performance model consumes one number — the
//! effective L2-miss latency — so this module derives it from the actual
//! DDR3-1600 datasheet parameters (MT41J256M8, -125 speed grade) plus a
//! simple bank-conflict/queueing correction driven by channel load.

/// DDR3 timing parameters, in memory-clock cycles unless noted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Memory clock period in nanoseconds (DDR3-1600: 800 MHz → 1.25 ns).
    pub tck_ns: f64,
    /// CAS latency.
    pub cl: u32,
    /// RAS-to-CAS delay.
    pub trcd: u32,
    /// Row precharge time.
    pub trp: u32,
    /// Row active time.
    pub tras: u32,
    /// Burst length (transfers per access).
    pub burst: u32,
    /// Fixed on-chip overhead per L2 miss (tag check, NoC, controller) in
    /// nanoseconds.
    pub onchip_overhead_ns: f64,
}

impl DramConfig {
    /// Micron MT41J256M8DA-125: DDR3-1600, 11-11-11 at 1.25 ns clock.
    pub fn ddr3_1600() -> Self {
        Self {
            tck_ns: 1.25,
            cl: 11,
            trcd: 11,
            trp: 11,
            tras: 28,
            burst: 8,
            onchip_overhead_ns: 22.0,
        }
    }

    /// Latency of a row-buffer hit: `CL + BL/2` cycles plus overhead.
    pub fn row_hit_ns(&self) -> f64 {
        (self.cl + self.burst / 2) as f64 * self.tck_ns + self.onchip_overhead_ns
    }

    /// Latency of a row-buffer miss (closed row): `tRCD + CL + BL/2`.
    pub fn row_miss_ns(&self) -> f64 {
        (self.trcd + self.cl + self.burst / 2) as f64 * self.tck_ns + self.onchip_overhead_ns
    }

    /// Latency of a row-buffer conflict (must precharge first):
    /// `tRP + tRCD + CL + BL/2`.
    pub fn row_conflict_ns(&self) -> f64 {
        (self.trp + self.trcd + self.cl + self.burst / 2) as f64 * self.tck_ns
            + self.onchip_overhead_ns
    }

    /// Effective average miss latency given a row-hit rate and a channel
    /// utilization in `[0, 1)`. Queueing inflates latency by
    /// `1 / (1 − utilization)` (M/M/1 flavour), capped at 3×.
    pub fn effective_latency_ns(&self, row_hit_rate: f64, channel_utilization: f64) -> f64 {
        let h = row_hit_rate.clamp(0.0, 1.0);
        // Remaining accesses split between closed rows and conflicts.
        let base =
            h * self.row_hit_ns() + (1.0 - h) * 0.5 * (self.row_miss_ns() + self.row_conflict_ns());
        let u = channel_utilization.clamp(0.0, 0.95);
        let queueing = (1.0 / (1.0 - u)).min(3.0);
        base * queueing
    }

    /// The latency fed to [`rebudget_apps::perf::PerfEnv`]: a typical mix
    /// (60% row hits, 40% channel load) lands near the 80 ns the reference
    /// environment assumes.
    pub fn reference_latency_ns(&self) -> f64 {
        self.effective_latency_ns(0.6, 0.4)
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::ddr3_1600()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr3_1600_datasheet_arithmetic() {
        let d = DramConfig::ddr3_1600();
        // CL 11 + BL/2 = 15 cycles × 1.25 ns = 18.75 ns + overhead.
        assert!((d.row_hit_ns() - (18.75 + 22.0)).abs() < 1e-9);
        assert!(d.row_miss_ns() > d.row_hit_ns());
        assert!(d.row_conflict_ns() > d.row_miss_ns());
    }

    #[test]
    fn effective_latency_monotone_in_load() {
        let d = DramConfig::ddr3_1600();
        let l0 = d.effective_latency_ns(0.6, 0.0);
        let l5 = d.effective_latency_ns(0.6, 0.5);
        let l9 = d.effective_latency_ns(0.6, 0.9);
        assert!(l0 < l5 && l5 < l9);
    }

    #[test]
    fn effective_latency_monotone_in_row_misses() {
        let d = DramConfig::ddr3_1600();
        assert!(d.effective_latency_ns(0.2, 0.4) > d.effective_latency_ns(0.8, 0.4));
    }

    #[test]
    fn reference_latency_near_80ns() {
        let l = DramConfig::ddr3_1600().reference_latency_ns();
        assert!(
            (65.0..=95.0).contains(&l),
            "reference latency {l} should be near the 80 ns the perf model assumes"
        );
    }

    #[test]
    fn queueing_is_capped() {
        let d = DramConfig::ddr3_1600();
        let l = d.effective_latency_ns(0.6, 0.9999);
        assert!(l <= 3.0 * d.effective_latency_ns(0.6, 0.0) + 1e-9);
    }
}
