//! Durable checkpoint/restore for simulations and sweeps.
//!
//! Long runs die: machines reboot, jobs get preempted, batch schedulers
//! kill over-quota work. This module makes the quantum loop of
//! [`crate::simulation`] and the knob sweep of [`rebudget_core::sweep`]
//! *resumable*: state is snapshotted to disk at quantum (or sweep-point)
//! boundaries, and a later process can pick the run back up and produce
//! **bit-identical** results to an uninterrupted run.
//!
//! # Format
//!
//! Snapshots are a versioned, line-oriented text format — deliberately
//! hand-rolled (the workspace carries no serialization dependency) and
//! human-inspectable:
//!
//! ```text
//! rebudget-checkpoint v1 sim
//! [meta]
//! mechanism=EqualBudget
//! cores=8
//! ...
//! [counters]
//! total_rounds=12
//! ...
//! [quantum 0]
//! alloc=4000000000000000 4024000000000000 ...
//! eff=3fe6666666666666
//! [checksum]
//! fnv1a=c3a5c85c97cb3127
//! ```
//!
//! Every `f64` is stored as the 16-hex-digit big-endian rendering of its
//! IEEE-754 bits ([`f64::to_bits`]), so round-trips are exact for every
//! value including negative zero, subnormals, infinities, and NaN
//! payloads. The final section is a 64-bit FNV-1a checksum over every
//! byte that precedes the `[checksum]` line; a truncated or bit-flipped
//! file fails validation with a typed [`CheckpointError`] instead of
//! producing a silently wrong resume.
//!
//! # Atomicity and rotation
//!
//! [`SimCheckpoint::save`] (and the sweep equivalent) never overwrite the
//! live snapshot in place. The new snapshot is written to `<path>.tmp`,
//! the previous snapshot (if any) is renamed to `<path>.prev`, and the
//! temp file is renamed onto `<path>`. A crash at any point leaves either
//! the old snapshot, the old snapshot plus a stray `.tmp`, or the new
//! snapshot — never a half-written file at the load path. Loaders that
//! use [`SimCheckpoint::load_with_fallback`] additionally fall back to
//! `<path>.prev` when the primary file is corrupt, so one torn write
//! costs at most one checkpoint interval of progress.
//!
//! # Why replay instead of deep state serialization
//!
//! A simulation quantum's inputs split cleanly in two: the *monitors*
//! (UMON shadow tags, synthetic trace RNGs) evolve independently of the
//! allocation decisions, while the *machine* (thermal grid, energy,
//! per-core progress) depends only on the allocation applied each
//! quantum. A snapshot therefore records just the per-quantum allocations
//! and aggregate counters; resume re-runs monitors and machine through
//! the recorded quanta — skipping the expensive market solves — and the
//! deterministic pipeline reproduces the exact pre-crash state. The
//! recorded per-quantum efficiency doubles as a replay-divergence check.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use rebudget_core::sweep::{SolveSummary, SweepPoint};
use rebudget_market::FaultPlan;

/// Snapshot format version. Bump when the on-disk layout changes; loaders
/// reject other versions with [`CheckpointError::Version`].
pub const FORMAT_VERSION: u32 = 1;

const HEADER_PREFIX: &str = "rebudget-checkpoint";
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over a byte slice.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

fn f64_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// Errors from snapshot parsing, validation, and I/O.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CheckpointError {
    /// Reading or writing the snapshot file failed.
    Io {
        /// The file involved.
        path: String,
        /// The OS error rendered as text.
        message: String,
    },
    /// The file is not a well-formed snapshot (bad header, missing
    /// section or key, unparsable value, or truncation).
    Format {
        /// 1-based line of the offending content (0 when the problem is
        /// the file as a whole, e.g. a missing trailer).
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// The snapshot is a different format version than this build writes.
    Version {
        /// The version found in the header.
        found: u32,
    },
    /// The snapshot is of a different kind (`sim` vs `sweep`).
    Kind {
        /// The kind expected by the loader.
        expected: &'static str,
        /// The kind found in the header.
        found: String,
    },
    /// The stored checksum does not match the file contents — the file
    /// was truncated or corrupted after it was written.
    Checksum {
        /// Checksum recorded in the file.
        expected: u64,
        /// Checksum of the actual contents.
        found: u64,
    },
    /// The snapshot was taken under a different configuration than the
    /// resuming run (different mechanism, seed, workload, fault plan, …).
    ConfigMismatch {
        /// The field that disagreed.
        what: String,
        /// Value in the resuming run's configuration.
        expected: String,
        /// Value recorded in the snapshot.
        found: String,
    },
    /// Replaying the recorded quanta produced different machine state
    /// than the run that wrote the snapshot — the snapshot belongs to a
    /// different binary or an incompatible configuration.
    ReplayDivergence {
        /// The quantum whose replayed efficiency differed.
        quantum: usize,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { path, message } => {
                write!(f, "checkpoint i/o failed for {path}: {message}")
            }
            CheckpointError::Format { line, reason } => {
                write!(f, "malformed checkpoint (line {line}): {reason}")
            }
            CheckpointError::Version { found } => write!(
                f,
                "unsupported checkpoint version {found} (this build reads v{FORMAT_VERSION})"
            ),
            CheckpointError::Kind { expected, found } => {
                write!(
                    f,
                    "checkpoint kind mismatch: expected {expected}, found {found}"
                )
            }
            CheckpointError::Checksum { expected, found } => write!(
                f,
                "checkpoint checksum mismatch: recorded {expected:016x}, computed {found:016x} \
                 (file truncated or corrupted)"
            ),
            CheckpointError::ConfigMismatch {
                what,
                expected,
                found,
            } => write!(
                f,
                "checkpoint does not match this run: {what} is {found} in the snapshot \
                 but {expected} here"
            ),
            CheckpointError::ReplayDivergence { quantum } => write!(
                f,
                "replay diverged from the snapshot at quantum {quantum} \
                 (snapshot from an incompatible build or configuration)"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

type Result<T> = std::result::Result<T, CheckpointError>;

fn io_err(path: &Path, e: &std::io::Error) -> CheckpointError {
    CheckpointError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    }
}

// ---------------------------------------------------------------------------
// Low-level text layer: sections of key=value records + checksum trailer.
// ---------------------------------------------------------------------------

struct Section {
    name: String,
    line: usize,
    entries: Vec<(String, String, usize)>,
}

impl Section {
    fn get(&self, key: &str) -> Result<&str> {
        self.entries
            .iter()
            .find(|(k, _, _)| k == key)
            .map(|(_, v, _)| v.as_str())
            .ok_or_else(|| CheckpointError::Format {
                line: self.line,
                reason: format!("section [{}] is missing key `{key}`", self.name),
            })
    }

    fn parse<T: std::str::FromStr>(&self, key: &str) -> Result<T> {
        let raw = self.get(key)?;
        raw.parse().map_err(|_| CheckpointError::Format {
            line: self.line,
            reason: format!("key `{key}` has unparsable value `{raw}`"),
        })
    }

    fn parse_f64_bits(&self, key: &str) -> Result<f64> {
        let raw = self.get(key)?;
        u64::from_str_radix(raw, 16)
            .map(f64::from_bits)
            .map_err(|_| CheckpointError::Format {
                line: self.line,
                reason: format!("key `{key}` is not a 16-hex-digit f64: `{raw}`"),
            })
    }

    fn parse_bool(&self, key: &str) -> Result<bool> {
        match self.get(key)? {
            "0" => Ok(false),
            "1" => Ok(true),
            other => Err(CheckpointError::Format {
                line: self.line,
                reason: format!("key `{key}` must be 0 or 1, got `{other}`"),
            }),
        }
    }
}

/// Renders the header + body, appends the checksum trailer.
fn seal(kind: &str, body: &str) -> String {
    let mut text = format!("{HEADER_PREFIX} v{FORMAT_VERSION} {kind}\n");
    text.push_str(body);
    let sum = fnv1a(text.as_bytes());
    text.push_str(&format!("[checksum]\nfnv1a={sum:016x}\n"));
    text
}

/// Validates header + checksum and splits the body into sections.
fn open(text: &str, expected_kind: &'static str) -> Result<Vec<Section>> {
    let header_end = text.find('\n').ok_or(CheckpointError::Format {
        line: 1,
        reason: "empty or headerless file".into(),
    })?;
    let header = &text[..header_end];
    let mut parts = header.split(' ');
    if parts.next() != Some(HEADER_PREFIX) {
        return Err(CheckpointError::Format {
            line: 1,
            reason: format!("not a rebudget checkpoint (header `{header}`)"),
        });
    }
    let version: u32 = parts
        .next()
        .and_then(|v| v.strip_prefix('v'))
        .and_then(|v| v.parse().ok())
        .ok_or(CheckpointError::Format {
            line: 1,
            reason: "header has no version field".into(),
        })?;
    if version != FORMAT_VERSION {
        return Err(CheckpointError::Version { found: version });
    }
    let kind = parts.next().unwrap_or("");
    if kind != expected_kind {
        return Err(CheckpointError::Kind {
            expected: expected_kind,
            found: kind.to_string(),
        });
    }

    // Locate the checksum trailer and verify it over the preceding bytes.
    let trailer_tag = "[checksum]\n";
    let trailer_at = text.rfind(trailer_tag).ok_or(CheckpointError::Format {
        line: 0,
        reason: "missing [checksum] trailer (file truncated?)".into(),
    })?;
    let body_bytes = &text.as_bytes()[..trailer_at];
    let trailer = &text[trailer_at + trailer_tag.len()..];
    let recorded = trailer
        .lines()
        .find_map(|l| l.strip_prefix("fnv1a="))
        .and_then(|v| u64::from_str_radix(v.trim(), 16).ok())
        .ok_or(CheckpointError::Format {
            line: 0,
            reason: "checksum trailer has no fnv1a record".into(),
        })?;
    let computed = fnv1a(body_bytes);
    if recorded != computed {
        return Err(CheckpointError::Checksum {
            expected: recorded,
            found: computed,
        });
    }

    // Parse the body into sections.
    let mut sections: Vec<Section> = Vec::new();
    for (idx, line) in text[..trailer_at].lines().enumerate().skip(1) {
        let lineno = idx + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            sections.push(Section {
                name: name.to_string(),
                line: lineno,
                entries: Vec::new(),
            });
        } else if let Some((k, v)) = line.split_once('=') {
            let section = sections.last_mut().ok_or(CheckpointError::Format {
                line: lineno,
                reason: "key=value record before any [section]".into(),
            })?;
            section.entries.push((k.to_string(), v.to_string(), lineno));
        } else {
            return Err(CheckpointError::Format {
                line: lineno,
                reason: format!("unrecognized line `{line}`"),
            });
        }
    }
    Ok(sections)
}

/// Path of the rotated previous-generation snapshot for `path`.
#[must_use]
pub fn prev_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".prev");
    PathBuf::from(name)
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".tmp");
    PathBuf::from(name)
}

/// Writes `contents` to `path` atomically, rotating any existing snapshot
/// to `<path>.prev` first.
///
/// The stale `.prev` generation is unlinked *before* the rotation rename:
/// renaming over an existing target trips ext4's `auto_da_alloc`
/// writeback stall (~100 µs per save), an order of magnitude more than
/// unlink + rename onto a free name. A crash in the gap still leaves the
/// sealed live snapshot at `path`, so no recovery point is ever lost.
///
/// Public because every durable writer in the workspace (sim checkpoints,
/// sweep checkpoints, the online server's tick snapshots) shares this one
/// crash-atomic primitive and its `.prev` rotation contract.
pub fn write_atomic(path: &Path, contents: &str) -> Result<()> {
    let tmp = tmp_path(path);
    fs::write(&tmp, contents).map_err(|e| io_err(&tmp, &e))?;
    if path.exists() {
        let prev = prev_path(path);
        if prev.exists() {
            fs::remove_file(&prev).map_err(|e| io_err(&prev, &e))?;
        }
        fs::rename(path, &prev).map_err(|e| io_err(path, &e))?;
    }
    fs::rename(&tmp, path).map_err(|e| io_err(path, &e))?;
    Ok(())
}

fn read_file(path: &Path) -> Result<String> {
    fs::read_to_string(path).map_err(|e| io_err(path, &e))
}

// ---------------------------------------------------------------------------
// Fault-plan serialization (bit-exact).
// ---------------------------------------------------------------------------

fn render_faults(out: &mut String, plan: Option<&FaultPlan>) {
    match plan {
        None => out.push_str("faults=0\n"),
        Some(p) => {
            out.push_str("faults=1\n");
            out.push_str(&format!("fault.seed={}\n", p.seed));
            out.push_str(&format!("fault.noise_sigma={}\n", f64_hex(p.noise_sigma)));
            out.push_str(&format!(
                "fault.spike_probability={}\n",
                f64_hex(p.spike_probability)
            ));
            out.push_str(&format!(
                "fault.spike_probability_magnitude={}\n",
                f64_hex(p.spike_probability_magnitude)
            ));
            out.push_str(&format!(
                "fault.stale_probability={}\n",
                f64_hex(p.stale_probability)
            ));
            out.push_str(&format!("fault.stale_depth={}\n", p.stale_depth));
            out.push_str(&format!(
                "fault.drop_probability={}\n",
                f64_hex(p.drop_probability)
            ));
            out.push_str(&format!(
                "fault.nan_probability={}\n",
                f64_hex(p.nan_probability)
            ));
            out.push_str(&format!("fault.liars={}\n", p.liars));
            out.push_str(&format!(
                "fault.liar_exaggeration={}\n",
                f64_hex(p.liar_exaggeration)
            ));
        }
    }
}

fn parse_faults(meta: &Section) -> Result<Option<FaultPlan>> {
    if !meta.parse_bool("faults")? {
        return Ok(None);
    }
    Ok(Some(FaultPlan {
        seed: meta.parse("fault.seed")?,
        noise_sigma: meta.parse_f64_bits("fault.noise_sigma")?,
        spike_probability: meta.parse_f64_bits("fault.spike_probability")?,
        spike_probability_magnitude: meta.parse_f64_bits("fault.spike_probability_magnitude")?,
        stale_probability: meta.parse_f64_bits("fault.stale_probability")?,
        stale_depth: meta.parse("fault.stale_depth")?,
        drop_probability: meta.parse_f64_bits("fault.drop_probability")?,
        nan_probability: meta.parse_f64_bits("fault.nan_probability")?,
        liars: meta.parse("fault.liars")?,
        liar_exaggeration: meta.parse_f64_bits("fault.liar_exaggeration")?,
    }))
}

// ---------------------------------------------------------------------------
// Simulation snapshots.
// ---------------------------------------------------------------------------

/// The run configuration a simulation snapshot was taken under. Resume
/// validates every field against the resuming run's configuration and
/// refuses to mix snapshots across configurations.
#[derive(Debug, Clone, PartialEq)]
pub struct SimMeta {
    /// Mechanism display name.
    pub mechanism: String,
    /// Core count of the simulated system.
    pub cores: usize,
    /// Market resource dimensions (cache + power = 2).
    pub resources: usize,
    /// Application names, one per core, in core order.
    pub apps: Vec<String>,
    /// Trace RNG seed.
    pub seed: u64,
    /// Per-player budget.
    pub budget: f64,
    /// Synthetic accesses per core per quantum.
    pub accesses_per_quantum: usize,
    /// Whether utilities are rebuilt from UMON monitors each quantum.
    pub use_monitors: bool,
    /// Execution model: `analytic` or `trace`.
    pub execution: String,
    /// Consecutive-failure threshold for the EqualShare fallback.
    pub max_consecutive_failures: usize,
    /// The fault-injection plan, if any (all knobs bit-exact).
    pub faults: Option<FaultPlan>,
}

impl SimMeta {
    fn render(&self, out: &mut String) {
        out.push_str("[meta]\n");
        out.push_str(&format!("mechanism={}\n", self.mechanism));
        out.push_str(&format!("cores={}\n", self.cores));
        out.push_str(&format!("resources={}\n", self.resources));
        for (i, app) in self.apps.iter().enumerate() {
            out.push_str(&format!("app.{i}={app}\n"));
        }
        out.push_str(&format!("seed={}\n", self.seed));
        out.push_str(&format!("budget={}\n", f64_hex(self.budget)));
        out.push_str(&format!(
            "accesses_per_quantum={}\n",
            self.accesses_per_quantum
        ));
        out.push_str(&format!("use_monitors={}\n", u8::from(self.use_monitors)));
        out.push_str(&format!("execution={}\n", self.execution));
        out.push_str(&format!(
            "max_consecutive_failures={}\n",
            self.max_consecutive_failures
        ));
        render_faults(out, self.faults.as_ref());
    }

    fn parse(meta: &Section) -> Result<Self> {
        let cores: usize = meta.parse("cores")?;
        let mut apps = Vec::with_capacity(cores);
        for i in 0..cores {
            apps.push(meta.get(&format!("app.{i}"))?.to_string());
        }
        Ok(Self {
            mechanism: meta.get("mechanism")?.to_string(),
            cores,
            resources: meta.parse("resources")?,
            apps,
            seed: meta.parse("seed")?,
            budget: meta.parse_f64_bits("budget")?,
            accesses_per_quantum: meta.parse("accesses_per_quantum")?,
            use_monitors: meta.parse_bool("use_monitors")?,
            execution: meta.get("execution")?.to_string(),
            max_consecutive_failures: meta.parse("max_consecutive_failures")?,
            faults: parse_faults(meta)?,
        })
    }

    /// Checks that `self` (the resuming run) matches `snapshot` and names
    /// the first disagreeing field otherwise.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::ConfigMismatch`] naming the first field that
    /// differs between the two configurations.
    pub fn ensure_matches(&self, snapshot: &SimMeta) -> Result<()> {
        fn check(
            what: &str,
            expected: impl fmt::Debug,
            found: impl fmt::Debug,
            same: bool,
        ) -> Result<()> {
            if same {
                Ok(())
            } else {
                Err(CheckpointError::ConfigMismatch {
                    what: what.to_string(),
                    expected: format!("{expected:?}"),
                    found: format!("{found:?}"),
                })
            }
        }
        check(
            "mechanism",
            &self.mechanism,
            &snapshot.mechanism,
            self.mechanism == snapshot.mechanism,
        )?;
        check(
            "cores",
            self.cores,
            snapshot.cores,
            self.cores == snapshot.cores,
        )?;
        check(
            "resources",
            self.resources,
            snapshot.resources,
            self.resources == snapshot.resources,
        )?;
        check(
            "apps",
            &self.apps,
            &snapshot.apps,
            self.apps == snapshot.apps,
        )?;
        check("seed", self.seed, snapshot.seed, self.seed == snapshot.seed)?;
        check(
            "budget",
            self.budget,
            snapshot.budget,
            self.budget.to_bits() == snapshot.budget.to_bits(),
        )?;
        check(
            "accesses_per_quantum",
            self.accesses_per_quantum,
            snapshot.accesses_per_quantum,
            self.accesses_per_quantum == snapshot.accesses_per_quantum,
        )?;
        check(
            "use_monitors",
            self.use_monitors,
            snapshot.use_monitors,
            self.use_monitors == snapshot.use_monitors,
        )?;
        check(
            "execution",
            &self.execution,
            &snapshot.execution,
            self.execution == snapshot.execution,
        )?;
        check(
            "max_consecutive_failures",
            self.max_consecutive_failures,
            snapshot.max_consecutive_failures,
            self.max_consecutive_failures == snapshot.max_consecutive_failures,
        )?;
        let faults_match = match (&self.faults, &snapshot.faults) {
            (None, None) => true,
            (Some(a), Some(b)) => {
                a.seed == b.seed
                    && a.noise_sigma.to_bits() == b.noise_sigma.to_bits()
                    && a.spike_probability.to_bits() == b.spike_probability.to_bits()
                    && a.spike_probability_magnitude.to_bits()
                        == b.spike_probability_magnitude.to_bits()
                    && a.stale_probability.to_bits() == b.stale_probability.to_bits()
                    && a.stale_depth == b.stale_depth
                    && a.drop_probability.to_bits() == b.drop_probability.to_bits()
                    && a.nan_probability.to_bits() == b.nan_probability.to_bits()
                    && a.liars == b.liars
                    && a.liar_exaggeration.to_bits() == b.liar_exaggeration.to_bits()
            }
            _ => false,
        };
        check("faults", &self.faults, &snapshot.faults, faults_match)?;
        Ok(())
    }
}

/// Aggregate run counters captured at the snapshot boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimCounters {
    /// Equilibrium rounds across all recorded quanta.
    pub total_rounds: u64,
    /// Bidding–pricing iterations across all recorded quanta.
    pub total_iterations: u64,
    /// Whether every recorded quantum's solve converged.
    pub always_converged: bool,
    /// Consecutive failed quanta at the snapshot boundary (feeds the
    /// EqualShare fallback trigger).
    pub consecutive_failures: usize,
    /// Quanta that fell back to EqualShare.
    pub fallback_quanta: usize,
    /// Quanta whose solve failed or hit the fail-safe.
    pub degraded_quanta: usize,
    /// Solver guardrail recoveries across all recorded quanta.
    pub solver_recoveries: u64,
    /// Retry-ladder attempts beyond the first solve.
    pub retried_solves: u64,
    /// Solves that hit their deadline budget.
    pub timed_out_solves: u64,
}

impl SimCounters {
    fn render(&self, out: &mut String) {
        out.push_str("[counters]\n");
        out.push_str(&format!("total_rounds={}\n", self.total_rounds));
        out.push_str(&format!("total_iterations={}\n", self.total_iterations));
        out.push_str(&format!(
            "always_converged={}\n",
            u8::from(self.always_converged)
        ));
        out.push_str(&format!(
            "consecutive_failures={}\n",
            self.consecutive_failures
        ));
        out.push_str(&format!("fallback_quanta={}\n", self.fallback_quanta));
        out.push_str(&format!("degraded_quanta={}\n", self.degraded_quanta));
        out.push_str(&format!("solver_recoveries={}\n", self.solver_recoveries));
        out.push_str(&format!("retried_solves={}\n", self.retried_solves));
        out.push_str(&format!("timed_out_solves={}\n", self.timed_out_solves));
    }

    fn parse(section: &Section) -> Result<Self> {
        Ok(Self {
            total_rounds: section.parse("total_rounds")?,
            total_iterations: section.parse("total_iterations")?,
            always_converged: section.parse_bool("always_converged")?,
            consecutive_failures: section.parse("consecutive_failures")?,
            fallback_quanta: section.parse("fallback_quanta")?,
            degraded_quanta: section.parse("degraded_quanta")?,
            solver_recoveries: section.parse("solver_recoveries")?,
            retried_solves: section.parse("retried_solves")?,
            timed_out_solves: section.parse("timed_out_solves")?,
        })
    }
}

/// One completed quantum: the allocation that was enforced and the
/// measured instantaneous efficiency (used as a replay-divergence check).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantumRecord {
    /// Row-major `cores × resources` allocation applied this quantum.
    pub allocation: Vec<f64>,
    /// Instantaneous weighted speedup the quantum produced.
    pub efficiency: f64,
}

/// A durable snapshot of a simulation run at a quantum boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct SimCheckpoint {
    /// The configuration the run was started with.
    pub meta: SimMeta,
    /// Aggregate counters at the boundary.
    pub counters: SimCounters,
    /// One record per completed quantum, in order.
    pub quanta: Vec<QuantumRecord>,
}

impl SimCheckpoint {
    /// Renders the snapshot to its on-disk text form (checksum included).
    #[must_use]
    pub fn render(&self) -> String {
        Self::render_parts(&self.meta, &self.counters, &self.quanta)
    }

    /// [`render`](Self::render) over borrowed parts — the per-quantum
    /// save path uses this to avoid cloning the run's record history.
    #[must_use]
    pub fn render_parts(
        meta: &SimMeta,
        counters: &SimCounters,
        quanta: &[QuantumRecord],
    ) -> String {
        let mut body = String::new();
        meta.render(&mut body);
        counters.render(&mut body);
        for (q, record) in quanta.iter().enumerate() {
            body.push_str(&format!("[quantum {q}]\n"));
            body.push_str("alloc=");
            for (i, &v) in record.allocation.iter().enumerate() {
                if i > 0 {
                    body.push(' ');
                }
                body.push_str(&f64_hex(v));
            }
            body.push('\n');
            body.push_str(&format!("eff={}\n", f64_hex(record.efficiency)));
        }
        seal("sim", &body)
    }

    /// Parses a snapshot from its on-disk text form, validating version,
    /// kind, structure, and checksum.
    ///
    /// # Errors
    ///
    /// Any [`CheckpointError`] variant except `Io`/`ConfigMismatch`.
    pub fn parse(text: &str) -> Result<Self> {
        let sections = open(text, "sim")?;
        let meta_section =
            sections
                .iter()
                .find(|s| s.name == "meta")
                .ok_or(CheckpointError::Format {
                    line: 0,
                    reason: "missing [meta] section".into(),
                })?;
        let counters_section =
            sections
                .iter()
                .find(|s| s.name == "counters")
                .ok_or(CheckpointError::Format {
                    line: 0,
                    reason: "missing [counters] section".into(),
                })?;
        let meta = SimMeta::parse(meta_section)?;
        let counters = SimCounters::parse(counters_section)?;
        let mut quanta = Vec::new();
        for section in sections.iter().filter(|s| s.name.starts_with("quantum ")) {
            let index: usize =
                section.name["quantum ".len()..]
                    .parse()
                    .map_err(|_| CheckpointError::Format {
                        line: section.line,
                        reason: format!("bad quantum section name `{}`", section.name),
                    })?;
            if index != quanta.len() {
                return Err(CheckpointError::Format {
                    line: section.line,
                    reason: format!(
                        "quantum sections out of order: expected {}, got {index}",
                        quanta.len()
                    ),
                });
            }
            let alloc_raw = section.get("alloc")?;
            let mut allocation = Vec::with_capacity(meta.cores * meta.resources);
            for word in alloc_raw.split_whitespace() {
                let bits = u64::from_str_radix(word, 16).map_err(|_| CheckpointError::Format {
                    line: section.line,
                    reason: format!("bad allocation word `{word}`"),
                })?;
                allocation.push(f64::from_bits(bits));
            }
            if allocation.len() != meta.cores * meta.resources {
                return Err(CheckpointError::Format {
                    line: section.line,
                    reason: format!(
                        "quantum {index} has {} allocation words, expected {}",
                        allocation.len(),
                        meta.cores * meta.resources
                    ),
                });
            }
            quanta.push(QuantumRecord {
                allocation,
                efficiency: section.parse_f64_bits("eff")?,
            });
        }
        Ok(Self {
            meta,
            counters,
            quanta,
        })
    }

    /// Writes the snapshot to `path` atomically, rotating any existing
    /// snapshot to `<path>.prev`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on filesystem failure.
    pub fn save(&self, path: &Path) -> Result<()> {
        write_atomic(path, &self.render())
    }

    /// [`save`](Self::save) over borrowed parts, avoiding any clone of
    /// the (growing) quantum history on the simulation hot path.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on filesystem failure.
    pub fn save_parts(
        path: &Path,
        meta: &SimMeta,
        counters: &SimCounters,
        quanta: &[QuantumRecord],
    ) -> Result<()> {
        write_atomic(path, &Self::render_parts(meta, counters, quanta))
    }

    /// Loads and validates a snapshot from `path`.
    ///
    /// # Errors
    ///
    /// I/O, format, version, kind, or checksum errors.
    pub fn load(path: &Path) -> Result<Self> {
        Self::parse(&read_file(path)?)
    }

    /// Loads `path`, falling back to `<path>.prev` when the primary file
    /// is unreadable or fails validation. Returns the snapshot and
    /// whether the fallback generation was used.
    ///
    /// # Errors
    ///
    /// The *primary* file's error when the fallback also fails, so the
    /// caller sees why the live snapshot was rejected.
    pub fn load_with_fallback(path: &Path) -> Result<(Self, bool)> {
        match Self::load(path) {
            Ok(cp) => Ok((cp, false)),
            Err(primary) => match Self::load(&prev_path(path)) {
                Ok(cp) => Ok((cp, true)),
                Err(_) => Err(primary),
            },
        }
    }
}

// ---------------------------------------------------------------------------
// Sweep snapshots.
// ---------------------------------------------------------------------------

/// The configuration a sweep snapshot was taken under.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepMeta {
    /// Workload category label.
    pub category: String,
    /// Core count.
    pub cores: usize,
    /// Base per-player budget.
    pub base_budget: f64,
    /// Whether points normalize to the MaxEfficiency oracle.
    pub normalize: bool,
    /// The step values being swept, in order.
    pub steps: Vec<f64>,
}

impl SweepMeta {
    /// Checks that `self` (the resuming sweep) matches `snapshot`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::ConfigMismatch`] naming the first disagreeing
    /// field.
    pub fn ensure_matches(&self, snapshot: &SweepMeta) -> Result<()> {
        let mismatch =
            |what: &str, expected: String, found: String| CheckpointError::ConfigMismatch {
                what: what.to_string(),
                expected,
                found,
            };
        if self.category != snapshot.category {
            return Err(mismatch(
                "category",
                self.category.clone(),
                snapshot.category.clone(),
            ));
        }
        if self.cores != snapshot.cores {
            return Err(mismatch(
                "cores",
                self.cores.to_string(),
                snapshot.cores.to_string(),
            ));
        }
        if self.base_budget.to_bits() != snapshot.base_budget.to_bits() {
            return Err(mismatch(
                "base_budget",
                self.base_budget.to_string(),
                snapshot.base_budget.to_string(),
            ));
        }
        if self.normalize != snapshot.normalize {
            return Err(mismatch(
                "normalize",
                self.normalize.to_string(),
                snapshot.normalize.to_string(),
            ));
        }
        let steps_match = self.steps.len() == snapshot.steps.len()
            && self
                .steps
                .iter()
                .zip(&snapshot.steps)
                .all(|(a, b)| a.to_bits() == b.to_bits());
        if !steps_match {
            return Err(mismatch(
                "steps",
                format!("{:?}", self.steps),
                format!("{:?}", snapshot.steps),
            ));
        }
        Ok(())
    }
}

/// A durable snapshot of a knob sweep at a point boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCheckpoint {
    /// The sweep configuration.
    pub meta: SweepMeta,
    /// The MaxEfficiency oracle value, once computed.
    pub oracle: Option<f64>,
    /// Completed points, indexed like `meta.steps` (`None` = not yet run).
    pub points: Vec<Option<SweepPoint>>,
}

impl SweepCheckpoint {
    /// Creates an empty snapshot for a sweep configuration.
    #[must_use]
    pub fn new(meta: SweepMeta) -> Self {
        let n = meta.steps.len();
        Self {
            meta,
            oracle: None,
            points: vec![None; n],
        }
    }

    /// Indices of steps that still need computing.
    #[must_use]
    pub fn missing(&self) -> Vec<usize> {
        self.points
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.is_none().then_some(i))
            .collect()
    }

    /// Renders the snapshot to its on-disk text form (checksum included).
    #[must_use]
    pub fn render(&self) -> String {
        let mut body = String::new();
        body.push_str("[meta]\n");
        body.push_str(&format!("category={}\n", self.meta.category));
        body.push_str(&format!("cores={}\n", self.meta.cores));
        body.push_str(&format!("base_budget={}\n", f64_hex(self.meta.base_budget)));
        body.push_str(&format!("normalize={}\n", u8::from(self.meta.normalize)));
        let words: Vec<String> = self.meta.steps.iter().map(|&s| f64_hex(s)).collect();
        body.push_str(&format!("steps={}\n", words.join(" ")));
        if let Some(oracle) = self.oracle {
            body.push_str("[oracle]\n");
            body.push_str(&format!("value={}\n", f64_hex(oracle)));
        }
        for (k, point) in self.points.iter().enumerate() {
            let Some(p) = point else { continue };
            body.push_str(&format!("[point {k}]\n"));
            body.push_str(&format!("step={}\n", f64_hex(p.step)));
            body.push_str(&format!("efficiency={}\n", f64_hex(p.efficiency)));
            match p.normalized_efficiency {
                Some(v) => body.push_str(&format!("normalized={}\n", f64_hex(v))),
                None => body.push_str("normalized=none\n"),
            }
            body.push_str(&format!("envy_freeness={}\n", f64_hex(p.envy_freeness)));
            body.push_str(&format!("mur={}\n", f64_hex(p.mur)));
            body.push_str(&format!("mbr={}\n", f64_hex(p.mbr)));
            body.push_str(&format!("ef_floor={}\n", f64_hex(p.ef_floor)));
            body.push_str(&format!("converged={}\n", u8::from(p.solve.converged)));
            body.push_str(&format!("rounds={}\n", p.solve.rounds));
            body.push_str(&format!("iterations={}\n", p.solve.iterations));
            body.push_str(&format!("recoveries={}\n", p.solve.recoveries));
            body.push_str(&format!("retries={}\n", p.solve.retries));
            body.push_str(&format!("timed_out={}\n", p.solve.timed_out));
        }
        seal("sweep", &body)
    }

    /// Parses a snapshot from its on-disk text form.
    ///
    /// # Errors
    ///
    /// Any [`CheckpointError`] variant except `Io`/`ConfigMismatch`.
    pub fn parse(text: &str) -> Result<Self> {
        let sections = open(text, "sweep")?;
        let meta_section =
            sections
                .iter()
                .find(|s| s.name == "meta")
                .ok_or(CheckpointError::Format {
                    line: 0,
                    reason: "missing [meta] section".into(),
                })?;
        let steps_raw = meta_section.get("steps")?;
        let mut steps = Vec::new();
        for word in steps_raw.split_whitespace() {
            let bits = u64::from_str_radix(word, 16).map_err(|_| CheckpointError::Format {
                line: meta_section.line,
                reason: format!("bad step word `{word}`"),
            })?;
            steps.push(f64::from_bits(bits));
        }
        let meta = SweepMeta {
            category: meta_section.get("category")?.to_string(),
            cores: meta_section.parse("cores")?,
            base_budget: meta_section.parse_f64_bits("base_budget")?,
            normalize: meta_section.parse_bool("normalize")?,
            steps,
        };
        let oracle = match sections.iter().find(|s| s.name == "oracle") {
            Some(s) => Some(s.parse_f64_bits("value")?),
            None => None,
        };
        let mut points: Vec<Option<SweepPoint>> = vec![None; meta.steps.len()];
        for section in sections.iter().filter(|s| s.name.starts_with("point ")) {
            let index: usize =
                section.name["point ".len()..]
                    .parse()
                    .map_err(|_| CheckpointError::Format {
                        line: section.line,
                        reason: format!("bad point section name `{}`", section.name),
                    })?;
            if index >= points.len() {
                return Err(CheckpointError::Format {
                    line: section.line,
                    reason: format!("point index {index} beyond {} steps", points.len()),
                });
            }
            let normalized =
                match section.get("normalized")? {
                    "none" => None,
                    word => Some(u64::from_str_radix(word, 16).map(f64::from_bits).map_err(
                        |_| CheckpointError::Format {
                            line: section.line,
                            reason: format!("bad normalized word `{word}`"),
                        },
                    )?),
                };
            points[index] = Some(SweepPoint {
                step: section.parse_f64_bits("step")?,
                efficiency: section.parse_f64_bits("efficiency")?,
                normalized_efficiency: normalized,
                envy_freeness: section.parse_f64_bits("envy_freeness")?,
                mur: section.parse_f64_bits("mur")?,
                mbr: section.parse_f64_bits("mbr")?,
                ef_floor: section.parse_f64_bits("ef_floor")?,
                solve: SolveSummary {
                    converged: section.parse_bool("converged")?,
                    rounds: section.parse("rounds")?,
                    iterations: section.parse("iterations")?,
                    recoveries: section.parse("recoveries")?,
                    retries: section.parse("retries")?,
                    timed_out: section.parse("timed_out")?,
                },
            });
        }
        Ok(Self {
            meta,
            oracle,
            points,
        })
    }

    /// Writes the snapshot to `path` atomically, rotating any existing
    /// snapshot to `<path>.prev`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on filesystem failure.
    pub fn save(&self, path: &Path) -> Result<()> {
        write_atomic(path, &self.render())
    }

    /// Loads and validates a snapshot from `path`.
    ///
    /// # Errors
    ///
    /// I/O, format, version, kind, or checksum errors.
    pub fn load(path: &Path) -> Result<Self> {
        Self::parse(&read_file(path)?)
    }

    /// Loads `path`, falling back to `<path>.prev` when the primary file
    /// fails. Returns the snapshot and whether the fallback was used.
    ///
    /// # Errors
    ///
    /// The primary file's error when the fallback also fails.
    pub fn load_with_fallback(path: &Path) -> Result<(Self, bool)> {
        match Self::load(path) {
            Ok(cp) => Ok((cp, false)),
            Err(primary) => match Self::load(&prev_path(path)) {
                Ok(cp) => Ok((cp, true)),
                Err(_) => Err(primary),
            },
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn sample_sim() -> SimCheckpoint {
        SimCheckpoint {
            meta: SimMeta {
                mechanism: "ReBudget-40".into(),
                cores: 2,
                resources: 2,
                apps: vec!["mcf#0".into(), "bzip2#1".into()],
                seed: 17,
                budget: 100.0,
                accesses_per_quantum: 8000,
                use_monitors: true,
                execution: "analytic".into(),
                max_consecutive_failures: 3,
                faults: Some(FaultPlan {
                    noise_sigma: 0.15,
                    drop_probability: 0.2,
                    liars: 1,
                    ..FaultPlan::new(9)
                }),
            },
            counters: SimCounters {
                total_rounds: 6,
                total_iterations: 120,
                always_converged: true,
                consecutive_failures: 1,
                fallback_quanta: 0,
                degraded_quanta: 1,
                solver_recoveries: 2,
                retried_solves: 1,
                timed_out_solves: 0,
            },
            quanta: vec![
                QuantumRecord {
                    allocation: vec![8.0, 40.0, 8.0, 40.0],
                    efficiency: 1.75,
                },
                QuantumRecord {
                    allocation: vec![10.5, 35.25, 5.5, 44.75],
                    efficiency: f64::from_bits(0x3ffc_cccc_cccc_cccd),
                },
            ],
        }
    }

    #[test]
    fn sim_round_trip_is_bit_exact() {
        let cp = sample_sim();
        let parsed = SimCheckpoint::parse(&cp.render()).unwrap();
        assert_eq!(parsed, cp);
        for (a, b) in parsed.quanta.iter().zip(&cp.quanta) {
            assert_eq!(a.efficiency.to_bits(), b.efficiency.to_bits());
            for (x, y) in a.allocation.iter().zip(&b.allocation) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn special_floats_round_trip() {
        let mut cp = sample_sim();
        cp.quanta[0].allocation = vec![f64::NAN, f64::INFINITY, -0.0, f64::MIN_POSITIVE / 8.0];
        cp.quanta[0].efficiency = f64::NEG_INFINITY;
        let parsed = SimCheckpoint::parse(&cp.render()).unwrap();
        for (a, b) in parsed.quanta[0]
            .allocation
            .iter()
            .zip(&cp.quanta[0].allocation)
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(
            parsed.quanta[0].efficiency.to_bits(),
            cp.quanta[0].efficiency.to_bits()
        );
    }

    #[test]
    fn corruption_is_detected() {
        let text = sample_sim().render();
        // Flip a digit inside the body (not the checksum line).
        let idx = text.find("total_iterations=120").unwrap() + "total_iterations=".len();
        let mut corrupt = text.clone();
        corrupt.replace_range(idx..idx + 3, "121");
        assert!(matches!(
            SimCheckpoint::parse(&corrupt),
            Err(CheckpointError::Checksum { .. })
        ));
    }

    #[test]
    fn truncation_is_detected() {
        let text = sample_sim().render();
        // Cut mid-file: the checksum trailer disappears entirely.
        let cut = &text[..text.len() / 2];
        assert!(matches!(
            SimCheckpoint::parse(cut),
            Err(CheckpointError::Format { .. })
        ));
        // Cut right after the trailer tag: checksum record missing.
        let at = text.rfind("[checksum]").unwrap() + "[checksum]\n".len();
        assert!(matches!(
            SimCheckpoint::parse(&text[..at]),
            Err(CheckpointError::Format { .. })
        ));
    }

    #[test]
    fn wrong_version_and_kind_are_rejected() {
        let text = sample_sim().render();
        let v9 = text.replace("rebudget-checkpoint v1 sim", "rebudget-checkpoint v9 sim");
        assert!(matches!(
            SimCheckpoint::parse(&v9),
            Err(CheckpointError::Version { found: 9 })
        ));
        assert!(matches!(
            SweepCheckpoint::parse(&text),
            Err(CheckpointError::Kind {
                expected: "sweep",
                ..
            })
        ));
        assert!(matches!(
            SimCheckpoint::parse("#!/bin/sh\necho hello\n"),
            Err(CheckpointError::Format { line: 1, .. })
        ));
    }

    #[test]
    fn config_mismatch_names_the_field() {
        let cp = sample_sim();
        let mut other = cp.meta.clone();
        other.seed = 18;
        let err = other.ensure_matches(&cp.meta).unwrap_err();
        match err {
            CheckpointError::ConfigMismatch { what, .. } => assert_eq!(what, "seed"),
            other => panic!("unexpected {other:?}"),
        }
        let mut faulted = cp.meta.clone();
        faulted.faults = None;
        assert!(matches!(
            faulted.ensure_matches(&cp.meta),
            Err(CheckpointError::ConfigMismatch { .. })
        ));
        cp.meta.clone().ensure_matches(&cp.meta).unwrap();
    }

    #[test]
    fn atomic_save_rotates_generations() {
        let dir = std::env::temp_dir().join(format!("rebudget-cp-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rotate.ckpt");
        let mut cp = sample_sim();
        cp.save(&path).unwrap();
        assert!(!prev_path(&path).exists(), "no prev after first save");
        let first = cp.clone();
        cp.counters.total_rounds += 1;
        cp.save(&path).unwrap();
        assert_eq!(SimCheckpoint::load(&path).unwrap(), cp);
        assert_eq!(SimCheckpoint::load(&prev_path(&path)).unwrap(), first);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_with_fallback_uses_prev_generation() {
        let dir = std::env::temp_dir().join(format!("rebudget-cp-fb-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fallback.ckpt");
        let mut cp = sample_sim();
        cp.save(&path).unwrap();
        let first = cp.clone();
        cp.counters.total_rounds += 1;
        cp.save(&path).unwrap();
        // Corrupt the live generation; the previous one must be served.
        let mut text = fs::read_to_string(&path).unwrap();
        text.truncate(text.len() / 3);
        fs::write(&path, text).unwrap();
        let (loaded, used_prev) = SimCheckpoint::load_with_fallback(&path).unwrap();
        assert!(used_prev);
        assert_eq!(loaded, first);
        // Corrupt both: the primary error surfaces.
        fs::write(prev_path(&path), "garbage").unwrap();
        assert!(SimCheckpoint::load_with_fallback(&path).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = SimCheckpoint::load(Path::new("/nonexistent/rebudget.ckpt")).unwrap_err();
        assert!(matches!(err, CheckpointError::Io { .. }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn sweep_round_trip_with_partial_points() {
        let meta = SweepMeta {
            category: "cpbn".into(),
            cores: 8,
            base_budget: 100.0,
            normalize: true,
            steps: vec![0.0, 20.0, 40.0],
        };
        let mut cp = SweepCheckpoint::new(meta);
        assert_eq!(cp.missing(), vec![0, 1, 2]);
        cp.oracle = Some(7.25);
        cp.points[1] = Some(SweepPoint {
            step: 20.0,
            efficiency: 6.5,
            normalized_efficiency: Some(6.5 / 7.25),
            envy_freeness: 0.93,
            mur: 1.4,
            mbr: 2.0,
            ef_floor: 0.83,
            solve: SolveSummary {
                converged: true,
                rounds: 3,
                iterations: 57,
                recoveries: 0,
                retries: 1,
                timed_out: 0,
            },
        });
        let parsed = SweepCheckpoint::parse(&cp.render()).unwrap();
        assert_eq!(parsed, cp);
        assert_eq!(parsed.missing(), vec![0, 2]);
        assert_eq!(parsed.oracle.unwrap().to_bits(), 7.25f64.to_bits());
        // Meta self-check and mismatch detection.
        parsed.meta.ensure_matches(&cp.meta).unwrap();
        let mut other = cp.meta.clone();
        other.steps = vec![0.0, 20.0];
        assert!(matches!(
            other.ensure_matches(&cp.meta),
            Err(CheckpointError::ConfigMismatch { .. })
        ));
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn display_messages_are_informative() {
        let errors: Vec<CheckpointError> = vec![
            CheckpointError::Io {
                path: "x".into(),
                message: "denied".into(),
            },
            CheckpointError::Format {
                line: 3,
                reason: "bad".into(),
            },
            CheckpointError::Version { found: 2 },
            CheckpointError::Kind {
                expected: "sim",
                found: "sweep".into(),
            },
            CheckpointError::Checksum {
                expected: 1,
                found: 2,
            },
            CheckpointError::ConfigMismatch {
                what: "seed".into(),
                expected: "1".into(),
                found: "2".into(),
            },
            CheckpointError::ReplayDivergence { quantum: 4 },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
