//! Application-granularity allocation for multithreaded workloads.
//!
//! §5 of the paper: "For multithreading workloads, we can still allocate
//! the resources at thread granularity if each thread is running on a
//! different core. Another choice is to allocate resources at the
//! granularity of applications. All the threads of one application may
//! share the same resources, which is a reasonable assumption, because
//! the demand of the threads tend to be similar across threads of a
//! parallel application."
//!
//! This module implements the second choice: a *thread group* is one
//! market player whose allocation is split evenly among its threads and
//! whose utility is the group's weighted speedup contribution
//! (`threads × U_app(allocation / threads)`), so system efficiency remains
//! per-core weighted speedup. Budgets aggregate per thread (each core
//! brings its per-core budget into the group's purse).

use std::sync::Arc;

use rebudget_apps::AppProfile;
use rebudget_market::{Market, Player, ResourceSpace, Result, Utility};

use crate::analytic::discretionary_watts;
use crate::config::SystemConfig;
use crate::dram::DramConfig;
use crate::utility_model::{app_utility_grid, core_power_model, NOMINAL_TEMP_K};
use rebudget_workloads::Bundle;

/// A multithreaded application occupying `threads` cores.
#[derive(Debug, Clone, Copy)]
pub struct ThreadGroup {
    /// The application model (all threads behave alike, per the paper).
    pub app: &'static AppProfile,
    /// Number of threads (= cores).
    pub threads: usize,
}

/// A workload of thread groups covering all cores.
#[derive(Debug, Clone)]
pub struct MultithreadedBundle {
    /// The groups, in placement order.
    pub groups: Vec<ThreadGroup>,
}

impl MultithreadedBundle {
    /// Total cores occupied.
    pub fn cores(&self) -> usize {
        self.groups.iter().map(|g| g.threads).sum()
    }

    /// Treats a per-core [`Bundle`] as single-thread groups.
    pub fn from_singlethreaded(bundle: &Bundle) -> Self {
        Self {
            groups: bundle
                .apps
                .iter()
                .map(|app| ThreadGroup { app, threads: 1 })
                .collect(),
        }
    }
}

/// Group utility: `threads × U_app(r / threads)` over the group's shared
/// allocation — its weighted-speedup contribution over its cores.
struct GroupUtility {
    inner: Arc<dyn Utility>,
    threads: f64,
}

impl Utility for GroupUtility {
    fn value(&self, r: &[f64]) -> f64 {
        let per_thread: Vec<f64> = r.iter().map(|x| x / self.threads).collect();
        self.threads * self.inner.value(&per_thread)
    }

    fn marginal(&self, r: &[f64], j: usize) -> f64 {
        // d/dr_j [t · U(r/t)] = U'_j(r/t).
        let per_thread: Vec<f64> = r.iter().map(|x| x / self.threads).collect();
        self.inner.marginal(&per_thread, j)
    }
}

/// Builds an application-granularity market: one player per thread group,
/// group budgets of `per_core_budget × threads`.
///
/// # Errors
///
/// Propagates market-construction errors; the thread-group floors (one
/// cache region and the 800 MHz power floor *per thread*) are accounted
/// exactly like the per-core market's.
pub fn build_group_market(
    bundle: &MultithreadedBundle,
    sys: &SystemConfig,
    dram: &DramConfig,
    per_core_budget: f64,
) -> Result<Market> {
    // Discretionary pools are identical to the per-core market's: every
    // thread still gets its free region and 800 MHz floor.
    let as_cores = Bundle {
        category: rebudget_workloads::Category::Cpbn, // label only
        index: 0,
        apps: bundle
            .groups
            .iter()
            .flat_map(|g| std::iter::repeat_n(g.app, g.threads))
            .collect(),
    };
    let resources = ResourceSpace::with_names(vec![
        (
            "cache-regions".to_string(),
            sys.discretionary_regions() as f64,
        ),
        ("watts".to_string(), discretionary_watts(&as_cores, sys)),
    ])?;

    let players = bundle
        .groups
        .iter()
        .enumerate()
        .map(|(k, g)| {
            let inner: Arc<dyn Utility> = Arc::new(app_utility_grid(g.app, sys, dram));
            Player::new(
                format!("{}x{}#{k}", g.app.name, g.threads),
                per_core_budget * g.threads as f64,
                Arc::new(GroupUtility {
                    inner,
                    threads: g.threads as f64,
                }) as Arc<dyn Utility>,
            )
        })
        .collect();
    Market::new(resources, players)
}

/// The free power floor a group's threads consume (for reporting).
pub fn group_floor_watts(group: &ThreadGroup) -> f64 {
    core_power_model(group.app).floor_power(NOMINAL_TEMP_K) * group.threads as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rebudget_apps::spec::app_by_name;
    use rebudget_core::mechanisms::{EqualBudget, Mechanism};

    fn mt_bundle() -> MultithreadedBundle {
        MultithreadedBundle {
            groups: vec![
                ThreadGroup {
                    app: app_by_name("swim").unwrap(),
                    threads: 4,
                },
                ThreadGroup {
                    app: app_by_name("mcf").unwrap(),
                    threads: 2,
                },
                ThreadGroup {
                    app: app_by_name("sixtrack").unwrap(),
                    threads: 1,
                },
                ThreadGroup {
                    app: app_by_name("gzip").unwrap(),
                    threads: 1,
                },
            ],
        }
    }

    #[test]
    fn cores_add_up() {
        assert_eq!(mt_bundle().cores(), 8);
    }

    #[test]
    fn group_market_allocates_and_scales_with_threads() {
        let sys = SystemConfig::paper_8core();
        let dram = DramConfig::ddr3_1600();
        let market = build_group_market(&mt_bundle(), &sys, &dram, 100.0).unwrap();
        assert_eq!(market.len(), 4);
        assert_eq!(market.budgets(), vec![400.0, 200.0, 100.0, 100.0]);
        let out = EqualBudget::new(100.0).allocate(&market); // equal budgets override
        assert!(out.is_ok());

        // With thread-proportional budgets, the 4-thread group outbids the
        // 1-thread group of comparable per-thread demand.
        let eq = market
            .equilibrium(&rebudget_market::equilibrium::EquilibriumOptions::default())
            .unwrap();
        assert!(eq
            .allocation
            .is_exhaustive(market.resources().capacities(), 1e-6));
        // Group utilities are thread-weighted: efficiency ≤ total cores.
        let eff: f64 = eq.utilities.iter().sum();
        assert!(eff > 0.0 && eff <= 8.0 + 1e-6, "efficiency {eff}");
    }

    #[test]
    fn group_utility_matches_per_thread_semantics() {
        let sys = SystemConfig::paper_8core();
        let dram = DramConfig::ddr3_1600();
        let app = app_by_name("swim").unwrap();
        let inner: Arc<dyn Utility> = Arc::new(app_utility_grid(app, &sys, &dram));
        let single = GroupUtility {
            inner: inner.clone(),
            threads: 1.0,
        };
        let quad = GroupUtility {
            inner,
            threads: 4.0,
        };
        // 4 threads with 4× the resources do exactly 4× the single-thread
        // utility.
        let r1 = [3.0, 5.0];
        let r4 = [12.0, 20.0];
        assert!((quad.value(&r4) - 4.0 * single.value(&r1)).abs() < 1e-9);
    }

    #[test]
    fn singlethreaded_conversion_round_trips() {
        let bundle = rebudget_workloads::paper_bbpc_8core();
        let mt = MultithreadedBundle::from_singlethreaded(&bundle);
        assert_eq!(mt.cores(), 8);
        assert!(mt.groups.iter().all(|g| g.threads == 1));
        assert!(group_floor_watts(&mt.groups[0]) > 0.0);
    }
}
