//! Building market utilities from application behaviour (§4.1.1, §6).
//!
//! The paper profiles "90 cache+power configuration points, with
//! {1–6, 8, 10, 12, 16} cache regions (10 possible allocations) and
//! {0.8, 1.2, …, 4.0} GHz (9 possible allocations)", derives the convex
//! hull of the cache utility (Talus, Figure 2), and treats power as
//! continuous. The resulting surface — normalized IPC over (discretionary
//! cache regions, discretionary Watts) — is the player's utility function
//! in the market.

use rebudget_apps::perf::{performance, PerfEnv};
use rebudget_apps::AppProfile;
use rebudget_cache::MissCurve;
use rebudget_market::utility::{GridUtility, PiecewiseLinear};
use rebudget_power::CorePowerModel;

use crate::config::{SystemConfig, CACHE_REGION_BYTES};
use crate::dram::DramConfig;

/// Nominal junction temperature (K) used when building utility surfaces.
pub const NOMINAL_TEMP_K: f64 = 330.0;

/// The paper's 10-point cache profiling grid, in total regions.
pub const CACHE_REGION_GRID: [usize; 10] = [1, 2, 3, 4, 5, 6, 8, 10, 12, 16];

/// The per-core power model for an application (activity-scaled).
pub fn core_power_model(app: &AppProfile) -> CorePowerModel {
    CorePowerModel::paper(app.activity)
}

/// Discretionary Watts consumed at frequency `f` (total minus the free
/// 800 MHz floor), at nominal temperature.
pub fn discretionary_watts_at(model: &CorePowerModel, f_ghz: f64) -> f64 {
    (model.total_power(f_ghz, NOMINAL_TEMP_K) - model.floor_power(NOMINAL_TEMP_K)).max(0.0)
}

/// Samples an application's analytic MPKI curve at the profiling grid.
pub fn analytic_mpki_curve(app: &AppProfile, sys: &SystemConfig) -> MissCurve {
    let caps: Vec<f64> = CACHE_REGION_GRID
        .iter()
        .take_while(|&&r| r <= sys.max_regions_per_core)
        .map(|&r| r as f64 * CACHE_REGION_BYTES)
        .collect();
    app.miss_curve(&caps)
}

/// Builds the market utility surface from an MPKI curve plus the compute
/// parameters. The curve is convexified (Talus) before use; each frequency
/// column of the utility surface is then replaced by its concave hull over
/// the cache axis, exactly as Figure 2 does.
///
/// Axis 0 is **discretionary cache regions** (0 = just the free region);
/// axis 1 is **discretionary Watts** (0 = just the 800 MHz floor). Utility
/// is performance normalized to the stand-alone configuration (16 regions,
/// 4 GHz).
pub fn utility_grid_from_mpki(
    mpki: &MissCurve,
    base_cpi: f64,
    mlp: f64,
    activity: f64,
    sys: &SystemConfig,
    dram: &DramConfig,
) -> GridUtility {
    utility_grid_from_mpki_with(mpki, base_cpi, mlp, activity, sys, dram, true)
}

/// Like [`utility_grid_from_mpki`], with convexification switchable —
/// `convexify: false` skips both the Talus miss-curve hull and the
/// per-column utility hull, yielding the raw (possibly cliffy) surface.
/// Used by the Talus ablation study (the paper's footnote 4 notes that
/// convexifying utilities improves the original XChange baselines).
pub fn utility_grid_from_mpki_with(
    mpki: &MissCurve,
    base_cpi: f64,
    mlp: f64,
    activity: f64,
    sys: &SystemConfig,
    dram: &DramConfig,
    convexify: bool,
) -> GridUtility {
    let hulled = if convexify {
        mpki.convex_hull()
    } else {
        mpki.clone()
    };
    let mem_ns = dram.reference_latency_ns();
    let model = CorePowerModel::paper(activity);

    let freqs = sys.dvfs.profiling_grid(0.4);
    let regions: Vec<usize> = CACHE_REGION_GRID
        .iter()
        .copied()
        .take_while(|&r| r <= sys.max_regions_per_core)
        .collect();

    let time_per_kilo = |cache_bytes: f64, f: f64| -> f64 {
        1000.0 * base_cpi / f.max(1e-3) + hulled.at(cache_bytes) * mem_ns / mlp.max(0.1)
    };
    let alone = 1.0
        / time_per_kilo(
            sys.max_regions_per_core as f64 * CACHE_REGION_BYTES,
            sys.dvfs.f_max,
        );

    // Axis values.
    let axis0: Vec<f64> = regions
        .iter()
        .map(|&r| (r - sys.free_regions_per_core) as f64)
        .collect();
    let axis1: Vec<f64> = freqs
        .iter()
        .map(|&f| discretionary_watts_at(&model, f))
        .collect();

    // Raw utility samples, then per-frequency concave hull on the cache
    // axis (Talus / Figure 2). Monitor-derived (and fault-perturbed)
    // curves can produce columns that dip or go non-finite; repair with a
    // running max instead of panicking so a noisy quantum degrades the
    // surface rather than the whole run.
    let mut values = vec![0.0; axis0.len() * axis1.len()];
    for (j, &f) in freqs.iter().enumerate() {
        let mut running = 0.0_f64;
        let column: Vec<(f64, f64)> = regions
            .iter()
            .zip(&axis0)
            .map(|(&r, &x)| {
                let u = (1.0 / time_per_kilo(r as f64 * CACHE_REGION_BYTES, f)) / alone;
                running = if u.is_finite() {
                    u.max(running)
                } else {
                    running
                };
                (x, running)
            })
            .collect();
        match PiecewiseLinear::new(column.clone()) {
            Ok(curve) => {
                let curve = if convexify {
                    curve.upper_concave_hull()
                } else {
                    curve
                };
                for (i, &x) in axis0.iter().enumerate() {
                    values[i * axis1.len() + j] = curve.value(x);
                }
            }
            // Degenerate column (e.g. a single profiling point): use the
            // repaired samples directly, without hulling.
            Err(_) => {
                for (i, &(_, y)) in column.iter().enumerate() {
                    values[i * axis1.len() + j] = y;
                }
            }
        }
    }

    // Both axes come from the system configuration, not from telemetry:
    // axis0 is the strictly increasing region grid and axis1 the strictly
    // increasing discretionary-Watts ladder, and every value above was
    // repaired to a finite number — so construction cannot fail.
    GridUtility::new(axis0, axis1, values).expect("axes are config-derived and values repaired")
}

/// Applies deterministic multiplicative Gaussian noise to a monitor-derived
/// MPKI curve, standing in for estimation error in the UMON samples. The
/// perturbed curve is repaired to respect [`MissCurve`] invariants
/// (non-negative, non-increasing in capacity); the noise is a pure function
/// of `(salt, point index)` so runs stay bit-deterministic.
pub fn perturbed_mpki_curve(curve: &MissCurve, sigma: f64, salt: u64) -> MissCurve {
    if sigma <= 0.0 {
        return curve.clone();
    }
    let mut floor = f64::INFINITY;
    let points: Vec<(f64, f64)> = curve
        .capacities()
        .iter()
        .zip(curve.misses())
        .enumerate()
        .map(|(i, (&c, &m))| {
            let g = rebudget_market::faults::gaussian_sample(salt, i as u64);
            let noisy = (m * (1.0 + sigma * g)).max(0.0);
            // Running min left-to-right keeps the curve non-increasing.
            floor = if noisy.is_finite() {
                noisy.min(floor)
            } else {
                floor
            };
            (c, if floor.is_finite() { floor } else { 0.0 })
        })
        .collect();
    MissCurve::new(points).unwrap_or_else(|_| curve.clone())
}

/// Builds the analytic (phase-1) utility surface for an application.
pub fn app_utility_grid(app: &AppProfile, sys: &SystemConfig, dram: &DramConfig) -> GridUtility {
    app_utility_grid_with(app, sys, dram, true)
}

/// Analytic utility surface with convexification switchable (see
/// [`utility_grid_from_mpki_with`]).
pub fn app_utility_grid_with(
    app: &AppProfile,
    sys: &SystemConfig,
    dram: &DramConfig,
    convexify: bool,
) -> GridUtility {
    let mpki = analytic_mpki_curve(app, sys);
    utility_grid_from_mpki_with(
        &mpki,
        app.base_cpi,
        app.mlp,
        app.activity,
        sys,
        dram,
        convexify,
    )
}

/// Stand-alone instruction rate (instructions/second) — the normalization
/// baseline `IPC_alone` of §4.1.1, with full cache and maximum frequency.
pub fn alone_instruction_rate(app: &AppProfile, sys: &SystemConfig, dram: &DramConfig) -> f64 {
    let env = PerfEnv {
        mem_latency_ns: dram.reference_latency_ns(),
        alone_cache_bytes: sys.max_regions_per_core as f64 * CACHE_REGION_BYTES,
        alone_freq_ghz: sys.dvfs.f_max,
    };
    // performance() is kilo-instructions per nanosecond → ×1e12 for instr/s.
    performance(app, &env, env.alone_cache_bytes, env.alone_freq_ghz) * 1e12
}

#[cfg(test)]
mod tests {
    use super::*;
    use rebudget_apps::spec::app_by_name;
    use rebudget_market::Utility;

    fn setup() -> (SystemConfig, DramConfig) {
        (SystemConfig::paper_8core(), DramConfig::ddr3_1600())
    }

    #[test]
    fn grid_axes_match_paper_profiling() {
        let (sys, dram) = setup();
        let g = app_utility_grid(app_by_name("vpr").unwrap(), &sys, &dram);
        assert_eq!(g.axis0().len(), 10, "10 cache allocations");
        assert_eq!(g.axis1().len(), 9, "9 frequency allocations");
        assert_eq!(g.axis0()[0], 0.0);
        assert_eq!(g.axis0()[9], 15.0);
        assert_eq!(
            g.axis1()[0],
            0.0,
            "800 MHz floor costs no discretionary Watts"
        );
    }

    #[test]
    fn utility_normalized_to_alone() {
        let (sys, dram) = setup();
        for name in ["mcf", "swim", "sixtrack", "gzip"] {
            let g = app_utility_grid(app_by_name(name).unwrap(), &sys, &dram);
            let top = g.value(&[15.0, g.axis1()[8]]);
            assert!(
                (top - 1.0).abs() < 1e-9,
                "{name}: utility at full allocation is {top}"
            );
            let bottom = g.value(&[0.0, 0.0]);
            assert!(
                bottom > 0.0 && bottom < 1.0,
                "{name}: floor utility {bottom}"
            );
        }
    }

    #[test]
    fn utility_monotone_along_both_axes() {
        let (sys, dram) = setup();
        let g = app_utility_grid(app_by_name("swim").unwrap(), &sys, &dram);
        for j in 0..9 {
            let w = g.axis1()[j];
            let mut prev = -1.0;
            for i in 0..10 {
                let u = g.value(&[g.axis0()[i], w]);
                assert!(u >= prev - 1e-9);
                prev = u;
            }
        }
        for i in 0..10 {
            let x = g.axis0()[i];
            let mut prev = -1.0;
            for j in 0..9 {
                let u = g.value(&[x, g.axis1()[j]]);
                assert!(u >= prev - 1e-9);
                prev = u;
            }
        }
    }

    #[test]
    fn mcf_cache_column_is_convexified() {
        // The raw mcf utility has a cliff at 12 regions; the hull must rise
        // linearly through the plateau (Figure 2 of the paper).
        let (sys, dram) = setup();
        let g = app_utility_grid(app_by_name("mcf").unwrap(), &sys, &dram);
        let w_max = g.axis1()[8];
        let u0 = g.value(&[0.0, w_max]);
        let u5 = g.value(&[5.0, w_max]);
        let u11 = g.value(&[11.0, w_max]);
        // Strictly increasing through the former plateau.
        assert!(u5 > u0 + 0.05, "hull flat: {u0} → {u5}");
        assert!(u11 > u5 + 0.05, "hull flat: {u5} → {u11}");
        // And concave: the per-region marginal gain does not grow.
        assert!((u5 - u0) / 5.0 >= (u11 - u5) / 6.0 - 1e-9);
    }

    #[test]
    fn perturbed_curve_respects_invariants_and_is_deterministic() {
        let (sys, _) = setup();
        let clean = analytic_mpki_curve(app_by_name("mcf").unwrap(), &sys);
        let a = perturbed_mpki_curve(&clean, 0.3, 42);
        let b = perturbed_mpki_curve(&clean, 0.3, 42);
        assert_eq!(a, b, "pure function of (curve, sigma, salt)");
        assert_ne!(a, clean, "sigma=0.3 actually perturbs");
        assert_eq!(perturbed_mpki_curve(&clean, 0.0, 42), clean);
        // MissCurve invariants survive the noise.
        assert!(a.misses().iter().all(|&m| m.is_finite() && m >= 0.0));
        assert!(a.misses().windows(2).all(|w| w[1] <= w[0] + 1e-9));
        assert_eq!(a.capacities(), clean.capacities());
        // Different salts decorrelate.
        assert_ne!(a, perturbed_mpki_curve(&clean, 0.3, 43));
    }

    #[test]
    fn discretionary_watts_zero_at_fmin() {
        let model = core_power_model(app_by_name("sixtrack").unwrap());
        assert!(discretionary_watts_at(&model, 0.8).abs() < 1e-12);
        assert!(discretionary_watts_at(&model, 4.0) > 5.0);
    }

    #[test]
    fn alone_rate_positive_and_ordered() {
        let (sys, dram) = setup();
        // A compute-light app at 4 GHz retires instructions faster than a
        // latency-bound one.
        let fast = alone_instruction_rate(app_by_name("sixtrack").unwrap(), &sys, &dram);
        let slow = alone_instruction_rate(app_by_name("mcf").unwrap(), &sys, &dram);
        assert!(fast > slow);
        assert!(slow > 1e8, "even mcf retires >0.1 GIPS alone: {slow}");
    }
}
